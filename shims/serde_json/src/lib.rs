//! Offline stand-in for the subset of [`serde_json`](https://crates.io/crates/serde_json)
//! used by this workspace: [`to_string`], [`to_string_pretty`] and
//! [`from_str`], implemented over an owned [`Value`] tree and the workspace
//! `serde` shim's traits.
//!
//! Numbers are represented as `f64` throughout (ample for this workspace,
//! which serializes table strings, coordinates and small counts); there is no
//! zero-copy deserialization and no streaming.

#![forbid(unsafe_code)]

mod read;
mod value;
mod write;

use serde::{Deserialize, Serialize};

pub use value::Value;

/// Errors produced while serializing to or deserializing from JSON.
#[derive(Debug)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl serde::ser::Error for Error {
    fn custom<T: std::fmt::Display>(msg: T) -> Self {
        Self::new(msg.to_string())
    }
}

impl serde::de::Error for Error {
    fn custom<T: std::fmt::Display>(msg: T) -> Self {
        Self::new(msg.to_string())
    }
}

/// A specialized `Result` for JSON operations.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes `value` to a compact JSON string.
pub fn to_string<T: ?Sized + Serialize>(value: &T) -> Result<String> {
    let v = value::to_value(value)?;
    Ok(write::write(&v, None))
}

/// Serializes `value` to a two-space-indented JSON string.
pub fn to_string_pretty<T: ?Sized + Serialize>(value: &T) -> Result<String> {
    let v = value::to_value(value)?;
    Ok(write::write(&v, Some(2)))
}

/// Deserializes a value from a JSON string.
pub fn from_str<'de, T: Deserialize<'de>>(s: &str) -> Result<T> {
    let v = read::parse(s)?;
    T::deserialize(value::ValueDeserializer(v))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(to_string(&-7i32).unwrap(), "-7");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string("hi\n\"there\"").unwrap(), r#""hi\n\"there\"""#);
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<f64>("2.5e3").unwrap(), 2500.0);
        assert_eq!(from_str::<String>(r#""aAb""#).unwrap(), "aAb");
        assert!(!from_str::<bool>("false").unwrap());
    }

    #[test]
    fn vectors_round_trip() {
        let v = vec![vec![1.0f64, 2.5], vec![], vec![-3.0]];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[[1,2.5],[],[-3]]");
        let back: Vec<Vec<f64>> = from_str(&json).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn options_and_tuples_round_trip() {
        assert_eq!(to_string(&Option::<u32>::None).unwrap(), "null");
        assert_eq!(to_string(&Some(3u32)).unwrap(), "3");
        assert_eq!(from_str::<Option<u32>>("null").unwrap(), None);
        assert_eq!(from_str::<Option<u32>>("3").unwrap(), Some(3));
        let pair: (usize, f64) = from_str("[4, 0.5]").unwrap();
        assert_eq!(pair, (4, 0.5));
        assert_eq!(to_string(&(4usize, 0.5f64)).unwrap(), "[4,0.5]");
    }

    #[test]
    fn pretty_output_is_indented() {
        let v = vec![1u32, 2];
        assert_eq!(to_string_pretty(&v).unwrap(), "[\n  1,\n  2\n]");
    }

    #[test]
    fn float_precision_round_trips() {
        for &x in &[
            0.1f64,
            1.0 / 3.0,
            1e-300,
            123_456_789.123_456_79,
            f64::MIN_POSITIVE,
        ] {
            let back: f64 = from_str(&to_string(&x).unwrap()).unwrap();
            assert_eq!(back, x);
        }
    }

    #[test]
    fn documents_parse_to_a_value_tree() {
        let v: Value =
            from_str(r#"{"session":{"name":"s1"},"n":3,"ok":true,"xs":[1,null]}"#).unwrap();
        let Value::Object(entries) = &v else {
            panic!("expected object, got {v:?}");
        };
        assert_eq!(entries.len(), 4);
        assert_eq!(entries[0].0, "session");
        assert!(matches!(&entries[0].1, Value::Object(inner) if inner[0].0 == "name"));
        assert_eq!(entries[1].1, Value::Number(3.0));
        assert_eq!(entries[2].1, Value::Bool(true));
        assert_eq!(
            entries[3].1,
            Value::Array(vec![Value::Number(1.0), Value::Null])
        );
        // Scalars parse to values too.
        assert_eq!(
            from_str::<Value>("\"hi\"").unwrap(),
            Value::String("hi".into())
        );
        assert_eq!(from_str::<Value>("null").unwrap(), Value::Null);
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(from_str::<f64>("nope").is_err());
        assert!(from_str::<Vec<f64>>("[1,").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
        assert!(from_str::<f64>("1 2").is_err());
    }
}

//! The owned JSON [`Value`] tree plus the bridges to the workspace `serde`
//! shim: a serializer building values and a deserializer consuming them.

use crate::Error;
use serde::de::{self, Visitor};
use serde::ser;
use serde::{Deserialize, Serialize, Serializer};

/// An owned JSON value.
///
/// Object entries keep insertion order (duplicate keys are kept as parsed;
/// lookups during deserialization see the entries in order).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as `f64`).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, as ordered key–value pairs.
    Object(Vec<(String, Value)>),
}

/// Serializes any `Serialize` value into a [`Value`] tree.
pub fn to_value<T: ?Sized + Serialize>(value: &T) -> Result<Value, Error> {
    value.serialize(ValueSerializer)
}

pub struct ValueSerializer;

pub struct SeqSerializer {
    items: Vec<Value>,
}

pub struct StructSerializer {
    entries: Vec<(String, Value)>,
}

pub struct StructVariantSerializer {
    variant: &'static str,
    entries: Vec<(String, Value)>,
}

impl Serializer for ValueSerializer {
    type Ok = Value;
    type Error = Error;
    type SerializeSeq = SeqSerializer;
    type SerializeStruct = StructSerializer;
    type SerializeStructVariant = StructVariantSerializer;

    fn serialize_bool(self, v: bool) -> Result<Value, Error> {
        Ok(Value::Bool(v))
    }

    fn serialize_i64(self, v: i64) -> Result<Value, Error> {
        Ok(Value::Number(v as f64))
    }

    fn serialize_u64(self, v: u64) -> Result<Value, Error> {
        Ok(Value::Number(v as f64))
    }

    fn serialize_f64(self, v: f64) -> Result<Value, Error> {
        if v.is_finite() {
            Ok(Value::Number(v))
        } else {
            Err(Error::new(format!(
                "cannot serialize non-finite float {v} as JSON"
            )))
        }
    }

    fn serialize_str(self, v: &str) -> Result<Value, Error> {
        Ok(Value::String(v.to_owned()))
    }

    fn serialize_unit(self) -> Result<Value, Error> {
        Ok(Value::Null)
    }

    fn serialize_none(self) -> Result<Value, Error> {
        Ok(Value::Null)
    }

    fn serialize_some<T: ?Sized + Serialize>(self, value: &T) -> Result<Value, Error> {
        value.serialize(ValueSerializer)
    }

    fn serialize_seq(self, len: Option<usize>) -> Result<SeqSerializer, Error> {
        Ok(SeqSerializer {
            items: Vec::with_capacity(len.unwrap_or(0)),
        })
    }

    fn serialize_struct(self, _name: &'static str, len: usize) -> Result<StructSerializer, Error> {
        Ok(StructSerializer {
            entries: Vec::with_capacity(len),
        })
    }

    fn serialize_unit_variant(
        self,
        _name: &'static str,
        _variant_index: u32,
        variant: &'static str,
    ) -> Result<Value, Error> {
        Ok(Value::String(variant.to_owned()))
    }

    fn serialize_newtype_variant<T: ?Sized + Serialize>(
        self,
        _name: &'static str,
        _variant_index: u32,
        variant: &'static str,
        value: &T,
    ) -> Result<Value, Error> {
        let payload = value.serialize(ValueSerializer)?;
        Ok(Value::Object(vec![(variant.to_owned(), payload)]))
    }

    fn serialize_struct_variant(
        self,
        _name: &'static str,
        _variant_index: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<StructVariantSerializer, Error> {
        Ok(StructVariantSerializer {
            variant,
            entries: Vec::with_capacity(len),
        })
    }
}

impl ser::SerializeStructVariant for StructVariantSerializer {
    type Ok = Value;
    type Error = Error;

    fn serialize_field<T: ?Sized + Serialize>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Error> {
        self.entries
            .push((key.to_owned(), value.serialize(ValueSerializer)?));
        Ok(())
    }

    fn end(self) -> Result<Value, Error> {
        Ok(Value::Object(vec![(
            self.variant.to_owned(),
            Value::Object(self.entries),
        )]))
    }
}

impl ser::SerializeSeq for SeqSerializer {
    type Ok = Value;
    type Error = Error;

    fn serialize_element<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), Error> {
        self.items.push(value.serialize(ValueSerializer)?);
        Ok(())
    }

    fn end(self) -> Result<Value, Error> {
        Ok(Value::Array(self.items))
    }
}

impl ser::SerializeStruct for StructSerializer {
    type Ok = Value;
    type Error = Error;

    fn serialize_field<T: ?Sized + Serialize>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Error> {
        self.entries
            .push((key.to_owned(), value.serialize(ValueSerializer)?));
        Ok(())
    }

    fn end(self) -> Result<Value, Error> {
        Ok(Value::Object(self.entries))
    }
}

/// The visitor behind `Value`'s [`Deserialize`] impl: accepts whatever the
/// format offers and rebuilds the matching tree node, so callers can parse a
/// document to a [`Value`] first (e.g. to peek at a discriminating key) and
/// only then commit to a typed deserialization.
struct ValueVisitor;

impl<'de> Visitor<'de> for ValueVisitor {
    type Value = Value;

    fn expecting(&self, formatter: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        formatter.write_str("any JSON value")
    }

    fn visit_bool<E: de::Error>(self, v: bool) -> Result<Value, E> {
        Ok(Value::Bool(v))
    }

    fn visit_i64<E: de::Error>(self, v: i64) -> Result<Value, E> {
        Ok(Value::Number(v as f64))
    }

    fn visit_u64<E: de::Error>(self, v: u64) -> Result<Value, E> {
        Ok(Value::Number(v as f64))
    }

    fn visit_f64<E: de::Error>(self, v: f64) -> Result<Value, E> {
        Ok(Value::Number(v))
    }

    fn visit_str<E: de::Error>(self, v: &str) -> Result<Value, E> {
        Ok(Value::String(v.to_owned()))
    }

    fn visit_string<E: de::Error>(self, v: String) -> Result<Value, E> {
        Ok(Value::String(v))
    }

    fn visit_unit<E: de::Error>(self) -> Result<Value, E> {
        Ok(Value::Null)
    }

    fn visit_none<E: de::Error>(self) -> Result<Value, E> {
        Ok(Value::Null)
    }

    fn visit_some<D: de::Deserializer<'de>>(self, deserializer: D) -> Result<Value, D::Error> {
        Value::deserialize(deserializer)
    }

    fn visit_seq<A: de::SeqAccess<'de>>(self, mut seq: A) -> Result<Value, A::Error> {
        let mut items = Vec::with_capacity(seq.size_hint().unwrap_or(0));
        while let Some(item) = seq.next_element::<Value>()? {
            items.push(item);
        }
        Ok(Value::Array(items))
    }

    fn visit_map<A: de::MapAccess<'de>>(self, mut map: A) -> Result<Value, A::Error> {
        let mut entries = Vec::new();
        while let Some(key) = map.next_key::<String>()? {
            entries.push((key, map.next_value::<Value>()?));
        }
        Ok(Value::Object(entries))
    }
}

impl<'de> Deserialize<'de> for Value {
    fn deserialize<D: de::Deserializer<'de>>(deserializer: D) -> Result<Value, D::Error> {
        deserializer.deserialize_any(ValueVisitor)
    }
}

/// Deserializer that consumes an owned [`Value`].
pub struct ValueDeserializer(pub Value);

impl<'de> de::Deserializer<'de> for ValueDeserializer {
    type Error = Error;

    fn deserialize_any<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Error> {
        match self.0 {
            Value::Null => visitor.visit_unit(),
            Value::Bool(b) => visitor.visit_bool(b),
            Value::Number(n) => {
                if n.fract() == 0.0 && (0.0..=u64::MAX as f64).contains(&n) {
                    visitor.visit_u64(n as u64)
                } else if n.fract() == 0.0 && (i64::MIN as f64..0.0).contains(&n) {
                    visitor.visit_i64(n as i64)
                } else {
                    visitor.visit_f64(n)
                }
            }
            Value::String(s) => visitor.visit_string(s),
            Value::Array(items) => visitor.visit_seq(SeqAccess {
                iter: items.into_iter(),
            }),
            Value::Object(entries) => visitor.visit_map(MapAccess {
                iter: entries.into_iter(),
                value: None,
            }),
        }
    }

    fn deserialize_f64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Error> {
        match self.0 {
            Value::Number(n) => visitor.visit_f64(n),
            other => ValueDeserializer(other).deserialize_any(visitor),
        }
    }

    fn deserialize_option<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Error> {
        match self.0 {
            Value::Null => visitor.visit_none(),
            other => visitor.visit_some(ValueDeserializer(other)),
        }
    }

    fn deserialize_enum<V: Visitor<'de>>(
        self,
        name: &'static str,
        _variants: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Error> {
        match self.0 {
            Value::String(variant) => visitor.visit_enum(EnumAccess {
                variant,
                payload: None,
            }),
            Value::Object(mut entries) => {
                if entries.len() != 1 {
                    return Err(Error::new(format!(
                        "expected single-entry object for enum {name}, found {} entries",
                        entries.len()
                    )));
                }
                let (variant, payload) = entries.pop().expect("len checked above");
                visitor.visit_enum(EnumAccess {
                    variant,
                    payload: Some(payload),
                })
            }
            other => Err(Error::new(format!(
                "expected string or object for enum {name}, found {other:?}"
            ))),
        }
    }

    fn deserialize_ignored_any<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Error> {
        visitor.visit_unit()
    }
}

struct SeqAccess {
    iter: std::vec::IntoIter<Value>,
}

impl<'de> de::SeqAccess<'de> for SeqAccess {
    type Error = Error;

    fn next_element<T: Deserialize<'de>>(&mut self) -> Result<Option<T>, Error> {
        match self.iter.next() {
            Some(v) => T::deserialize(ValueDeserializer(v)).map(Some),
            None => Ok(None),
        }
    }

    fn size_hint(&self) -> Option<usize> {
        Some(self.iter.len())
    }
}

struct MapAccess {
    iter: std::vec::IntoIter<(String, Value)>,
    value: Option<Value>,
}

impl<'de> de::MapAccess<'de> for MapAccess {
    type Error = Error;

    fn next_key<K: Deserialize<'de>>(&mut self) -> Result<Option<K>, Error> {
        match self.iter.next() {
            Some((key, value)) => {
                self.value = Some(value);
                K::deserialize(ValueDeserializer(Value::String(key))).map(Some)
            }
            None => Ok(None),
        }
    }

    fn next_value<V: Deserialize<'de>>(&mut self) -> Result<V, Error> {
        let value = self
            .value
            .take()
            .ok_or_else(|| Error::new("next_value before next_key"))?;
        V::deserialize(ValueDeserializer(value))
    }
}

struct EnumAccess {
    variant: String,
    payload: Option<Value>,
}

impl<'de> de::EnumAccess<'de> for EnumAccess {
    type Error = Error;
    type Variant = VariantAccess;

    fn variant(self) -> Result<(String, VariantAccess), Error> {
        Ok((
            self.variant,
            VariantAccess {
                payload: self.payload,
            },
        ))
    }
}

struct VariantAccess {
    payload: Option<Value>,
}

impl<'de> de::VariantAccess<'de> for VariantAccess {
    type Error = Error;

    fn unit_variant(self) -> Result<(), Error> {
        match self.payload {
            None | Some(Value::Null) => Ok(()),
            Some(other) => Err(Error::new(format!(
                "unexpected payload {other:?} for unit variant"
            ))),
        }
    }

    fn newtype_variant<T: Deserialize<'de>>(self) -> Result<T, Error> {
        match self.payload {
            Some(v) => T::deserialize(ValueDeserializer(v)),
            None => Err(Error::new("missing payload for newtype variant")),
        }
    }

    fn struct_variant<V: Visitor<'de>>(
        self,
        _fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Error> {
        match self.payload {
            Some(Value::Object(entries)) => visitor.visit_map(MapAccess {
                iter: entries.into_iter(),
                value: None,
            }),
            Some(other) => Err(Error::new(format!(
                "expected object payload for struct variant, found {other:?}"
            ))),
            None => Err(Error::new("missing payload for struct variant")),
        }
    }
}

//! A recursive-descent JSON parser producing [`Value`] trees.

use crate::{Error, Value};

/// Parses a complete JSON document; trailing non-whitespace is an error.
pub fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_whitespace();
    let value = p.parse_value(0)?;
    p.skip_whitespace();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing characters after JSON document"));
    }
    Ok(value)
}

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, msg: impl std::fmt::Display) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected `{}`", byte as char)))
        }
    }

    fn parse_value(&mut self, depth: usize) -> Result<Value, Error> {
        if depth > MAX_DEPTH {
            return Err(self.error("JSON nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.parse_literal("null", Value::Null),
            Some(b't') => self.parse_literal("true", Value::Bool(true)),
            Some(b'f') => self.parse_literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(depth),
            Some(b'{') => self.parse_object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            Some(c) => Err(self.error(format!("unexpected character `{}`", c as char))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn parse_literal(&mut self, literal: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            Ok(value)
        } else {
            Err(self.error(format!("invalid literal, expected `{literal}`")))
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number bytes are ASCII by construction");
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|e| self.error(format!("invalid number `{text}`: {e}")))
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| self.error("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let first = self.parse_hex4()?;
                            let code = if (0xD800..0xDC00).contains(&first) {
                                // Surrogate pair: require a low surrogate next.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let second = self.parse_hex4()?;
                                    if !(0xDC00..0xE000).contains(&second) {
                                        return Err(self.error("invalid low surrogate"));
                                    }
                                    0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00)
                                } else {
                                    return Err(self.error("lone high surrogate"));
                                }
                            } else {
                                first
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.error("invalid unicode escape"))?,
                            );
                        }
                        other => {
                            return Err(self.error(format!("invalid escape `\\{}`", other as char)));
                        }
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 encoded character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.error("invalid UTF-8 in string"))?;
                    let ch = rest.chars().next().expect("peeked byte implies a char");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.error("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.error("invalid \\u escape"))?;
        let code =
            u32::from_str_radix(hex, 16).map_err(|_| self.error("invalid \\u escape digits"))?;
        self.pos += 4;
        Ok(code)
    }

    fn parse_array(&mut self, depth: usize) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.parse_value(depth + 1)?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.error("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_object(&mut self, depth: usize) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            self.skip_whitespace();
            let value = self.parse_value(depth + 1)?;
            entries.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(self.error("expected `,` or `}` in object")),
            }
        }
    }
}

//! JSON text output, compact or pretty-printed.

use crate::Value;
use std::fmt::Write as _;

/// Renders a [`Value`] as JSON text. `indent` of `None` is compact output;
/// `Some(n)` pretty-prints with `n`-space indentation.
pub fn write(value: &Value, indent: Option<usize>) -> String {
    let mut out = String::new();
    write_value(&mut out, value, indent, 0);
    out
}

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, level: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => {
            // `{}` on f64 is the shortest representation that round-trips.
            write!(out, "{n}").expect("writing to a String cannot fail");
            // Distinguish floats that happen to be integral? JSON does not
            // care: `1` and `1.0` denote the same number.
        }
        Value::String(s) => write_string(out, s),
        Value::Array(items) => write_compound(out, indent, level, b'[', items.len(), |out, i| {
            write_value(out, &items[i], indent, level + 1)
        }),
        Value::Object(entries) => {
            write_compound(out, indent, level, b'{', entries.len(), |out, i| {
                let (key, value) = &entries[i];
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, value, indent, level + 1);
            })
        }
    }
}

fn write_compound(
    out: &mut String,
    indent: Option<usize>,
    level: usize,
    open: u8,
    len: usize,
    mut write_item: impl FnMut(&mut String, usize),
) {
    let close = if open == b'[' { ']' } else { '}' };
    out.push(open as char);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(n) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', n * (level + 1)));
        }
        write_item(out, i);
    }
    if let Some(n) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', n * level));
    }
    out.push(close);
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{0008}' => out.push_str("\\b"),
            '\u{000C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                write!(out, "\\u{:04x}", c as u32).expect("writing to a String cannot fail");
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for the
//! shapes this workspace actually uses:
//!
//! * structs with named fields (including type- and const-generic structs),
//! * enums whose variants are units, carry a single unnamed payload, or
//!   carry named fields (struct variants).
//!
//! Missing `Option` fields deserialize to `None` (via the `serde` shim's
//! `MissingFieldDeserializer`); all other missing fields are errors.
//!
//! The macro is written against `proc_macro` directly (no `syn`/`quote`,
//! which are unavailable offline): the item is scanned for its name, generic
//! parameters and field/variant names, and the generated impls are assembled
//! as source text. `#[serde(...)]` attributes are not supported.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Item {
    Struct {
        name: String,
        generics: Vec<Param>,
        fields: Vec<String>,
    },
    Enum {
        name: String,
        generics: Vec<Param>,
        variants: Vec<(String, VariantKind)>,
    },
}

/// The payload shape of one enum variant.
#[derive(Debug)]
enum VariantKind {
    /// No payload.
    Unit,
    /// A single unnamed payload (`Variant(T)`).
    Newtype,
    /// Named fields (`Variant { a: T, b: U }`).
    Struct(Vec<String>),
}

/// One generic parameter of the deriving type.
#[derive(Debug)]
enum Param {
    /// A type parameter, e.g. `M`.
    Type(String),
    /// A const parameter: (name, type), e.g. `("D", "usize")`.
    Const(String, String),
}

impl Item {
    fn name(&self) -> &str {
        match self {
            Item::Struct { name, .. } | Item::Enum { name, .. } => name,
        }
    }

    fn generics(&self) -> &[Param] {
        match self {
            Item::Struct { generics, .. } | Item::Enum { generics, .. } => generics,
        }
    }

    /// `<M: BOUND, const D: usize>` (empty string when not generic). The
    /// extra `'de` lifetime is prepended by the caller when needed.
    fn impl_generics(&self, bound: &str) -> String {
        let params: Vec<String> = self
            .generics()
            .iter()
            .map(|p| match p {
                Param::Type(name) => format!("{name}: {bound}"),
                Param::Const(name, ty) => format!("const {name}: {ty}"),
            })
            .collect();
        params.join(", ")
    }

    /// `<M, D>` (empty string when not generic).
    fn ty_generics(&self) -> String {
        if self.generics().is_empty() {
            String::new()
        } else {
            let names: Vec<&str> = self
                .generics()
                .iter()
                .map(|p| match p {
                    Param::Type(name) | Param::Const(name, _) => name.as_str(),
                })
                .collect();
            format!("<{}>", names.join(", "))
        }
    }
}

struct Parser {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Parser {
    fn new(input: TokenStream) -> Self {
        Self {
            tokens: input.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn skip_attributes(&mut self) {
        while let Some(TokenTree::Punct(p)) = self.peek() {
            if p.as_char() != '#' {
                break;
            }
            self.next();
            // Outer attribute body: `[...]`.
            if let Some(TokenTree::Group(g)) = self.peek() {
                if g.delimiter() == Delimiter::Bracket {
                    self.next();
                }
            }
        }
    }

    fn skip_visibility(&mut self) {
        if let Some(TokenTree::Ident(id)) = self.peek() {
            if id.to_string() == "pub" {
                self.next();
                if let Some(TokenTree::Group(g)) = self.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        self.next();
                    }
                }
            }
        }
    }

    fn expect_ident(&mut self, what: &str) -> String {
        match self.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("serde_derive shim: expected {what}, found {other:?}"),
        }
    }

    /// Parses `<...>` generic parameters if present.
    fn parse_generics(&mut self) -> Vec<Param> {
        match self.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => {}
            _ => return Vec::new(),
        }
        self.next();
        let mut depth = 1usize;
        let mut raw: Vec<TokenTree> = Vec::new();
        loop {
            let t = self
                .next()
                .expect("serde_derive shim: unterminated generics");
            if let TokenTree::Punct(p) = &t {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
            }
            raw.push(t);
        }

        let mut params = Vec::new();
        for group in split_top_level_commas(&raw) {
            if group.is_empty() {
                continue;
            }
            match &group[0] {
                TokenTree::Ident(id) if id.to_string() == "const" => {
                    let name = match &group[1] {
                        TokenTree::Ident(id) => id.to_string(),
                        other => panic!("serde_derive shim: bad const parameter: {other:?}"),
                    };
                    // group[2] is the `:`; the rest is the const's type.
                    let ty: String = group[3..]
                        .iter()
                        .map(|t| t.to_string())
                        .collect::<Vec<_>>()
                        .join(" ");
                    params.push(Param::Const(name, ty));
                }
                TokenTree::Ident(id) => {
                    if group.len() > 1 {
                        panic!(
                            "serde_derive shim: bounds on type parameters are not supported \
                             (parameter `{id}`)"
                        );
                    }
                    params.push(Param::Type(id.to_string()));
                }
                other => panic!(
                    "serde_derive shim: unsupported generic parameter starting with {other:?}"
                ),
            }
        }
        params
    }

    fn parse(mut self) -> Item {
        self.skip_attributes();
        self.skip_visibility();
        let kind = self.expect_ident("`struct` or `enum`");
        let name = self.expect_ident("type name");
        let generics = self.parse_generics();
        let body = match self.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
            other => panic!(
                "serde_derive shim: only braced bodies are supported (deriving for `{name}`), \
                 found {other:?}"
            ),
        };
        match kind.as_str() {
            "struct" => Item::Struct {
                name,
                generics,
                fields: parse_fields(body),
            },
            "enum" => Item::Enum {
                name,
                generics,
                variants: parse_variants(body),
            },
            other => panic!("serde_derive shim: cannot derive for `{other}` items"),
        }
    }
}

fn split_top_level_commas(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut out: Vec<Vec<TokenTree>> = vec![Vec::new()];
    let mut angle_depth = 0usize;
    for t in tokens {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth = angle_depth.saturating_sub(1),
                ',' if angle_depth == 0 => {
                    out.push(Vec::new());
                    continue;
                }
                _ => {}
            }
        }
        out.last_mut().unwrap().push(t.clone());
    }
    if out.last().is_some_and(Vec::is_empty) {
        out.pop();
    }
    out
}

/// Extracts field names from the body of a braced struct.
fn parse_fields(body: TokenStream) -> Vec<String> {
    let mut p = Parser::new(body);
    let mut fields = Vec::new();
    loop {
        p.skip_attributes();
        if p.at_end() {
            break;
        }
        p.skip_visibility();
        let name = p.expect_ident("field name");
        match p.next() {
            Some(TokenTree::Punct(pt)) if pt.as_char() == ':' => {}
            other => panic!("serde_derive shim: expected `:` after field `{name}`, got {other:?}"),
        }
        fields.push(name);
        // Skip the type, stopping at a top-level comma.
        let mut angle_depth = 0usize;
        loop {
            match p.next() {
                None => break,
                Some(TokenTree::Punct(pt)) => match pt.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth = angle_depth.saturating_sub(1),
                    ',' if angle_depth == 0 => break,
                    _ => {}
                },
                Some(_) => {}
            }
        }
    }
    fields
}

/// Extracts `(name, kind)` pairs from the body of an enum.
fn parse_variants(body: TokenStream) -> Vec<(String, VariantKind)> {
    let mut p = Parser::new(body);
    let mut variants = Vec::new();
    loop {
        p.skip_attributes();
        if p.at_end() {
            break;
        }
        let name = p.expect_ident("variant name");
        let mut kind = VariantKind::Unit;
        if let Some(TokenTree::Group(g)) = p.peek() {
            match g.delimiter() {
                Delimiter::Parenthesis => {
                    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                    let parts = split_top_level_commas(&inner);
                    if parts.len() != 1 {
                        panic!(
                            "serde_derive shim: variant `{name}` has {} unnamed payload fields; \
                             only newtype tuple variants are supported",
                            parts.len()
                        );
                    }
                    kind = VariantKind::Newtype;
                    p.next();
                }
                Delimiter::Brace => {
                    kind = VariantKind::Struct(parse_fields(g.stream()));
                    p.next();
                }
                _ => {}
            }
        }
        variants.push((name, kind));
        // Skip anything up to the separating comma (e.g. discriminants).
        loop {
            match p.next() {
                None => break,
                Some(TokenTree::Punct(pt)) if pt.as_char() == ',' => break,
                Some(_) => {}
            }
        }
    }
    variants
}

/// Generates a `visit_map` method that collects the named `fields` and
/// builds `value_path { ... }`. Missing fields fall back to the `serde`
/// shim's `MissingFieldDeserializer`, so absent `Option` fields become
/// `None` while any other absent field reports `missing field`.
fn visit_map_method(value_path: &str, fields: &[String]) -> String {
    let mut decls = String::new();
    let mut arms = String::new();
    let mut build = String::new();
    for (index, field) in fields.iter().enumerate() {
        decls.push_str(&format!(
            "let mut __field{index} = ::std::option::Option::None;\n"
        ));
        arms.push_str(&format!(
            "\"{field}\" => {{ __field{index} = \
             ::std::option::Option::Some(__map.next_value()?); }}\n"
        ));
        build.push_str(&format!(
            "{field}: match __field{index} {{\n\
             ::std::option::Option::Some(__v) => __v,\n\
             ::std::option::Option::None => ::serde::Deserialize::deserialize(\
             ::serde::de::MissingFieldDeserializer::new(\"{field}\"))?,\n}},\n"
        ));
    }
    format!(
        "fn visit_map<__A: ::serde::de::MapAccess<'de>>(self, mut __map: __A) \
         -> ::std::result::Result<Self::Value, __A::Error> {{\n\
         {decls}\
         while let ::std::option::Option::Some(__key) = \
         __map.next_key::<::std::string::String>()? {{\n\
         match __key.as_str() {{\n\
         {arms}\
         _ => {{ let _ = __map.next_value::<::serde::de::IgnoredAny>()?; }}\n\
         }}\n}}\n\
         ::std::result::Result::Ok({value_path} {{\n{build}}})\n}}\n"
    )
}

fn wrap_impl_generics(inner: &str, extra_first: Option<&str>) -> String {
    match (extra_first, inner.is_empty()) {
        (None, true) => String::new(),
        (None, false) => format!("<{inner}>"),
        (Some(extra), true) => format!("<{extra}>"),
        (Some(extra), false) => format!("<{extra}, {inner}>"),
    }
}

/// Derives the workspace `serde::Serialize` for structs with named fields and
/// unit/newtype enums.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = Parser::new(input).parse();
    let name = item.name();
    let impl_generics = wrap_impl_generics(&item.impl_generics("::serde::Serialize"), None);
    let ty_generics = item.ty_generics();

    let body = match &item {
        Item::Struct { fields, .. } => {
            let mut code = format!(
                "let mut __state = ::serde::Serializer::serialize_struct(__serializer, \
                 \"{name}\", {}usize)?;\n",
                fields.len()
            );
            for field in fields {
                code.push_str(&format!(
                    "::serde::ser::SerializeStruct::serialize_field(&mut __state, \"{field}\", \
                     &self.{field})?;\n"
                ));
            }
            code.push_str("::serde::ser::SerializeStruct::end(__state)\n");
            code
        }
        Item::Enum { variants, .. } => {
            let mut arms = String::new();
            for (index, (variant, kind)) in variants.iter().enumerate() {
                match kind {
                    VariantKind::Newtype => {
                        arms.push_str(&format!(
                            "{name}::{variant}(ref __value) => \
                             ::serde::Serializer::serialize_newtype_variant(__serializer, \
                             \"{name}\", {index}u32, \"{variant}\", __value),\n"
                        ));
                    }
                    VariantKind::Unit => {
                        arms.push_str(&format!(
                            "{name}::{variant} => \
                             ::serde::Serializer::serialize_unit_variant(__serializer, \
                             \"{name}\", {index}u32, \"{variant}\"),\n"
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let bindings: Vec<String> =
                            fields.iter().map(|f| format!("ref {f}")).collect();
                        let mut body = format!(
                            "let mut __state = \
                             ::serde::Serializer::serialize_struct_variant(__serializer, \
                             \"{name}\", {index}u32, \"{variant}\", {}usize)?;\n",
                            fields.len()
                        );
                        for field in fields {
                            body.push_str(&format!(
                                "::serde::ser::SerializeStructVariant::serialize_field(\
                                 &mut __state, \"{field}\", {field})?;\n"
                            ));
                        }
                        body.push_str("::serde::ser::SerializeStructVariant::end(__state)\n");
                        arms.push_str(&format!(
                            "{name}::{variant} {{ {} }} => {{\n{body}}}\n",
                            bindings.join(", ")
                        ));
                    }
                }
            }
            format!("match *self {{\n{arms}}}\n")
        }
    };

    let output = format!(
        "impl{impl_generics} ::serde::Serialize for {name}{ty_generics} {{\n\
         fn serialize<__S: ::serde::Serializer>(&self, __serializer: __S) \
         -> ::std::result::Result<__S::Ok, __S::Error> {{\n{body}}}\n}}\n"
    );
    output
        .parse()
        .expect("serde_derive shim: generated invalid Serialize impl")
}

/// Derives the workspace `serde::Deserialize` for structs with named fields
/// and unit/newtype enums.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = Parser::new(input).parse();
    let name = item.name();
    let inner = item.impl_generics("::serde::Deserialize<'de>");
    let impl_generics = wrap_impl_generics(&inner, Some("'de"));
    let visitor_decl_generics = {
        let params: Vec<String> = item
            .generics()
            .iter()
            .map(|p| match p {
                Param::Type(n) => n.clone(),
                Param::Const(n, ty) => format!("const {n}: {ty}"),
            })
            .collect();
        if params.is_empty() {
            String::new()
        } else {
            format!("<{}>", params.join(", "))
        }
    };
    let ty_generics = item.ty_generics();
    let phantom_ty = format!("::std::marker::PhantomData<fn() -> {name}{ty_generics}>");

    let (prelude, visit_method, driver) = match &item {
        Item::Struct { fields, .. } => {
            let visit = visit_map_method(name, fields);
            let field_list: Vec<String> = fields.iter().map(|f| format!("\"{f}\"")).collect();
            let driver = format!(
                "::serde::Deserializer::deserialize_struct(__deserializer, \"{name}\", \
                 &[{}], __Visitor(::std::marker::PhantomData))",
                field_list.join(", ")
            );
            (String::new(), visit, driver)
        }
        Item::Enum { variants, .. } => {
            // Struct variants get a dedicated map visitor each, declared
            // alongside the main enum visitor.
            let mut prelude = String::new();
            let mut arms = String::new();
            for (index, (variant, kind)) in variants.iter().enumerate() {
                match kind {
                    VariantKind::Newtype => {
                        arms.push_str(&format!(
                            "\"{variant}\" => ::std::result::Result::Ok({name}::{variant}(\
                             ::serde::de::VariantAccess::newtype_variant(__payload)?)),\n"
                        ));
                    }
                    VariantKind::Unit => {
                        arms.push_str(&format!(
                            "\"{variant}\" => {{ \
                             ::serde::de::VariantAccess::unit_variant(__payload)?; \
                             ::std::result::Result::Ok({name}::{variant}) }}\n"
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let visit = visit_map_method(&format!("{name}::{variant}"), fields);
                        prelude.push_str(&format!(
                            "struct __VariantVisitor{index}{visitor_decl_generics}({phantom_ty});\n\
                             impl{impl_generics} ::serde::de::Visitor<'de> for \
                             __VariantVisitor{index}{ty_generics} {{\n\
                             type Value = {name}{ty_generics};\n\
                             fn expecting(&self, __formatter: &mut ::std::fmt::Formatter<'_>) \
                             -> ::std::fmt::Result {{\n\
                             __formatter.write_str(\"struct variant {name}::{variant}\")\n}}\n\
                             {visit}\
                             }}\n"
                        ));
                        let field_list: Vec<String> =
                            fields.iter().map(|f| format!("\"{f}\"")).collect();
                        arms.push_str(&format!(
                            "\"{variant}\" => ::serde::de::VariantAccess::struct_variant(\
                             __payload, &[{}], \
                             __VariantVisitor{index}(::std::marker::PhantomData)),\n",
                            field_list.join(", ")
                        ));
                    }
                }
            }
            let variant_list: Vec<String> =
                variants.iter().map(|(v, _)| format!("\"{v}\"")).collect();
            let variant_list = variant_list.join(", ");
            let visit = format!(
                "fn visit_enum<__A: ::serde::de::EnumAccess<'de>>(self, __data: __A) \
                 -> ::std::result::Result<Self::Value, __A::Error> {{\n\
                 let (__variant, __payload) = ::serde::de::EnumAccess::variant(__data)?;\n\
                 match __variant.as_str() {{\n\
                 {arms}\
                 __other => ::std::result::Result::Err(\
                 <__A::Error as ::serde::de::Error>::unknown_variant(__other, \
                 &[{variant_list}])),\n}}\n}}\n"
            );
            let driver = format!(
                "::serde::Deserializer::deserialize_enum(__deserializer, \"{name}\", \
                 &[{variant_list}], __Visitor(::std::marker::PhantomData))"
            );
            (prelude, visit, driver)
        }
    };

    let output = format!(
        "impl{impl_generics} ::serde::Deserialize<'de> for {name}{ty_generics} {{\n\
         fn deserialize<__D: ::serde::Deserializer<'de>>(__deserializer: __D) \
         -> ::std::result::Result<Self, __D::Error> {{\n\
         {prelude}\
         struct __Visitor{visitor_decl_generics}({phantom_ty});\n\
         impl{impl_generics} ::serde::de::Visitor<'de> for __Visitor{ty_generics} {{\n\
         type Value = {name}{ty_generics};\n\
         fn expecting(&self, __formatter: &mut ::std::fmt::Formatter<'_>) \
         -> ::std::fmt::Result {{\n\
         __formatter.write_str(\"{kind} {name}\")\n}}\n\
         {visit_method}\
         }}\n\
         {driver}\n\
         }}\n}}\n",
        kind = match &item {
            Item::Struct { .. } => "struct",
            Item::Enum { .. } => "enum",
        },
    );
    output
        .parse()
        .expect("serde_derive shim: generated invalid Deserialize impl")
}

//! Offline stand-in for the subset of the [`criterion`](https://crates.io/crates/criterion)
//! crate used by this workspace's benchmarks.
//!
//! The build environment has no access to crates.io, so this crate implements
//! the `criterion_group!`/`criterion_main!` entry points, benchmark groups
//! and `Bencher::iter` with plain `std::time::Instant` timing. Each benchmark
//! runs a short, bounded number of iterations and prints one line with the
//! mean time per iteration — no statistics, plots or HTML reports.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Wall-clock budget spent per benchmark before reporting.
const TIME_BUDGET: Duration = Duration::from_millis(60);

/// Re-export of [`std::hint::black_box`] for API compatibility.
pub use std::hint::black_box;

/// The benchmark manager passed to every `criterion_group!` target.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 20,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into(), 20, |b| f(b));
        self
    }
}

/// A named group of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples (here: the iteration cap) for the group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmarks `f` with a borrowed input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.repr);
        run_one(&label, self.sample_size, |b| f(b, input));
        self
    }

    /// Benchmarks `f` without an input value.
    pub fn bench_function<F>(&mut self, id: BenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.repr);
        run_one(&label, self.sample_size, |b| f(b));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_one(label: &str, sample_size: usize, mut f: impl FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        iters: 0,
        elapsed: Duration::ZERO,
        cap: sample_size,
    };
    f(&mut bencher);
    if bencher.iters == 0 {
        println!("bench {label:<50} (no iterations)");
    } else {
        let per_iter = bencher.elapsed.as_nanos() as f64 / bencher.iters as f64;
        println!(
            "bench {label:<50} {:>12.1} ns/iter ({} iters)",
            per_iter, bencher.iters
        );
    }
}

/// Identifies one benchmark inside a group, usually `function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    repr: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            repr: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id made of a parameter value only.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            repr: parameter.to_string(),
        }
    }
}

/// Runs and times the benchmarked closure.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
    cap: usize,
}

impl Bencher {
    /// Calls `f` repeatedly (bounded by the sample size and a small time
    /// budget) and records the mean wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up iteration, untimed.
        black_box(f());
        let start = Instant::now();
        let mut iters = 0u64;
        loop {
            black_box(f());
            iters += 1;
            if iters >= self.cap as u64 || start.elapsed() >= TIME_BUDGET {
                break;
            }
        }
        self.iters = iters;
        self.elapsed = start.elapsed();
    }
}

/// Declares a benchmark group function calling each target in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the listed benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_iterations() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut runs = 0u32;
        group.bench_with_input(BenchmarkId::new("f", 1), &5u64, |b, &x| {
            b.iter(|| {
                runs += 1;
                x * 2
            })
        });
        group.finish();
        assert!(runs >= 3);
    }
}

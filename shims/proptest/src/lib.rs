//! Offline stand-in for the subset of [`proptest`](https://crates.io/crates/proptest)
//! used by this workspace.
//!
//! The build environment has no access to crates.io, so this crate implements
//! the `proptest!` macro, the [`strategy::Strategy`] trait (ranges, tuples,
//! `prop_map`, `prop_flat_map`), [`collection::vec`], [`arbitrary::any`] and
//! the `prop_assert*` macros over a deterministic ChaCha8-seeded sampler.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **no shrinking** — a failing case reports the case number and message
//!   only; re-running is deterministic, so the failure reproduces exactly;
//! * **derandomization is implicit** — every test function derives its RNG
//!   seed from its own name, so runs are stable across processes with no
//!   persistence files;
//! * only the strategy combinators listed above exist.

#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The glob-importable prelude, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Mirror of real proptest's `prelude::prop` module of strategy factories.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Defines property tests: each function's arguments are drawn from the given
/// strategies for `ProptestConfig::cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($config:expr);
     $( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strategy:expr),* $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config = $config;
                $crate::test_runner::run_cases(&__config, stringify!($name), |__rng| {
                    $(
                        let $arg =
                            $crate::strategy::Strategy::sample_one(&($strategy), __rng);
                    )*
                    let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    __outcome
                });
            }
        )*
    };
}

/// Asserts a condition inside a property test, failing the case (not
/// panicking) so the runner can report the case number.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {{
        // Bind to a bool first so lints about negated partial-ord comparisons
        // do not fire on the user's expression.
        let __prop_assert_holds: bool = $cond;
        if !__prop_assert_holds {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    }};
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (__left, __right) = (&$left, &$right);
        $crate::prop_assert!(
            *__left == *__right,
            "assertion failed: `{:?}` == `{:?}`",
            __left,
            __right
        );
    }};
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (__left, __right) = (&$left, &$right);
        $crate::prop_assert!(
            *__left != *__right,
            "assertion failed: `{:?}` != `{:?}`",
            __left,
            __right
        );
    }};
}

/// Discards the current case when an assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 1.5f64..9.0, n in 3usize..17) {
            prop_assert!((1.5..9.0).contains(&x));
            prop_assert!((3..17).contains(&n));
        }

        #[test]
        fn vec_strategy_obeys_size(v in prop::collection::vec(0u64..100, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&x| x < 100));
        }

        #[test]
        fn tuples_and_maps_compose(
            pair in (0.0f64..1.0, 10usize..20),
            doubled in (1u64..50).prop_map(|x| x * 2),
        ) {
            prop_assert!(pair.0 < 1.0);
            prop_assert_eq!(doubled % 2, 0);
            prop_assert!(doubled < 100);
        }

        #[test]
        fn flat_map_uses_inner_value(v in (1usize..5).prop_flat_map(|n| prop::collection::vec(0u64..10, n))) {
            prop_assert!(!v.is_empty() && v.len() < 5);
        }

        #[test]
        fn exact_length_vec(bits in prop::collection::vec(any::<bool>(), 7)) {
            prop_assert_eq!(bits.len(), 7);
        }
    }

    #[test]
    #[should_panic(expected = "ranges_fail")]
    fn failures_panic_with_test_name() {
        crate::test_runner::run_cases(&ProptestConfig::with_cases(4), "ranges_fail", |_| {
            Err(TestCaseError::fail("boom"))
        });
    }
}

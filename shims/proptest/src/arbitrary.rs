//! The [`Arbitrary`] trait and [`any`], producing full-range values.

use crate::strategy::{Strategy, TestRng};
use rand::RngCore;
use std::marker::PhantomData;

/// Types with a canonical full-range strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value of this type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The full-range strategy for `T`, mirroring `proptest::arbitrary::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<fn() -> T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample_one(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    /// Uniform in `[0, 1)`; real proptest draws from a wider family, but the
    /// workspace only uses `any::<f64>()` for unstructured inputs.
    fn arbitrary(rng: &mut TestRng) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

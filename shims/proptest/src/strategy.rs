//! The [`Strategy`] trait and its built-in implementations: numeric ranges,
//! tuples, and the `prop_map` / `prop_flat_map` combinators.

use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// The RNG handed to strategies; deterministic per test case.
pub type TestRng = rand_chacha::ChaCha8Rng;

/// A recipe for generating values of one type.
///
/// Unlike real proptest there is no shrinking: a strategy is just a sampler.
pub trait Strategy {
    /// The type of the generated values.
    type Value;

    /// Draws one value.
    fn sample_one(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Feeds generated values into `f` to build a dependent strategy.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample_one(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample_one(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample_one(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample_one(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;

    fn sample_one(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.sample_one(rng)).sample_one(rng)
    }
}

/// A strategy that always yields clones of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample_one(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample_one(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample_one(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample_one(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample_one(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
}

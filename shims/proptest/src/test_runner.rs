//! The case runner: configuration, case errors and the deterministic loop
//! behind the `proptest!` macro.

use crate::strategy::TestRng;
use rand::SeedableRng;

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per test function.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Why a single case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case failed an assertion; fails the whole test.
    Fail(String),
    /// The case rejected its inputs (`prop_assume!`); skipped, not a failure.
    Reject(String),
}

impl TestCaseError {
    /// A failing case with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        Self::Fail(msg.into())
    }

    /// A rejected (skipped) case with a reason.
    pub fn reject(msg: impl Into<String>) -> Self {
        Self::Reject(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Fail(msg) => write!(f, "{msg}"),
            Self::Reject(msg) => write!(f, "rejected: {msg}"),
        }
    }
}

/// Runs `case` for each configured case with a deterministic, per-test RNG.
///
/// # Panics
///
/// Panics (failing the enclosing `#[test]`) on the first failing case.
pub fn run_cases(
    config: &ProptestConfig,
    test_name: &str,
    mut case: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>,
) {
    let base_seed = fnv1a(test_name.as_bytes());
    let mut rejected = 0u32;
    for index in 0..config.cases {
        let mut rng = TestRng::seed_from_u64(base_seed ^ (u64::from(index) << 32 | 0x5eed));
        match case(&mut rng) {
            Ok(()) => {}
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                // Mirror proptest's global rejection cap loosely.
                assert!(
                    rejected <= config.cases.saturating_mul(16),
                    "proptest shim: too many rejected cases in {test_name}"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "proptest case failed: {test_name}, case {index}/{}: {msg} \
                     (deterministic: re-running reproduces this case)",
                    config.cases
                );
            }
        }
    }
}

/// FNV-1a, used to give every test function its own stable seed.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

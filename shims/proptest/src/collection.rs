//! Collection strategies, mirroring `proptest::collection`.

use crate::strategy::{Strategy, TestRng};
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// An (inclusive-low, exclusive-high) length range for collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    low: usize,
    high: usize,
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        Self {
            low: exact,
            high: exact + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(range: Range<usize>) -> Self {
        assert!(range.start < range.end, "empty collection size range");
        Self {
            low: range.start,
            high: range.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(range: RangeInclusive<usize>) -> Self {
        assert!(range.start() <= range.end(), "empty collection size range");
        Self {
            low: *range.start(),
            high: *range.end() + 1,
        }
    }
}

/// A strategy for `Vec<T>` with lengths drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy returned by [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample_one(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = if self.size.low + 1 == self.size.high {
            self.size.low
        } else {
            rng.gen_range(self.size.low..self.size.high)
        };
        (0..len).map(|_| self.element.sample_one(rng)).collect()
    }
}

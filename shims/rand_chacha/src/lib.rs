//! Offline stand-in for the [`rand_chacha`](https://crates.io/crates/rand_chacha)
//! crate: a genuine ChaCha8 keystream generator behind the workspace `rand`
//! shim's traits.
//!
//! Deterministic for a fixed seed, but the byte stream does **not** match the
//! real `rand_chacha` crate (which uses a different seed-expansion and word
//! ordering); the workspace only relies on determinism.

#![forbid(unsafe_code)]

use rand::{RngCore, SeedableRng};

const CHACHA_ROUNDS: usize = 8;

/// A ChaCha stream cipher with 8 rounds, used as a deterministic RNG.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// The 16-word ChaCha input block (constants, key, counter, nonce).
    state: [u32; 16],
    /// The current output block.
    buf: [u32; 16],
    /// Next unread index into `buf`; 16 means "refill needed".
    idx: usize,
}

impl ChaCha8Rng {
    fn quarter_round(x: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
        x[a] = x[a].wrapping_add(x[b]);
        x[d] = (x[d] ^ x[a]).rotate_left(16);
        x[c] = x[c].wrapping_add(x[d]);
        x[b] = (x[b] ^ x[c]).rotate_left(12);
        x[a] = x[a].wrapping_add(x[b]);
        x[d] = (x[d] ^ x[a]).rotate_left(8);
        x[c] = x[c].wrapping_add(x[d]);
        x[b] = (x[b] ^ x[c]).rotate_left(7);
    }

    fn refill(&mut self) {
        let mut x = self.state;
        for _ in 0..CHACHA_ROUNDS / 2 {
            Self::quarter_round(&mut x, 0, 4, 8, 12);
            Self::quarter_round(&mut x, 1, 5, 9, 13);
            Self::quarter_round(&mut x, 2, 6, 10, 14);
            Self::quarter_round(&mut x, 3, 7, 11, 15);
            Self::quarter_round(&mut x, 0, 5, 10, 15);
            Self::quarter_round(&mut x, 1, 6, 11, 12);
            Self::quarter_round(&mut x, 2, 7, 8, 13);
            Self::quarter_round(&mut x, 3, 4, 9, 14);
        }
        for (o, s) in x.iter_mut().zip(self.state.iter()) {
            *o = o.wrapping_add(*s);
        }
        self.buf = x;
        self.idx = 0;
        // 64-bit block counter in words 12..14.
        let counter = (u64::from(self.state[13]) << 32 | u64::from(self.state[12])).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        // "expand 32-byte k" constants.
        let mut state = [0u32; 16];
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        for i in 0..8 {
            state[4 + i] = u32::from_le_bytes([
                seed[4 * i],
                seed[4 * i + 1],
                seed[4 * i + 2],
                seed[4 * i + 3],
            ]);
        }
        Self {
            state,
            buf: [0; 16],
            idx: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.idx >= 16 {
            self.refill();
        }
        let v = self.buf[self.idx];
        self.idx += 1;
        v
    }

    fn next_u64(&mut self) -> u64 {
        let lo = u64::from(self.next_u32());
        let hi = u64::from(self.next_u32());
        hi << 32 | lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn range_sampling_looks_uniform() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[rng.gen_range(0usize..10)] += 1;
        }
        for &c in &counts {
            assert!(
                (700..1300).contains(&c),
                "bucket count {c} far from uniform"
            );
        }
    }
}

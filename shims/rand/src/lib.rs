//! Offline stand-in for the subset of the [`rand`](https://crates.io/crates/rand)
//! crate (0.8 API) used by this workspace.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! a minimal, API-compatible implementation: the [`RngCore`] / [`Rng`] /
//! [`SeedableRng`] traits, uniform range sampling for the primitive types the
//! workspace draws, Bernoulli sampling ([`Rng::gen_bool`]) and Fisher–Yates
//! shuffling ([`seq::SliceRandom`]). Generators themselves live in companion
//! crates (see the workspace `rand_chacha` shim).
//!
//! Only determinism and reasonable statistical quality are promised; the
//! exact output streams of the real crates are **not** reproduced.

#![forbid(unsafe_code)]

use distributions::uniform::SampleRange;

/// The core of a random number generator: a source of uniform raw bits.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing random sampling methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability must be in [0, 1]"
        );
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    /// The raw seed type (a byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Creates a generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it with SplitMix64.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64::new(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Maps 64 random bits to a float uniform in `[0, 1)` with 53-bit precision.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// SplitMix64, used to expand `u64` seeds into full seed arrays.
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn new(state: u64) -> Self {
        Self { state }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Uniform distributions over ranges.
pub mod distributions {
    /// Range sampling, mirroring `rand::distributions::uniform`.
    pub mod uniform {
        use crate::RngCore;
        use std::ops::{Range, RangeInclusive};

        /// A range that supports uniform sampling of a single value.
        pub trait SampleRange<T> {
            /// Draws one value uniformly from the range.
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
        }

        /// Uniform `u64` below `bound` via Lemire's multiply-shift reduction.
        fn below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            ((u128::from(rng.next_u64()) * u128::from(bound)) >> 64) as u64
        }

        macro_rules! int_range {
            ($($t:ty),*) => {$(
                impl SampleRange<$t> for Range<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        assert!(self.start < self.end, "cannot sample from empty range");
                        let span = (self.end as i128 - self.start as i128) as u64;
                        (self.start as i128 + below(rng, span) as i128) as $t
                    }
                }

                impl SampleRange<$t> for RangeInclusive<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        let (lo, hi) = (*self.start(), *self.end());
                        assert!(lo <= hi, "cannot sample from empty range");
                        let span = (hi as i128 - lo as i128) as u128 + 1;
                        if span > u128::from(u64::MAX) {
                            return rng.next_u64() as $t;
                        }
                        (lo as i128 + below(rng, span as u64) as i128) as $t
                    }
                }
            )*};
        }

        int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

        macro_rules! float_range {
            ($($t:ty),*) => {$(
                impl SampleRange<$t> for Range<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        assert!(self.start < self.end, "cannot sample from empty range");
                        let u = crate::unit_f64(rng.next_u64()) as $t;
                        self.start + (self.end - self.start) * u
                    }
                }

                impl SampleRange<$t> for RangeInclusive<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        let (lo, hi) = (*self.start(), *self.end());
                        assert!(lo <= hi, "cannot sample from empty range");
                        let u = crate::unit_f64(rng.next_u64()) as $t;
                        lo + (hi - lo) * u
                    }
                }
            )*};
        }

        float_range!(f32, f64);
    }
}

/// Sequence-related random operations.
pub mod seq {
    use crate::Rng;

    /// Random operations on slices (`shuffle`, `choose`).
    pub trait SliceRandom {
        /// The element type of the slice.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);

    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let x: f64 = rng.gen_range(-3.0..5.0);
            assert!((-3.0..5.0).contains(&x));
            let n: usize = rng.gen_range(2usize..9);
            assert!((2..9).contains(&n));
            let m: i64 = rng.gen_range(-10i64..=10);
            assert!((-10..=10).contains(&m));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Counter(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        use seq::SliceRandom;
        let mut v: Vec<usize> = (0..50).collect();
        let mut rng = Counter(3);
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}

//! Deserialization half of the framework: [`Deserialize`], [`Deserializer`],
//! the [`Visitor`] protocol and the access traits for compound types.

use std::fmt::{self, Display};

/// Error values produced by a [`Deserializer`].
pub trait Error: Sized + std::error::Error {
    /// Creates an error with an arbitrary message.
    fn custom<T: Display>(msg: T) -> Self;

    /// A sequence had the wrong number of elements.
    fn invalid_length(len: usize, expected: &dyn Expected) -> Self {
        Self::custom(format_args!(
            "invalid length {len}, expected {}",
            ExpectedDisplay(expected)
        ))
    }

    /// A struct was missing an expected field.
    fn missing_field(field: &'static str) -> Self {
        Self::custom(format_args!("missing field `{field}`"))
    }

    /// A struct repeated a field.
    fn duplicate_field(field: &'static str) -> Self {
        Self::custom(format_args!("duplicate field `{field}`"))
    }

    /// An enum carried an unknown variant name.
    fn unknown_variant(variant: &str, expected: &'static [&'static str]) -> Self {
        Self::custom(format_args!(
            "unknown variant `{variant}`, expected one of {expected:?}"
        ))
    }
}

/// What a [`Visitor`] expected, for error messages.
pub trait Expected {
    /// Formats the expectation, e.g. "a sequence of 3 coordinates".
    fn fmt(&self, formatter: &mut fmt::Formatter<'_>) -> fmt::Result;
}

impl<'de, T: Visitor<'de>> Expected for T {
    fn fmt(&self, formatter: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.expecting(formatter)
    }
}

struct ExpectedDisplay<'a>(&'a dyn Expected);

impl Display for ExpectedDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// A data structure that can be deserialized from any serde data format.
pub trait Deserialize<'de>: Sized {
    /// Deserializes a value with the given deserializer.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// A data format from which the serde data model can be deserialized.
///
/// Every `deserialize_*` method defaults to [`Deserializer::deserialize_any`],
/// which is the only required method; self-describing formats (like the
/// workspace JSON shim) dispatch on their own value type there.
pub trait Deserializer<'de>: Sized {
    /// The error type of the format.
    type Error: Error;

    /// Deserializes whatever value comes next, driving the visitor.
    fn deserialize_any<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;

    /// Deserializes a boolean.
    fn deserialize_bool<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error> {
        self.deserialize_any(visitor)
    }

    /// Deserializes a signed integer.
    fn deserialize_i64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error> {
        self.deserialize_any(visitor)
    }

    /// Deserializes an unsigned integer.
    fn deserialize_u64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error> {
        self.deserialize_any(visitor)
    }

    /// Deserializes a floating point number.
    fn deserialize_f64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error> {
        self.deserialize_any(visitor)
    }

    /// Deserializes a string.
    fn deserialize_str<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error> {
        self.deserialize_any(visitor)
    }

    /// Deserializes a string.
    fn deserialize_string<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error> {
        self.deserialize_any(visitor)
    }

    /// Deserializes an optional value.
    fn deserialize_option<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error> {
        self.deserialize_any(visitor)
    }

    /// Deserializes a sequence.
    fn deserialize_seq<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error> {
        self.deserialize_any(visitor)
    }

    /// Deserializes a map.
    fn deserialize_map<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error> {
        self.deserialize_any(visitor)
    }

    /// Deserializes a struct with named fields.
    fn deserialize_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        _fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Self::Error> {
        self.deserialize_map(visitor)
    }

    /// Deserializes an enum.
    fn deserialize_enum<V: Visitor<'de>>(
        self,
        _name: &'static str,
        _variants: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Self::Error> {
        self.deserialize_any(visitor)
    }

    /// Deserializes and discards whatever value comes next.
    fn deserialize_ignored_any<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error> {
        self.deserialize_any(visitor)
    }
}

fn unexpected<'de, V: Visitor<'de>, E: Error>(visitor: &V, got: &str) -> E {
    E::custom(format_args!(
        "invalid type: {got}, expected {}",
        ExpectedDisplay(visitor)
    ))
}

/// Drives construction of a value from whatever the format contains.
pub trait Visitor<'de>: Sized {
    /// The value built by this visitor.
    type Value;

    /// Formats a description of what the visitor expects.
    fn expecting(&self, formatter: &mut fmt::Formatter<'_>) -> fmt::Result;

    /// Visits a boolean.
    fn visit_bool<E: Error>(self, v: bool) -> Result<Self::Value, E> {
        let _ = v;
        Err(unexpected(&self, "a boolean"))
    }

    /// Visits a signed integer.
    fn visit_i64<E: Error>(self, v: i64) -> Result<Self::Value, E> {
        let _ = v;
        Err(unexpected(&self, "an integer"))
    }

    /// Visits an unsigned integer.
    fn visit_u64<E: Error>(self, v: u64) -> Result<Self::Value, E> {
        let _ = v;
        Err(unexpected(&self, "an unsigned integer"))
    }

    /// Visits a floating point number.
    fn visit_f64<E: Error>(self, v: f64) -> Result<Self::Value, E> {
        let _ = v;
        Err(unexpected(&self, "a floating point number"))
    }

    /// Visits a borrowed string.
    fn visit_str<E: Error>(self, v: &str) -> Result<Self::Value, E> {
        let _ = v;
        Err(unexpected(&self, "a string"))
    }

    /// Visits an owned string.
    fn visit_string<E: Error>(self, v: String) -> Result<Self::Value, E> {
        self.visit_str(&v)
    }

    /// Visits a unit (or null) value.
    fn visit_unit<E: Error>(self) -> Result<Self::Value, E> {
        Err(unexpected(&self, "unit"))
    }

    /// Visits a missing optional value.
    fn visit_none<E: Error>(self) -> Result<Self::Value, E> {
        Err(unexpected(&self, "none"))
    }

    /// Visits a present optional value.
    fn visit_some<D: Deserializer<'de>>(self, deserializer: D) -> Result<Self::Value, D::Error> {
        let _ = deserializer;
        Err(unexpected(&self, "some"))
    }

    /// Visits a sequence.
    fn visit_seq<A: SeqAccess<'de>>(self, seq: A) -> Result<Self::Value, A::Error> {
        let _ = seq;
        Err(unexpected(&self, "a sequence"))
    }

    /// Visits a map.
    fn visit_map<A: MapAccess<'de>>(self, map: A) -> Result<Self::Value, A::Error> {
        let _ = map;
        Err(unexpected(&self, "a map"))
    }

    /// Visits an enum.
    fn visit_enum<A: EnumAccess<'de>>(self, data: A) -> Result<Self::Value, A::Error> {
        let _ = data;
        Err(unexpected(&self, "an enum"))
    }
}

/// Element-by-element access to a sequence being deserialized.
pub trait SeqAccess<'de> {
    /// The error type of the format.
    type Error: Error;

    /// Deserializes the next element, or returns `None` at the end.
    fn next_element<T: Deserialize<'de>>(&mut self) -> Result<Option<T>, Self::Error>;

    /// The number of remaining elements, if known.
    fn size_hint(&self) -> Option<usize> {
        None
    }
}

/// Entry-by-entry access to a map being deserialized.
pub trait MapAccess<'de> {
    /// The error type of the format.
    type Error: Error;

    /// Deserializes the next key, or returns `None` at the end.
    fn next_key<K: Deserialize<'de>>(&mut self) -> Result<Option<K>, Self::Error>;

    /// Deserializes the value of the entry whose key was just read.
    fn next_value<V: Deserialize<'de>>(&mut self) -> Result<V, Self::Error>;
}

/// Access to the variant name and payload of an enum being deserialized.
pub trait EnumAccess<'de>: Sized {
    /// The error type of the format.
    type Error: Error;
    /// Gives access to the variant payload.
    type Variant: VariantAccess<'de, Error = Self::Error>;

    /// Reads the variant name and returns the payload accessor.
    fn variant(self) -> Result<(String, Self::Variant), Self::Error>;
}

/// Access to the payload of one specific enum variant.
pub trait VariantAccess<'de>: Sized {
    /// The error type of the format.
    type Error: Error;

    /// Confirms the variant carries no payload.
    fn unit_variant(self) -> Result<(), Self::Error>;

    /// Deserializes a single-value payload.
    fn newtype_variant<T: Deserialize<'de>>(self) -> Result<T, Self::Error>;

    /// Deserializes a named-fields payload, driving `visitor` with map
    /// access over the variant's fields.
    fn struct_variant<V: Visitor<'de>>(
        self,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
}

/// A deserializer representing a field that was absent from the input: every
/// shape errors with [`Error::missing_field`], except options, which
/// deserialize to `None`. This is what lets derived structs treat missing
/// `Option` fields as `None` instead of rejecting the document.
pub struct MissingFieldDeserializer<E> {
    field: &'static str,
    marker: std::marker::PhantomData<fn() -> E>,
}

impl<E> MissingFieldDeserializer<E> {
    /// Creates the deserializer for the named missing field.
    pub fn new(field: &'static str) -> Self {
        Self {
            field,
            marker: std::marker::PhantomData,
        }
    }
}

impl<'de, E: Error> Deserializer<'de> for MissingFieldDeserializer<E> {
    type Error = E;

    fn deserialize_any<V: Visitor<'de>>(self, _visitor: V) -> Result<V::Value, E> {
        let _ = self.marker;
        Err(E::missing_field(self.field))
    }

    fn deserialize_option<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, E> {
        visitor.visit_none()
    }
}

/// A value that deserializes from anything and stores nothing; used to skip
/// unknown struct fields.
#[derive(Debug, Clone, Copy, Default)]
pub struct IgnoredAny;

impl<'de> Deserialize<'de> for IgnoredAny {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct IgnoredVisitor;

        impl<'de> Visitor<'de> for IgnoredVisitor {
            type Value = IgnoredAny;

            fn expecting(&self, formatter: &mut fmt::Formatter<'_>) -> fmt::Result {
                formatter.write_str("anything")
            }

            fn visit_bool<E: Error>(self, _: bool) -> Result<IgnoredAny, E> {
                Ok(IgnoredAny)
            }

            fn visit_i64<E: Error>(self, _: i64) -> Result<IgnoredAny, E> {
                Ok(IgnoredAny)
            }

            fn visit_u64<E: Error>(self, _: u64) -> Result<IgnoredAny, E> {
                Ok(IgnoredAny)
            }

            fn visit_f64<E: Error>(self, _: f64) -> Result<IgnoredAny, E> {
                Ok(IgnoredAny)
            }

            fn visit_str<E: Error>(self, _: &str) -> Result<IgnoredAny, E> {
                Ok(IgnoredAny)
            }

            fn visit_unit<E: Error>(self) -> Result<IgnoredAny, E> {
                Ok(IgnoredAny)
            }

            fn visit_none<E: Error>(self) -> Result<IgnoredAny, E> {
                Ok(IgnoredAny)
            }

            fn visit_some<D: Deserializer<'de>>(self, d: D) -> Result<IgnoredAny, D::Error> {
                d.deserialize_ignored_any(IgnoredVisitor)
            }

            fn visit_seq<A: SeqAccess<'de>>(self, mut seq: A) -> Result<IgnoredAny, A::Error> {
                while seq.next_element::<IgnoredAny>()?.is_some() {}
                Ok(IgnoredAny)
            }

            fn visit_map<A: MapAccess<'de>>(self, mut map: A) -> Result<IgnoredAny, A::Error> {
                while map.next_key::<IgnoredAny>()?.is_some() {
                    map.next_value::<IgnoredAny>()?;
                }
                Ok(IgnoredAny)
            }
        }

        deserializer.deserialize_ignored_any(IgnoredVisitor)
    }
}

macro_rules! deserialize_int {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                struct IntVisitor;

                impl<'de> Visitor<'de> for IntVisitor {
                    type Value = $t;

                    fn expecting(&self, formatter: &mut fmt::Formatter<'_>) -> fmt::Result {
                        formatter.write_str(concat!("an integer fitting ", stringify!($t)))
                    }

                    fn visit_u64<E: Error>(self, v: u64) -> Result<$t, E> {
                        <$t>::try_from(v)
                            .map_err(|_| E::custom(format_args!("integer {v} out of range")))
                    }

                    fn visit_i64<E: Error>(self, v: i64) -> Result<$t, E> {
                        <$t>::try_from(v)
                            .map_err(|_| E::custom(format_args!("integer {v} out of range")))
                    }

                    fn visit_f64<E: Error>(self, v: f64) -> Result<$t, E> {
                        if v.fract() == 0.0 && v >= <$t>::MIN as f64 && v <= <$t>::MAX as f64 {
                            Ok(v as $t)
                        } else {
                            Err(E::custom(format_args!("{v} is not a valid {}", stringify!($t))))
                        }
                    }
                }

                deserializer.deserialize_u64(IntVisitor)
            }
        }
    )*};
}

deserialize_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! deserialize_float {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                struct FloatVisitor;

                impl<'de> Visitor<'de> for FloatVisitor {
                    type Value = $t;

                    fn expecting(&self, formatter: &mut fmt::Formatter<'_>) -> fmt::Result {
                        formatter.write_str("a floating point number")
                    }

                    fn visit_f64<E: Error>(self, v: f64) -> Result<$t, E> {
                        Ok(v as $t)
                    }

                    fn visit_u64<E: Error>(self, v: u64) -> Result<$t, E> {
                        Ok(v as $t)
                    }

                    fn visit_i64<E: Error>(self, v: i64) -> Result<$t, E> {
                        Ok(v as $t)
                    }
                }

                deserializer.deserialize_f64(FloatVisitor)
            }
        }
    )*};
}

deserialize_float!(f32, f64);

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct BoolVisitor;

        impl<'de> Visitor<'de> for BoolVisitor {
            type Value = bool;

            fn expecting(&self, formatter: &mut fmt::Formatter<'_>) -> fmt::Result {
                formatter.write_str("a boolean")
            }

            fn visit_bool<E: Error>(self, v: bool) -> Result<bool, E> {
                Ok(v)
            }
        }

        deserializer.deserialize_bool(BoolVisitor)
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct StringVisitor;

        impl<'de> Visitor<'de> for StringVisitor {
            type Value = String;

            fn expecting(&self, formatter: &mut fmt::Formatter<'_>) -> fmt::Result {
                formatter.write_str("a string")
            }

            fn visit_str<E: Error>(self, v: &str) -> Result<String, E> {
                Ok(v.to_owned())
            }

            fn visit_string<E: Error>(self, v: String) -> Result<String, E> {
                Ok(v)
            }
        }

        deserializer.deserialize_string(StringVisitor)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct VecVisitor<T>(std::marker::PhantomData<fn() -> T>);

        impl<'de, T: Deserialize<'de>> Visitor<'de> for VecVisitor<T> {
            type Value = Vec<T>;

            fn expecting(&self, formatter: &mut fmt::Formatter<'_>) -> fmt::Result {
                formatter.write_str("a sequence")
            }

            fn visit_seq<A: SeqAccess<'de>>(self, mut seq: A) -> Result<Vec<T>, A::Error> {
                let mut values = Vec::with_capacity(seq.size_hint().unwrap_or(0).min(4096));
                while let Some(value) = seq.next_element()? {
                    values.push(value);
                }
                Ok(values)
            }
        }

        deserializer.deserialize_seq(VecVisitor(std::marker::PhantomData))
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct OptionVisitor<T>(std::marker::PhantomData<fn() -> T>);

        impl<'de, T: Deserialize<'de>> Visitor<'de> for OptionVisitor<T> {
            type Value = Option<T>;

            fn expecting(&self, formatter: &mut fmt::Formatter<'_>) -> fmt::Result {
                formatter.write_str("an optional value")
            }

            fn visit_none<E: Error>(self) -> Result<Option<T>, E> {
                Ok(None)
            }

            fn visit_unit<E: Error>(self) -> Result<Option<T>, E> {
                Ok(None)
            }

            fn visit_some<D: Deserializer<'de>>(self, d: D) -> Result<Option<T>, D::Error> {
                T::deserialize(d).map(Some)
            }
        }

        deserializer.deserialize_option(OptionVisitor(std::marker::PhantomData))
    }
}

macro_rules! deserialize_tuple {
    ($(($len:literal: $($name:ident),+))*) => {$(
        impl<'de, $($name: Deserialize<'de>),+> Deserialize<'de> for ($($name,)+) {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                struct TupleVisitor<$($name),+>(std::marker::PhantomData<fn() -> ($($name,)+)>);

                impl<'de, $($name: Deserialize<'de>),+> Visitor<'de> for TupleVisitor<$($name),+> {
                    type Value = ($($name,)+);

                    fn expecting(&self, formatter: &mut fmt::Formatter<'_>) -> fmt::Result {
                        write!(formatter, "a sequence of {} elements", $len)
                    }

                    #[allow(non_snake_case)]
                    fn visit_seq<Acc: SeqAccess<'de>>(
                        self,
                        mut seq: Acc,
                    ) -> Result<Self::Value, Acc::Error> {
                        let mut index = 0usize;
                        $(
                            let $name: $name = seq
                                .next_element()?
                                .ok_or_else(|| <Acc::Error as Error>::invalid_length(index, &self))?;
                            index += 1;
                        )+
                        let _ = index;
                        Ok(($($name,)+))
                    }
                }

                deserializer.deserialize_seq(TupleVisitor(std::marker::PhantomData))
            }
        }
    )*};
}

deserialize_tuple! {
    (1: T0)
    (2: T0, T1)
    (3: T0, T1, T2)
    (4: T0, T1, T2, T3)
}

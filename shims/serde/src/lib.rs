//! Offline stand-in for the subset of [`serde`](https://crates.io/crates/serde)
//! used by this workspace.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! a small, API-compatible serialization framework: the [`Serialize`] /
//! [`Deserialize`] traits with a reduced data model (booleans, integers,
//! floats, strings, options, sequences, maps, structs, and
//! unit/newtype/struct enum variants), visitor-based deserialization, and
//! derive macros for structs with named fields and for enums with unit,
//! newtype or named-field variants. Missing `Option` fields deserialize to
//! `None` (other missing fields are errors), matching serde's behaviour
//! under `#[serde(default)]`-free derives closely enough for this workspace.
//!
//! Compared to real serde there is no zero-copy deserialization, no `*_seed`
//! API, and no `#[serde(...)]` attribute support — none of which the
//! workspace uses.

#![forbid(unsafe_code)]

pub mod de;
pub mod ser;

pub use de::{Deserialize, Deserializer};
pub use ser::{Serialize, Serializer};
pub use serde_derive::{Deserialize, Serialize};

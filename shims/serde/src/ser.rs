//! Serialization half of the framework: [`Serialize`], [`Serializer`] and the
//! compound-serialization helper traits.

use std::fmt::Display;

/// Error values produced by a [`Serializer`].
pub trait Error: Sized + std::error::Error {
    /// Creates an error with an arbitrary message.
    fn custom<T: Display>(msg: T) -> Self;
}

/// A data structure that can be serialized into any serde data format.
pub trait Serialize {
    /// Serializes `self` with the given serializer.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// A data format that can serialize the serde data model.
pub trait Serializer: Sized {
    /// The output produced on success.
    type Ok;
    /// The error type of the format.
    type Error: Error;
    /// The sub-serializer for sequences.
    type SerializeSeq: SerializeSeq<Ok = Self::Ok, Error = Self::Error>;
    /// The sub-serializer for structs.
    type SerializeStruct: SerializeStruct<Ok = Self::Ok, Error = Self::Error>;
    /// The sub-serializer for struct enum variants.
    type SerializeStructVariant: SerializeStructVariant<Ok = Self::Ok, Error = Self::Error>;

    /// Serializes a boolean.
    fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error>;
    /// Serializes a signed integer.
    fn serialize_i64(self, v: i64) -> Result<Self::Ok, Self::Error>;
    /// Serializes an unsigned integer.
    fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error>;
    /// Serializes a floating point number.
    fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error>;
    /// Serializes a string.
    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error>;
    /// Serializes a unit value.
    fn serialize_unit(self) -> Result<Self::Ok, Self::Error>;
    /// Serializes `None`.
    fn serialize_none(self) -> Result<Self::Ok, Self::Error>;
    /// Serializes `Some(value)`.
    fn serialize_some<T: ?Sized + Serialize>(self, value: &T) -> Result<Self::Ok, Self::Error>;
    /// Begins serializing a sequence of `len` elements (if known).
    fn serialize_seq(self, len: Option<usize>) -> Result<Self::SerializeSeq, Self::Error>;
    /// Begins serializing a struct with `len` fields.
    fn serialize_struct(
        self,
        name: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStruct, Self::Error>;
    /// Serializes a unit enum variant.
    fn serialize_unit_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
    ) -> Result<Self::Ok, Self::Error>;
    /// Serializes a newtype enum variant.
    fn serialize_newtype_variant<T: ?Sized + Serialize>(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        value: &T,
    ) -> Result<Self::Ok, Self::Error>;
    /// Begins serializing a struct enum variant with `len` named fields.
    fn serialize_struct_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStructVariant, Self::Error>;
}

/// Incremental serialization of a sequence.
pub trait SerializeSeq {
    /// The output produced on success.
    type Ok;
    /// The error type of the format.
    type Error: Error;

    /// Serializes one element.
    fn serialize_element<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Finishes the sequence.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Incremental serialization of a struct enum variant.
pub trait SerializeStructVariant {
    /// The output produced on success.
    type Ok;
    /// The error type of the format.
    type Error: Error;

    /// Serializes one named field of the variant.
    fn serialize_field<T: ?Sized + Serialize>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Self::Error>;
    /// Finishes the variant.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Incremental serialization of a struct.
pub trait SerializeStruct {
    /// The output produced on success.
    type Ok;
    /// The error type of the format.
    type Error: Error;

    /// Serializes one named field.
    fn serialize_field<T: ?Sized + Serialize>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Self::Error>;
    /// Finishes the struct.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

macro_rules! serialize_int {
    ($method:ident, $conv:ty => $($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.$method(*self as $conv)
            }
        }
    )*};
}

serialize_int!(serialize_u64, u64 => u8, u16, u32, u64, usize);
serialize_int!(serialize_i64, i64 => i8, i16, i32, i64, isize);

impl Serialize for f32 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_f64(f64::from(*self))
    }
}

impl Serialize for f64 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_f64(*self)
    }
}

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_bool(*self)
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for () {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_unit()
    }
}

impl<T: ?Sized + Serialize> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            Some(v) => serializer.serialize_some(v),
            None => serializer.serialize_none(),
        }
    }
}

fn serialize_slice<T: Serialize, S: Serializer>(
    slice: &[T],
    serializer: S,
) -> Result<S::Ok, S::Error> {
    let mut seq = serializer.serialize_seq(Some(slice.len()))?;
    for item in slice {
        seq.serialize_element(item)?;
    }
    seq.end()
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_slice(self, serializer)
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_slice(self, serializer)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_slice(self, serializer)
    }
}

macro_rules! serialize_tuple {
    ($(($($name:ident $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                let mut seq = serializer.serialize_seq(Some(serialize_tuple!(@count $($name)+)))?;
                $( seq.serialize_element(&self.$idx)?; )+
                seq.end()
            }
        }
    )*};
    (@count $($name:ident)+) => { [$(serialize_tuple!(@one $name)),+].len() };
    (@one $name:ident) => { () };
}

serialize_tuple! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
}

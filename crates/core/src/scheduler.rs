//! A facade bundling parameters, problem variant and algorithm choice.
//!
//! Most users only want "give me a schedule for this instance"; the
//! [`Scheduler`] builder wraps the individual algorithms of this crate behind
//! one entry point — [`Scheduler::solve`], which consumes a typed,
//! serializable [`SolveRequest`] and returns a [`ScheduleResult`] whose
//! schedule has been validated against the exact SINR checker, or a typed
//! [`ScheduleError`]. The older per-algorithm `schedule_*` methods remain as
//! `#[deprecated]` thin wrappers for one release.

use crate::decomposition::{sqrt_schedule_via_decomposition, DecompositionConfig};
use crate::greedy::first_fit_coloring;
use crate::parallel::{parallel_first_fit, tile_shards, ParallelConfig, DEFAULT_TARGET_SHARDS};
use crate::power_control::{greedy_with_power_control, PowerControlConfig};
use crate::solve::{
    Algorithm, Assignment, BackendPolicy, ScheduleError, SolveLabel, SolveRequest, SolveStrategy,
};
use crate::sqrt_coloring::{sqrt_coloring, SqrtColoringConfig};
use oblisched_metric::{MetricSpace, PlanarMetric};
use oblisched_sinr::engine::{RowRef, MAX_PORTS};
use oblisched_sinr::feasibility::VariantView;
use oblisched_sinr::{
    Evaluator, GainBackend, GainMatrix, IncrementalSystem, Instance, InterferenceSystem,
    ObliviousPower, PowerScheme, Schedule, SinrError, SinrParams, SparseChurnMatrix, SparseConfig,
    SparseGainMatrix, Variant,
};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Which interference backend a scheduling run ended up using.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EngineBackend {
    /// The dense cached [`GainMatrix`] (`8 · ports · n²` bytes, exact).
    Dense,
    /// The spatially-pruned [`SparseGainMatrix`] (conservative verdicts,
    /// `O(n)` memory at fixed density).
    Sparse,
    /// No cache: contributions computed on the fly by the incremental
    /// engine (exact, `O(n)` memory, slower repeated queries).
    OnTheFly,
}

impl fmt::Display for EngineBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineBackend::Dense => write!(f, "dense"),
            EngineBackend::Sparse => write!(f, "sparse"),
            EngineBackend::OnTheFly => write!(f, "on-the-fly"),
        }
    }
}

/// How the facade answered the backend question for one run: which tier it
/// chose, what it would have cost to go dense, and against which budget the
/// decision was made. Surfaced in every [`ScheduleResult`] so the choice is
/// never silent (the experiments binary and the `jobs` runner log it).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EngineStats {
    /// The backend the run used.
    pub backend: EngineBackend,
    /// Number of requests.
    pub n: usize,
    /// Interference ports per request (1 directed, 2 bidirectional).
    pub ports: usize,
    /// Actual heap footprint of the chosen backend in bytes (0 for
    /// [`EngineBackend::OnTheFly`]).
    pub bytes: usize,
    /// What the dense matrix would need ([`usize::MAX`] when the product
    /// overflows).
    pub dense_bytes: usize,
    /// The memory budget the decision was made against.
    pub budget: usize,
}

impl EngineStats {
    fn on_the_fly(n: usize, ports: usize, budget: usize) -> Self {
        Self {
            backend: EngineBackend::OnTheFly,
            n,
            ports,
            bytes: 0,
            dense_bytes: GainMatrix::bytes_for(n, ports),
            budget,
        }
    }
}

impl fmt::Display for EngineStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mib = |b: usize| b as f64 / (1024.0 * 1024.0);
        write!(
            f,
            "backend={} n={} ports={} bytes={:.1}MiB dense={:.1}MiB budget={:.1}MiB",
            self.backend,
            self.n,
            self.ports,
            mib(self.bytes),
            mib(self.dense_bytes),
            mib(self.budget)
        )
    }
}

/// The outcome of a scheduling run: the coloring, the powers it was validated
/// with, and a structured label describing the algorithm/assignment used.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleResult {
    /// The validated schedule.
    pub schedule: Schedule,
    /// The per-request powers under which the schedule is feasible.
    pub powers: Vec<f64>,
    /// Structured algorithm/assignment label; its `Display` renders the
    /// `first-fit/sqrt`-style strings used in experiment tables.
    pub label: SolveLabel,
    /// Which interference backend served the run, and why (see
    /// [`EngineStats`]).
    pub engine: EngineStats,
}

impl ScheduleResult {
    /// Number of colors of the schedule.
    pub fn num_colors(&self) -> usize {
        self.schedule.num_colors()
    }

    /// Total transmission energy `Σ p_i` of the powers used.
    pub fn total_energy(&self) -> f64 {
        self.powers.iter().sum()
    }
}

/// The backend chosen for a first-fit-style run.
enum SelectedBackend<'v, 'e, 'a, M> {
    Dense(GainMatrix),
    /// Boxed so the enum stays as small as its cheapest variant, matching
    /// [`SessionBackend`].
    Sparse(Box<SparseGainMatrix>),
    /// No cache: schedule straight off the view ([`BackendPolicy::Exact`]
    /// above the budget).
    Fly(&'v VariantView<'e, 'a, M>),
}

/// The interference backend of a *dynamic session*, chosen by
/// [`Scheduler::session_backend`] — the churn counterpart of the batch
/// backend selection inside [`Scheduler::solve`].
///
/// Dynamic and durable schedulers are generic over [`GainBackend`], so this
/// enum exists purely to let callers hold whichever tier the facade picked
/// in one variable and hand out `&backend` without matching on the tier
/// themselves: every engine trait is forwarded verbatim to the chosen
/// backend, including the churn hooks
/// ([`note_arrival`](GainBackend::note_arrival) /
/// [`note_departure`](GainBackend::note_departure)) that keep the sparse
/// tier's live aggregates in step with the session.
pub enum SessionBackend<'v, 'e, 'a, M> {
    /// The dense cached [`GainMatrix`]: exact verdicts, `8 · ports · n²`
    /// bytes — the right tier while the universe fits the budget.
    Dense(GainMatrix),
    /// The churn-capable spatially-pruned [`SparseChurnMatrix`]:
    /// conservative verdicts, `O(n)` memory over the whole universe with
    /// rows only for live requests — the `Auto` tier above the budget.
    /// Boxed so the enum stays as small as its cheapest variant.
    Sparse(Box<SparseChurnMatrix>),
    /// No cache: exact contributions computed on the fly from the view
    /// ([`BackendPolicy::Exact`] above the budget).
    Fly(&'v VariantView<'e, 'a, M>),
}

impl<M: MetricSpace> InterferenceSystem for SessionBackend<'_, '_, '_, M> {
    fn len(&self) -> usize {
        match self {
            SessionBackend::Dense(m) => m.len(),
            SessionBackend::Sparse(s) => s.len(),
            SessionBackend::Fly(v) => v.len(),
        }
    }

    fn sinr(&self, i: usize, others: &[usize]) -> f64 {
        match self {
            SessionBackend::Dense(m) => m.sinr(i, others),
            SessionBackend::Sparse(s) => s.sinr(i, others),
            SessionBackend::Fly(v) => v.sinr(i, others),
        }
    }

    fn beta(&self) -> f64 {
        match self {
            SessionBackend::Dense(m) => m.beta(),
            SessionBackend::Sparse(s) => s.beta(),
            SessionBackend::Fly(v) => v.beta(),
        }
    }
}

impl<M: MetricSpace> IncrementalSystem for SessionBackend<'_, '_, '_, M> {
    fn num_ports(&self) -> usize {
        match self {
            SessionBackend::Dense(m) => m.num_ports(),
            SessionBackend::Sparse(s) => s.num_ports(),
            SessionBackend::Fly(v) => v.num_ports(),
        }
    }

    fn contribution(&self, i: usize, port: usize, j: usize) -> f64 {
        match self {
            SessionBackend::Dense(m) => m.contribution(i, port, j),
            SessionBackend::Sparse(s) => s.contribution(i, port, j),
            SessionBackend::Fly(v) => v.contribution(i, port, j),
        }
    }

    fn signal(&self, i: usize) -> f64 {
        match self {
            SessionBackend::Dense(m) => m.signal(i),
            SessionBackend::Sparse(s) => s.signal(i),
            SessionBackend::Fly(v) => v.signal(i),
        }
    }

    fn noise(&self) -> f64 {
        match self {
            SessionBackend::Dense(m) => m.noise(),
            SessionBackend::Sparse(s) => s.noise(),
            SessionBackend::Fly(v) => v.noise(),
        }
    }
}

impl<M: MetricSpace> GainBackend for SessionBackend<'_, '_, '_, M> {
    fn stored_contribution(&self, i: usize, port: usize, j: usize) -> Option<f64> {
        match self {
            SessionBackend::Dense(m) => m.stored_contribution(i, port, j),
            SessionBackend::Sparse(s) => s.stored_contribution(i, port, j),
            SessionBackend::Fly(v) => v.stored_contribution(i, port, j),
        }
    }

    fn stored_row(&self, i: usize, port: usize) -> Option<RowRef<'_>> {
        match self {
            SessionBackend::Dense(m) => m.stored_row(i, port),
            SessionBackend::Sparse(s) => s.stored_row(i, port),
            SessionBackend::Fly(v) => v.stored_row(i, port),
        }
    }

    // Forwarded explicitly (not left at the trait default) so each tier's
    // own layout-aware fold keeps serving sessions wrapped in the enum.
    fn fold_candidate(
        &self,
        i: usize,
        ports: usize,
        members: &[usize],
        limit_hi: f64,
        acc: &mut [f64; MAX_PORTS],
        dropped: &mut [u32; MAX_PORTS],
    ) -> bool {
        match self {
            SessionBackend::Dense(m) => m.fold_candidate(i, ports, members, limit_hi, acc, dropped),
            SessionBackend::Sparse(s) => {
                s.fold_candidate(i, ports, members, limit_hi, acc, dropped)
            }
            SessionBackend::Fly(v) => v.fold_candidate(i, ports, members, limit_hi, acc, dropped),
        }
    }

    fn pruned_cap(&self, i: usize, port: usize) -> f64 {
        match self {
            SessionBackend::Dense(m) => m.pruned_cap(i, port),
            SessionBackend::Sparse(s) => s.pruned_cap(i, port),
            SessionBackend::Fly(v) => v.pruned_cap(i, port),
        }
    }

    fn pruned_mass(&self, i: usize, port: usize) -> f64 {
        match self {
            SessionBackend::Dense(m) => m.pruned_mass(i, port),
            SessionBackend::Sparse(s) => s.pruned_mass(i, port),
            SessionBackend::Fly(v) => v.pruned_mass(i, port),
        }
    }

    fn is_exact(&self) -> bool {
        match self {
            SessionBackend::Dense(m) => m.is_exact(),
            SessionBackend::Sparse(s) => s.is_exact(),
            SessionBackend::Fly(v) => v.is_exact(),
        }
    }

    fn strict_recheck(&self) -> bool {
        match self {
            SessionBackend::Dense(m) => m.strict_recheck(),
            SessionBackend::Sparse(s) => s.strict_recheck(),
            SessionBackend::Fly(v) => v.strict_recheck(),
        }
    }

    fn exact_contribution(&self, i: usize, port: usize, j: usize) -> f64 {
        match self {
            SessionBackend::Dense(m) => m.exact_contribution(i, port, j),
            SessionBackend::Sparse(s) => s.exact_contribution(i, port, j),
            SessionBackend::Fly(v) => v.exact_contribution(i, port, j),
        }
    }

    fn note_arrival(&self, item: usize) {
        match self {
            SessionBackend::Dense(m) => m.note_arrival(item),
            SessionBackend::Sparse(s) => s.note_arrival(item),
            SessionBackend::Fly(v) => v.note_arrival(item),
        }
    }

    fn note_departure(&self, item: usize) {
        match self {
            SessionBackend::Dense(m) => m.note_departure(item),
            SessionBackend::Sparse(s) => s.note_departure(item),
            SessionBackend::Fly(v) => v.note_departure(item),
        }
    }
}

/// Scheduler facade: fix the SINR parameters once, then solve typed
/// [`SolveRequest`]s against instances.
///
/// # Example
///
/// ```
/// use oblisched::scheduler::Scheduler;
/// use oblisched::solve::{PowerAssignment, SolveRequest};
/// use oblisched_instances::nested_chain;
/// use oblisched_sinr::SinrParams;
///
/// let scheduler = Scheduler::new(SinrParams::new(3.0, 1.0)?);
/// let instance = nested_chain(8, 2.0);
/// let sqrt = scheduler.solve(&instance, &SolveRequest::first_fit(PowerAssignment::SquareRoot))?;
/// let uniform = scheduler.solve(&instance, &SolveRequest::first_fit(PowerAssignment::Uniform))?;
/// assert!(sqrt.num_colors() < uniform.num_colors());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scheduler {
    params: SinrParams,
    variant: Variant,
    matrix_budget: usize,
    sparse_config: SparseConfig,
    parallel_config: ParallelConfig,
}

/// Default memory budget for the cached [`GainMatrix`]: below this size the
/// facade pre-computes all pairwise contributions (fast repeated lookups),
/// above it the incremental engine computes contributions on the fly (same
/// results, `O(n)` memory).
pub const DEFAULT_MATRIX_BUDGET: usize = 64 * 1024 * 1024;

impl Scheduler {
    /// Creates a scheduler for the bidirectional variant (the paper's main
    /// setting) with the given parameters.
    pub fn new(params: SinrParams) -> Self {
        Self {
            params,
            variant: Variant::Bidirectional,
            matrix_budget: DEFAULT_MATRIX_BUDGET,
            sparse_config: SparseConfig::default(),
            parallel_config: ParallelConfig::default(),
        }
    }

    /// Selects the default problem variant used by the deprecated
    /// `schedule_*` wrappers ([`Scheduler::solve`] takes the variant from
    /// its [`SolveRequest`] instead).
    pub fn variant(mut self, variant: Variant) -> Self {
        self.variant = variant;
        self
    }

    /// Sets the memory budget (in bytes) under which the facade caches the
    /// full [`GainMatrix`] instead of computing contributions on the fly.
    /// Both paths produce identical schedules; `0` disables the cache.
    pub fn matrix_budget(mut self, bytes: usize) -> Self {
        self.matrix_budget = bytes;
        self
    }

    /// Sets the [`SparseConfig`] used whenever the facade falls back to the
    /// spatially-pruned backend ([`BackendPolicy::Auto`]).
    pub fn sparse_config(mut self, config: SparseConfig) -> Self {
        self.sparse_config = config;
        self
    }

    /// Sets the [`ParallelConfig`] (gain slack, default thread count) used
    /// by the [`SolveStrategy::Parallel`] strategy.
    pub fn parallel_config(mut self, config: ParallelConfig) -> Self {
        self.parallel_config = config;
        self
    }

    /// The SINR parameters.
    pub fn params(&self) -> SinrParams {
        self.params
    }

    /// The default problem variant.
    pub fn problem_variant(&self) -> Variant {
        self.variant
    }

    /// Solves one typed scheduling request — the single entry point every
    /// strategy, example, experiment and the `jobs` JSONL runner share.
    ///
    /// The request's options override the scheduler's configured defaults
    /// for this run (variant always comes from the request; budget and
    /// sparse knobs only when set). Validation failures and infeasible
    /// configurations are reported as [`ScheduleError`] instead of
    /// panicking.
    ///
    /// # Errors
    ///
    /// * [`ScheduleError::UnsupportedVariant`] — a `Sqrt*` strategy was
    ///   requested for the directed variant,
    /// * [`ScheduleError::ValidationFailed`] — a produced multi-request
    ///   color class failed the exact checker (an algorithm bug),
    /// * [`ScheduleError::Sinr`] — the SINR substrate rejected derived
    ///   inputs.
    pub fn solve<M>(
        &self,
        instance: &Instance<M>,
        request: &SolveRequest,
    ) -> Result<ScheduleResult, ScheduleError>
    where
        M: MetricSpace + PlanarMetric + Sync,
    {
        let mut eff = *self;
        eff.variant = request.variant;
        if let Some(budget) = request.matrix_budget {
            eff.matrix_budget = budget;
        }
        if let Some(sparse) = request.sparse {
            eff.sparse_config = sparse;
        }
        let assignment = Assignment::from(request.assignment);
        match request.strategy {
            SolveStrategy::FirstFit => match request.backend {
                BackendPolicy::Exact => {
                    eff.first_fit_exact(instance, request.assignment.scheme(), assignment)
                }
                BackendPolicy::Auto => {
                    eff.first_fit_auto(instance, request.assignment.scheme(), assignment)
                }
            },
            SolveStrategy::Parallel { num_threads } => eff.parallel_impl(
                instance,
                request.assignment.scheme(),
                assignment,
                num_threads,
                request.backend,
            ),
            SolveStrategy::PowerControl => eff.power_control_impl(instance),
            SolveStrategy::SqrtColoring => {
                let mut rng = ChaCha8Rng::seed_from_u64(request.seed);
                eff.sqrt_lp_impl(instance, &mut rng)
            }
            SolveStrategy::SqrtDecomposition => {
                let mut rng = ChaCha8Rng::seed_from_u64(request.seed);
                eff.sqrt_decomposition_impl(instance, &mut rng)
            }
        }
    }

    /// Schedules with greedy first-fit under a fixed power scheme.
    ///
    /// With ambient noise a request can be infeasible even in a slot of its
    /// own (`signal / noise < β`); first-fit still gives such a request its
    /// own color — the best any schedule can do — and the result is returned
    /// rather than rejected.
    #[deprecated(
        since = "0.2.0",
        note = "use Scheduler::solve with SolveRequest::first_fit(..).with_backend(BackendPolicy::Exact)"
    )]
    pub fn schedule_with_assignment<M: MetricSpace, P: PowerScheme>(
        &self,
        instance: &Instance<M>,
        scheme: P,
    ) -> ScheduleResult {
        let assignment = Assignment::from_scheme_name(&scheme.name());
        self.first_fit_exact(instance, scheme, assignment)
            .expect("first-fit schedules every valid instance")
    }

    /// Schedules with greedy first-fit under a fixed power scheme,
    /// auto-selecting the interference backend by memory budget: the dense
    /// [`GainMatrix`] when it fits, the spatially-pruned
    /// [`SparseGainMatrix`] otherwise.
    #[deprecated(
        since = "0.2.0",
        note = "use Scheduler::solve with SolveRequest::first_fit(..) (BackendPolicy::Auto is the default)"
    )]
    pub fn schedule_with_assignment_auto<M, P>(
        &self,
        instance: &Instance<M>,
        scheme: P,
    ) -> ScheduleResult
    where
        M: MetricSpace + PlanarMetric,
        P: PowerScheme,
    {
        let assignment = Assignment::from_scheme_name(&scheme.name());
        self.first_fit_auto(instance, scheme, assignment)
            .expect("first-fit schedules every valid instance")
    }

    /// Parallel batch scheduling: partitions the requests by spatial grid
    /// tile, colors the shards on `num_threads` worker threads (`0` = one
    /// per core) and merges the shard colorings with a deterministic
    /// conflict-repair pass.
    #[deprecated(
        since = "0.2.0",
        note = "use Scheduler::solve with SolveRequest::parallel(assignment, num_threads)"
    )]
    pub fn schedule_parallel<M, P>(
        &self,
        instance: &Instance<M>,
        scheme: P,
        num_threads: usize,
    ) -> ScheduleResult
    where
        M: MetricSpace + PlanarMetric + Sync,
        P: PowerScheme,
    {
        let assignment = Assignment::from_scheme_name(&scheme.name());
        self.parallel_impl(
            instance,
            scheme,
            assignment,
            num_threads,
            BackendPolicy::Auto,
        )
        .expect("parallel first-fit schedules every valid instance")
    }

    /// Schedules with greedy first-fit where each color class gets its own
    /// optimised (non-oblivious) power assignment.
    #[deprecated(
        since = "0.2.0",
        note = "use Scheduler::solve with SolveRequest::power_control()"
    )]
    pub fn schedule_with_power_control<M: MetricSpace>(
        &self,
        instance: &Instance<M>,
    ) -> ScheduleResult {
        self.power_control_impl(instance)
            .expect("power-controlled schedules are feasible by construction")
    }

    /// Schedules with the §5 randomized LP-rounding algorithm for the
    /// square-root assignment (bidirectional variant only).
    #[deprecated(
        since = "0.2.0",
        note = "use Scheduler::solve with SolveRequest::sqrt_coloring(seed)"
    )]
    pub fn schedule_sqrt_lp<M: MetricSpace, R: Rng + ?Sized>(
        &self,
        instance: &Instance<M>,
        rng: &mut R,
    ) -> ScheduleResult {
        self.sqrt_lp_impl(instance, rng)
            .expect("the square-root LP coloring applies to the bidirectional variant")
    }

    /// Schedules with the Theorem 2 decomposition pipeline (tree embeddings +
    /// star analysis) for the square-root assignment (bidirectional variant
    /// only).
    #[deprecated(
        since = "0.2.0",
        note = "use Scheduler::solve with SolveRequest::sqrt_decomposition(seed)"
    )]
    pub fn schedule_sqrt_decomposition<M: MetricSpace, R: Rng + ?Sized>(
        &self,
        instance: &Instance<M>,
        rng: &mut R,
    ) -> ScheduleResult {
        self.sqrt_decomposition_impl(instance, rng)
            .expect("the decomposition pipeline applies to the bidirectional variant")
    }

    /// The exact-tier first-fit path: dense matrix under the budget,
    /// uncached on-the-fly contributions above it (exact verdicts for any
    /// metric space, no planarity required).
    fn first_fit_exact<M: MetricSpace, P: PowerScheme>(
        &self,
        instance: &Instance<M>,
        scheme: P,
        assignment: Assignment,
    ) -> Result<ScheduleResult, ScheduleError> {
        let evaluator = instance.evaluator(self.params, &scheme);
        let view = evaluator.view(self.variant);
        let ports = view.num_ports();
        let (schedule, engine) = if self.dense_fits(instance.len(), ports) {
            let stats = self.dense_stats(instance.len(), ports);
            (first_fit_coloring(&view.cached()), stats)
        } else {
            (
                first_fit_coloring(&view),
                EngineStats::on_the_fly(instance.len(), ports, self.matrix_budget),
            )
        };
        let label = SolveLabel::new(Algorithm::FirstFit, assignment);
        self.check_first_fit(&schedule, &evaluator, &label)?;
        Ok(ScheduleResult {
            schedule,
            powers: evaluator.powers().to_vec(),
            label,
            engine,
        })
    }

    /// The auto-tier first-fit path: dense matrix under the budget, the
    /// spatially-pruned sparse backend above it — the tier that keeps
    /// `n ≥ 10⁴` planar instances cached where the dense matrix would need
    /// gigabytes. Sparse verdicts are conservative, so the returned
    /// schedule validates against the exact evaluator just like the dense
    /// one (it may spend a few more colors; `strict` in [`SparseConfig`]
    /// buys them back).
    fn first_fit_auto<M, P>(
        &self,
        instance: &Instance<M>,
        scheme: P,
        assignment: Assignment,
    ) -> Result<ScheduleResult, ScheduleError>
    where
        M: MetricSpace + PlanarMetric,
        P: PowerScheme,
    {
        let evaluator = instance.evaluator(self.params, &scheme);
        let view = evaluator.view(self.variant);
        let (backend, engine) = self.select_backend(&view, instance.len(), 1, BackendPolicy::Auto);
        let schedule = match &backend {
            SelectedBackend::Dense(matrix) => first_fit_coloring(matrix),
            SelectedBackend::Sparse(sparse) => first_fit_coloring(sparse.as_ref()),
            SelectedBackend::Fly(view) => first_fit_coloring(*view),
        };
        let label = SolveLabel::new(Algorithm::FirstFitAuto, assignment);
        self.check_first_fit(&schedule, &evaluator, &label)?;
        Ok(ScheduleResult {
            schedule,
            powers: evaluator.powers().to_vec(),
            label,
            engine,
        })
    }

    /// The parallel batch path: tile shards, shard coloring on worker
    /// threads, deterministic conflict-repair merge — the schedule is
    /// identical for every thread count. The backend follows the request's
    /// [`BackendPolicy`] (sparse fallback under `Auto`, uncached exact
    /// contributions under `Exact`).
    fn parallel_impl<M, P>(
        &self,
        instance: &Instance<M>,
        scheme: P,
        assignment: Assignment,
        num_threads: usize,
        policy: BackendPolicy,
    ) -> Result<ScheduleResult, ScheduleError>
    where
        M: MetricSpace + PlanarMetric + Sync,
        P: PowerScheme,
    {
        let evaluator = instance.evaluator(self.params, &scheme);
        let view = evaluator.view(self.variant);
        let shards = tile_shards(instance, DEFAULT_TARGET_SHARDS);
        let config = ParallelConfig {
            num_threads,
            ..self.parallel_config
        };
        let (backend, engine) = self.select_backend(&view, instance.len(), num_threads, policy);
        let schedule = match &backend {
            SelectedBackend::Dense(matrix) => parallel_first_fit(matrix, &shards, &config),
            SelectedBackend::Sparse(sparse) => {
                parallel_first_fit(sparse.as_ref(), &shards, &config)
            }
            SelectedBackend::Fly(view) => parallel_first_fit(*view, &shards, &config),
        };
        let label = SolveLabel::new(Algorithm::ParallelFirstFit, assignment);
        self.check_first_fit(&schedule, &evaluator, &label)?;
        Ok(ScheduleResult {
            schedule,
            powers: evaluator.powers().to_vec(),
            label,
            engine,
        })
    }

    fn power_control_impl<M: MetricSpace>(
        &self,
        instance: &Instance<M>,
    ) -> Result<ScheduleResult, ScheduleError> {
        let (schedule, powers) = greedy_with_power_control(
            instance,
            &self.params,
            self.variant,
            PowerControlConfig::default(),
        );
        let label = SolveLabel::new(Algorithm::FirstFit, Assignment::PowerControl);
        let evaluator = Evaluator::with_powers(instance, self.params, powers.clone())?;
        self.require_valid(&schedule, &evaluator, &label)?;
        let engine = EngineStats::on_the_fly(
            instance.len(),
            evaluator.view(self.variant).num_ports(),
            self.matrix_budget,
        );
        Ok(ScheduleResult {
            schedule,
            powers,
            label,
            engine,
        })
    }

    fn sqrt_lp_impl<M: MetricSpace, R: Rng + ?Sized>(
        &self,
        instance: &Instance<M>,
        rng: &mut R,
    ) -> Result<ScheduleResult, ScheduleError> {
        self.require_bidirectional(SolveStrategy::SqrtColoring)?;
        let schedule = sqrt_coloring(instance, &self.params, &SqrtColoringConfig::default(), rng);
        let label = SolveLabel::new(Algorithm::LpRounding, Assignment::SquareRoot);
        self.certified_sqrt_result(instance, schedule, label)
    }

    fn sqrt_decomposition_impl<M: MetricSpace, R: Rng + ?Sized>(
        &self,
        instance: &Instance<M>,
        rng: &mut R,
    ) -> Result<ScheduleResult, ScheduleError> {
        self.require_bidirectional(SolveStrategy::SqrtDecomposition)?;
        let schedule = sqrt_schedule_via_decomposition(
            instance,
            &self.params,
            &DecompositionConfig::default(),
            rng,
        );
        let label = SolveLabel::new(Algorithm::Decomposition, Assignment::SquareRoot);
        self.certified_sqrt_result(instance, schedule, label)
    }

    fn require_bidirectional(&self, strategy: SolveStrategy) -> Result<(), ScheduleError> {
        if self.variant == Variant::Bidirectional {
            Ok(())
        } else {
            Err(ScheduleError::UnsupportedVariant {
                strategy,
                variant: self.variant,
            })
        }
    }

    /// Validates a square-root-certified schedule and assembles its result.
    fn certified_sqrt_result<M: MetricSpace>(
        &self,
        instance: &Instance<M>,
        schedule: Schedule,
        label: SolveLabel,
    ) -> Result<ScheduleResult, ScheduleError> {
        let evaluator = instance.evaluator(self.params, &ObliviousPower::SquareRoot);
        self.require_valid(&schedule, &evaluator, &label)?;
        let engine = EngineStats::on_the_fly(
            instance.len(),
            evaluator.view(self.variant).num_ports(),
            self.matrix_budget,
        );
        Ok(ScheduleResult {
            schedule,
            powers: evaluator.powers().to_vec(),
            label,
            engine,
        })
    }

    /// Whether the dense matrix fits the configured budget. Overflow of the
    /// byte estimate counts as over-budget (an unchecked product would wrap
    /// and could wrongly enable the matrix for huge `n`), hence the checked
    /// variant.
    fn dense_fits(&self, n: usize, ports: usize) -> bool {
        GainMatrix::checked_bytes_for(n, ports).is_some_and(|bytes| bytes <= self.matrix_budget)
    }

    /// The one place the backend tier decision is made (it used to be
    /// copy-pasted across the first-fit entry points): the dense matrix
    /// when it fits the budget; above it, the spatially-pruned sparse
    /// backend under [`BackendPolicy::Auto`] or the uncached view under
    /// [`BackendPolicy::Exact`]. `num_threads` is the caller's scheduling
    /// parallelism — when the caller asked for parallelism and the sparse
    /// build is at its serial default, the build is extended to the same
    /// thread count (the build output is identical for every thread count).
    fn select_backend<'v, 'e, 'a, M>(
        &self,
        view: &'v VariantView<'e, 'a, M>,
        n: usize,
        num_threads: usize,
        policy: BackendPolicy,
    ) -> (SelectedBackend<'v, 'e, 'a, M>, EngineStats)
    where
        M: MetricSpace + PlanarMetric,
    {
        let ports = view.num_ports();
        if self.dense_fits(n, ports) {
            (
                SelectedBackend::Dense(view.cached()),
                self.dense_stats(n, ports),
            )
        } else {
            match policy {
                BackendPolicy::Auto => {
                    let mut sparse_cfg = self.sparse_config;
                    if sparse_cfg.build_threads == 1 && num_threads != 1 {
                        sparse_cfg.build_threads = num_threads;
                    }
                    let sparse = SparseGainMatrix::build(view, &sparse_cfg);
                    let stats = self.sparse_stats(&sparse, ports);
                    (SelectedBackend::Sparse(Box::new(sparse)), stats)
                }
                BackendPolicy::Exact => (
                    SelectedBackend::Fly(view),
                    EngineStats::on_the_fly(n, ports, self.matrix_budget),
                ),
            }
        }
    }

    fn dense_stats(&self, n: usize, ports: usize) -> EngineStats {
        let bytes = GainMatrix::bytes_for(n, ports);
        EngineStats {
            backend: EngineBackend::Dense,
            n,
            ports,
            bytes,
            dense_bytes: bytes,
            budget: self.matrix_budget,
        }
    }

    /// Picks the interference backend for a **dynamic session** over `view`
    /// — the churn counterpart of the batch tier decision inside
    /// [`solve`](Scheduler::solve), sharing its budget and
    /// [`SparseConfig`]. Under [`BackendPolicy::Auto`] the session gets the
    /// dense [`GainMatrix`] while it fits
    /// [`matrix_budget`](Scheduler::matrix_budget), and the churn-capable
    /// [`SparseChurnMatrix`] above it (built over the full universe with
    /// every request initially dead — the session's inserts and removes
    /// drive it through the engine's churn hooks). Under
    /// [`BackendPolicy::Exact`] the over-budget fallback is the uncached
    /// exact view instead.
    ///
    /// The reported [`EngineStats::bytes`] is the backend's footprint at
    /// selection time; the sparse tier grows as the session materialises
    /// rows for live requests (still `O(n)` at fixed density and cutoff).
    pub fn session_backend<'v, 'e, 'a, M>(
        &self,
        view: &'v VariantView<'e, 'a, M>,
        policy: BackendPolicy,
    ) -> (SessionBackend<'v, 'e, 'a, M>, EngineStats)
    where
        M: MetricSpace + PlanarMetric,
    {
        let n = view.len();
        let ports = view.num_ports();
        if self.dense_fits(n, ports) {
            (
                SessionBackend::Dense(view.cached()),
                self.dense_stats(n, ports),
            )
        } else {
            match policy {
                BackendPolicy::Auto => {
                    let sparse = SparseChurnMatrix::new(view, &self.sparse_config);
                    let stats = EngineStats {
                        backend: EngineBackend::Sparse,
                        n,
                        ports: sparse.ports(),
                        bytes: sparse.bytes(),
                        dense_bytes: GainMatrix::bytes_for(n, ports),
                        budget: self.matrix_budget,
                    };
                    (SessionBackend::Sparse(Box::new(sparse)), stats)
                }
                BackendPolicy::Exact => (
                    SessionBackend::Fly(view),
                    EngineStats::on_the_fly(n, ports, self.matrix_budget),
                ),
            }
        }
    }

    /// `true_ports` is the variant's port count — the folded sparse backend
    /// reports a single port, but the dense-footprint comparison must use
    /// what the dense matrix would actually allocate.
    fn sparse_stats(&self, sparse: &SparseGainMatrix, true_ports: usize) -> EngineStats {
        EngineStats {
            backend: EngineBackend::Sparse,
            n: sparse.len(),
            ports: sparse.ports(),
            bytes: sparse.bytes(),
            dense_bytes: GainMatrix::bytes_for(sparse.len(), true_ports),
            budget: self.matrix_budget,
        }
    }

    /// Shared validation of first-fit-style schedules: feasible, except
    /// that inherently infeasible singletons (heavy noise) are acceptable —
    /// any other violation is reported as
    /// [`ScheduleError::ValidationFailed`].
    fn check_first_fit<M: MetricSpace>(
        &self,
        schedule: &Schedule,
        evaluator: &Evaluator<'_, M>,
        label: &SolveLabel,
    ) -> Result<(), ScheduleError> {
        if schedule.validate(evaluator, self.variant).is_err() {
            let only_doomed_singletons = schedule
                .classes()
                .iter()
                .all(|class| class.len() == 1 || evaluator.is_feasible(self.variant, class));
            if !only_doomed_singletons {
                return self.require_valid(schedule, evaluator, label);
            }
        }
        Ok(())
    }

    /// Maps an exact-checker rejection to the typed
    /// [`ScheduleError::ValidationFailed`].
    fn require_valid<M: MetricSpace>(
        &self,
        schedule: &Schedule,
        evaluator: &Evaluator<'_, M>,
        label: &SolveLabel,
    ) -> Result<(), ScheduleError> {
        match schedule.validate(evaluator, self.variant) {
            Ok(()) => Ok(()),
            Err(SinrError::InfeasibleColorClass { color, request }) => {
                Err(ScheduleError::ValidationFailed {
                    color,
                    request,
                    label: label.clone(),
                })
            }
            Err(other) => Err(ScheduleError::Sinr(other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solve::PowerAssignment;
    use oblisched_instances::{nested_chain, uniform_deployment, DeploymentConfig};
    use rand_chacha::ChaCha8Rng;

    fn scheduler() -> Scheduler {
        Scheduler::new(SinrParams::new(3.0, 1.0).unwrap())
    }

    #[test]
    fn builder_accessors() {
        let s = scheduler().variant(Variant::Directed);
        assert_eq!(s.problem_variant(), Variant::Directed);
        assert_eq!(s.params().alpha(), 3.0);
    }

    #[test]
    fn solve_reports_energy_colors_and_structured_label() {
        let inst = nested_chain(8, 2.0);
        let result = scheduler()
            .solve(&inst, &SolveRequest::first_fit(PowerAssignment::Linear))
            .unwrap();
        assert_eq!(result.schedule.len(), 8);
        assert!(result.num_colors() >= 1);
        assert!(result.total_energy() > 0.0);
        assert_eq!(result.label.assignment, Assignment::Linear);
        assert_eq!(result.label.to_string(), "first-fit-auto/linear");
    }

    #[test]
    fn sqrt_beats_uniform_via_the_facade() {
        let inst = nested_chain(10, 2.0);
        let s = scheduler();
        let sqrt = s
            .solve(&inst, &SolveRequest::first_fit(PowerAssignment::SquareRoot))
            .unwrap();
        let uniform = s
            .solve(&inst, &SolveRequest::first_fit(PowerAssignment::Uniform))
            .unwrap();
        assert!(sqrt.num_colors() < uniform.num_colors());
    }

    #[test]
    fn session_backend_tiers_follow_the_budget_and_policy() {
        use crate::dynamic::DynamicScheduler;
        use oblisched_sinr::ObliviousPower;

        let inst = nested_chain(10, 2.0);
        let eval = inst.evaluator(
            SinrParams::new(3.0, 1.0).unwrap(),
            &ObliviousPower::SquareRoot,
        );
        let view = eval.view(Variant::Bidirectional);

        // Under the budget: the dense cache, exact verdicts.
        let (backend, stats) = scheduler().session_backend(&view, BackendPolicy::Auto);
        assert!(matches!(backend, SessionBackend::Dense(_)));
        assert_eq!(stats.backend, EngineBackend::Dense);
        assert!(backend.is_exact());

        // Over the budget under Auto: the churn-capable sparse tier — and a
        // session over it schedules every request while certifying against
        // the naive view.
        let tight = scheduler().matrix_budget(64);
        let (backend, stats) = tight.session_backend(&view, BackendPolicy::Auto);
        assert!(matches!(backend, SessionBackend::Sparse(_)));
        assert_eq!(stats.backend, EngineBackend::Sparse);
        assert!(!backend.is_exact());
        assert!(stats.dense_bytes > stats.budget);
        let mut sched = DynamicScheduler::new(&backend);
        let ids: Vec<_> = (0..inst.len()).map(|i| sched.insert(i).unwrap()).collect();
        sched.validate_against(&view).unwrap();
        sched.remove(ids[3]).unwrap();
        sched.validate_against(&view).unwrap();
        sched.validate().unwrap();

        // Over the budget under Exact: the uncached fly view.
        let (backend, stats) = tight.session_backend(&view, BackendPolicy::Exact);
        assert!(matches!(backend, SessionBackend::Fly(_)));
        assert_eq!(stats.backend, EngineBackend::OnTheFly);
        assert!(backend.is_exact());
    }

    #[test]
    fn lp_and_decomposition_strategies_produce_valid_schedules() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let inst = uniform_deployment(
            DeploymentConfig {
                num_requests: 12,
                side: 300.0,
                min_link: 1.0,
                max_link: 10.0,
            },
            &mut rng,
        );
        let s = scheduler();
        let lp = s.solve(&inst, &SolveRequest::sqrt_coloring(9)).unwrap();
        assert_eq!(lp.schedule.len(), 12);
        assert_eq!(lp.label.algorithm, Algorithm::LpRounding);
        let dec = s
            .solve(&inst, &SolveRequest::sqrt_decomposition(9))
            .unwrap();
        assert_eq!(dec.schedule.len(), 12);
        assert_eq!(dec.label.to_string(), "decomposition/sqrt");
    }

    #[test]
    fn power_control_works_in_both_variants() {
        let inst = nested_chain(6, 2.0);
        for variant in Variant::all() {
            let result = scheduler()
                .solve(&inst, &SolveRequest::power_control().with_variant(variant))
                .unwrap();
            assert_eq!(result.schedule.len(), 6);
            assert!(result.powers.iter().all(|&p| p > 0.0));
            assert_eq!(result.label.to_string(), "first-fit/power-control");
        }
    }

    #[test]
    fn heavy_noise_instances_are_scheduled_not_rejected() {
        // With noise 10 and unit links, a request is infeasible even alone;
        // the facade must return the sequential-style schedule instead of
        // reporting a validation failure.
        let inst = nested_chain(4, 2.0);
        let params = SinrParams::with_noise(3.0, 1.0, 10.0).unwrap();
        let result = Scheduler::new(params)
            .solve(&inst, &SolveRequest::first_fit(PowerAssignment::Uniform))
            .unwrap();
        assert_eq!(result.schedule.len(), 4);
        // Every class is a singleton: nothing can share a slot under this
        // noise, and doomed requests still get their own color.
        assert_eq!(result.schedule.num_colors(), 4);
    }

    #[test]
    fn sqrt_strategies_reject_the_directed_variant_with_a_typed_error() {
        let inst = nested_chain(4, 2.0);
        for (request, strategy) in [
            (SolveRequest::sqrt_coloring(1), SolveStrategy::SqrtColoring),
            (
                SolveRequest::sqrt_decomposition(1),
                SolveStrategy::SqrtDecomposition,
            ),
        ] {
            let err = scheduler()
                .solve(&inst, &request.with_variant(Variant::Directed))
                .unwrap_err();
            assert_eq!(
                err,
                ScheduleError::UnsupportedVariant {
                    strategy,
                    variant: Variant::Directed
                }
            );
        }
    }

    #[test]
    #[should_panic(expected = "bidirectional variant")]
    #[allow(deprecated)]
    fn deprecated_lp_wrapper_still_panics_on_the_directed_variant() {
        let inst = nested_chain(4, 2.0);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let _ = scheduler()
            .variant(Variant::Directed)
            .schedule_sqrt_lp(&inst, &mut rng);
    }

    #[test]
    fn parallel_honors_the_exact_backend_policy() {
        let inst = nested_chain(12, 2.0);
        let s = scheduler();
        let parallel = SolveRequest::parallel(PowerAssignment::SquareRoot, 2);
        let dense = s.solve(&inst, &parallel).unwrap();
        assert_eq!(dense.engine.backend, EngineBackend::Dense);
        // Over budget, Exact falls back to uncached exact contributions —
        // bit-for-bit the dense schedule, never the pruned sparse backend.
        let fly = s
            .solve(
                &inst,
                &parallel
                    .with_backend(BackendPolicy::Exact)
                    .with_matrix_budget(0),
            )
            .unwrap();
        assert_eq!(fly.engine.backend, EngineBackend::OnTheFly);
        assert_eq!(fly.schedule, dense.schedule);
        let sparse = s.solve(&inst, &parallel.with_matrix_budget(0)).unwrap();
        assert_eq!(sparse.engine.backend, EngineBackend::Sparse);
    }

    #[test]
    fn request_overrides_scheduler_budget_and_backend() {
        let inst = nested_chain(12, 2.0);
        let s = scheduler();
        // Budget 0 disables the dense cache; the exact policy then goes
        // on-the-fly while auto falls back to the sparse tier.
        let exact = s
            .solve(
                &inst,
                &SolveRequest::first_fit(PowerAssignment::SquareRoot)
                    .with_backend(BackendPolicy::Exact)
                    .with_matrix_budget(0),
            )
            .unwrap();
        assert_eq!(exact.engine.backend, EngineBackend::OnTheFly);
        let auto = s
            .solve(
                &inst,
                &SolveRequest::first_fit(PowerAssignment::SquareRoot).with_matrix_budget(0),
            )
            .unwrap();
        assert_eq!(auto.engine.backend, EngineBackend::Sparse);
        // Both tiers schedule the whole instance.
        assert_eq!(exact.schedule.len(), 12);
        assert_eq!(auto.schedule.len(), 12);
    }
}

//! A facade bundling parameters, problem variant and algorithm choice.
//!
//! Most users only want "give me a schedule for this instance"; the
//! [`Scheduler`] builder wraps the individual algorithms of this crate behind
//! one entry point and always returns a [`ScheduleResult`] whose schedule has
//! been validated against the exact SINR checker.

use crate::decomposition::{sqrt_schedule_via_decomposition, DecompositionConfig};
use crate::greedy::first_fit_coloring;
use crate::parallel::{parallel_first_fit, tile_shards, ParallelConfig, DEFAULT_TARGET_SHARDS};
use crate::power_control::{greedy_with_power_control, PowerControlConfig};
use crate::sqrt_coloring::{sqrt_coloring, SqrtColoringConfig};
use oblisched_metric::{MetricSpace, PlanarMetric};
use oblisched_sinr::{
    Evaluator, GainMatrix, IncrementalSystem, Instance, InterferenceSystem, ObliviousPower,
    PowerScheme, Schedule, SinrParams, SparseConfig, SparseGainMatrix, Variant,
};
use rand::Rng;
use std::fmt;

/// Which interference backend a scheduling run ended up using.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineBackend {
    /// The dense cached [`GainMatrix`] (`8 · ports · n²` bytes, exact).
    Dense,
    /// The spatially-pruned [`SparseGainMatrix`] (conservative verdicts,
    /// `O(n)` memory at fixed density).
    Sparse,
    /// No cache: contributions computed on the fly by the incremental
    /// engine (exact, `O(n)` memory, slower repeated queries).
    OnTheFly,
}

impl fmt::Display for EngineBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineBackend::Dense => write!(f, "dense"),
            EngineBackend::Sparse => write!(f, "sparse"),
            EngineBackend::OnTheFly => write!(f, "on-the-fly"),
        }
    }
}

/// How the facade answered the backend question for one run: which tier it
/// chose, what it would have cost to go dense, and against which budget the
/// decision was made. Surfaced in every [`ScheduleResult`] so the choice is
/// never silent (the experiments binary logs it).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineStats {
    /// The backend the run used.
    pub backend: EngineBackend,
    /// Number of requests.
    pub n: usize,
    /// Interference ports per request (1 directed, 2 bidirectional).
    pub ports: usize,
    /// Actual heap footprint of the chosen backend in bytes (0 for
    /// [`EngineBackend::OnTheFly`]).
    pub bytes: usize,
    /// What the dense matrix would need ([`usize::MAX`] when the product
    /// overflows).
    pub dense_bytes: usize,
    /// The memory budget the decision was made against.
    pub budget: usize,
}

impl EngineStats {
    fn on_the_fly(n: usize, ports: usize, budget: usize) -> Self {
        Self {
            backend: EngineBackend::OnTheFly,
            n,
            ports,
            bytes: 0,
            dense_bytes: GainMatrix::bytes_for(n, ports),
            budget,
        }
    }
}

impl fmt::Display for EngineStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mib = |b: usize| b as f64 / (1024.0 * 1024.0);
        write!(
            f,
            "backend={} n={} ports={} bytes={:.1}MiB dense={:.1}MiB budget={:.1}MiB",
            self.backend,
            self.n,
            self.ports,
            mib(self.bytes),
            mib(self.dense_bytes),
            mib(self.budget)
        )
    }
}

/// The outcome of a scheduling run: the coloring, the powers it was validated
/// with, and a label describing the algorithm/assignment used.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleResult {
    /// The validated schedule.
    pub schedule: Schedule,
    /// The per-request powers under which the schedule is feasible.
    pub powers: Vec<f64>,
    /// Human-readable description of assignment and algorithm (used in
    /// experiment tables).
    pub label: String,
    /// Which interference backend served the run, and why (see
    /// [`EngineStats`]).
    pub engine: EngineStats,
}

impl ScheduleResult {
    /// Number of colors of the schedule.
    pub fn num_colors(&self) -> usize {
        self.schedule.num_colors()
    }

    /// Total transmission energy `Σ p_i` of the powers used.
    pub fn total_energy(&self) -> f64 {
        self.powers.iter().sum()
    }
}

/// Scheduler facade: fix the SINR parameters and problem variant once, then
/// schedule instances with different algorithms.
///
/// # Example
///
/// ```
/// use oblisched::scheduler::Scheduler;
/// use oblisched_instances::nested_chain;
/// use oblisched_sinr::{ObliviousPower, SinrParams, Variant};
///
/// let scheduler = Scheduler::new(SinrParams::new(3.0, 1.0)?).variant(Variant::Bidirectional);
/// let instance = nested_chain(8, 2.0);
/// let sqrt = scheduler.schedule_with_assignment(&instance, ObliviousPower::SquareRoot);
/// let uniform = scheduler.schedule_with_assignment(&instance, ObliviousPower::Uniform);
/// assert!(sqrt.num_colors() < uniform.num_colors());
/// # Ok::<(), oblisched_sinr::SinrError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scheduler {
    params: SinrParams,
    variant: Variant,
    matrix_budget: usize,
    sparse_config: SparseConfig,
    parallel_config: ParallelConfig,
}

/// Default memory budget for the cached [`GainMatrix`]: below this size the
/// facade pre-computes all pairwise contributions (fast repeated lookups),
/// above it the incremental engine computes contributions on the fly (same
/// results, `O(n)` memory).
pub const DEFAULT_MATRIX_BUDGET: usize = 64 * 1024 * 1024;

impl Scheduler {
    /// Creates a scheduler for the bidirectional variant (the paper's main
    /// setting) with the given parameters.
    pub fn new(params: SinrParams) -> Self {
        Self {
            params,
            variant: Variant::Bidirectional,
            matrix_budget: DEFAULT_MATRIX_BUDGET,
            sparse_config: SparseConfig::default(),
            parallel_config: ParallelConfig::default(),
        }
    }

    /// Selects the problem variant.
    pub fn variant(mut self, variant: Variant) -> Self {
        self.variant = variant;
        self
    }

    /// Sets the memory budget (in bytes) under which the facade caches the
    /// full [`GainMatrix`] instead of computing contributions on the fly.
    /// Both paths produce identical schedules; `0` disables the cache.
    pub fn matrix_budget(mut self, bytes: usize) -> Self {
        self.matrix_budget = bytes;
        self
    }

    /// Sets the [`SparseConfig`] used whenever the facade falls back to the
    /// spatially-pruned backend
    /// (see [`schedule_with_assignment_auto`](Scheduler::schedule_with_assignment_auto)).
    pub fn sparse_config(mut self, config: SparseConfig) -> Self {
        self.sparse_config = config;
        self
    }

    /// Sets the [`ParallelConfig`] (gain slack, default thread count) used
    /// by [`schedule_parallel`](Scheduler::schedule_parallel).
    pub fn parallel_config(mut self, config: ParallelConfig) -> Self {
        self.parallel_config = config;
        self
    }

    /// The SINR parameters.
    pub fn params(&self) -> SinrParams {
        self.params
    }

    /// The problem variant.
    pub fn problem_variant(&self) -> Variant {
        self.variant
    }

    /// Schedules with greedy first-fit under a fixed power scheme.
    ///
    /// With ambient noise a request can be infeasible even in a slot of its
    /// own (`signal / noise < β`); first-fit still gives such a request its
    /// own color — the best any schedule can do — and the result is returned
    /// rather than rejected.
    ///
    /// # Panics
    ///
    /// Panics if a *multi-request* color class fails validation (a bug in
    /// the greedy algorithm, not an input condition).
    pub fn schedule_with_assignment<M: MetricSpace, P: PowerScheme>(
        &self,
        instance: &Instance<M>,
        scheme: P,
    ) -> ScheduleResult {
        let evaluator = instance.evaluator(self.params, &scheme);
        let view = evaluator.view(self.variant);
        let ports = view.num_ports();
        // Overflow of the byte estimate must count as over-budget (an
        // unchecked product would wrap and could wrongly enable the matrix
        // for huge n), hence the checked variant.
        let (schedule, engine) = if self.dense_fits(instance.len(), ports) {
            let stats = self.dense_stats(instance.len(), ports);
            (first_fit_coloring(&view.cached()), stats)
        } else {
            (
                first_fit_coloring(&view),
                EngineStats::on_the_fly(instance.len(), ports, self.matrix_budget),
            )
        };
        self.check_first_fit_schedule(&schedule, &evaluator);
        ScheduleResult {
            schedule,
            powers: evaluator.powers().to_vec(),
            label: format!("first-fit/{}", scheme.name()),
            engine,
        }
    }

    /// Schedules with greedy first-fit under a fixed power scheme,
    /// auto-selecting the interference backend by memory budget: the dense
    /// [`GainMatrix`] when it fits, the spatially-pruned
    /// [`SparseGainMatrix`] otherwise — the tier that keeps `n ≥ 10⁴`
    /// planar instances cached where the dense matrix would need gigabytes.
    /// The chosen backend (and both footprints) is reported in the result's
    /// [`EngineStats`].
    ///
    /// Requires a planar metric (the sparse tier prunes by position);
    /// non-planar metrics use
    /// [`schedule_with_assignment`](Scheduler::schedule_with_assignment),
    /// which falls back to uncached exact contributions instead.
    ///
    /// Sparse verdicts are conservative, so the returned schedule validates
    /// against the exact evaluator just like the dense one (it may spend
    /// a few more colors; `strict` in [`SparseConfig`] buys them back).
    ///
    /// # Panics
    ///
    /// Panics if a multi-request color class fails validation (a bug, not
    /// an input condition).
    pub fn schedule_with_assignment_auto<M, P>(
        &self,
        instance: &Instance<M>,
        scheme: P,
    ) -> ScheduleResult
    where
        M: MetricSpace + PlanarMetric,
        P: PowerScheme,
    {
        let evaluator = instance.evaluator(self.params, &scheme);
        let view = evaluator.view(self.variant);
        let ports = view.num_ports();
        let (schedule, engine) = if self.dense_fits(instance.len(), ports) {
            let stats = self.dense_stats(instance.len(), ports);
            (first_fit_coloring(&view.cached()), stats)
        } else {
            let sparse = SparseGainMatrix::build(&view, &self.sparse_config);
            let stats = self.sparse_stats(&sparse, ports);
            (first_fit_coloring(&sparse), stats)
        };
        self.check_first_fit_schedule(&schedule, &evaluator);
        ScheduleResult {
            schedule,
            powers: evaluator.powers().to_vec(),
            label: format!("first-fit-auto/{}", scheme.name()),
            engine,
        }
    }

    /// Parallel batch scheduling: partitions the requests by spatial grid
    /// tile ([`tile_shards`]), colors the shards on `num_threads` worker
    /// threads (`0` = one per core) and merges the shard colorings with a
    /// deterministic conflict-repair pass — the schedule is identical for
    /// every thread count. The backend is auto-selected exactly as in
    /// [`schedule_with_assignment_auto`](Scheduler::schedule_with_assignment_auto).
    ///
    /// # Panics
    ///
    /// Panics if a multi-request color class fails validation (a bug, not
    /// an input condition).
    pub fn schedule_parallel<M, P>(
        &self,
        instance: &Instance<M>,
        scheme: P,
        num_threads: usize,
    ) -> ScheduleResult
    where
        M: MetricSpace + PlanarMetric + Sync,
        P: PowerScheme,
    {
        let evaluator = instance.evaluator(self.params, &scheme);
        let view = evaluator.view(self.variant);
        let ports = view.num_ports();
        let shards = tile_shards(instance, DEFAULT_TARGET_SHARDS);
        let config = ParallelConfig {
            num_threads,
            ..self.parallel_config
        };
        let (schedule, engine) = if self.dense_fits(instance.len(), ports) {
            let stats = self.dense_stats(instance.len(), ports);
            (parallel_first_fit(&view.cached(), &shards, &config), stats)
        } else {
            let mut sparse_cfg = self.sparse_config;
            if sparse_cfg.build_threads == 1 && num_threads != 1 {
                // The caller asked for parallelism: extend it to the build.
                sparse_cfg.build_threads = num_threads;
            }
            let sparse = SparseGainMatrix::build(&view, &sparse_cfg);
            let stats = self.sparse_stats(&sparse, ports);
            (parallel_first_fit(&sparse, &shards, &config), stats)
        };
        self.check_first_fit_schedule(&schedule, &evaluator);
        ScheduleResult {
            schedule,
            powers: evaluator.powers().to_vec(),
            label: format!("parallel-first-fit/{}", scheme.name()),
            engine,
        }
    }

    /// Whether the dense matrix fits the configured budget.
    fn dense_fits(&self, n: usize, ports: usize) -> bool {
        GainMatrix::checked_bytes_for(n, ports).is_some_and(|bytes| bytes <= self.matrix_budget)
    }

    fn dense_stats(&self, n: usize, ports: usize) -> EngineStats {
        let bytes = GainMatrix::bytes_for(n, ports);
        EngineStats {
            backend: EngineBackend::Dense,
            n,
            ports,
            bytes,
            dense_bytes: bytes,
            budget: self.matrix_budget,
        }
    }

    /// `true_ports` is the variant's port count — the folded sparse backend
    /// reports a single port, but the dense-footprint comparison must use
    /// what the dense matrix would actually allocate.
    fn sparse_stats(&self, sparse: &SparseGainMatrix, true_ports: usize) -> EngineStats {
        EngineStats {
            backend: EngineBackend::Sparse,
            n: sparse.len(),
            ports: sparse.ports(),
            bytes: sparse.bytes(),
            dense_bytes: GainMatrix::bytes_for(sparse.len(), true_ports),
            budget: self.matrix_budget,
        }
    }

    /// Shared validation of first-fit-style schedules: feasible, except
    /// that inherently infeasible singletons (heavy noise) are acceptable —
    /// any other violation is a scheduling bug.
    fn check_first_fit_schedule<M: MetricSpace>(
        &self,
        schedule: &Schedule,
        evaluator: &Evaluator<'_, M>,
    ) {
        if let Err(e) = schedule.validate(evaluator, self.variant) {
            let only_doomed_singletons = schedule
                .classes()
                .iter()
                .all(|class| class.len() == 1 || evaluator.is_feasible(self.variant, class));
            assert!(
                only_doomed_singletons,
                "greedy schedules are feasible by construction (modulo noise-doomed singletons): {e}"
            );
        }
    }

    /// Schedules with greedy first-fit where each color class gets its own
    /// optimised (non-oblivious) power assignment.
    pub fn schedule_with_power_control<M: MetricSpace>(
        &self,
        instance: &Instance<M>,
    ) -> ScheduleResult {
        let (schedule, powers) = greedy_with_power_control(
            instance,
            &self.params,
            self.variant,
            PowerControlConfig::default(),
        );
        let evaluator = Evaluator::with_powers(instance, self.params, powers.clone())
            .expect("power control returns positive finite powers");
        schedule
            .validate(&evaluator, self.variant)
            .expect("power-controlled schedules are feasible by construction");
        let engine = EngineStats::on_the_fly(
            instance.len(),
            evaluator.view(self.variant).num_ports(),
            self.matrix_budget,
        );
        ScheduleResult {
            schedule,
            powers,
            label: "first-fit/power-control".to_string(),
            engine,
        }
    }

    /// Schedules with the §5 randomized LP-rounding algorithm for the
    /// square-root assignment (bidirectional variant only).
    ///
    /// # Panics
    ///
    /// Panics if the scheduler is configured for the directed variant — the
    /// paper's algorithm (and its guarantee) only applies to bidirectional
    /// requests.
    pub fn schedule_sqrt_lp<M: MetricSpace, R: Rng + ?Sized>(
        &self,
        instance: &Instance<M>,
        rng: &mut R,
    ) -> ScheduleResult {
        assert_eq!(
            self.variant,
            Variant::Bidirectional,
            "the square-root LP coloring applies to the bidirectional variant"
        );
        let schedule = sqrt_coloring(instance, &self.params, &SqrtColoringConfig::default(), rng);
        let evaluator = instance.evaluator(self.params, &ObliviousPower::SquareRoot);
        schedule
            .validate(&evaluator, self.variant)
            .expect("the sqrt coloring certifies every color class");
        let engine = EngineStats::on_the_fly(
            instance.len(),
            evaluator.view(self.variant).num_ports(),
            self.matrix_budget,
        );
        ScheduleResult {
            schedule,
            powers: evaluator.powers().to_vec(),
            label: "lp-rounding/sqrt".to_string(),
            engine,
        }
    }

    /// Schedules with the Theorem 2 decomposition pipeline (tree embeddings +
    /// star analysis) for the square-root assignment (bidirectional variant
    /// only).
    ///
    /// # Panics
    ///
    /// Panics if the scheduler is configured for the directed variant.
    pub fn schedule_sqrt_decomposition<M: MetricSpace, R: Rng + ?Sized>(
        &self,
        instance: &Instance<M>,
        rng: &mut R,
    ) -> ScheduleResult {
        assert_eq!(
            self.variant,
            Variant::Bidirectional,
            "the decomposition pipeline applies to the bidirectional variant"
        );
        let schedule = sqrt_schedule_via_decomposition(
            instance,
            &self.params,
            &DecompositionConfig::default(),
            rng,
        );
        let evaluator = instance.evaluator(self.params, &ObliviousPower::SquareRoot);
        schedule
            .validate(&evaluator, self.variant)
            .expect("the decomposition pipeline certifies every color class");
        let engine = EngineStats::on_the_fly(
            instance.len(),
            evaluator.view(self.variant).num_ports(),
            self.matrix_budget,
        );
        ScheduleResult {
            schedule,
            powers: evaluator.powers().to_vec(),
            label: "decomposition/sqrt".to_string(),
            engine,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oblisched_instances::{nested_chain, uniform_deployment, DeploymentConfig};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn scheduler() -> Scheduler {
        Scheduler::new(SinrParams::new(3.0, 1.0).unwrap())
    }

    #[test]
    fn builder_accessors() {
        let s = scheduler().variant(Variant::Directed);
        assert_eq!(s.problem_variant(), Variant::Directed);
        assert_eq!(s.params().alpha(), 3.0);
    }

    #[test]
    fn assignment_scheduling_reports_energy_and_colors() {
        let inst = nested_chain(8, 2.0);
        let result = scheduler().schedule_with_assignment(&inst, ObliviousPower::Linear);
        assert_eq!(result.schedule.len(), 8);
        assert!(result.num_colors() >= 1);
        assert!(result.total_energy() > 0.0);
        assert!(result.label.contains("linear"));
    }

    #[test]
    fn sqrt_beats_uniform_via_the_facade() {
        let inst = nested_chain(10, 2.0);
        let s = scheduler();
        let sqrt = s.schedule_with_assignment(&inst, ObliviousPower::SquareRoot);
        let uniform = s.schedule_with_assignment(&inst, ObliviousPower::Uniform);
        assert!(sqrt.num_colors() < uniform.num_colors());
    }

    #[test]
    fn lp_and_decomposition_schedulers_produce_valid_schedules() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let inst = uniform_deployment(
            DeploymentConfig {
                num_requests: 12,
                side: 300.0,
                min_link: 1.0,
                max_link: 10.0,
            },
            &mut rng,
        );
        let s = scheduler();
        let lp = s.schedule_sqrt_lp(&inst, &mut rng);
        assert_eq!(lp.schedule.len(), 12);
        assert!(lp.label.contains("lp"));
        let dec = s.schedule_sqrt_decomposition(&inst, &mut rng);
        assert_eq!(dec.schedule.len(), 12);
        assert!(dec.label.contains("decomposition"));
    }

    #[test]
    fn power_control_scheduling_works_in_both_variants() {
        let inst = nested_chain(6, 2.0);
        for variant in Variant::all() {
            let result = scheduler()
                .variant(variant)
                .schedule_with_power_control(&inst);
            assert_eq!(result.schedule.len(), 6);
            assert!(result.powers.iter().all(|&p| p > 0.0));
        }
    }

    #[test]
    fn heavy_noise_instances_are_scheduled_not_panicked() {
        // With noise 10 and unit links, a request is infeasible even alone;
        // the facade must return the sequential-style schedule instead of
        // panicking on validation.
        let inst = nested_chain(4, 2.0);
        let params = SinrParams::with_noise(3.0, 1.0, 10.0).unwrap();
        let result =
            Scheduler::new(params).schedule_with_assignment(&inst, ObliviousPower::Uniform);
        assert_eq!(result.schedule.len(), 4);
        // Every class is a singleton: nothing can share a slot under this
        // noise, and doomed requests still get their own color.
        assert_eq!(result.schedule.num_colors(), 4);
    }

    #[test]
    #[should_panic(expected = "bidirectional variant")]
    fn lp_scheduler_rejects_directed_variant() {
        let inst = nested_chain(4, 2.0);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let _ = scheduler()
            .variant(Variant::Directed)
            .schedule_sqrt_lp(&inst, &mut rng);
    }
}

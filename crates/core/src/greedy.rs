//! Greedy baselines: first-fit coloring and greedy one-shot selection.
//!
//! First-fit over any [`InterferenceSystem`] is the natural `O(n)`-color
//! baseline mentioned in the paper's abstract (scheduling every request in
//! its own slot is always feasible without noise, so first-fit never does
//! worse). It is also the workhorse that turns any "large feasible subset"
//! primitive into a full coloring.
//!
//! All greedy procedures here run on the incremental engine
//! ([`oblisched_sinr::engine`]): every "does this item fit into this class"
//! query is answered from per-class running interference sums in
//! `O(class size)` contributions instead of the naive `O(class size²)`
//! recomputation. The sums are folded in the same order as the naive path,
//! so the results are **bit-for-bit identical**; the naive implementations
//! are kept as [`first_fit_coloring_naive`] / [`first_fit_with_order_naive`]
//! for baseline benchmarking and equivalence testing.

use oblisched_sinr::{
    ColorAccumulator, GainBackend, InterferenceSystem, ProbeBatch, Schedule, NO_COLOR,
};

/// Reusable workspace of the first-fit drivers: the `color_of` map feeding
/// [`ProbeBatch::gather`] plus the batch itself.
///
/// A fresh scratch allocates nothing; the first drive sizes `color_of` to the
/// system and the batch to the open classes, and every later drive through
/// the same scratch reuses those buffers. Callers on a hot loop (the parallel
/// scheduler's shard workers and merge, the churn replay's full-reschedule
/// baseline) keep one scratch alive across calls; one-shot callers get the
/// same results from a temporary.
///
/// The scratch carries no system-specific state between drives — `color_of`
/// is restored to all-[`NO_COLOR`] at the end of every drive — so one scratch
/// may serve systems of different sizes in any order.
#[derive(Debug, Default)]
pub struct FirstFitScratch {
    /// Bucket index of the class currently holding each item, `NO_COLOR`
    /// outside a drive. Sized lazily to the largest system seen.
    color_of: Vec<u32>,
    /// Batched multi-class probe workspace (see [`ProbeBatch`]).
    batch: ProbeBatch,
}

impl FirstFitScratch {
    /// Creates an empty scratch (no allocation until the first drive).
    pub fn new() -> Self {
        Self::default()
    }
}

/// The core batched first-fit driver: colors `items` (in order) at `gain`
/// into `classes`, recycling any accumulators already in the pool.
///
/// `classes` doubles as accumulator pool and output: on entry every element
/// is treated as free (reset via [`ColorAccumulator::reset_for`] before
/// reuse), and on return `classes[..open]` — where `open` is the returned
/// count — are the color classes in first-fit order, members in insertion
/// order. Elements beyond `open` are untouched spares kept for the next
/// drive.
///
/// Per item the driver gathers one [`ProbeBatch`] (a single walk over the
/// item's stored row per port, bucketed by current color) and feeds it to
/// every open class via
/// [`ColorAccumulator::try_insert_with_gain_batched`], which replaces the
/// `O(classes · row)` sequential row re-walks with `O(row + classes)` work
/// while producing bit-for-bit identical schedules (classes where the batch
/// does not apply fall back to the sequential probe internally).
///
/// # Panics
///
/// Panics (in debug builds) if `items` contains a duplicate.
pub fn first_fit_into<'s, S: GainBackend + ?Sized>(
    system: &'s S,
    items: &[usize],
    gain: f64,
    scratch: &mut FirstFitScratch,
    classes: &mut Vec<ColorAccumulator<'s, S>>,
) -> usize {
    let n = system.len();
    if scratch.color_of.len() < n {
        scratch.color_of.resize(n, NO_COLOR);
    }
    debug_assert!(
        scratch.color_of.iter().all(|&c| c == NO_COLOR),
        "a previous drive left colors behind in the scratch"
    );
    let mut open = 0usize;
    for &i in items {
        debug_assert!(
            scratch.color_of[i] == NO_COLOR,
            "item {i} appears twice in the subset"
        );
        scratch.batch.gather(system, i, open, &scratch.color_of);
        let mut color = None;
        for (c, class) in classes[..open].iter_mut().enumerate() {
            if class.try_insert_with_gain_batched(i, gain, &scratch.batch, c) {
                color = Some(c);
                break;
            }
        }
        let c = match color {
            Some(c) => c,
            None => {
                if open == classes.len() {
                    classes.push(ColorAccumulator::new(system));
                } else {
                    classes[open].reset_for(system);
                }
                classes[open].insert_unchecked(i);
                open += 1;
                open - 1
            }
        };
        // Class counts stay far below `u32`: there are at most `n` classes.
        scratch.color_of[i] = c as u32;
    }
    for &i in items {
        scratch.color_of[i] = NO_COLOR;
    }
    open
}

/// First-fit coloring in index order, on the incremental engine.
///
/// Each item is placed into the first existing color class that remains
/// feasible (at the system's gain) after adding it; if no class accepts the
/// item, a new color is opened. Singletons without noise are always feasible,
/// so the result covers every item.
pub fn first_fit_coloring<S: GainBackend>(system: &S) -> Schedule {
    let order: Vec<usize> = (0..system.len()).collect();
    first_fit_with_order(system, &order)
}

/// First-fit coloring in a caller-chosen order, on the incremental engine.
///
/// Orderings matter in practice: processing requests by decreasing length
/// usually saves colors because long (fragile) links get first pick of the
/// empty slots. The experiment harness compares several orders.
///
/// # Panics
///
/// Panics if `order` is not a permutation of `0..system.len()`.
pub fn first_fit_with_order<S: GainBackend>(system: &S, order: &[usize]) -> Schedule {
    first_fit_with_order_scratch(system, order, &mut FirstFitScratch::new())
}

/// [`first_fit_with_order`] through a caller-owned [`FirstFitScratch`],
/// reusing its probe buffers across calls. Identical results.
///
/// # Panics
///
/// Panics if `order` is not a permutation of `0..system.len()`.
pub fn first_fit_with_order_scratch<S: GainBackend>(
    system: &S,
    order: &[usize],
    scratch: &mut FirstFitScratch,
) -> Schedule {
    let n = system.len();
    assert_order_is_permutation(n, order);

    let mut classes: Vec<ColorAccumulator<'_, S>> = Vec::new();
    let open = first_fit_into(system, order, system.beta(), scratch, &mut classes);
    let mut colors = vec![usize::MAX; n];
    for (c, class) in classes[..open].iter().enumerate() {
        for &i in class.members() {
            colors[i] = c;
        }
    }
    Schedule::new(colors)
}

/// The naive `O(class²)`-per-query first-fit coloring, kept as the reference
/// the incremental engine is benchmarked and property-tested against.
pub fn first_fit_coloring_naive<S: InterferenceSystem>(system: &S) -> Schedule {
    let order: Vec<usize> = (0..system.len()).collect();
    first_fit_with_order_naive(system, &order)
}

/// Naive counterpart of [`first_fit_with_order`]; identical results, without
/// the incremental engine.
///
/// # Panics
///
/// Panics if `order` is not a permutation of `0..system.len()`.
pub fn first_fit_with_order_naive<S: InterferenceSystem>(system: &S, order: &[usize]) -> Schedule {
    let n = system.len();
    assert_order_is_permutation(n, order);

    let mut classes: Vec<Vec<usize>> = Vec::new();
    let mut colors = vec![usize::MAX; n];
    for &i in order {
        let mut placed = false;
        for (c, class) in classes.iter_mut().enumerate() {
            class.push(i);
            if system.is_feasible(class) {
                colors[i] = c;
                placed = true;
                break;
            }
            class.pop();
        }
        if !placed {
            colors[i] = classes.len();
            classes.push(vec![i]);
        }
    }
    Schedule::new(colors)
}

/// Shared order contract of the first-fit variants.
///
/// # Panics
///
/// Panics if `order` is not a permutation of `0..n`.
fn assert_order_is_permutation(n: usize, order: &[usize]) {
    assert_eq!(order.len(), n, "order must cover every item exactly once");
    let mut seen = vec![false; n];
    for &i in order {
        assert!(i < n && !seen[i], "order must be a permutation of 0..n");
        seen[i] = true;
    }
}

/// First-fit coloring of an arbitrary subset of the system's items, in the
/// given order, returning the resulting color classes (members in insertion
/// order). Unlike [`first_fit_with_order`] the items need not cover the
/// whole system — this is the "full reschedule" baseline the dynamic
/// scheduler (`oblisched::dynamic`) and the churn experiments compare
/// against on a live subset.
///
/// # Panics
///
/// Panics (in debug builds) if `items` contains a duplicate — an item cannot
/// hold two colors. The check (against the driver's `color_of` map) is `O(1)`
/// per item and skipped in release builds, where this function sits on the
/// per-event hot path of the churn experiments.
pub fn first_fit_subset<S: GainBackend + ?Sized>(system: &S, items: &[usize]) -> Vec<Vec<usize>> {
    first_fit_subset_with_gain(system, items, system.beta())
}

/// [`first_fit_subset`] at an explicit gain instead of the system's `β`.
///
/// A stricter gain (`gain > β`) leaves every class with slack — each member
/// tolerates `gain/β` times its feasibility threshold of interference — at
/// the price of more classes. The parallel scheduler colors its spatial
/// shards this way so that shard-local classes survive being merged with
/// far-away classes of other shards (see `crate::parallel`), mirroring how
/// the paper's §5 algorithm admits candidates at the relaxed gain `β/2` and
/// certifies rounds at `β`.
///
/// # Panics
///
/// Panics (in debug builds) if `items` contains a duplicate.
pub fn first_fit_subset_with_gain<S: GainBackend + ?Sized>(
    system: &S,
    items: &[usize],
    gain: f64,
) -> Vec<Vec<usize>> {
    let mut scratch = FirstFitScratch::new();
    let mut classes: Vec<ColorAccumulator<'_, S>> = Vec::new();
    let open = first_fit_into(system, items, gain, &mut scratch, &mut classes);
    classes[..open]
        .iter()
        .map(|class| class.members().to_vec())
        .collect()
}

/// Greedily builds one large feasible set ("one shot") from `candidates`,
/// considering them in the given order and keeping an item whenever the set
/// stays feasible.
///
/// The returned set is always feasible at the system's gain; its size is the
/// greedy counterpart of the quantity `σ` (the maximum number of requests
/// schedulable with one color) that §5 approximates.
pub fn greedy_one_shot<S: GainBackend>(system: &S, candidates: &[usize]) -> Vec<usize> {
    let mut kept = ColorAccumulator::new(system);
    for &i in candidates {
        let _ = kept.try_insert(i);
    }
    kept.members().to_vec()
}

/// Extends an already feasible set `base` by greedily adding further
/// candidates whenever the set stays feasible at the system's gain.
///
/// Used by the LP-based and decomposition-based schedulers to make every
/// color class maximal, which never hurts and often saves colors on small
/// instances.
pub fn greedy_augment<S: GainBackend>(
    system: &S,
    base: Vec<usize>,
    candidates: &[usize],
) -> Vec<usize> {
    let mut kept = ColorAccumulator::with_members(system, &base);
    for &i in candidates {
        if kept.contains(i) {
            continue;
        }
        let _ = kept.try_insert(i);
    }
    kept.members().to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use oblisched_instances::{evenly_spaced_line, nested_chain};
    use oblisched_sinr::{ObliviousPower, SinrParams, Variant};

    #[test]
    fn first_fit_uses_one_color_for_well_separated_links() {
        let inst = evenly_spaced_line(8, 1.0, 100.0);
        let params = SinrParams::new(3.0, 1.0).unwrap();
        let eval = inst.evaluator(params, &ObliviousPower::Uniform);
        let schedule = first_fit_coloring(&eval.view(Variant::Bidirectional));
        assert_eq!(schedule.num_colors(), 1);
        assert!(schedule.validate(&eval, Variant::Bidirectional).is_ok());
    }

    #[test]
    fn first_fit_produces_feasible_schedules_on_nested_chains() {
        let inst = nested_chain(10, 2.0);
        let params = SinrParams::new(3.0, 1.0).unwrap();
        for power in ObliviousPower::standard_assignments() {
            let eval = inst.evaluator(params, &power);
            let schedule = first_fit_coloring(&eval.view(Variant::Bidirectional));
            assert!(schedule.validate(&eval, Variant::Bidirectional).is_ok());
            assert_eq!(schedule.len(), 10);
        }
    }

    #[test]
    fn sqrt_assignment_beats_uniform_and_linear_on_nested_chains() {
        // §1.2: the square-root assignment needs O(1) colors on the nested
        // chain while uniform and linear need Ω(n).
        let inst = nested_chain(12, 2.0);
        let params = SinrParams::new(3.0, 1.0).unwrap();
        let colors_for = |power: ObliviousPower| {
            let eval = inst.evaluator(params, &power);
            first_fit_coloring(&eval.view(Variant::Bidirectional)).num_colors()
        };
        let uniform = colors_for(ObliviousPower::Uniform);
        let linear = colors_for(ObliviousPower::Linear);
        let sqrt = colors_for(ObliviousPower::SquareRoot);
        assert!(
            sqrt < uniform,
            "sqrt ({sqrt}) must beat uniform ({uniform})"
        );
        assert!(sqrt < linear, "sqrt ({sqrt}) must beat linear ({linear})");
        assert!(sqrt <= 6, "sqrt should need O(1) colors, used {sqrt}");
        assert!(
            uniform >= 10,
            "uniform should need ~n colors, used {uniform}"
        );
    }

    #[test]
    fn first_fit_respects_custom_order() {
        let inst = nested_chain(8, 2.0);
        let params = SinrParams::new(3.0, 1.0).unwrap();
        let eval = inst.evaluator(params, &ObliviousPower::SquareRoot);
        let view = eval.view(Variant::Bidirectional);
        // Longest-first order.
        let order: Vec<usize> = (0..8).rev().collect();
        let schedule = first_fit_with_order(&view, &order);
        assert!(schedule.validate(&eval, Variant::Bidirectional).is_ok());
        assert_eq!(schedule.len(), 8);
    }

    #[test]
    #[should_panic(expected = "permutation")]
    fn first_fit_rejects_duplicate_order() {
        let inst = evenly_spaced_line(3, 1.0, 10.0);
        let params = SinrParams::default();
        let eval = inst.evaluator(params, &ObliviousPower::Uniform);
        let _ = first_fit_with_order(&eval.view(Variant::Directed), &[0, 0, 1]);
    }

    #[test]
    fn first_fit_subset_matches_full_first_fit_on_the_whole_set() {
        let inst = nested_chain(10, 2.0);
        let params = SinrParams::new(3.0, 1.0).unwrap();
        let eval = inst.evaluator(params, &ObliviousPower::SquareRoot);
        let view = eval.view(Variant::Bidirectional);
        let all: Vec<usize> = (0..10).collect();
        let classes = first_fit_subset(&view, &all);
        let full = first_fit_coloring(&view);
        assert_eq!(classes.len(), full.num_colors());
        for class in &classes {
            assert!(class.len() == 1 || view.is_feasible(class));
        }
        // A strict subset is colored too, covering exactly the given items.
        let subset = [7usize, 2, 5];
        let classes = first_fit_subset(&view, &subset);
        let mut covered: Vec<usize> = classes.iter().flatten().copied().collect();
        covered.sort_unstable();
        assert_eq!(covered, vec![2, 5, 7]);
        assert!(first_fit_subset(&view, &[]).is_empty());
    }

    #[test]
    fn greedy_one_shot_returns_feasible_subset() {
        let inst = nested_chain(10, 2.0);
        let params = SinrParams::new(3.0, 1.0).unwrap();
        let eval = inst.evaluator(params, &ObliviousPower::SquareRoot);
        let view = eval.view(Variant::Bidirectional);
        let all: Vec<usize> = (0..10).collect();
        let set = greedy_one_shot(&view, &all);
        assert!(!set.is_empty());
        assert!(view.is_feasible(&set));
        // On the nested chain the square-root assignment packs several
        // requests into one shot.
        assert!(set.len() >= 2);
    }

    #[test]
    fn greedy_one_shot_on_empty_candidates() {
        let inst = evenly_spaced_line(2, 1.0, 10.0);
        let params = SinrParams::default();
        let eval = inst.evaluator(params, &ObliviousPower::Uniform);
        let view = eval.view(Variant::Directed);
        assert!(greedy_one_shot(&view, &[]).is_empty());
    }

    #[test]
    fn greedy_augment_extends_without_breaking_feasibility() {
        let inst = nested_chain(10, 2.0);
        let params = SinrParams::new(3.0, 1.0).unwrap();
        let eval = inst.evaluator(params, &ObliviousPower::SquareRoot);
        let view = eval.view(Variant::Bidirectional);
        let base = vec![0usize];
        let all: Vec<usize> = (0..10).collect();
        let augmented = greedy_augment(&view, base.clone(), &all);
        assert!(view.is_feasible(&augmented));
        assert!(augmented.len() >= base.len());
        assert!(augmented.contains(&0));
        // No duplicates.
        let mut sorted = augmented.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), augmented.len());
    }

    #[test]
    fn incremental_first_fit_matches_naive_exactly() {
        let inst = nested_chain(12, 2.0);
        let params = SinrParams::new(3.0, 1.0).unwrap();
        for power in ObliviousPower::standard_assignments() {
            let eval = inst.evaluator(params, &power);
            for variant in Variant::all() {
                let view = eval.view(variant);
                assert_eq!(first_fit_coloring(&view), first_fit_coloring_naive(&view));
                let order: Vec<usize> = (0..12).rev().collect();
                assert_eq!(
                    first_fit_with_order(&view, &order),
                    first_fit_with_order_naive(&view, &order)
                );
            }
        }
    }

    #[test]
    fn incremental_first_fit_matches_naive_on_cached_matrix() {
        let inst = nested_chain(10, 2.0);
        let params = SinrParams::new(3.0, 1.0).unwrap();
        let eval = inst.evaluator(params, &ObliviousPower::SquareRoot);
        let view = eval.view(Variant::Bidirectional);
        let matrix = view.cached();
        assert_eq!(first_fit_coloring(&matrix), first_fit_coloring_naive(&view));
    }

    #[test]
    fn empty_system_yields_empty_schedule() {
        let metric = oblisched_metric::LineMetric::new(vec![0.0, 1.0]);
        let inst = oblisched_sinr::Instance::new(metric, vec![]).unwrap();
        let params = SinrParams::default();
        let eval = inst.evaluator(params, &ObliviousPower::Uniform);
        let schedule = first_fit_coloring(&eval.view(Variant::Directed));
        assert!(schedule.is_empty());
        assert_eq!(schedule.num_colors(), 0);
    }
}

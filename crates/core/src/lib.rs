//! # oblisched — Oblivious Interference Scheduling
//!
//! A from-scratch implementation of the algorithms and constructions of
//! *Oblivious Interference Scheduling* (Fanghänel, Kesselheim, Räcke,
//! Vöcking; PODC 2009): scheduling communication requests in the SINR
//! ("physical") model of wireless interference, where each request is
//! assigned a transmission **power** and a **color** (time slot) and all
//! requests of one color must satisfy the SINR constraints simultaneously.
//!
//! The paper's central question is how well **oblivious** power assignments —
//! powers that depend only on the sender–receiver distance — can perform:
//!
//! * in the **directed** variant they are hopeless: for every oblivious
//!   assignment there are instances needing `Ω(n)` colors although `O(1)`
//!   suffice (`oblisched_instances::adversarial` builds those instances and
//!   [`greedy`]/[`power_control`] realise both sides of the gap);
//! * in the **bidirectional** variant the **square-root assignment**
//!   `p = √ℓ` is universally good: it always admits a coloring within
//!   `polylog(n)` of the optimum (Theorem 2), and a randomized polynomial
//!   time algorithm finds an `O(log n)`-approximate coloring for it
//!   (Theorem 15, implemented in [`sqrt_coloring`](mod@sqrt_coloring)).
//!
//! ## Crate layout
//!
//! All coloring algorithms run on the **incremental interference engine** of
//! [`oblisched_sinr::engine`]: per-color running interference sums answer the
//! "can request *i* join color *c*" query in `O(|c|)` contributions (with an
//! optional cached gain matrix below a memory budget), while agreeing
//! bit-for-bit with the naive evaluator — the naive first-fit is kept as
//! [`first_fit_coloring_naive`] for baseline benchmarking.
//!
//! | module | paper section | contents |
//! |--------|---------------|----------|
//! | [`greedy`] | baseline | first-fit coloring and greedy one-shot selection on the incremental engine |
//! | [`power_control`] | baseline | non-oblivious per-set power optimisation (the "optimal schedule" side of Theorem 1) |
//! | [`optimal`] | baseline | exact maximum one-shot sets and exact minimum colorings for small instances |
//! | [`sqrt_coloring`](mod@sqrt_coloring) | §5 | the randomized LP-rounding coloring algorithm for the square-root assignment |
//! | [`parallel`] | — | tile-sharded parallel batch scheduling with a deterministic conflict-repair merge |
//! | [`dynamic`] | — | online scheduling under churn: a [`DynamicScheduler`] maintaining a valid coloring across insert/remove events |
//! | [`durability`] | — | durable dynamic sessions: a write-ahead log + snapshot/restore behind a pluggable [`SessionStore`] |
//! | [`star_analysis`] | §4 | Lemma 5 machinery: decay classes, large/small-loss split, square-root-feasible subsets on stars |
//! | [`decomposition`] | §3 | metric → tree → star reduction (Lemmas 6–9) and the constructive Theorem 2 pipeline |
//! | [`convert`] | §6 | simulating bidirectional schedules by directed ones |
//! | [`scheduler`] | — | a facade bundling parameters, variant and algorithm choice |
//!
//! ## Quick start
//!
//! ```
//! use oblisched::scheduler::Scheduler;
//! use oblisched::solve::{PowerAssignment, SolveRequest};
//! use oblisched_metric::LineMetric;
//! use oblisched_sinr::{Instance, Request, SinrParams};
//!
//! // Three bidirectional requests on a line.
//! let metric = LineMetric::new(vec![0.0, 1.0, 10.0, 12.0, 300.0, 304.0]);
//! let instance = Instance::new(
//!     metric,
//!     vec![Request::new(0, 1), Request::new(2, 3), Request::new(4, 5)],
//! )?;
//! let scheduler = Scheduler::new(SinrParams::new(3.0, 1.0)?);
//! let result = scheduler.solve(&instance, &SolveRequest::first_fit(PowerAssignment::SquareRoot))?;
//! assert!(result.schedule.num_colors() <= 3);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod convert;
pub mod decomposition;
pub mod durability;
pub mod dynamic;
pub mod greedy;
pub mod optimal;
pub mod parallel;
pub mod power_control;
pub mod scheduler;
pub mod solve;
pub mod sqrt_coloring;
pub mod star_analysis;

pub use convert::directed_simulation;
pub use decomposition::{
    sqrt_feasible_nodes, sqrt_schedule_via_decomposition, DecompositionConfig,
};
pub use durability::{
    replay_records, DiskStore, DurabilityError, DurableScheduler, MemoryStore, SessionSnapshot,
    SessionStore, WalEvent, WalRecord, DEFAULT_CHECKPOINT_EVERY,
};
pub use dynamic::{
    DynamicConfig, DynamicError, DynamicScheduler, RecolorMove, Removal, RequestId, SchedulerState,
    StateMember,
};
pub use greedy::{
    first_fit_coloring, first_fit_coloring_naive, first_fit_into, first_fit_subset,
    first_fit_subset_with_gain, first_fit_with_order, first_fit_with_order_naive,
    first_fit_with_order_scratch, greedy_augment, greedy_one_shot, FirstFitScratch,
};
pub use optimal::{exact_chromatic_number, exact_max_one_shot};
pub use parallel::{parallel_first_fit, tile_shards, ParallelConfig, DEFAULT_TARGET_SHARDS};
pub use power_control::{feasible_powers, greedy_with_power_control, PowerControlConfig};
pub use scheduler::{EngineBackend, EngineStats, ScheduleResult, Scheduler, SessionBackend};
pub use solve::{
    Algorithm, Assignment, BackendPolicy, PowerAssignment, ScheduleError, SolveLabel, SolveRequest,
    SolveStrategy,
};
pub use sqrt_coloring::{sqrt_coloring, SqrtColoringConfig};
pub use star_analysis::{decay_classes, star_sqrt_subset, StarNodeKind};

// Re-export the substrate crates so downstream users need a single dependency.
pub use oblisched_lp as lp;
pub use oblisched_metric as metric;
pub use oblisched_sinr as sinr;

use oblisched_sinr::InterferenceSystem;

/// Convenience: validates that a schedule produced by any algorithm in this
/// crate is feasible for the given interference system, panicking with a
/// descriptive message otherwise. Used by tests and the experiment harness.
///
/// # Panics
///
/// Panics if the schedule is not feasible.
pub fn assert_schedule_feasible<S: InterferenceSystem>(
    system: &S,
    schedule: &oblisched_sinr::Schedule,
    context: &str,
) {
    if let Err(e) = schedule.validate_against(system) {
        panic!("schedule produced by {context} is infeasible: {e}");
    }
}

//! Durable dynamic sessions: a write-ahead log plus snapshot/restore for the
//! [`DynamicScheduler`], behind a pluggable [`SessionStore`].
//!
//! The dynamic scheduler is fully deterministic: given the same system, the
//! same [`DynamicConfig`] and the same event order, every placement, id and
//! recoloring migration comes out identical. Durability therefore only needs
//! to persist the *events* — a [`DurableScheduler`] appends one
//! [`WalRecord`] per insert, removal and recoloring migration to an
//! append-only log, checkpoints a full [`SessionSnapshot`] every
//! `checkpoint_every` events, and recovery is
//! [load-snapshot](SessionStore::load_snapshot) +
//! [replay-tail](SessionStore::read_tail):
//!
//! * **[`WalEvent::Insert`]** records carry the item *and* the id the live
//!   scheduler assigned, so replay cross-checks its own deterministic id
//!   assignment against the log;
//! * **[`WalEvent::Remove`]** records only name the departing id — replay
//!   re-derives the bounded local recoloring deterministically;
//! * **[`WalEvent::Recolor`]** records log each migration a removal
//!   triggered; replay verifies the re-derived migrations land every request
//!   on its logged color instead of applying them, so a log from a different
//!   system or config surfaces as [`DurabilityError::Corrupt`] rather than a
//!   silently wrong coloring.
//!
//! Two stores are provided: [`MemoryStore`] (tests, in-process handoff) and
//! [`DiskStore`] (an append-only JSONL `wal.jsonl` plus a `snapshot.json`
//! written atomically via a temp file + rename). A WAL line is durable only
//! once its trailing newline is on disk: recovery drops an unterminated
//! final line (a torn write mid-crash) and rejects any terminated line that
//! does not parse. The crash-point harness in `tests/durable_recovery.rs`
//! truncates a real session's WAL at every byte offset and asserts recovery
//! reproduces the pre-crash coloring bit-for-bit, certified through the
//! naive-evaluator [`validate`](DynamicScheduler::validate) path.
//!
//! # Example
//!
//! ```
//! use oblisched::durability::{DurableScheduler, MemoryStore};
//! use oblisched::dynamic::DynamicConfig;
//! use oblisched_metric::LineMetric;
//! use oblisched_sinr::{Instance, ObliviousPower, Request, SinrParams, Variant};
//!
//! let metric = LineMetric::new(vec![0.0, 1.0, 10.0, 12.0, 300.0, 304.0]);
//! let instance = Instance::new(
//!     metric,
//!     vec![Request::new(0, 1), Request::new(2, 3), Request::new(4, 5)],
//! )?;
//! let eval = instance.evaluator(SinrParams::new(3.0, 1.0)?, &ObliviousPower::SquareRoot);
//! let view = eval.view(Variant::Bidirectional);
//!
//! // A session over an in-memory store: every event is logged.
//! let config = DynamicConfig::default();
//! let mut session = DurableScheduler::create(&view, config, 2, MemoryStore::new())?;
//! let a = session.insert(0)?;
//! let _b = session.insert(1)?;
//! session.remove(a)?;
//!
//! // "Crash": drop the session, keep only the store. Recovery replays the
//! // tail after the last checkpoint and reproduces the state exactly.
//! let store = session.into_store();
//! let recovered = DurableScheduler::recover(&view, store)?;
//! assert_eq!(recovered.scheduler().len(), 1);
//! recovered.scheduler().validate()?;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use crate::dynamic::{DynamicConfig, DynamicError, DynamicScheduler, RequestId, SchedulerState};
use oblisched_sinr::GainBackend;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Default checkpoint cadence of a [`DurableScheduler`]: one snapshot per
/// this many insert/remove events.
pub const DEFAULT_CHECKPOINT_EVERY: usize = 64;

/// One logged scheduler event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WalEvent {
    /// An arrival: `item` was inserted and assigned the raw id `id`.
    Insert {
        /// The inserted engine item.
        item: usize,
        /// The raw [`RequestId`] the scheduler assigned.
        id: u64,
    },
    /// A departure of the raw id `id`.
    Remove {
        /// The raw [`RequestId`] that departed.
        id: u64,
    },
    /// A recoloring migration triggered by the preceding removal: replay
    /// verifies the re-derived migration instead of applying it.
    Recolor {
        /// The raw [`RequestId`] that migrated.
        id: u64,
        /// The color the request left.
        from: usize,
        /// The color the request joined.
        to: usize,
    },
}

/// One line of the write-ahead log: a sequence number plus the event.
/// Sequence numbers start at 0 and are contiguous, so the line index of an
/// unpruned log *is* the sequence number — what lets recovery skip the
/// snapshotted prefix without parsing it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WalRecord {
    /// The record's position in the log, starting at 0.
    pub seq: u64,
    /// The logged event.
    pub event: WalEvent,
}

/// A checkpoint of a durable session: the scheduler's logical state plus
/// everything needed to resume logging (`next_seq`) and checkpointing
/// (`checkpoint_every`, `config`) exactly where the session left off.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionSnapshot {
    /// The sequence number of the first WAL record *not* covered by this
    /// snapshot — recovery replays the log from here.
    pub next_seq: u64,
    /// The session's checkpoint cadence.
    pub checkpoint_every: usize,
    /// The scheduler configuration the session runs under.
    pub config: DynamicConfig,
    /// The scheduler's logical state at `next_seq`.
    pub state: SchedulerState,
}

/// Everything that can go wrong logging, checkpointing or recovering a
/// durable session.
#[derive(Debug)]
pub enum DurabilityError {
    /// The underlying scheduler rejected an event.
    Dynamic(DynamicError),
    /// The store failed to read or write.
    Io(std::io::Error),
    /// A record or snapshot failed to serialize or deserialize.
    Serde(serde_json::Error),
    /// The log or snapshot is readable but inconsistent: a terminated WAL
    /// line that does not parse, a sequence-number gap, or replay diverging
    /// from the logged ids/colors (a log from a different system or config).
    Corrupt {
        /// The sequence number of the offending record, when attributable.
        seq: Option<u64>,
        /// Human-readable description of the inconsistency.
        detail: String,
    },
    /// Recovery was asked for a session that does not exist (no snapshot —
    /// an empty or absent store).
    NoSession,
    /// Creation was asked for a session that already exists.
    SessionExists,
    /// An existing session was opened with a different configuration.
    ConfigMismatch {
        /// The configuration the stored session runs under.
        stored: DynamicConfig,
        /// The configuration the caller requested.
        requested: DynamicConfig,
    },
}

impl fmt::Display for DurabilityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DurabilityError::Dynamic(e) => write!(f, "scheduler rejected the event: {e}"),
            DurabilityError::Io(e) => write!(f, "session store i/o failed: {e}"),
            DurabilityError::Serde(e) => write!(f, "session record serialization failed: {e}"),
            DurabilityError::Corrupt {
                seq: Some(seq),
                detail,
            } => {
                write!(f, "session log corrupt at record {seq}: {detail}")
            }
            DurabilityError::Corrupt { seq: None, detail } => {
                write!(f, "session log corrupt: {detail}")
            }
            DurabilityError::NoSession => write!(f, "no session in the store (no snapshot)"),
            DurabilityError::SessionExists => write!(f, "a session already exists in the store"),
            DurabilityError::ConfigMismatch { stored, requested } => write!(
                f,
                "session config mismatch: stored {stored:?}, requested {requested:?}"
            ),
        }
    }
}

impl std::error::Error for DurabilityError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DurabilityError::Dynamic(e) => Some(e),
            DurabilityError::Io(e) => Some(e),
            DurabilityError::Serde(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DynamicError> for DurabilityError {
    fn from(e: DynamicError) -> Self {
        DurabilityError::Dynamic(e)
    }
}

impl From<std::io::Error> for DurabilityError {
    fn from(e: std::io::Error) -> Self {
        DurabilityError::Io(e)
    }
}

impl From<serde_json::Error> for DurabilityError {
    fn from(e: serde_json::Error) -> Self {
        DurabilityError::Serde(e)
    }
}

/// Where a durable session keeps its write-ahead log and snapshot. The
/// contract is append-only: [`append`](SessionStore::append) must make the
/// record durable before returning, and
/// [`write_snapshot`](SessionStore::write_snapshot) must replace the
/// snapshot atomically *after* every record below its `next_seq` is durable
/// — so a crash at any point leaves either the old or the new snapshot, and
/// never a snapshot referencing log records that were lost.
pub trait SessionStore {
    /// Appends one record to the write-ahead log.
    ///
    /// # Errors
    ///
    /// [`DurabilityError::Io`] / [`DurabilityError::Serde`] when the record
    /// cannot be made durable.
    fn append(&mut self, record: &WalRecord) -> Result<(), DurabilityError>;

    /// Atomically replaces the session snapshot.
    ///
    /// # Errors
    ///
    /// [`DurabilityError::Io`] / [`DurabilityError::Serde`] when the
    /// snapshot cannot be made durable.
    fn write_snapshot(&mut self, snapshot: &SessionSnapshot) -> Result<(), DurabilityError>;

    /// Loads the current snapshot, `None` when the store holds no session.
    ///
    /// # Errors
    ///
    /// [`DurabilityError::Io`] / [`DurabilityError::Serde`] when a present
    /// snapshot cannot be read back.
    fn load_snapshot(&self) -> Result<Option<SessionSnapshot>, DurabilityError>;

    /// Reads every durable log record with `seq >= from_seq`, in order.
    ///
    /// # Errors
    ///
    /// [`DurabilityError::Corrupt`] when the log is readable but
    /// inconsistent, [`DurabilityError::Io`] when it cannot be read.
    fn read_tail(&self, from_seq: u64) -> Result<Vec<WalRecord>, DurabilityError>;
}

/// An in-memory [`SessionStore`]: the log is a `Vec`, the snapshot an
/// `Option`. Used by tests and for handing a session between schedulers in
/// one process.
#[derive(Debug, Clone, Default)]
pub struct MemoryStore {
    records: Vec<WalRecord>,
    snapshot: Option<SessionSnapshot>,
}

impl MemoryStore {
    /// Creates an empty store (no session).
    pub fn new() -> Self {
        Self::default()
    }

    /// The full log, in order.
    pub fn records(&self) -> &[WalRecord] {
        &self.records
    }

    /// The current snapshot, if any.
    pub fn snapshot(&self) -> Option<&SessionSnapshot> {
        self.snapshot.as_ref()
    }
}

impl SessionStore for MemoryStore {
    fn append(&mut self, record: &WalRecord) -> Result<(), DurabilityError> {
        self.records.push(*record);
        Ok(())
    }

    fn write_snapshot(&mut self, snapshot: &SessionSnapshot) -> Result<(), DurabilityError> {
        self.snapshot = Some(snapshot.clone());
        Ok(())
    }

    fn load_snapshot(&self) -> Result<Option<SessionSnapshot>, DurabilityError> {
        Ok(self.snapshot.clone())
    }

    fn read_tail(&self, from_seq: u64) -> Result<Vec<WalRecord>, DurabilityError> {
        Ok(self
            .records
            .iter()
            .filter(|r| r.seq >= from_seq)
            .copied()
            .collect())
    }
}

/// An on-disk [`SessionStore`]: an append-only JSONL log `wal.jsonl` plus a
/// `snapshot.json` in one session directory.
///
/// * **Append** writes the record and its trailing newline in one write and
///   flushes; a line is durable exactly when its newline is on disk, so a
///   torn final line is dropped on recovery.
/// * **Snapshot** first syncs the log (the snapshot must never reference
///   records that were lost), then writes a temp file and renames it over
///   `snapshot.json` — readers see either the old or the new snapshot.
#[derive(Debug)]
pub struct DiskStore {
    dir: PathBuf,
    wal: fs::File,
}

impl DiskStore {
    /// Name of the write-ahead log file inside the session directory.
    pub const WAL_FILE: &'static str = "wal.jsonl";
    /// Name of the snapshot file inside the session directory.
    pub const SNAPSHOT_FILE: &'static str = "snapshot.json";

    /// Opens (creating if needed) the session directory and its log.
    ///
    /// # Errors
    ///
    /// [`DurabilityError::Io`] when the directory or log cannot be opened.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, DurabilityError> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        let wal = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(dir.join(Self::WAL_FILE))?;
        Ok(Self { dir, wal })
    }

    /// The session directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn snapshot_path(&self) -> PathBuf {
        self.dir.join(Self::SNAPSHOT_FILE)
    }
}

impl SessionStore for DiskStore {
    fn append(&mut self, record: &WalRecord) -> Result<(), DurabilityError> {
        let mut line = serde_json::to_string(record)?;
        line.push('\n');
        self.wal.write_all(line.as_bytes())?;
        self.wal.flush()?;
        Ok(())
    }

    fn write_snapshot(&mut self, snapshot: &SessionSnapshot) -> Result<(), DurabilityError> {
        // The log must be durable before a snapshot claims to cover it.
        self.wal.sync_data()?;
        let tmp = self.dir.join(format!("{}.tmp", Self::SNAPSHOT_FILE));
        let json = serde_json::to_string(snapshot)?;
        fs::write(&tmp, json)?;
        fs::rename(&tmp, self.snapshot_path())?;
        Ok(())
    }

    fn load_snapshot(&self) -> Result<Option<SessionSnapshot>, DurabilityError> {
        let text = match fs::read_to_string(self.snapshot_path()) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e.into()),
        };
        Ok(Some(serde_json::from_str(&text)?))
    }

    fn read_tail(&self, from_seq: u64) -> Result<Vec<WalRecord>, DurabilityError> {
        let text = match fs::read_to_string(self.dir.join(Self::WAL_FILE)) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(e.into()),
        };
        let mut tail = Vec::new();
        // Only newline-terminated lines are durable; an unterminated final
        // segment is a torn write and is dropped. The line index of the
        // unpruned log is the sequence number, so the snapshotted prefix is
        // skipped without parsing (recovery stays O(tail) in parse work).
        for (index, line) in text.split_inclusive('\n').enumerate() {
            let Some(line) = line.strip_suffix('\n') else {
                break;
            };
            let seq = index as u64;
            if seq < from_seq {
                continue;
            }
            let record: WalRecord =
                serde_json::from_str(line).map_err(|e| DurabilityError::Corrupt {
                    seq: Some(seq),
                    detail: format!("terminated WAL line does not parse: {e}"),
                })?;
            if record.seq != seq {
                return Err(DurabilityError::Corrupt {
                    seq: Some(seq),
                    detail: format!("record claims seq {}, log position says {seq}", record.seq),
                });
            }
            tail.push(record);
        }
        Ok(tail)
    }
}

/// Applies one WAL record to a scheduler during replay: inserts and removals
/// are re-executed, recoloring records are *verified* against the re-derived
/// state (replay is deterministic, so a mismatch means the log belongs to a
/// different system or config).
fn apply_record<S: GainBackend + ?Sized>(
    sched: &mut DynamicScheduler<'_, S>,
    record: &WalRecord,
) -> Result<(), DurabilityError> {
    match record.event {
        WalEvent::Insert { item, id } => {
            let got = sched.insert(item)?;
            if got.raw() != id {
                return Err(DurabilityError::Corrupt {
                    seq: Some(record.seq),
                    detail: format!(
                        "replayed insert of item {item} assigned id {got}, log says {id}"
                    ),
                });
            }
        }
        WalEvent::Remove { id } => {
            sched.remove(RequestId::from_raw(id))?;
        }
        WalEvent::Recolor { id, from, to } => {
            let current = sched.color_of(RequestId::from_raw(id));
            if current != Some(to) {
                return Err(DurabilityError::Corrupt {
                    seq: Some(record.seq),
                    detail: format!(
                        "log says id {id} migrated {from} -> {to}, replay has it at {current:?}"
                    ),
                });
            }
        }
    }
    Ok(())
}

/// Replays a full record log (starting from sequence 0 over an empty
/// scheduler) and returns the resulting scheduler — the reference recovery
/// path the snapshot+tail fast path is tested against.
///
/// # Errors
///
/// [`DurabilityError::Corrupt`] on a sequence gap or a replay divergence,
/// [`DurabilityError::Dynamic`] when a logged event does not apply.
pub fn replay_records<'s, S: GainBackend + ?Sized>(
    system: &'s S,
    config: DynamicConfig,
    records: &[WalRecord],
) -> Result<DynamicScheduler<'s, S>, DurabilityError> {
    let mut sched = DynamicScheduler::with_config(system, config);
    for (index, record) in records.iter().enumerate() {
        if record.seq != index as u64 {
            return Err(DurabilityError::Corrupt {
                seq: Some(record.seq),
                detail: format!("expected seq {index}, found {}", record.seq),
            });
        }
        apply_record(&mut sched, record)?;
    }
    Ok(sched)
}

/// A [`DynamicScheduler`] wrapped with durability: every insert/remove (and
/// each recoloring migration a removal triggers) is appended to the
/// [`SessionStore`]'s write-ahead log, a [`SessionSnapshot`] is checkpointed
/// every `checkpoint_every` events, and [`recover`](DurableScheduler::recover)
/// rebuilds the exact pre-crash state from snapshot + log tail.
#[derive(Debug)]
pub struct DurableScheduler<'s, S: GainBackend + ?Sized, St: SessionStore> {
    inner: DynamicScheduler<'s, S>,
    store: St,
    checkpoint_every: usize,
    events_since_checkpoint: usize,
    next_seq: u64,
    snapshots_written: u64,
}

impl<'s, S: GainBackend + ?Sized, St: SessionStore> DurableScheduler<'s, S, St> {
    /// Creates a *new* session in `store`: an empty scheduler plus an
    /// initial snapshot, so that from this point on "the store holds a
    /// session" and "a snapshot is present" are the same thing.
    ///
    /// # Errors
    ///
    /// [`DurabilityError::SessionExists`] when the store already holds a
    /// session; store errors are passed through.
    ///
    /// # Panics
    ///
    /// Panics if `checkpoint_every` is zero or `config` is invalid (like
    /// [`DynamicScheduler::with_config`]).
    pub fn create(
        system: &'s S,
        config: DynamicConfig,
        checkpoint_every: usize,
        store: St,
    ) -> Result<Self, DurabilityError> {
        assert!(
            checkpoint_every >= 1,
            "the checkpoint cadence must be at least 1 event"
        );
        if store.load_snapshot()?.is_some() {
            return Err(DurabilityError::SessionExists);
        }
        let mut session = Self {
            inner: DynamicScheduler::with_config(system, config),
            store,
            checkpoint_every,
            events_since_checkpoint: 0,
            next_seq: 0,
            snapshots_written: 0,
        };
        session.checkpoint()?;
        Ok(session)
    }

    /// Recovers the session in `store`: loads the snapshot, restores the
    /// scheduler via [`DynamicScheduler::from_state`], and replays the log
    /// tail from the snapshot's `next_seq`, verifying sequence contiguity
    /// and the logged ids/colors along the way.
    ///
    /// # Errors
    ///
    /// [`DurabilityError::NoSession`] when the store holds no snapshot,
    /// [`DurabilityError::Corrupt`] on gaps or replay divergence, and
    /// [`DurabilityError::Dynamic`] when a logged event does not apply to
    /// the given system.
    pub fn recover(system: &'s S, store: St) -> Result<Self, DurabilityError> {
        let snapshot = store.load_snapshot()?.ok_or(DurabilityError::NoSession)?;
        let mut inner = DynamicScheduler::from_state(system, snapshot.config, &snapshot.state)?;
        let tail = store.read_tail(snapshot.next_seq)?;
        let mut events = 0usize;
        let mut next_seq = snapshot.next_seq;
        for record in &tail {
            if record.seq != next_seq {
                return Err(DurabilityError::Corrupt {
                    seq: Some(record.seq),
                    detail: format!("expected seq {next_seq}, found {}", record.seq),
                });
            }
            apply_record(&mut inner, record)?;
            if !matches!(record.event, WalEvent::Recolor { .. }) {
                events += 1;
            }
            next_seq += 1;
        }
        Ok(Self {
            inner,
            store,
            checkpoint_every: snapshot.checkpoint_every,
            events_since_checkpoint: events,
            next_seq,
            snapshots_written: 0,
        })
    }

    /// Creates the session when the store is empty, recovers it otherwise —
    /// rejecting a recovery whose stored configuration differs from the
    /// requested one.
    ///
    /// # Errors
    ///
    /// [`DurabilityError::ConfigMismatch`] when an existing session runs
    /// under a different [`DynamicConfig`]; otherwise the errors of
    /// [`create`](DurableScheduler::create) /
    /// [`recover`](DurableScheduler::recover).
    pub fn open(
        system: &'s S,
        config: DynamicConfig,
        checkpoint_every: usize,
        store: St,
    ) -> Result<Self, DurabilityError> {
        if store.load_snapshot()?.is_none() {
            return Self::create(system, config, checkpoint_every, store);
        }
        let mut session = Self::recover(system, store)?;
        if session.inner.config() != config {
            return Err(DurabilityError::ConfigMismatch {
                stored: session.inner.config(),
                requested: config,
            });
        }
        session.checkpoint_every = checkpoint_every.max(1);
        Ok(session)
    }

    /// Inserts an item, logging the event (with the assigned id) and
    /// checkpointing when the cadence is due.
    ///
    /// # Errors
    ///
    /// The scheduler's [`DynamicError`]s (nothing is logged then), or store
    /// errors from the append/checkpoint.
    pub fn insert(&mut self, item: usize) -> Result<RequestId, DurabilityError> {
        let id = self.inner.insert(item)?;
        let record = WalRecord {
            seq: self.next_seq,
            event: WalEvent::Insert { item, id: id.raw() },
        };
        self.store.append(&record)?;
        self.next_seq += 1;
        self.after_event()?;
        Ok(id)
    }

    /// Removes a live request, logging the removal plus one
    /// [`WalEvent::Recolor`] record per migration it triggered, and
    /// checkpointing when the cadence is due. Returns the departed item.
    ///
    /// # Errors
    ///
    /// [`DynamicError::UnknownId`] via [`DurabilityError::Dynamic`] when
    /// `id` is not live (nothing is logged then), or store errors.
    pub fn remove(&mut self, id: RequestId) -> Result<usize, DurabilityError> {
        let removal = self.inner.remove_traced(id)?;
        let record = WalRecord {
            seq: self.next_seq,
            event: WalEvent::Remove { id: id.raw() },
        };
        self.store.append(&record)?;
        self.next_seq += 1;
        for mv in &removal.moves {
            let record = WalRecord {
                seq: self.next_seq,
                event: WalEvent::Recolor {
                    id: mv.id.raw(),
                    from: mv.from,
                    to: mv.to,
                },
            };
            self.store.append(&record)?;
            self.next_seq += 1;
        }
        self.after_event()?;
        Ok(removal.item)
    }

    fn after_event(&mut self) -> Result<(), DurabilityError> {
        self.events_since_checkpoint += 1;
        if self.events_since_checkpoint >= self.checkpoint_every {
            self.checkpoint()?;
        }
        Ok(())
    }

    /// Writes a snapshot of the current state now, resetting the cadence
    /// counter.
    ///
    /// # Errors
    ///
    /// Store errors from [`SessionStore::write_snapshot`].
    pub fn checkpoint(&mut self) -> Result<(), DurabilityError> {
        let snapshot = SessionSnapshot {
            next_seq: self.next_seq,
            checkpoint_every: self.checkpoint_every,
            config: self.inner.config(),
            state: self.inner.export_state(),
        };
        self.store.write_snapshot(&snapshot)?;
        self.snapshots_written += 1;
        self.events_since_checkpoint = 0;
        Ok(())
    }

    /// The wrapped scheduler (read-only — mutations must go through the
    /// logging methods).
    pub fn scheduler(&self) -> &DynamicScheduler<'s, S> {
        &self.inner
    }

    /// The session store.
    pub fn store(&self) -> &St {
        &self.store
    }

    /// Consumes the session and returns its store (e.g. to recover from it).
    pub fn into_store(self) -> St {
        self.store
    }

    /// The sequence number the next WAL record will carry (also the number
    /// of records logged so far for an unpruned session).
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Number of snapshots this session handle has written (the initial
    /// creation checkpoint counts; recovery starts the counter at zero).
    pub fn snapshots_written(&self) -> u64 {
        self.snapshots_written
    }

    /// The checkpoint cadence in effect.
    pub fn checkpoint_every(&self) -> usize {
        self.checkpoint_every
    }

    /// Delegates to [`DynamicScheduler::validate`].
    ///
    /// # Errors
    ///
    /// Any [`DynamicError`] describing the first violated invariant.
    pub fn validate(&self) -> Result<(), DynamicError> {
        self.inner.validate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oblisched_instances::nested_chain;
    use oblisched_sinr::{ObliviousPower, SinrParams, Variant};

    fn params() -> SinrParams {
        SinrParams::new(3.0, 1.0).unwrap()
    }

    #[test]
    fn memory_session_recovers_exactly() {
        let inst = nested_chain(10, 2.0);
        let eval = inst.evaluator(params(), &ObliviousPower::Uniform);
        let view = eval.view(Variant::Bidirectional);
        let config = DynamicConfig::default();
        let mut session = DurableScheduler::create(&view, config, 3, MemoryStore::new()).unwrap();
        let ids: Vec<RequestId> = (0..10).map(|i| session.insert(i).unwrap()).collect();
        for &id in &ids[..7] {
            session.remove(id).unwrap();
        }
        let expected = session.scheduler().export_state();
        assert!(session.snapshots_written() >= 2);
        // Removals under uniform power on the nested chain recolor, so the
        // log must contain Recolor records beyond the 17 events.
        assert!(session.next_seq() > 17);
        let store = session.into_store();
        let recovered = DurableScheduler::recover(&view, store).unwrap();
        assert_eq!(recovered.scheduler().export_state(), expected);
        recovered.validate().unwrap();
        // Full-log replay agrees with the snapshot+tail fast path.
        let replayed = replay_records(&view, config, recovered.store().records()).unwrap();
        assert_eq!(replayed.export_state(), expected);
    }

    #[test]
    fn create_rejects_an_existing_session_and_recover_an_absent_one() {
        let inst = nested_chain(4, 2.0);
        let eval = inst.evaluator(params(), &ObliviousPower::SquareRoot);
        let view = eval.view(Variant::Bidirectional);
        let config = DynamicConfig::default();
        assert!(matches!(
            DurableScheduler::recover(&view, MemoryStore::new()),
            Err(DurabilityError::NoSession)
        ));
        let session = DurableScheduler::create(&view, config, 4, MemoryStore::new()).unwrap();
        let store = session.into_store();
        assert!(matches!(
            DurableScheduler::create(&view, config, 4, store),
            Err(DurabilityError::SessionExists)
        ));
    }

    #[test]
    fn open_creates_then_recovers_and_checks_the_config() {
        let inst = nested_chain(6, 2.0);
        let eval = inst.evaluator(params(), &ObliviousPower::SquareRoot);
        let view = eval.view(Variant::Bidirectional);
        let config = DynamicConfig::default();
        let mut session = DurableScheduler::open(&view, config, 2, MemoryStore::new()).unwrap();
        session.insert(0).unwrap();
        session.insert(3).unwrap();
        let expected = session.scheduler().export_state();
        let store = session.into_store();
        let other = DynamicConfig {
            recolor_budget: 1,
            ..config
        };
        match DurableScheduler::open(&view, other, 2, store.clone()) {
            Err(DurabilityError::ConfigMismatch { stored, requested }) => {
                assert_eq!(stored, config);
                assert_eq!(requested, other);
            }
            Ok(_) => panic!("expected ConfigMismatch, got a recovered session"),
            Err(e) => panic!("expected ConfigMismatch, got {e}"),
        }
        let reopened = DurableScheduler::open(&view, config, 5, store).unwrap();
        assert_eq!(reopened.scheduler().export_state(), expected);
        assert_eq!(reopened.checkpoint_every(), 5);
    }

    #[test]
    fn failed_events_log_nothing() {
        let inst = nested_chain(4, 2.0);
        let eval = inst.evaluator(params(), &ObliviousPower::SquareRoot);
        let view = eval.view(Variant::Bidirectional);
        let mut session =
            DurableScheduler::create(&view, DynamicConfig::default(), 8, MemoryStore::new())
                .unwrap();
        let id = session.insert(1).unwrap();
        let before = session.next_seq();
        // Double insert of a live item: typed error, no new record.
        assert!(matches!(
            session.insert(1),
            Err(DurabilityError::Dynamic(DynamicError::AlreadyLive { .. }))
        ));
        // Removal of an unknown id: typed error, no new record.
        assert!(matches!(
            session.remove(RequestId::from_raw(999)),
            Err(DurabilityError::Dynamic(DynamicError::UnknownId(_)))
        ));
        assert_eq!(session.next_seq(), before);
        assert_eq!(session.scheduler().len(), 1);
        session.remove(id).unwrap();
        assert!(session.scheduler().is_empty());
    }

    #[test]
    fn replay_rejects_gaps_and_divergence() {
        let inst = nested_chain(4, 2.0);
        let eval = inst.evaluator(params(), &ObliviousPower::SquareRoot);
        let view = eval.view(Variant::Bidirectional);
        let config = DynamicConfig::default();
        // Sequence gap.
        let gap = [WalRecord {
            seq: 5,
            event: WalEvent::Insert { item: 0, id: 0 },
        }];
        assert!(matches!(
            replay_records(&view, config, &gap),
            Err(DurabilityError::Corrupt { seq: Some(5), .. })
        ));
        // Id divergence: the log claims an id replay will not assign.
        let diverged = [WalRecord {
            seq: 0,
            event: WalEvent::Insert { item: 0, id: 7 },
        }];
        assert!(matches!(
            replay_records(&view, config, &diverged),
            Err(DurabilityError::Corrupt { seq: Some(0), .. })
        ));
        // Color divergence on a Recolor record.
        let recolor = [
            WalRecord {
                seq: 0,
                event: WalEvent::Insert { item: 0, id: 0 },
            },
            WalRecord {
                seq: 1,
                event: WalEvent::Recolor {
                    id: 0,
                    from: 3,
                    to: 9,
                },
            },
        ];
        assert!(matches!(
            replay_records(&view, config, &recolor),
            Err(DurabilityError::Corrupt { seq: Some(1), .. })
        ));
        // Errors render readable descriptions.
        let err = replay_records(&view, config, &gap).unwrap_err();
        assert!(err.to_string().contains("corrupt"));
        assert!(DurabilityError::NoSession
            .to_string()
            .contains("no session"));
    }

    #[test]
    fn wal_records_round_trip_through_json() {
        let records = [
            WalRecord {
                seq: 0,
                event: WalEvent::Insert { item: 3, id: 0 },
            },
            WalRecord {
                seq: 1,
                event: WalEvent::Remove { id: 0 },
            },
            WalRecord {
                seq: 2,
                event: WalEvent::Recolor {
                    id: 4,
                    from: 2,
                    to: 0,
                },
            },
        ];
        for record in records {
            let line = serde_json::to_string(&record).unwrap();
            let back: WalRecord = serde_json::from_str(&line).unwrap();
            assert_eq!(back, record);
        }
    }
}

//! Parallel batch scheduling: tile-sharded first-fit with a deterministic
//! merge.
//!
//! First-fit's color classes are independent of each other — the only
//! coupling between requests is spatial (interference decays with
//! distance). That makes batch coloring embarrassingly parallel *per
//! region*: partition the requests by the tile of a uniform spatial grid
//! ([`tile_shards`]), color every shard independently at a relaxed gain
//! (mostly-local interference means shard-local verdicts are nearly the
//! global ones, and the gain slack reserves budget for what they miss),
//! then merge the shard colorings layer-by-layer with a conflict-repair
//! first-fit that re-validates every member through the engine.
//!
//! Two properties are load-bearing:
//!
//! * **Correctness** — the merge re-validates every member through the
//!   engine ([`ColorAccumulator`]), so
//!   the final schedule is feasible no
//!   matter how wrong the shard-local verdicts were. Sharding is a
//!   *heuristic for speed*, never trusted for feasibility.
//! * **Determinism** — the shard partition depends only on the geometry and
//!   the configured shard target, every shard is colored deterministically,
//!   and the merge walks shards in index order. Worker threads only decide
//!   *who* computes a shard, never *what* is computed, so the schedule is
//!   bit-for-bit identical for every thread count (pinned by the 1-vs-2-vs-8
//!   threads test in `tests/parallel_determinism.rs`).
//!
//! Sharding also helps on a single core: probing only a shard's own classes
//!   keeps the quadratic first-fit work at `O(Σ n_s²)` instead of `O(n²)`,
//!   which is why `parallel_first_fit` with one thread already beats plain
//!   first-fit on large instances.

use crate::greedy::{first_fit_into, FirstFitScratch};
use oblisched_metric::PlanarMetric;
use oblisched_sinr::{ColorAccumulator, GainBackend, Instance, Schedule};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Default number of spatial shards aimed for by [`tile_shards`].
pub const DEFAULT_TARGET_SHARDS: usize = 64;

/// Tuning knobs of [`parallel_first_fit`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParallelConfig {
    /// Worker threads for the shard phase (`0` = one per available core).
    /// The schedule is identical for every value.
    pub num_threads: usize,
    /// Gain slack of the shard-local coloring: shards are colored at
    /// `slack · β`, so every shard-local class keeps `1 − β/(slack·β)` of
    /// its interference budget free for the far-field members it is merged
    /// with. `1.0` disables the slack (maximal local classes, which merge
    /// poorly — almost every cross-shard union then exceeds some member's
    /// budget). Default `2.0`, the same relaxation the paper's §5 algorithm
    /// uses within a round.
    pub shard_gain_slack: f64,
}

impl Default for ParallelConfig {
    fn default() -> Self {
        Self {
            num_threads: 0,
            shard_gain_slack: 2.0,
        }
    }
}

impl ParallelConfig {
    /// A config with the default slack and an explicit thread count.
    pub fn with_threads(num_threads: usize) -> Self {
        Self {
            num_threads,
            ..Self::default()
        }
    }
}

/// Partitions the requests of a planar instance into spatially coherent
/// shards: a uniform grid of roughly `target_shards` tiles is laid over the
/// request midpoints, and every non-empty tile becomes one shard (requests
/// in index order within a shard, shards in row-major tile order).
///
/// The partition depends only on the instance geometry and `target_shards`
/// — never on thread counts — which is what makes
/// [`parallel_first_fit`] reproducible.
///
/// # Panics
///
/// Panics if `target_shards` is zero.
pub fn tile_shards<M: PlanarMetric>(
    instance: &Instance<M>,
    target_shards: usize,
) -> Vec<Vec<usize>> {
    assert!(target_shards > 0, "at least one shard is required");
    let n = instance.len();
    if n == 0 {
        return Vec::new();
    }
    let metric = instance.metric();
    let anchors: Vec<[f64; 2]> = (0..n)
        .map(|i| {
            let r = instance.request(i);
            let s = metric.position(r.sender);
            let t = metric.position(r.receiver);
            [(s[0] + t[0]) / 2.0, (s[1] + t[1]) / 2.0]
        })
        .collect();
    let mut min = [f64::INFINITY; 2];
    let mut max = [f64::NEG_INFINITY; 2];
    for a in &anchors {
        for d in 0..2 {
            min[d] = min[d].min(a[d]);
            max[d] = max[d].max(a[d]);
        }
    }
    let side = (target_shards as f64).sqrt().ceil() as usize;
    let extent = |d: usize| (max[d] - min[d]).max(0.0);
    let tile_of = |a: &[f64; 2]| -> usize {
        let idx = |d: usize| -> usize {
            if extent(d) == 0.0 {
                0
            } else {
                (((a[d] - min[d]) / extent(d) * side as f64) as usize).min(side - 1)
            }
        };
        idx(1) * side + idx(0)
    };
    let mut shards: Vec<Vec<usize>> = vec![Vec::new(); side * side];
    for (i, a) in anchors.iter().enumerate() {
        shards[tile_of(a)].push(i);
    }
    shards.retain(|s| !s.is_empty());
    shards
}

/// First-fit coloring of `system` over an explicit shard partition, using
/// up to [`num_threads`](ParallelConfig::num_threads) worker threads.
///
/// Shards are colored independently in parallel
/// ([`first_fit_into`] per shard with a per-worker scratch and accumulator
/// pool, at the config's relaxed shard gain so local classes keep
/// headroom), then merged
/// deterministically layer by layer: layer `k` concatenates every shard's
/// `k`-th class (shards in index order) and is re-colored through the
/// engine at the true gain, repairing all cross-shard conflicts (see
/// [`ParallelConfig::shard_gain_slack`]). The result is feasible by
/// construction and identical for every thread count.
///
/// # Panics
///
/// Panics if `shards` is not a partition of `0..system.len()` (every item
/// exactly once), or if the config's gain slack is below 1.
pub fn parallel_first_fit<S: GainBackend + Sync + ?Sized>(
    system: &S,
    shards: &[Vec<usize>],
    config: &ParallelConfig,
) -> Schedule {
    assert!(
        config.shard_gain_slack.is_finite() && config.shard_gain_slack >= 1.0,
        "the shard gain slack must be finite and at least 1"
    );
    let shard_gain = system.beta() * config.shard_gain_slack;
    let n = system.len();
    let mut seen = vec![false; n];
    for shard in shards {
        for &i in shard {
            assert!(
                i < n && !std::mem::replace(&mut seen[i], true),
                "shards must partition 0..{n}: item {i} repeated or out of range"
            );
        }
    }
    assert!(
        seen.iter().all(|&s| s),
        "shards must partition 0..{n}: some item is missing"
    );

    let threads = match config.num_threads {
        0 => std::thread::available_parallelism().map_or(1, |p| p.get()),
        t => t,
    };
    let shard_classes: Vec<Vec<Vec<usize>>> = if threads <= 1 || shards.len() <= 1 {
        let mut scratch = FirstFitScratch::new();
        let mut pool = Vec::new();
        shards
            .iter()
            .map(|shard| color_shard(system, shard, shard_gain, &mut scratch, &mut pool))
            .collect()
    } else {
        // Work-stealing over shard indices: threads only decide *who*
        // computes a shard; the per-shard result is a pure function of the
        // shard, so the outcome is thread-count independent.
        let next = AtomicUsize::new(0);
        let mut indexed: Vec<(usize, Vec<Vec<usize>>)> = std::thread::scope(|scope| {
            let workers: Vec<_> = (0..threads.min(shards.len()))
                .map(|_| {
                    scope.spawn(|| {
                        let mut scratch = FirstFitScratch::new();
                        let mut pool = Vec::new();
                        let mut out = Vec::new();
                        loop {
                            let idx = next.fetch_add(1, Ordering::Relaxed);
                            if idx >= shards.len() {
                                break;
                            }
                            let classes = color_shard(
                                system,
                                &shards[idx],
                                shard_gain,
                                &mut scratch,
                                &mut pool,
                            );
                            out.push((idx, classes));
                        }
                        out
                    })
                })
                .collect();
            let mut all = Vec::new();
            for w in workers {
                match w.join() {
                    Ok(mine) => all.extend(mine),
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            }
            all
        });
        indexed.sort_unstable_by_key(|(idx, _)| *idx);
        indexed.into_iter().map(|(_, classes)| classes).collect()
    };

    merge_shard_classes(system, &shard_classes, n)
}

/// Colors one shard at `gain` through a worker-owned scratch and accumulator
/// pool, returning the shard-local classes as member lists. The probe
/// buffers and class allocations stay warm across every shard the worker
/// claims instead of being reallocated per shard.
fn color_shard<'s, S: GainBackend + ?Sized>(
    system: &'s S,
    shard: &[usize],
    gain: f64,
    scratch: &mut FirstFitScratch,
    pool: &mut Vec<ColorAccumulator<'s, S>>,
) -> Vec<Vec<usize>> {
    let open = first_fit_into(system, shard, gain, scratch, pool);
    pool[..open]
        .iter()
        .map(|class| class.members().to_vec())
        .collect()
}

/// Deterministic layered merge with conflict repair (see
/// [`parallel_first_fit`]).
///
/// Layer `k` is the concatenation of every shard's `k`-th local color class
/// (shards in index order). A layer is mostly conflict-free — its pieces
/// come from different tiles, and the shard pass already separated local
/// conflicts into different `k`s — but globally a layer can exceed one
/// class's interference capacity, so each layer is re-colored by a
/// first-fit over *its own* classes ([`first_fit_into`] at the true gain):
/// every verdict passes through the engine again, repairing all cross-shard
/// conflicts. Confining the repair to the layer keeps the merge
/// `O(Σ_k |layer_k| · layer_colors)` — a fraction of a global first-fit's
/// probe work — at the price of never reusing a class across layers (a few
/// extra colors). One scratch and one accumulator pool persist across
/// layers, and colors are written straight off the accumulators' member
/// lists, so the merge allocates no per-layer class vectors.
fn merge_shard_classes<S: GainBackend + ?Sized>(
    system: &S,
    shard_classes: &[Vec<Vec<usize>>],
    n: usize,
) -> Schedule {
    let max_classes = shard_classes.iter().map(|c| c.len()).max().unwrap_or(0);
    let mut colors = vec![usize::MAX; n];
    let mut next_color = 0usize;
    let mut layer: Vec<usize> = Vec::new();
    let mut scratch = FirstFitScratch::new();
    let mut pool: Vec<ColorAccumulator<'_, S>> = Vec::new();
    for k in 0..max_classes {
        layer.clear();
        for classes in shard_classes {
            if let Some(class) = classes.get(k) {
                layer.extend_from_slice(class);
            }
        }
        let open = first_fit_into(system, &layer, system.beta(), &mut scratch, &mut pool);
        for class in &pool[..open] {
            for &i in class.members() {
                colors[i] = next_color;
            }
            next_color += 1;
        }
    }
    Schedule::new(colors)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy::first_fit_coloring;
    use oblisched_instances::{nested_chain, scaling_uniform};
    use oblisched_sinr::{ObliviousPower, SinrParams, Variant};

    fn params() -> SinrParams {
        SinrParams::new(3.0, 1.0).unwrap()
    }

    #[test]
    fn shards_partition_the_instance() {
        let inst = scaling_uniform(200, 9);
        let shards = tile_shards(&inst, DEFAULT_TARGET_SHARDS);
        assert!(
            shards.len() > 1,
            "a 200-request deployment must split into several shards"
        );
        let mut all: Vec<usize> = shards.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..200).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_schedule_is_feasible_and_thread_count_independent() {
        let inst = scaling_uniform(150, 4);
        for power in ObliviousPower::standard_assignments() {
            let eval = inst.evaluator(params(), &power);
            for variant in Variant::all() {
                let view = eval.view(variant);
                let shards = tile_shards(&inst, DEFAULT_TARGET_SHARDS);
                let serial = parallel_first_fit(&view, &shards, &ParallelConfig::with_threads(1));
                assert!(serial.validate(&eval, variant).is_ok());
                for threads in [2usize, 8] {
                    assert_eq!(
                        parallel_first_fit(&view, &shards, &ParallelConfig::with_threads(threads)),
                        serial,
                        "schedules must not depend on the thread count"
                    );
                }
            }
        }
    }

    #[test]
    fn parallel_colors_stay_close_to_sequential_first_fit() {
        let inst = scaling_uniform(200, 7);
        let eval = inst.evaluator(params(), &ObliviousPower::SquareRoot);
        let view = eval.view(Variant::Bidirectional);
        let sequential = first_fit_coloring(&view).num_colors();
        let shards = tile_shards(&inst, DEFAULT_TARGET_SHARDS);
        let parallel =
            parallel_first_fit(&view, &shards, &ParallelConfig::with_threads(2)).num_colors();
        assert!(
            parallel <= 2 * sequential + 2,
            "parallel used {parallel} colors vs sequential {sequential}"
        );
    }

    #[test]
    fn single_shard_matches_sequential_first_fit() {
        // One shard = no partition benefit, but also bit-for-bit the
        // sequential schedule (same insertions in the same order).
        let inst = nested_chain(12, 2.0);
        let eval = inst.evaluator(params(), &ObliviousPower::SquareRoot);
        let view = eval.view(Variant::Bidirectional);
        let shard: Vec<Vec<usize>> = vec![(0..12).collect()];
        let config = ParallelConfig {
            num_threads: 4,
            shard_gain_slack: 1.0,
        };
        assert_eq!(
            parallel_first_fit(&view, &shard, &config),
            first_fit_coloring(&view)
        );
    }

    #[test]
    fn degenerate_inputs_are_handled() {
        let inst = nested_chain(3, 2.0);
        // All requests share a midpoint region: a single shard comes back.
        let shards = tile_shards(&inst, 4);
        let total: usize = shards.iter().map(|s| s.len()).sum();
        assert_eq!(total, 3);
        let eval = inst.evaluator(params(), &ObliviousPower::Uniform);
        let view = eval.view(Variant::Bidirectional);
        let schedule = parallel_first_fit(&view, &shards, &ParallelConfig::with_threads(2));
        assert_eq!(schedule.len(), 3);
        assert!(schedule.validate(&eval, Variant::Bidirectional).is_ok());
    }

    #[test]
    #[should_panic(expected = "partition")]
    fn missing_items_are_rejected() {
        let inst = nested_chain(4, 2.0);
        let eval = inst.evaluator(params(), &ObliviousPower::Uniform);
        let view = eval.view(Variant::Directed);
        let _ = parallel_first_fit(&view, &[vec![0, 2]], &ParallelConfig::with_threads(1));
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shard_target_is_rejected() {
        let inst = nested_chain(2, 2.0);
        let _ = tile_shards(&inst, 0);
    }
}

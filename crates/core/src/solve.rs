//! The typed job API of the scheduler facade: one serializable
//! [`SolveRequest`] describes *what* to schedule (strategy, power
//! assignment, problem variant, seed, backend policy), and
//! [`Scheduler::solve`](crate::scheduler::Scheduler::solve) turns it into a
//! [`ScheduleResult`](crate::scheduler::ScheduleResult) or a typed
//! [`ScheduleError`] — never a panic on input conditions.
//!
//! This replaces the older per-algorithm `schedule_*` methods (now
//! `#[deprecated]` thin wrappers): every scenario in the repository —
//! experiments, benches, examples, and the `jobs` JSONL runner in
//! `oblisched_bench` — is expressed as data through this module's types.
//!
//! # Example
//!
//! ```
//! use oblisched::scheduler::Scheduler;
//! use oblisched::solve::{PowerAssignment, SolveRequest};
//! use oblisched_instances::nested_chain;
//! use oblisched_sinr::SinrParams;
//!
//! let scheduler = Scheduler::new(SinrParams::new(3.0, 1.0)?);
//! let instance = nested_chain(8, 2.0);
//! let request = SolveRequest::first_fit(PowerAssignment::SquareRoot);
//! let result = scheduler.solve(&instance, &request)?;
//! assert!(result.num_colors() <= 8);
//!
//! // Requests are serializable: the same run can come from a JSONL job file.
//! let json = serde_json::to_string(&request).unwrap();
//! let back: SolveRequest = serde_json::from_str(&json).unwrap();
//! assert_eq!(back, request);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use oblisched_sinr::{ObliviousPower, SinrError, SparseConfig, Variant};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The oblivious power assignments a [`SolveRequest`] can name — the
/// schemes `p = ℓ^τ` studied by the paper, as serializable data.
///
/// Conversions to and from [`ObliviousPower`] are lossless.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PowerAssignment {
    /// All requests transmit with power `1` (`τ = 0`).
    Uniform,
    /// Power proportional to the path loss (`τ = 1`).
    Linear,
    /// The square-root assignment `p = √ℓ` (`τ = ½`) — the geometric mean
    /// of uniform and linear, and the paper's universally good assignment
    /// for bidirectional requests.
    SquareRoot,
    /// The general exponent assignment `p = ℓ^τ`, interpolating between
    /// the named schemes.
    Exponent {
        /// The exponent `τ`.
        tau: f64,
    },
}

impl PowerAssignment {
    /// The three named assignments compared throughout the experiments.
    pub fn standard() -> [PowerAssignment; 3] {
        [
            PowerAssignment::Uniform,
            PowerAssignment::Linear,
            PowerAssignment::SquareRoot,
        ]
    }

    /// The equivalent [`ObliviousPower`] scheme.
    pub fn scheme(self) -> ObliviousPower {
        self.into()
    }
}

impl From<PowerAssignment> for ObliviousPower {
    fn from(a: PowerAssignment) -> ObliviousPower {
        match a {
            PowerAssignment::Uniform => ObliviousPower::Uniform,
            PowerAssignment::Linear => ObliviousPower::Linear,
            PowerAssignment::SquareRoot => ObliviousPower::SquareRoot,
            PowerAssignment::Exponent { tau } => ObliviousPower::Exponent(tau),
        }
    }
}

impl From<ObliviousPower> for PowerAssignment {
    fn from(p: ObliviousPower) -> PowerAssignment {
        match p {
            ObliviousPower::Uniform => PowerAssignment::Uniform,
            ObliviousPower::Linear => PowerAssignment::Linear,
            ObliviousPower::SquareRoot => PowerAssignment::SquareRoot,
            ObliviousPower::Exponent(tau) => PowerAssignment::Exponent { tau },
        }
    }
}

/// Which algorithm a [`SolveRequest`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SolveStrategy {
    /// Greedy first-fit coloring under the requested oblivious assignment;
    /// the interference backend follows the request's [`BackendPolicy`].
    FirstFit,
    /// Tile-sharded parallel batch scheduling with the deterministic
    /// conflict-repair merge (identical schedules for every thread count).
    Parallel {
        /// Worker threads for the shard phase (`0` = one per core).
        num_threads: usize,
    },
    /// Greedy first-fit where each color class gets its own optimised,
    /// non-oblivious power assignment (the paper's Theorem 1 baseline).
    /// The request's [`PowerAssignment`] is ignored.
    PowerControl,
    /// The §5 randomized LP-rounding coloring for the square-root
    /// assignment (bidirectional only); randomness comes from the request's
    /// `seed`.
    SqrtColoring,
    /// The Theorem 2 decomposition pipeline (tree embeddings + star
    /// analysis) for the square-root assignment (bidirectional only);
    /// randomness comes from the request's `seed`.
    SqrtDecomposition,
}

impl fmt::Display for SolveStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveStrategy::FirstFit => write!(f, "first-fit"),
            SolveStrategy::Parallel { num_threads } => {
                write!(f, "parallel[{num_threads}t]")
            }
            SolveStrategy::PowerControl => write!(f, "power-control"),
            SolveStrategy::SqrtColoring => write!(f, "sqrt-coloring"),
            SolveStrategy::SqrtDecomposition => write!(f, "sqrt-decomposition"),
        }
    }
}

/// How the facade falls back when the dense gain matrix exceeds the memory
/// budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum BackendPolicy {
    /// Dense matrix under the budget, spatially-pruned sparse backend above
    /// it — the production tiering (conservative verdicts above the budget,
    /// `O(n)` memory at fixed density).
    #[default]
    Auto,
    /// Dense matrix under the budget, uncached on-the-fly contributions
    /// above it — exact verdicts at any size, slower repeated queries.
    Exact,
}

/// A complete, serializable description of one scheduling run: the single
/// entry point [`Scheduler::solve`](crate::scheduler::Scheduler::solve)
/// consumes it and every legacy `schedule_*` method is now a thin wrapper
/// that builds one.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SolveRequest {
    /// The algorithm to run.
    pub strategy: SolveStrategy,
    /// The oblivious power assignment (ignored by
    /// [`SolveStrategy::PowerControl`]; forced to the square root by the
    /// `Sqrt*` strategies).
    pub assignment: PowerAssignment,
    /// The problem variant to solve.
    pub variant: Variant,
    /// Seed of the randomized strategies (`SqrtColoring`,
    /// `SqrtDecomposition`); ignored by the deterministic ones.
    pub seed: u64,
    /// Backend fallback policy for the first-fit and parallel strategies.
    pub backend: BackendPolicy,
    /// Memory budget (bytes) for the cached dense matrix; `None` uses the
    /// scheduler's configured budget.
    pub matrix_budget: Option<usize>,
    /// Sparse-backend construction knobs; `None` uses the scheduler's
    /// configured [`SparseConfig`].
    pub sparse: Option<SparseConfig>,
}

impl SolveRequest {
    fn new(strategy: SolveStrategy, assignment: PowerAssignment) -> Self {
        Self {
            strategy,
            assignment,
            variant: Variant::Bidirectional,
            seed: 0,
            backend: BackendPolicy::Auto,
            matrix_budget: None,
            sparse: None,
        }
    }

    /// A bidirectional first-fit request under `assignment` with the
    /// [`BackendPolicy::Auto`] tiering.
    pub fn first_fit(assignment: PowerAssignment) -> Self {
        Self::new(SolveStrategy::FirstFit, assignment)
    }

    /// A bidirectional parallel batch-scheduling request under `assignment`
    /// on `num_threads` worker threads (`0` = one per core).
    pub fn parallel(assignment: PowerAssignment, num_threads: usize) -> Self {
        Self::new(SolveStrategy::Parallel { num_threads }, assignment)
    }

    /// A bidirectional power-control request (non-oblivious per-class
    /// powers).
    pub fn power_control() -> Self {
        Self::new(SolveStrategy::PowerControl, PowerAssignment::SquareRoot)
    }

    /// A bidirectional LP-rounding request for the square-root assignment,
    /// seeded with `seed`.
    pub fn sqrt_coloring(seed: u64) -> Self {
        Self::new(SolveStrategy::SqrtColoring, PowerAssignment::SquareRoot).with_seed(seed)
    }

    /// A bidirectional decomposition-pipeline request for the square-root
    /// assignment, seeded with `seed`.
    pub fn sqrt_decomposition(seed: u64) -> Self {
        Self::new(
            SolveStrategy::SqrtDecomposition,
            PowerAssignment::SquareRoot,
        )
        .with_seed(seed)
    }

    /// Replaces the problem variant.
    pub fn with_variant(mut self, variant: Variant) -> Self {
        self.variant = variant;
        self
    }

    /// Replaces the seed of the randomized strategies.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the backend fallback policy.
    pub fn with_backend(mut self, backend: BackendPolicy) -> Self {
        self.backend = backend;
        self
    }

    /// Overrides the scheduler's dense-matrix memory budget for this run.
    pub fn with_matrix_budget(mut self, bytes: usize) -> Self {
        self.matrix_budget = Some(bytes);
        self
    }

    /// Overrides the scheduler's sparse-backend configuration for this run.
    pub fn with_sparse_config(mut self, config: SparseConfig) -> Self {
        self.sparse = Some(config);
        self
    }
}

impl Default for SolveRequest {
    /// A bidirectional auto-backend first-fit run of the square-root
    /// assignment — the paper's headline configuration.
    fn default() -> Self {
        Self::first_fit(PowerAssignment::SquareRoot)
    }
}

/// The algorithm half of a [`SolveLabel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Algorithm {
    /// Greedy first-fit on the exact backend tier (dense or on-the-fly).
    FirstFit,
    /// Greedy first-fit with the auto backend tiering (dense or sparse).
    FirstFitAuto,
    /// Tile-sharded parallel first-fit.
    ParallelFirstFit,
    /// The §5 randomized LP-rounding coloring.
    LpRounding,
    /// The Theorem 2 decomposition pipeline.
    Decomposition,
    /// The online first-fit of the dynamic scheduler (durable-session runs).
    DynamicFirstFit,
}

impl fmt::Display for Algorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Algorithm::FirstFit => write!(f, "first-fit"),
            Algorithm::FirstFitAuto => write!(f, "first-fit-auto"),
            Algorithm::ParallelFirstFit => write!(f, "parallel-first-fit"),
            Algorithm::LpRounding => write!(f, "lp-rounding"),
            Algorithm::Decomposition => write!(f, "decomposition"),
            Algorithm::DynamicFirstFit => write!(f, "dynamic-first-fit"),
        }
    }
}

/// The power-assignment half of a [`SolveLabel`].
///
/// Unlike [`PowerAssignment`] (which only names the oblivious request-side
/// schemes), this also covers the non-oblivious power-control baseline and
/// arbitrary custom schemes, so every result the facade can produce has a
/// faithful structured label.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Assignment {
    /// The uniform assignment.
    Uniform,
    /// The linear assignment.
    Linear,
    /// The square-root assignment.
    SquareRoot,
    /// The general exponent assignment `p = ℓ^τ`.
    Exponent {
        /// The exponent `τ`.
        tau: f64,
    },
    /// Non-oblivious per-class power control.
    PowerControl,
    /// A custom scheme, labelled by its `PowerScheme::name`
    /// (see `oblisched_sinr::PowerScheme`).
    Custom(String),
}

impl Assignment {
    /// Structured assignment for a scheme name as reported by
    /// `PowerScheme::name` — the named schemes map to their variants,
    /// anything else becomes [`Assignment::Custom`].
    pub fn from_scheme_name(name: &str) -> Assignment {
        match name {
            "uniform" => Assignment::Uniform,
            "linear" => Assignment::Linear,
            "sqrt" => Assignment::SquareRoot,
            _ => Assignment::Custom(name.to_string()),
        }
    }
}

impl From<PowerAssignment> for Assignment {
    fn from(a: PowerAssignment) -> Assignment {
        match a {
            PowerAssignment::Uniform => Assignment::Uniform,
            PowerAssignment::Linear => Assignment::Linear,
            PowerAssignment::SquareRoot => Assignment::SquareRoot,
            PowerAssignment::Exponent { tau } => Assignment::Exponent { tau },
        }
    }
}

impl fmt::Display for Assignment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Assignment::Uniform => write!(f, "uniform"),
            Assignment::Linear => write!(f, "linear"),
            Assignment::SquareRoot => write!(f, "sqrt"),
            Assignment::Exponent { tau } => write!(f, "loss^{tau}"),
            Assignment::PowerControl => write!(f, "power-control"),
            Assignment::Custom(name) => write!(f, "{name}"),
        }
    }
}

/// Structured description of how a [`ScheduleResult`] was produced: the
/// algorithm and the power assignment. `Display` renders exactly the
/// `algorithm/assignment` strings the experiment tables always used
/// (`first-fit/sqrt`, `lp-rounding/sqrt`, `first-fit/power-control`, …).
///
/// [`ScheduleResult`]: crate::scheduler::ScheduleResult
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SolveLabel {
    /// The algorithm that produced the schedule.
    pub algorithm: Algorithm,
    /// The power assignment the schedule was validated under.
    pub assignment: Assignment,
}

impl SolveLabel {
    /// Creates a label.
    pub fn new(algorithm: Algorithm, assignment: Assignment) -> Self {
        Self {
            algorithm,
            assignment,
        }
    }
}

impl fmt::Display for SolveLabel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.algorithm, self.assignment)
    }
}

/// Typed failures of [`Scheduler::solve`](crate::scheduler::Scheduler::solve)
/// — what used to be documented panics of the `schedule_*` methods.
#[derive(Debug, Clone, PartialEq)]
pub enum ScheduleError {
    /// The SINR substrate rejected the run's inputs (invalid parameters,
    /// power vectors, …).
    Sinr(SinrError),
    /// The strategy only applies to a different problem variant (the `Sqrt*`
    /// strategies are bidirectional-only: the paper's guarantee does not
    /// exist for directed requests).
    UnsupportedVariant {
        /// The requested strategy.
        strategy: SolveStrategy,
        /// The variant it was requested for.
        variant: Variant,
    },
    /// A produced multi-request color class failed validation against the
    /// exact SINR checker — a bug in the algorithm, reported instead of
    /// panicking.
    ValidationFailed {
        /// The violating color class.
        color: usize,
        /// A request in the class whose constraint is violated.
        request: usize,
        /// The label of the run that produced the schedule.
        label: SolveLabel,
    },
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::Sinr(e) => write!(f, "SINR model error: {e}"),
            ScheduleError::UnsupportedVariant { strategy, variant } => write!(
                f,
                "strategy {strategy} applies to the bidirectional variant, not {variant}"
            ),
            ScheduleError::ValidationFailed {
                color,
                request,
                label,
            } => write!(
                f,
                "{label} produced color class {color} violating the SINR constraint of \
                 request {request} (an algorithm bug, not an input condition)"
            ),
        }
    }
}

impl std::error::Error for ScheduleError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ScheduleError::Sinr(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SinrError> for ScheduleError {
    fn from(e: SinrError) -> ScheduleError {
        ScheduleError::Sinr(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_render_the_legacy_experiment_strings() {
        let cases = [
            (
                SolveLabel::new(Algorithm::FirstFit, Assignment::Uniform),
                "first-fit/uniform",
            ),
            (
                SolveLabel::new(Algorithm::FirstFitAuto, Assignment::SquareRoot),
                "first-fit-auto/sqrt",
            ),
            (
                SolveLabel::new(Algorithm::ParallelFirstFit, Assignment::Linear),
                "parallel-first-fit/linear",
            ),
            (
                SolveLabel::new(Algorithm::LpRounding, Assignment::SquareRoot),
                "lp-rounding/sqrt",
            ),
            (
                SolveLabel::new(Algorithm::Decomposition, Assignment::SquareRoot),
                "decomposition/sqrt",
            ),
            (
                SolveLabel::new(Algorithm::DynamicFirstFit, Assignment::SquareRoot),
                "dynamic-first-fit/sqrt",
            ),
            (
                SolveLabel::new(Algorithm::FirstFit, Assignment::PowerControl),
                "first-fit/power-control",
            ),
            (
                SolveLabel::new(Algorithm::FirstFit, Assignment::Exponent { tau: 0.25 }),
                "first-fit/loss^0.25",
            ),
            (
                SolveLabel::new(Algorithm::FirstFit, Assignment::Custom("cube".into())),
                "first-fit/cube",
            ),
        ];
        for (label, expected) in cases {
            assert_eq!(label.to_string(), expected);
        }
    }

    #[test]
    fn scheme_names_map_back_to_structured_assignments() {
        assert_eq!(Assignment::from_scheme_name("uniform"), Assignment::Uniform);
        assert_eq!(Assignment::from_scheme_name("linear"), Assignment::Linear);
        assert_eq!(Assignment::from_scheme_name("sqrt"), Assignment::SquareRoot);
        assert_eq!(
            Assignment::from_scheme_name("loss^0.75"),
            Assignment::Custom("loss^0.75".into())
        );
    }

    #[test]
    fn power_assignment_round_trips_through_oblivious_power() {
        for a in [
            PowerAssignment::Uniform,
            PowerAssignment::Linear,
            PowerAssignment::SquareRoot,
            PowerAssignment::Exponent { tau: 0.75 },
        ] {
            assert_eq!(PowerAssignment::from(a.scheme()), a);
        }
    }

    #[test]
    fn request_builders_set_their_strategy() {
        assert_eq!(
            SolveRequest::first_fit(PowerAssignment::Uniform).strategy,
            SolveStrategy::FirstFit
        );
        assert_eq!(
            SolveRequest::parallel(PowerAssignment::SquareRoot, 4).strategy,
            SolveStrategy::Parallel { num_threads: 4 }
        );
        assert_eq!(
            SolveRequest::power_control().strategy,
            SolveStrategy::PowerControl
        );
        assert_eq!(SolveRequest::sqrt_coloring(7).seed, 7);
        assert_eq!(
            SolveRequest::sqrt_decomposition(9).strategy,
            SolveStrategy::SqrtDecomposition
        );
        let r = SolveRequest::default()
            .with_variant(Variant::Directed)
            .with_backend(BackendPolicy::Exact)
            .with_matrix_budget(1024)
            .with_seed(3);
        assert_eq!(r.variant, Variant::Directed);
        assert_eq!(r.backend, BackendPolicy::Exact);
        assert_eq!(r.matrix_budget, Some(1024));
        assert_eq!(r.seed, 3);
    }

    #[test]
    fn schedule_error_implements_error_with_source() {
        let e = ScheduleError::from(SinrError::InvalidPower {
            index: 1,
            value: -1.0,
        });
        assert!(std::error::Error::source(&e).is_some());
        assert!(e.to_string().contains("SINR"));
        let e = ScheduleError::UnsupportedVariant {
            strategy: SolveStrategy::SqrtColoring,
            variant: Variant::Directed,
        };
        assert!(e.to_string().contains("bidirectional variant"));
        let e = ScheduleError::ValidationFailed {
            color: 2,
            request: 5,
            label: SolveLabel::new(Algorithm::FirstFit, Assignment::Uniform),
        };
        assert!(e.to_string().contains("color class 2"));
        assert!(std::error::Error::source(&e).is_none());
    }
}

//! Dynamic scheduling under churn: maintain a valid coloring while requests
//! arrive and depart.
//!
//! The paper's oblivious power assignments are motivated precisely by
//! settings where the request set is *not* known in advance — a power that
//! depends only on the sender–receiver distance keeps working as traffic
//! comes and goes. The static algorithms of this crate cannot exploit that:
//! any arrival or departure forces a full reschedule. [`DynamicScheduler`]
//! closes the gap on top of the incremental engine
//! ([`oblisched_sinr::engine`]):
//!
//! * **arrival** — first-fit placement into the existing
//!   [`ColorAccumulator`]s, `O(live)` contributions per event, exactly the
//!   query the engine answers incrementally;
//! * **departure** — [`ColorAccumulator::remove`] subtracts the departing
//!   member's contributions from its class in `O(class)`, with the engine's
//!   drift guard rebuilding sums exactly every few removals;
//! * **compaction** — emptied trailing classes are popped eagerly, interior
//!   holes are refilled lazily by later arrivals, and a *bounded local
//!   recoloring* step migrates up to
//!   [`recolor_budget`](DynamicConfig::recolor_budget) members of the last
//!   color into earlier classes after each departure, so the color count
//!   tracks the live set downward instead of ratcheting up;
//! * **validation** — [`DynamicScheduler::validate`] replays the current
//!   state through the naive from-scratch feasibility fold (the
//!   [`Evaluator`](oblisched_sinr::Evaluator) path when the scheduler runs
//!   on a [`VariantView`](oblisched_sinr::feasibility::VariantView)) as
//!   ground truth, and checks the accumulated sums against an exact rebuild.
//!
//! External [`RequestId`]s are stable (monotonically assigned, never reused)
//! and map to the dense item indices of the underlying
//! [`IncrementalSystem`](oblisched_sinr::IncrementalSystem); the same
//! engine item may be live at most once.
//!
//! # Example
//!
//! ```
//! use oblisched::dynamic::DynamicScheduler;
//! use oblisched_metric::LineMetric;
//! use oblisched_sinr::{Instance, ObliviousPower, Request, SinrParams, Variant};
//!
//! // A universe of three requests; churn toggles which of them are live.
//! let metric = LineMetric::new(vec![0.0, 1.0, 10.0, 12.0, 300.0, 304.0]);
//! let instance = Instance::new(
//!     metric,
//!     vec![Request::new(0, 1), Request::new(2, 3), Request::new(4, 5)],
//! )?;
//! let eval = instance.evaluator(SinrParams::new(3.0, 1.0)?, &ObliviousPower::SquareRoot);
//! let view = eval.view(Variant::Bidirectional);
//!
//! let mut scheduler = DynamicScheduler::new(&view);
//! let a = scheduler.insert(0)?;
//! let b = scheduler.insert(1)?;
//! let c = scheduler.insert(2)?;
//! assert_eq!(scheduler.len(), 3);
//!
//! // Departures keep the coloring valid; every state certifies against the
//! // naive evaluator.
//! scheduler.remove(b)?;
//! scheduler.validate()?;
//! assert_eq!(scheduler.len(), 2);
//! assert_eq!(scheduler.color_of(a), Some(0));
//! assert_eq!(scheduler.item_of(c), Some(2));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use oblisched_sinr::engine::DEFAULT_REBUILD_INTERVAL;
use oblisched_sinr::feasibility::REL_TOL;
use oblisched_sinr::{ColorAccumulator, GainBackend, InterferenceSystem};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Stable external identifier of a live request, assigned by
/// [`DynamicScheduler::insert`]. Ids are monotone and never reused, so a
/// caller can hold one across arbitrary churn.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RequestId(u64);

impl RequestId {
    /// The raw id value (for logging / external maps).
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Rebuilds an id from its raw value — the inverse of
    /// [`raw`](RequestId::raw), for callers that persisted ids externally
    /// (e.g. a write-ahead log). The value is not checked against any
    /// scheduler; operations on a stale id fail with
    /// [`DynamicError::UnknownId`] as usual.
    pub fn from_raw(raw: u64) -> Self {
        Self(raw)
    }
}

impl fmt::Display for RequestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "req#{}", self.0)
    }
}

/// Tuning knobs of the [`DynamicScheduler`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DynamicConfig {
    /// Maximum number of members of the last color class that a departure
    /// event tries to migrate into earlier classes (bounded local
    /// recoloring). `0` disables recoloring — colors then only shrink when a
    /// class empties by itself.
    pub recolor_budget: usize,
    /// Removals per class after which the engine's drift guard rebuilds the
    /// running interference sums exactly
    /// (see [`ColorAccumulator::with_rebuild_interval`]).
    pub rebuild_interval: usize,
    /// Maximum relative drift between the accumulated sums and an exact
    /// rebuild that [`DynamicScheduler::validate`] accepts.
    pub drift_tolerance: f64,
}

impl Default for DynamicConfig {
    fn default() -> Self {
        Self {
            recolor_budget: 8,
            rebuild_interval: DEFAULT_REBUILD_INTERVAL,
            drift_tolerance: 1e-6,
        }
    }
}

/// Errors of the dynamic scheduling subsystem.
#[derive(Debug, Clone, PartialEq)]
pub enum DynamicError {
    /// The inserted item index is outside the underlying system.
    ItemOutOfRange {
        /// The offending item index.
        item: usize,
        /// Number of items in the system.
        len: usize,
    },
    /// The item is already live under another id (an engine item may be live
    /// at most once — a duplicate would not interfere with itself and the
    /// verdicts would be bogus).
    AlreadyLive {
        /// The offending item index.
        item: usize,
        /// The id under which the item is currently live.
        id: RequestId,
    },
    /// The id is not live (never issued, or already removed).
    UnknownId(RequestId),
    /// Validation found a color class that the ground-truth evaluator
    /// rejects.
    InfeasibleClass {
        /// The color of the violating class.
        color: usize,
        /// A violating member of the class.
        item: usize,
    },
    /// Validation found accumulated sums drifted beyond the configured
    /// tolerance from an exact rebuild.
    DriftExceeded {
        /// The color of the drifted class.
        color: usize,
        /// The measured maximum relative drift.
        drift: f64,
    },
    /// Validation found the internal id/item/color maps out of sync (a bug
    /// in the scheduler, not an input condition).
    Inconsistent {
        /// Human-readable description of the violated invariant.
        detail: String,
    },
    /// A persisted [`SchedulerState`] cannot be restored: it references
    /// items or ids inconsistently (duplicate member, item out of range,
    /// id at or above the recorded `next_id`).
    InvalidState {
        /// Human-readable description of the violated invariant.
        detail: String,
    },
}

impl fmt::Display for DynamicError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DynamicError::ItemOutOfRange { item, len } => {
                write!(f, "item {item} is out of range for a system of {len} items")
            }
            DynamicError::AlreadyLive { item, id } => {
                write!(f, "item {item} is already live as {id}")
            }
            DynamicError::UnknownId(id) => write!(f, "{id} is not live"),
            DynamicError::InfeasibleClass { color, item } => {
                write!(f, "color {color} is infeasible at member {item}")
            }
            DynamicError::DriftExceeded { color, drift } => {
                write!(f, "color {color} drifted {drift:e} beyond tolerance")
            }
            DynamicError::Inconsistent { detail } => {
                write!(f, "internal maps out of sync: {detail}")
            }
            DynamicError::InvalidState { detail } => {
                write!(f, "scheduler state cannot be restored: {detail}")
            }
        }
    }
}

impl std::error::Error for DynamicError {}

/// Where a live request sits: its engine item and its current color.
#[derive(Debug, Clone, Copy)]
struct Entry {
    item: usize,
    color: usize,
}

/// One migration performed by the bounded local recoloring step of a
/// departure: the request `id` moved from color `from` to color `to`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecolorMove {
    /// The migrated live request.
    pub id: RequestId,
    /// The color the request left.
    pub from: usize,
    /// The color the request joined.
    pub to: usize,
}

/// The full effect of one departure event, as reported by
/// [`DynamicScheduler::remove_traced`]: the departed engine item plus every
/// recoloring migration the event triggered, in the order they were applied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Removal {
    /// The engine item that departed.
    pub item: usize,
    /// The bounded-recoloring migrations, in application order.
    pub moves: Vec<RecolorMove>,
}

/// One live request in a [`SchedulerState`]: its stable id and engine item.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StateMember {
    /// The raw [`RequestId`] value.
    pub id: u64,
    /// The dense engine item index.
    pub item: usize,
}

/// A serializable snapshot of a [`DynamicScheduler`]'s logical state: the
/// coloring (members per class, in insertion order, including interior empty
/// classes left by lazy compaction), the id counter and the recoloring
/// cursor. Together with the underlying system and [`DynamicConfig`] this
/// determines the scheduler's future behaviour exactly — restoring via
/// [`DynamicScheduler::from_state`] and replaying the same events yields the
/// same coloring bit-for-bit, which is what makes write-ahead-log recovery
/// (`oblisched::durability`) cheap to verify.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SchedulerState {
    /// Members per color class, in insertion order. Trailing classes are
    /// never empty; interior ones may be.
    pub classes: Vec<Vec<StateMember>>,
    /// The next id to assign.
    pub next_id: u64,
    /// The rotating start offset of the recoloring probe window.
    pub recolor_cursor: usize,
}

/// An online first-fit scheduler maintaining a valid coloring of a changing
/// subset of a [`GainBackend`]'s items under
/// [`insert`](DynamicScheduler::insert) / [`remove`](DynamicScheduler::remove)
/// events. See the [module docs](self) for the event-handling strategy.
#[derive(Debug)]
pub struct DynamicScheduler<'s, S: GainBackend + ?Sized> {
    system: &'s S,
    config: DynamicConfig,
    /// One accumulator per color. Trailing empties are popped eagerly;
    /// interior empties are legal (lazy compaction) and refilled by later
    /// arrivals.
    classes: Vec<ColorAccumulator<'s, S>>,
    /// Live requests by raw id. A `BTreeMap` rather than a hash map: every
    /// collection in the scheduler must have deterministic iteration order
    /// so no future traversal can leak hash-order nondeterminism into
    /// schedules (`oblint`'s map-iteration-order lint enforces this).
    entries: BTreeMap<u64, Entry>,
    /// Dense item index → owning live id.
    owner: Vec<Option<u64>>,
    next_id: u64,
    /// Rotating start offset of the bounded-recoloring probe window, so that
    /// successive departures eventually probe every member of the last class
    /// instead of stalling on an unmovable prefix.
    recolor_cursor: usize,
}

// Manual impl: the derive would demand `S: Clone`, but the scheduler only
// holds a shared reference to the system.
impl<S: GainBackend + ?Sized> Clone for DynamicScheduler<'_, S> {
    fn clone(&self) -> Self {
        Self {
            system: self.system,
            config: self.config,
            classes: self.classes.clone(),
            entries: self.entries.clone(),
            owner: self.owner.clone(),
            next_id: self.next_id,
            recolor_cursor: self.recolor_cursor,
        }
    }
}

impl<'s, S: GainBackend + ?Sized> DynamicScheduler<'s, S> {
    /// Creates an empty scheduler over `system` with the default
    /// [`DynamicConfig`].
    pub fn new(system: &'s S) -> Self {
        Self::with_config(system, DynamicConfig::default())
    }

    /// Creates an empty scheduler with explicit tuning knobs.
    ///
    /// # Panics
    ///
    /// Panics if `config.rebuild_interval` is zero or
    /// `config.drift_tolerance` is not positive.
    pub fn with_config(system: &'s S, config: DynamicConfig) -> Self {
        assert!(
            config.rebuild_interval >= 1,
            "the rebuild interval must be at least 1"
        );
        assert!(
            config.drift_tolerance > 0.0,
            "the drift tolerance must be positive"
        );
        Self {
            system,
            config,
            classes: Vec::new(),
            entries: BTreeMap::new(),
            owner: vec![None; system.len()],
            next_id: 0,
            recolor_cursor: 0,
        }
    }

    /// The configuration in effect.
    pub fn config(&self) -> DynamicConfig {
        self.config
    }

    /// Number of live requests.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` when no request is live.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of colors in use (non-empty classes; interior holes left by
    /// lazy compaction do not count).
    pub fn num_colors(&self) -> usize {
        self.classes
            .iter()
            .filter(|class| !class.is_empty())
            .count()
    }

    /// The color of a live request, `None` when the id is not live.
    pub fn color_of(&self, id: RequestId) -> Option<usize> {
        self.entries.get(&id.0).map(|entry| entry.color)
    }

    /// The engine item of a live request, `None` when the id is not live.
    pub fn item_of(&self, id: RequestId) -> Option<usize> {
        self.entries.get(&id.0).map(|entry| entry.item)
    }

    /// The live id owning an engine item, `None` when the item is not live.
    pub fn id_of_item(&self, item: usize) -> Option<RequestId> {
        self.owner.get(item).copied().flatten().map(RequestId)
    }

    /// The live items grouped by color, indexed by color (members in
    /// insertion order; interior classes may be empty).
    pub fn color_classes(&self) -> Vec<Vec<usize>> {
        self.classes
            .iter()
            .map(|class| class.members().to_vec())
            .collect()
    }

    /// All live items, in color-then-insertion order.
    pub fn live_items(&self) -> Vec<usize> {
        self.classes
            .iter()
            .flat_map(|class| class.members().iter().copied())
            .collect()
    }

    /// Handles an arrival: places `item` into the first color class that
    /// stays feasible (the engine answers each probe in `O(class)`
    /// contributions), opening a fresh color when none accepts — including
    /// for noise-doomed singletons, which get a color of their own exactly as
    /// in static first-fit. Returns the stable id of the new live request.
    ///
    /// # Errors
    ///
    /// * [`DynamicError::ItemOutOfRange`] if `item` is not an item of the
    ///   underlying system.
    /// * [`DynamicError::AlreadyLive`] if `item` is already live.
    pub fn insert(&mut self, item: usize) -> Result<RequestId, DynamicError> {
        if item >= self.system.len() {
            return Err(DynamicError::ItemOutOfRange {
                item,
                len: self.system.len(),
            });
        }
        if let Some(id) = self.owner[item] {
            return Err(DynamicError::AlreadyLive {
                item,
                id: RequestId(id),
            });
        }
        // Churn-capable backends patch their live aggregates and materialised
        // rows here, before any class probes the newcomer.
        self.system.note_arrival(item);
        let color = match self
            .classes
            .iter_mut()
            .position(|class| class.try_insert(item))
        {
            Some(color) => color,
            None => {
                let mut class = ColorAccumulator::new(self.system)
                    .with_rebuild_interval(self.config.rebuild_interval);
                class.insert_unchecked(item);
                self.classes.push(class);
                self.classes.len() - 1
            }
        };
        let id = RequestId(self.next_id);
        self.next_id += 1;
        self.entries.insert(id.0, Entry { item, color });
        self.owner[item] = Some(id.0);
        Ok(id)
    }

    /// Handles a departure: subtracts the request's contributions from its
    /// class in `O(class)`, pops emptied trailing colors, and spends the
    /// bounded recoloring budget draining the last color into earlier ones.
    /// Returns the engine item that departed.
    ///
    /// # Errors
    ///
    /// [`DynamicError::UnknownId`] if `id` is not live.
    pub fn remove(&mut self, id: RequestId) -> Result<usize, DynamicError> {
        Ok(self.remove_traced(id)?.item)
    }

    /// [`remove`](DynamicScheduler::remove), additionally reporting every
    /// recoloring migration the departure triggered — what a write-ahead log
    /// records so recovery can cross-check the replayed migrations against
    /// the logged ones.
    ///
    /// # Errors
    ///
    /// [`DynamicError::UnknownId`] if `id` is not live.
    pub fn remove_traced(&mut self, id: RequestId) -> Result<Removal, DynamicError> {
        let entry = self
            .entries
            .remove(&id.0)
            .ok_or(DynamicError::UnknownId(id))?;
        self.owner[entry.item] = None;
        let removed = self.classes[entry.color].remove(entry.item);
        debug_assert!(removed, "live entry must be a member of its class");
        // Only after the class subtracted the member's stored contributions:
        // churn-capable backends drop the row and patch the survivors here,
        // before the recoloring probes below see the shrunken live set.
        self.system.note_departure(entry.item);
        self.pop_trailing_empties();
        let moves = self.local_recolor();
        self.pop_trailing_empties();
        Ok(Removal {
            item: entry.item,
            moves,
        })
    }

    fn pop_trailing_empties(&mut self) {
        while self.classes.last().is_some_and(|class| class.is_empty()) {
            self.classes.pop();
        }
    }

    /// Bounded local recoloring: try to migrate up to `recolor_budget`
    /// members of the last non-empty color into earlier classes. Each probe
    /// is an engine query; a successful migration can only shrink the last
    /// class, so the color count decreases once it drains. The probe window
    /// rotates across calls so every member is eventually probed even when
    /// an unmovable prefix would otherwise monopolise the budget. Returns
    /// the performed migrations in application order.
    fn local_recolor(&mut self) -> Vec<RecolorMove> {
        let budget = self.config.recolor_budget;
        if budget == 0 {
            return Vec::new();
        }
        let Some(last) = self.classes.iter().rposition(|class| !class.is_empty()) else {
            return Vec::new();
        };
        if last == 0 {
            return Vec::new();
        }
        let (earlier, rest) = self.classes.split_at_mut(last);
        let class = &mut rest[0];
        let len = class.len();
        let start = self.recolor_cursor % len;
        self.recolor_cursor = self.recolor_cursor.wrapping_add(budget);
        let candidates: Vec<usize> = (0..len.min(budget))
            .map(|k| class.members()[(start + k) % len])
            .collect();
        let mut moves = Vec::new();
        for item in candidates {
            let target = earlier.iter_mut().position(|class| class.try_insert(item));
            if let Some(color) = target {
                let removed = class.remove(item);
                debug_assert!(removed, "migrated member must leave its old class");
                let id = self.owner[item].expect("live member has an owner id");
                self.entries
                    .get_mut(&id)
                    .expect("owner map points at a live entry")
                    .color = color;
                moves.push(RecolorMove {
                    id: RequestId(id),
                    from: last,
                    to: color,
                });
            }
        }
        moves
    }

    /// Exports the scheduler's logical state — the coloring with its stable
    /// ids, the id counter and the recoloring cursor — as a serializable
    /// [`SchedulerState`]. Restoring it with
    /// [`from_state`](DynamicScheduler::from_state) over the same system and
    /// config reproduces the scheduler exactly (same future placements,
    /// same future ids).
    pub fn export_state(&self) -> SchedulerState {
        let classes = self
            .classes
            .iter()
            .map(|class| {
                class
                    .members()
                    .iter()
                    .map(|&item| StateMember {
                        id: self.owner[item].expect("live member has an owner id"),
                        item,
                    })
                    .collect()
            })
            .collect();
        SchedulerState {
            classes,
            next_id: self.next_id,
            recolor_cursor: self.recolor_cursor,
        }
    }

    /// Rebuilds a scheduler from a previously exported [`SchedulerState`]
    /// over the same `system` (same items in the same order) and `config`.
    /// The accumulated interference sums are recomputed exactly from the
    /// membership, so a restored scheduler starts drift-free.
    ///
    /// # Errors
    ///
    /// [`DynamicError::InvalidState`] when the state references an item out
    /// of range, repeats an item or id, or carries an id at or above its own
    /// `next_id`.
    ///
    /// # Panics
    ///
    /// Panics on an invalid `config`, like
    /// [`with_config`](DynamicScheduler::with_config).
    pub fn from_state(
        system: &'s S,
        config: DynamicConfig,
        state: &SchedulerState,
    ) -> Result<Self, DynamicError> {
        let mut sched = Self::with_config(system, config);
        for (color, members) in state.classes.iter().enumerate() {
            let mut class =
                ColorAccumulator::new(system).with_rebuild_interval(config.rebuild_interval);
            for member in members {
                if member.item >= system.len() {
                    return Err(DynamicError::InvalidState {
                        detail: format!(
                            "member item {} of color {color} is out of range for a system of {} \
                             items",
                            member.item,
                            system.len()
                        ),
                    });
                }
                if member.id >= state.next_id {
                    return Err(DynamicError::InvalidState {
                        detail: format!(
                            "member id {} of color {color} is not below next_id {}",
                            member.id, state.next_id
                        ),
                    });
                }
                if sched.owner[member.item].is_some() {
                    return Err(DynamicError::InvalidState {
                        detail: format!("item {} appears twice", member.item),
                    });
                }
                if sched.entries.contains_key(&member.id) {
                    return Err(DynamicError::InvalidState {
                        detail: format!("id {} appears twice", member.id),
                    });
                }
                system.note_arrival(member.item);
                class.insert_unchecked(member.item);
                sched.entries.insert(
                    member.id,
                    Entry {
                        item: member.item,
                        color,
                    },
                );
                sched.owner[member.item] = Some(member.id);
            }
            sched.classes.push(class);
        }
        sched.pop_trailing_empties();
        sched.next_id = state.next_id;
        sched.recolor_cursor = state.recolor_cursor;
        Ok(sched)
    }

    /// Replays the current state through the underlying system's
    /// from-scratch feasibility fold (for a
    /// [`VariantView`](oblisched_sinr::feasibility::VariantView) this is the
    /// naive [`Evaluator`](oblisched_sinr::Evaluator) path — the workspace's
    /// ground truth) and checks the accumulated sums against an exact
    /// rebuild under the configured
    /// [`drift_tolerance`](DynamicConfig::drift_tolerance).
    ///
    /// The two halves are coherent: the drift check bounds how far placement
    /// verdicts can sit from exact arithmetic, and the feasibility check
    /// (see [`validate_against`](DynamicScheduler::validate_against))
    /// certifies at the gain relaxed by that same tolerance.
    ///
    /// On a **conservative** backend
    /// ([`is_exact`](oblisched_sinr::GainBackend::is_exact) `false`, e.g.
    /// the churn-capable sparse tier) the feasibility half of the self-check
    /// is skipped — only structural consistency and drift are enforced —
    /// because the backend's estimates move as the session churns; certify
    /// such sessions against the naive evaluator with
    /// [`validate_against`](DynamicScheduler::validate_against).
    ///
    /// # Errors
    ///
    /// Any [`DynamicError`] describing the first violated invariant.
    pub fn validate(&self) -> Result<(), DynamicError> {
        // The feasibility half of the self-check is only meaningful on an
        // exact backend. A conservative backend's verdicts are time-varying
        // estimates — later arrivals anywhere in the universe grow the
        // pruned-mass pads of materialised rows — so a class the backend
        // certified at accept time (and that the ground truth still
        // certifies) need not re-certify against the backend's *current*
        // estimate. Structural consistency and the drift bound still hold
        // and are checked; ground-truth certification is
        // [`validate_against`](DynamicScheduler::validate_against)'s job.
        self.validate_with(self.system, self.system.is_exact())?;
        for (color, class) in self.classes.iter().enumerate() {
            let mut fresh = class.clone();
            let drift = fresh.rebuild();
            // NaN drift must fail too, hence the explicit check.
            if drift.is_nan() || drift > self.config.drift_tolerance {
                return Err(DynamicError::DriftExceeded { color, drift });
            }
        }
        Ok(())
    }

    /// Structural consistency plus class feasibility against an explicit
    /// ground-truth system (which must index the same items — e.g. the naive
    /// [`VariantView`](oblisched_sinr::feasibility::VariantView) when the
    /// scheduler itself runs on a cached
    /// [`GainMatrix`](oblisched_sinr::GainMatrix)).
    ///
    /// Multi-member classes must be simultaneously feasible at the truth's
    /// gain *relaxed by the configured
    /// [`drift_tolerance`](DynamicConfig::drift_tolerance)*: placement
    /// verdicts are decided on running sums that may carry bounded
    /// floating-point drift after removals (the engine's guarantee, enforced
    /// by [`validate`](DynamicScheduler::validate)), so a borderline accept
    /// inside the drift budget must not be reported as a scheduler bug,
    /// while any genuine misplacement — violations are factors, not parts
    /// per million — is still caught. Single-member classes are exempt (with
    /// ambient noise a request can be infeasible even alone, and a color of
    /// its own is the best any schedule can do — the same convention as the
    /// static `Scheduler` facade).
    ///
    /// # Errors
    ///
    /// Any [`DynamicError`] describing the first violated invariant.
    pub fn validate_against<T: InterferenceSystem + ?Sized>(
        &self,
        truth: &T,
    ) -> Result<(), DynamicError> {
        self.validate_with(truth, true)
    }

    /// The shared body of [`validate`](DynamicScheduler::validate) and
    /// [`validate_against`](DynamicScheduler::validate_against): structural
    /// consistency always, class feasibility against `truth` only when
    /// `certify` is set (skipped when `truth` is a conservative backend
    /// re-checking itself).
    fn validate_with<T: InterferenceSystem + ?Sized>(
        &self,
        truth: &T,
        certify: bool,
    ) -> Result<(), DynamicError> {
        let certification_gain = truth.beta() * (1.0 - self.config.drift_tolerance);
        let mut seen = 0usize;
        for (color, class) in self.classes.iter().enumerate() {
            for &item in class.members() {
                let id = self.owner.get(item).copied().flatten().ok_or_else(|| {
                    DynamicError::Inconsistent {
                        detail: format!("member {item} of color {color} has no owner id"),
                    }
                })?;
                let entry = self
                    .entries
                    .get(&id)
                    .ok_or_else(|| DynamicError::Inconsistent {
                        detail: format!("owner id {id} of item {item} has no live entry"),
                    })?;
                if entry.item != item || entry.color != color {
                    return Err(DynamicError::Inconsistent {
                        detail: format!(
                            "entry of id {id} says (item {}, color {}), class says (item \
                             {item}, color {color})",
                            entry.item, entry.color
                        ),
                    });
                }
                seen += 1;
            }
            if certify
                && class.len() >= 2
                && !truth.is_feasible_with_gain(class.members(), certification_gain)
            {
                let threshold = certification_gain * (1.0 - REL_TOL);
                let item = class
                    .members()
                    .iter()
                    .copied()
                    .find(|&i| {
                        // NaN SINR counts as violating, like the naive check.
                        let sinr = truth.sinr(i, class.members());
                        sinr.is_nan() || sinr < threshold
                    })
                    .unwrap_or(class.members()[0]);
                return Err(DynamicError::InfeasibleClass { color, item });
            }
        }
        if seen != self.entries.len() {
            return Err(DynamicError::Inconsistent {
                detail: format!(
                    "{} live entries but {seen} class members",
                    self.entries.len()
                ),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oblisched_instances::{nested_chain, scaling_uniform};
    use oblisched_sinr::{GainMatrix, ObliviousPower, SinrParams, Variant};
    use rand::Rng;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn params() -> SinrParams {
        SinrParams::new(3.0, 1.0).unwrap()
    }

    #[test]
    fn insert_remove_roundtrip_keeps_state_consistent() {
        let inst = nested_chain(8, 2.0);
        let eval = inst.evaluator(params(), &ObliviousPower::SquareRoot);
        let view = eval.view(Variant::Bidirectional);
        let mut sched = DynamicScheduler::new(&view);
        let ids: Vec<RequestId> = (0..8).map(|i| sched.insert(i).unwrap()).collect();
        assert_eq!(sched.len(), 8);
        sched.validate().unwrap();
        for (i, &id) in ids.iter().enumerate() {
            assert_eq!(sched.item_of(id), Some(i));
            assert_eq!(sched.id_of_item(i), Some(id));
        }
        for &id in &ids {
            sched.remove(id).unwrap();
            sched.validate().unwrap();
        }
        assert!(sched.is_empty());
        assert_eq!(sched.num_colors(), 0);
    }

    #[test]
    fn ids_are_stable_and_never_reused() {
        let inst = nested_chain(4, 2.0);
        let eval = inst.evaluator(params(), &ObliviousPower::SquareRoot);
        let view = eval.view(Variant::Bidirectional);
        let mut sched = DynamicScheduler::new(&view);
        let a = sched.insert(0).unwrap();
        sched.remove(a).unwrap();
        let b = sched.insert(0).unwrap();
        assert_ne!(a, b, "ids must not be reused after a departure");
        assert!(b > a);
        assert_eq!(sched.color_of(a), None);
        assert_eq!(format!("{b}"), format!("req#{}", b.raw()));
    }

    #[test]
    fn duplicate_and_out_of_range_inserts_are_rejected() {
        let inst = nested_chain(3, 2.0);
        let eval = inst.evaluator(params(), &ObliviousPower::SquareRoot);
        let view = eval.view(Variant::Bidirectional);
        let mut sched = DynamicScheduler::new(&view);
        let id = sched.insert(1).unwrap();
        assert_eq!(
            sched.insert(1),
            Err(DynamicError::AlreadyLive { item: 1, id })
        );
        assert_eq!(
            sched.insert(99),
            Err(DynamicError::ItemOutOfRange { item: 99, len: 3 })
        );
        assert_eq!(
            sched.remove(RequestId(777)),
            Err(DynamicError::UnknownId(RequestId(777)))
        );
        // Errors render a readable description.
        assert!(DynamicError::UnknownId(id).to_string().contains("req#"));
    }

    #[test]
    fn first_fit_placement_matches_static_first_fit_on_pure_arrivals() {
        let inst = scaling_uniform(60, 11);
        for power in ObliviousPower::standard_assignments() {
            let eval = inst.evaluator(params(), &power);
            for variant in Variant::all() {
                let view = eval.view(variant);
                let mut sched = DynamicScheduler::new(&view);
                for i in 0..inst.len() {
                    sched.insert(i).unwrap();
                }
                let static_first_fit = crate::greedy::first_fit_coloring(&view);
                assert_eq!(sched.num_colors(), static_first_fit.num_colors());
                for i in 0..inst.len() {
                    let id = sched.id_of_item(i).unwrap();
                    assert_eq!(sched.color_of(id), Some(static_first_fit.color_of(i)));
                }
            }
        }
    }

    #[test]
    fn departures_shrink_colors_via_local_recoloring() {
        // The nested chain under uniform power needs ~n colors; removing most
        // requests must let the color count fall, not ratchet.
        let inst = nested_chain(12, 2.0);
        let eval = inst.evaluator(params(), &ObliviousPower::Uniform);
        let view = eval.view(Variant::Bidirectional);
        let mut sched = DynamicScheduler::new(&view);
        let ids: Vec<RequestId> = (0..12).map(|i| sched.insert(i).unwrap()).collect();
        let full = sched.num_colors();
        assert!(full >= 10);
        for &id in &ids[..9] {
            sched.remove(id).unwrap();
            sched.validate().unwrap();
        }
        assert!(
            sched.num_colors() <= 4,
            "colors must shrink with the live set, still {} after 9 departures",
            sched.num_colors()
        );
    }

    #[test]
    fn recolor_probe_window_rotates_past_an_unmovable_prefix() {
        // Last class = {1, 3}: member 1 can never leave (it conflicts with
        // request 0 in class 0), member 3 becomes movable once its blocker
        // (request 2) departs. With budget 1 a fixed probe window would
        // retry member 1 forever; the rotating window must reach member 3
        // on the second departure.
        use oblisched_metric::LineMetric;
        use oblisched_sinr::{Instance, Request};
        let metric = LineMetric::new(vec![
            0.0, 1.0, // request 0
            1.5, 2.5, // request 1: conflicts with 0
            200.0, 201.0, // request 2
            201.5, 202.5, // request 3: conflicts with 2, fine with 0
            400.0, 401.0, // request 4
        ]);
        let inst = Instance::new(
            metric,
            vec![
                Request::new(0, 1),
                Request::new(2, 3),
                Request::new(4, 5),
                Request::new(6, 7),
                Request::new(8, 9),
            ],
        )
        .unwrap();
        let eval = inst.evaluator(params(), &ObliviousPower::Uniform);
        let view = eval.view(Variant::Bidirectional);
        use oblisched_sinr::InterferenceSystem;
        assert!(!view.is_feasible(&[0, 1]) && !view.is_feasible(&[2, 3]));
        assert!(view.is_feasible(&[0, 3]));
        let config = DynamicConfig {
            recolor_budget: 1,
            ..DynamicConfig::default()
        };
        let mut sched = DynamicScheduler::with_config(&view, config);
        for item in [0, 2, 4, 1, 3] {
            sched.insert(item).unwrap();
        }
        let id_of = |s: &DynamicScheduler<_>, item| s.id_of_item(item).unwrap();
        assert_eq!(sched.color_of(id_of(&sched, 1)), Some(1));
        assert_eq!(sched.color_of(id_of(&sched, 3)), Some(1));
        // First departure: the window probes the unmovable member 1.
        let blocker_a = id_of(&sched, 2);
        sched.remove(blocker_a).unwrap();
        assert_eq!(sched.color_of(id_of(&sched, 3)), Some(1));
        // Second departure: the rotated window probes member 3, which now
        // fits class 0.
        let blocker_b = id_of(&sched, 4);
        sched.remove(blocker_b).unwrap();
        assert_eq!(sched.color_of(id_of(&sched, 3)), Some(0));
        sched.validate().unwrap();
    }

    #[test]
    fn matrix_backed_scheduler_validates_against_the_naive_view() {
        let inst = scaling_uniform(80, 5);
        let eval = inst.evaluator(params(), &ObliviousPower::SquareRoot);
        let view = eval.view(Variant::Bidirectional);
        let matrix = GainMatrix::build(&view);
        let mut sched = DynamicScheduler::new(&matrix);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut live: Vec<RequestId> = Vec::new();
        for event in 0..200 {
            let arrive = live.is_empty() || (event % 3 != 0 && live.len() < 60);
            if arrive {
                let free: Vec<usize> = (0..inst.len())
                    .filter(|&i| sched.id_of_item(i).is_none())
                    .collect();
                let item = free[rng.gen_range(0..free.len())];
                live.push(sched.insert(item).unwrap());
            } else {
                let id = live.swap_remove(rng.gen_range(0..live.len()));
                sched.remove(id).unwrap();
            }
            sched.validate().unwrap();
            sched.validate_against(&view).unwrap();
        }
        assert_eq!(sched.len(), live.len());
    }

    #[test]
    fn validate_against_rejects_an_infeasible_class() {
        // Find a nested pair the square-root assignment schedules together
        // but uniform power rejects; replaying that shared color against the
        // uniform-power truth must surface InfeasibleClass.
        let inst = nested_chain(10, 2.0);
        let sqrt_eval = inst.evaluator(params(), &ObliviousPower::SquareRoot);
        let sqrt_view = sqrt_eval.view(Variant::Bidirectional);
        let uniform_eval = inst.evaluator(params(), &ObliviousPower::Uniform);
        let uniform_view = uniform_eval.view(Variant::Bidirectional);
        let (i, j) = (0..inst.len())
            .flat_map(|i| (0..inst.len()).map(move |j| (i, j)))
            .find(|&(i, j)| {
                i < j && sqrt_view.is_feasible(&[i, j]) && !uniform_view.is_feasible(&[i, j])
            })
            .expect("the nested chain separates sqrt from uniform on some pair");
        let mut sched = DynamicScheduler::new(&sqrt_view);
        let a = sched.insert(i).unwrap();
        let b = sched.insert(j).unwrap();
        assert_eq!(sched.color_of(a), sched.color_of(b));
        sched.validate().unwrap();
        match sched.validate_against(&uniform_view) {
            Err(DynamicError::InfeasibleClass { color: 0, .. }) => {}
            other => panic!("expected InfeasibleClass, got {other:?}"),
        }
        // Noise-doomed singletons stay exempt: one item per color validates
        // even when the truth rejects the singleton outright.
        let noisy = SinrParams::with_noise(3.0, 1.0, 1000.0).unwrap();
        let noisy_eval = inst.evaluator(noisy, &ObliviousPower::Uniform);
        let noisy_view = noisy_eval.view(Variant::Bidirectional);
        let mut lonely = DynamicScheduler::new(&noisy_view);
        lonely.insert(0).unwrap();
        assert!(!noisy_view.is_feasible(&[0]));
        lonely.validate().unwrap();
    }

    #[test]
    fn config_accessors_and_guards() {
        let inst = nested_chain(2, 2.0);
        let eval = inst.evaluator(params(), &ObliviousPower::SquareRoot);
        let view = eval.view(Variant::Bidirectional);
        let config = DynamicConfig {
            recolor_budget: 0,
            rebuild_interval: 7,
            drift_tolerance: 1e-9,
        };
        let sched = DynamicScheduler::with_config(&view, config);
        assert_eq!(sched.config(), config);
        assert!(sched.is_empty());
        assert!(sched.live_items().is_empty());
        assert!(sched.color_classes().is_empty());
    }

    #[test]
    fn remove_traced_reports_the_performed_migrations() {
        // Same scenario as the probe-window test: after both blockers leave,
        // the migration of item 3 from color 1 to color 0 must be reported.
        let inst = nested_chain(12, 2.0);
        let eval = inst.evaluator(params(), &ObliviousPower::Uniform);
        let view = eval.view(Variant::Bidirectional);
        let mut sched = DynamicScheduler::new(&view);
        let ids: Vec<RequestId> = (0..12).map(|i| sched.insert(i).unwrap()).collect();
        let mut reported = 0usize;
        for &id in &ids[..9] {
            let item = sched.item_of(id).unwrap();
            let removal = sched.remove_traced(id).unwrap();
            assert_eq!(removal.item, item);
            for mv in &removal.moves {
                assert_eq!(sched.color_of(mv.id), Some(mv.to));
                assert!(mv.to < mv.from);
                reported += 1;
            }
            sched.validate().unwrap();
        }
        assert!(
            reported > 0,
            "draining the nested chain must trigger recoloring migrations"
        );
    }

    #[test]
    fn exported_state_restores_to_an_identical_scheduler() {
        let inst = scaling_uniform(50, 9);
        let eval = inst.evaluator(params(), &ObliviousPower::SquareRoot);
        let view = eval.view(Variant::Bidirectional);
        let mut sched = DynamicScheduler::new(&view);
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut live: Vec<RequestId> = Vec::new();
        for event in 0..120 {
            if live.is_empty() || (event % 3 != 0 && live.len() < 35) {
                let free: Vec<usize> = (0..inst.len())
                    .filter(|&i| sched.id_of_item(i).is_none())
                    .collect();
                live.push(sched.insert(free[rng.gen_range(0..free.len())]).unwrap());
            } else {
                sched
                    .remove(live.swap_remove(rng.gen_range(0..live.len())))
                    .unwrap();
            }
        }
        let state = sched.export_state();
        let restored = DynamicScheduler::from_state(&view, sched.config(), &state).unwrap();
        assert_eq!(restored.export_state(), state);
        assert_eq!(restored.len(), sched.len());
        assert_eq!(restored.num_colors(), sched.num_colors());
        assert_eq!(restored.color_classes(), sched.color_classes());
        restored.validate().unwrap();
        // The restored scheduler continues identically: same ids, same
        // placements for the same further events.
        let mut a = sched.clone();
        let mut b = restored;
        let free: Vec<usize> = (0..inst.len())
            .filter(|&i| a.id_of_item(i).is_none())
            .take(5)
            .collect();
        for item in free {
            let ia = a.insert(item).unwrap();
            let ib = b.insert(item).unwrap();
            assert_eq!(ia, ib);
            assert_eq!(a.color_of(ia), b.color_of(ib));
        }
        assert_eq!(a.export_state(), b.export_state());
    }

    #[test]
    fn invalid_states_are_rejected_with_typed_errors() {
        let inst = nested_chain(4, 2.0);
        let eval = inst.evaluator(params(), &ObliviousPower::SquareRoot);
        let view = eval.view(Variant::Bidirectional);
        let config = DynamicConfig::default();
        let member = |id, item| StateMember { id, item };
        let state = |classes: Vec<Vec<StateMember>>, next_id| SchedulerState {
            classes,
            next_id,
            recolor_cursor: 0,
        };
        for bad in [
            // Item out of range.
            state(vec![vec![member(0, 99)]], 1),
            // Id not below next_id.
            state(vec![vec![member(5, 0)]], 5),
            // Duplicate item across classes.
            state(vec![vec![member(0, 1)], vec![member(1, 1)]], 2),
            // Duplicate id across classes.
            state(vec![vec![member(0, 1)], vec![member(0, 2)]], 2),
        ] {
            match DynamicScheduler::from_state(&view, config, &bad) {
                Err(DynamicError::InvalidState { detail }) => {
                    assert!(!detail.is_empty());
                }
                other => panic!("expected InvalidState for {bad:?}, got {other:?}"),
            }
        }
        // The error renders a readable description.
        let err = DynamicScheduler::from_state(&view, config, &state(vec![vec![member(0, 99)]], 1))
            .unwrap_err();
        assert!(err.to_string().contains("cannot be restored"));
    }

    #[test]
    fn scheduler_state_round_trips_through_json() {
        let inst = nested_chain(6, 2.0);
        let eval = inst.evaluator(params(), &ObliviousPower::SquareRoot);
        let view = eval.view(Variant::Bidirectional);
        let mut sched = DynamicScheduler::new(&view);
        for i in 0..6 {
            sched.insert(i).unwrap();
        }
        sched.remove(sched.id_of_item(2).unwrap()).unwrap();
        let state = sched.export_state();
        let json = serde_json::to_string(&state).unwrap();
        let back: SchedulerState = serde_json::from_str(&json).unwrap();
        assert_eq!(back, state);
        let config_json = serde_json::to_string(&sched.config()).unwrap();
        let config_back: DynamicConfig = serde_json::from_str(&config_json).unwrap();
        assert_eq!(config_back, sched.config());
    }

    #[test]
    #[should_panic(expected = "drift tolerance")]
    fn non_positive_drift_tolerance_is_rejected() {
        let inst = nested_chain(2, 2.0);
        let eval = inst.evaluator(params(), &ObliviousPower::SquareRoot);
        let view = eval.view(Variant::Bidirectional);
        let config = DynamicConfig {
            drift_tolerance: 0.0,
            ..DynamicConfig::default()
        };
        let _ = DynamicScheduler::with_config(&view, config);
    }
}

//! Exact baselines for small instances: maximum one-shot sets and minimum
//! colorings.
//!
//! The interference scheduling problem is strongly NP-hard (the paper notes a
//! reduction from 3-Partition), so exact optima are only available for small
//! instances. These branch-and-bound routines provide the ground truth that
//! the approximation-ratio experiments (E3) compare against. They work for
//! any fixed power assignment via the [`InterferenceSystem`] abstraction and
//! exploit the fact that feasibility is downward closed: a superset of an
//! infeasible set is infeasible, because adding requests only adds
//! interference.

use oblisched_sinr::{InterferenceSystem, Schedule};

/// Default guard on the instance size accepted by the exact routines.
pub const DEFAULT_EXACT_LIMIT: usize = 20;

/// Computes a maximum-cardinality feasible subset of `candidates` by branch
/// and bound.
///
/// # Panics
///
/// Panics if there are more than [`DEFAULT_EXACT_LIMIT`] candidates — the
/// search is exponential and larger inputs are almost certainly a mistake;
/// use [`crate::greedy::greedy_one_shot`] instead.
pub fn exact_max_one_shot<S: InterferenceSystem>(system: &S, candidates: &[usize]) -> Vec<usize> {
    assert!(
        candidates.len() <= DEFAULT_EXACT_LIMIT,
        "exact_max_one_shot is exponential; got {} candidates (limit {DEFAULT_EXACT_LIMIT})",
        candidates.len()
    );
    let mut best: Vec<usize> = Vec::new();
    let mut current: Vec<usize> = Vec::new();
    branch_one_shot(system, candidates, 0, &mut current, &mut best);
    best
}

fn branch_one_shot<S: InterferenceSystem>(
    system: &S,
    candidates: &[usize],
    index: usize,
    current: &mut Vec<usize>,
    best: &mut Vec<usize>,
) {
    if current.len() > best.len() {
        *best = current.clone();
    }
    if index == candidates.len() {
        return;
    }
    // Prune: even taking every remaining candidate cannot beat the best.
    if current.len() + (candidates.len() - index) <= best.len() {
        return;
    }
    // Branch 1: include candidates[index] if the set stays feasible
    // (feasibility is downward closed, so an infeasible prefix can never be
    // completed into a feasible set).
    current.push(candidates[index]);
    if system.is_feasible(current) {
        branch_one_shot(system, candidates, index + 1, current, best);
    }
    current.pop();
    // Branch 2: exclude it.
    branch_one_shot(system, candidates, index + 1, current, best);
}

/// Computes the exact minimum number of colors and one optimal schedule by
/// branch and bound over color assignments.
///
/// # Panics
///
/// Panics if the system has more than [`DEFAULT_EXACT_LIMIT`] items.
pub fn exact_chromatic_number<S: InterferenceSystem>(system: &S) -> (usize, Schedule) {
    let n = system.len();
    assert!(
        n <= DEFAULT_EXACT_LIMIT,
        "exact_chromatic_number is exponential; got {n} items (limit {DEFAULT_EXACT_LIMIT})"
    );
    if n == 0 {
        return (0, Schedule::new(vec![]));
    }
    // Upper bound from greedy first-fit (the naive path keeps these exact
    // routines available to any plain `InterferenceSystem`; at the exact
    // limit of 20 items the difference is irrelevant).
    let greedy = crate::greedy::first_fit_coloring_naive(system);
    let mut best_colors = greedy.num_colors();
    let mut best = greedy;

    let mut classes: Vec<Vec<usize>> = Vec::new();
    let mut assignment = vec![usize::MAX; n];
    branch_coloring(
        system,
        0,
        &mut classes,
        &mut assignment,
        &mut best_colors,
        &mut best,
    );
    (best_colors, best)
}

fn branch_coloring<S: InterferenceSystem>(
    system: &S,
    item: usize,
    classes: &mut Vec<Vec<usize>>,
    assignment: &mut Vec<usize>,
    best_colors: &mut usize,
    best: &mut Schedule,
) {
    let n = system.len();
    if classes.len() >= *best_colors {
        return; // cannot improve
    }
    if item == n {
        *best_colors = classes.len();
        *best = Schedule::new(assignment.clone());
        return;
    }
    // Try every existing class (symmetry: classes are created in order).
    for c in 0..classes.len() {
        classes[c].push(item);
        if system.is_feasible(&classes[c]) {
            assignment[item] = c;
            branch_coloring(system, item + 1, classes, assignment, best_colors, best);
        }
        classes[c].pop();
    }
    // Open a new class (only if that still has a chance to improve).
    if classes.len() + 1 < *best_colors {
        classes.push(vec![item]);
        assignment[item] = classes.len() - 1;
        branch_coloring(system, item + 1, classes, assignment, best_colors, best);
        classes.pop();
    }
}

/// The pigeonhole lower bound `⌈n / s⌉` on the schedule length, where `s` is
/// the exact maximum one-shot size (computed exactly, so only valid for small
/// systems).
///
/// When the system is non-empty but not even a singleton is feasible (heavy
/// ambient noise), no finite schedule exists and the sentinel
/// [`oblisched_sinr::measure::UNSCHEDULABLE`] is propagated; callers must
/// not compare it against finite schedule lengths.
///
/// # Panics
///
/// Panics if the system exceeds [`DEFAULT_EXACT_LIMIT`] items.
pub fn exact_pigeonhole_bound<S: InterferenceSystem>(system: &S) -> usize {
    let all: Vec<usize> = (0..system.len()).collect();
    let s = exact_max_one_shot(system, &all).len();
    oblisched_sinr::measure::pigeonhole_lower_bound(system.len(), s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use oblisched_instances::{evenly_spaced_line, nested_chain};
    use oblisched_sinr::{ObliviousPower, SinrParams, Variant};

    fn params() -> SinrParams {
        SinrParams::new(3.0, 1.0).unwrap()
    }

    #[test]
    fn max_one_shot_on_separated_links_takes_everything() {
        let inst = evenly_spaced_line(6, 1.0, 80.0);
        let eval = inst.evaluator(params(), &ObliviousPower::Uniform);
        let view = eval.view(Variant::Bidirectional);
        let all: Vec<usize> = (0..6).collect();
        let best = exact_max_one_shot(&view, &all);
        assert_eq!(best.len(), 6);
    }

    #[test]
    fn max_one_shot_on_nested_chain_under_uniform_is_one() {
        // Any two nested requests conflict under uniform power.
        let inst = nested_chain(8, 2.0);
        let eval = inst.evaluator(params(), &ObliviousPower::Uniform);
        let view = eval.view(Variant::Bidirectional);
        let all: Vec<usize> = (0..8).collect();
        let best = exact_max_one_shot(&view, &all);
        assert_eq!(best.len(), 1);
    }

    #[test]
    fn exact_dominates_greedy_one_shot() {
        let inst = nested_chain(9, 2.0);
        let eval = inst.evaluator(params(), &ObliviousPower::SquareRoot);
        let view = eval.view(Variant::Bidirectional);
        let all: Vec<usize> = (0..9).collect();
        let greedy = crate::greedy::greedy_one_shot(&view, &all);
        let exact = exact_max_one_shot(&view, &all);
        assert!(exact.len() >= greedy.len());
        assert!(view.is_feasible(&exact));
    }

    #[test]
    fn exact_chromatic_number_matches_structure_of_nested_chain() {
        let inst = nested_chain(6, 2.0);
        let p = params();
        // Uniform: pairwise conflicts everywhere => n colors.
        let uniform = inst.evaluator(p, &ObliviousPower::Uniform);
        let (k, schedule) = exact_chromatic_number(&uniform.view(Variant::Bidirectional));
        assert_eq!(k, 6);
        assert!(schedule.validate(&uniform, Variant::Bidirectional).is_ok());

        // Square root: a constant number of colors suffices and the optimum is
        // at most the greedy count.
        let sqrt = inst.evaluator(p, &ObliviousPower::SquareRoot);
        let view = sqrt.view(Variant::Bidirectional);
        let greedy = crate::greedy::first_fit_coloring(&view);
        let (k, schedule) = exact_chromatic_number(&view);
        assert!(k <= greedy.num_colors());
        assert!(k < 6);
        assert!(schedule.validate(&sqrt, Variant::Bidirectional).is_ok());
        assert_eq!(schedule.num_colors(), k);
    }

    #[test]
    fn exact_chromatic_number_of_empty_and_single() {
        let metric = oblisched_metric::LineMetric::new(vec![0.0, 1.0]);
        let empty = oblisched_sinr::Instance::new(metric.clone(), vec![]).unwrap();
        let eval = empty.evaluator(params(), &ObliviousPower::Uniform);
        let (k, schedule) = exact_chromatic_number(&eval.view(Variant::Directed));
        assert_eq!(k, 0);
        assert!(schedule.is_empty());

        let single =
            oblisched_sinr::Instance::new(metric, vec![oblisched_sinr::Request::new(0, 1)])
                .unwrap();
        let eval = single.evaluator(params(), &ObliviousPower::Uniform);
        let (k, _) = exact_chromatic_number(&eval.view(Variant::Directed));
        assert_eq!(k, 1);
    }

    #[test]
    fn pigeonhole_bound_is_a_valid_lower_bound() {
        let inst = nested_chain(7, 2.0);
        let p = params();
        for power in ObliviousPower::standard_assignments() {
            let eval = inst.evaluator(p, &power);
            let view = eval.view(Variant::Bidirectional);
            let bound = exact_pigeonhole_bound(&view);
            let (k, _) = exact_chromatic_number(&view);
            assert!(
                bound <= k,
                "pigeonhole bound {bound} exceeds the optimum {k}"
            );
        }
    }

    #[test]
    fn pigeonhole_bound_signals_unschedulable_under_heavy_noise() {
        // Noise so strong that no singleton is feasible: the exact one-shot
        // size is 0 and the bound must be the sentinel, not n.
        let inst = evenly_spaced_line(4, 1.0, 50.0);
        let noisy = SinrParams::with_noise(3.0, 1.0, 100.0).unwrap();
        let eval = inst.evaluator(noisy, &ObliviousPower::Uniform);
        let view = eval.view(Variant::Directed);
        let all: Vec<usize> = (0..4).collect();
        assert!(exact_max_one_shot(&view, &all).is_empty());
        assert_eq!(
            exact_pigeonhole_bound(&view),
            oblisched_sinr::measure::UNSCHEDULABLE
        );
    }

    #[test]
    #[should_panic(expected = "exponential")]
    fn oversized_exact_search_is_rejected() {
        let inst = evenly_spaced_line(25, 1.0, 10.0);
        let eval = inst.evaluator(params(), &ObliviousPower::Uniform);
        let view = eval.view(Variant::Directed);
        let all: Vec<usize> = (0..25).collect();
        let _ = exact_max_one_shot(&view, &all);
    }
}

//! Lemma 5 machinery: the square-root assignment on star metrics (§4).
//!
//! §4 of the paper analyses the node-loss scheduling problem on a star: nodes
//! sit around a centre at distances `δ_i`, each with a loss parameter `ℓ_i`.
//! Lemma 5 states that if *some* power assignment makes the whole star
//! `γ'`-feasible, then all but a `O((γ/γ')^{2/3})` fraction of the nodes is
//! `γ`-feasible under the square-root assignment. The proof splits the nodes
//! by the ratio `a_i = ℓ_i / d_i` between loss parameter and decay
//! (`d_i = δ_i^α`) into **large-loss** and **small-loss** nodes and argues
//! per *decay class* `D_j = {u : 2^(j−1) < d_u ≤ 2^j}`.
//!
//! This module provides the constructive counterpart used by the
//! decomposition pipeline (Lemma 9 / Theorem 2): classification of nodes,
//! decay classes, and a selection procedure that always returns a
//! `γ`-feasible subset under the square-root assignment. Experiment E6
//! measures the kept fraction against Lemma 5's bound.

use oblisched_metric::StarMetric;
use oblisched_sinr::{extract_feasible_subset, InterferenceSystem, NodeLossInstance, SinrParams};

/// Classification of a star node by the ratio between its loss parameter and
/// its decay (§4.2 vs §4.3 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StarNodeKind {
    /// `a_i = ℓ_i / d_i > 2^(α+1) / γ'` — the loss parameter dominates.
    LargeLoss,
    /// `a_i ≤ 2^(α+1) / γ'` — the decay dominates.
    SmallLoss,
}

/// Classifies every node of a star node-loss instance relative to the gain
/// `gamma_prime` (the paper's `γ'`).
///
/// # Panics
///
/// Panics if `gamma_prime` is not positive and finite.
pub fn node_kinds(
    instance: &NodeLossInstance<StarMetric>,
    params: &SinrParams,
    gamma_prime: f64,
) -> Vec<StarNodeKind> {
    assert!(
        gamma_prime > 0.0 && gamma_prime.is_finite(),
        "gamma_prime must be positive"
    );
    let threshold = 2f64.powf(params.alpha() + 1.0) / gamma_prime;
    (0..instance.len())
        .map(|i| {
            let decay = instance.metric().decay(i, params.alpha());
            // Nodes at the centre (decay 0) behave like large-loss nodes: all
            // of their loss comes from the loss parameter.
            let a = if decay == 0.0 {
                f64::INFINITY
            } else {
                instance.loss(i) / decay
            };
            if a > threshold {
                StarNodeKind::LargeLoss
            } else {
                StarNodeKind::SmallLoss
            }
        })
        .collect()
}

/// Partitions star nodes into decay classes `D_j = {u : 2^(j−1) < d_u ≤ 2^j}`
/// after normalising so the smallest positive decay falls into class 0.
///
/// Nodes with decay zero (sitting on the centre) are placed in class 0.
/// Returns the classes in increasing decay order; empty classes are omitted.
pub fn decay_classes(star: &StarMetric, alpha: f64) -> Vec<Vec<usize>> {
    let n = star.radii().len();
    if n == 0 {
        return Vec::new();
    }
    let decays: Vec<f64> = (0..n).map(|i| star.decay(i, alpha)).collect();
    let min_positive = decays
        .iter()
        .copied()
        .filter(|d| *d > 0.0)
        .fold(f64::INFINITY, f64::min);
    if !min_positive.is_finite() {
        // All nodes coincide with the centre.
        return vec![(0..n).collect()];
    }
    let mut classes: std::collections::BTreeMap<i64, Vec<usize>> =
        std::collections::BTreeMap::new();
    for (i, &d) in decays.iter().enumerate() {
        let class = if d <= 0.0 {
            0
        } else {
            // Class j such that 2^(j-1) < d / min_positive <= 2^j.
            (d / min_positive).log2().ceil().max(0.0) as i64
        };
        classes.entry(class).or_default().push(i);
    }
    classes.into_values().collect()
}

/// Selects a subset of the star's nodes that is `gamma`-feasible under the
/// square-root power assignment.
///
/// The procedure follows the structure of the Lemma 5 proof: nodes are
/// considered decay class by decay class, inside each class the nodes with
/// the largest loss parameters (which Claim 12 shows must be rare whenever
/// any assignment is feasible) are considered last, and the final set is
/// certified by greedy extraction at gain `gamma`, so the returned subset is
/// always genuinely feasible.
///
/// # Panics
///
/// Panics if `gamma` is not positive and finite.
pub fn star_sqrt_subset(
    instance: &NodeLossInstance<StarMetric>,
    params: &SinrParams,
    gamma: f64,
) -> Vec<usize> {
    assert!(gamma > 0.0 && gamma.is_finite(), "gamma must be positive");
    if instance.is_empty() {
        return Vec::new();
    }
    // Order: by decay class, and inside a class by increasing loss parameter
    // (small-loss nodes first — the ones Lemma 11 keeps).
    let classes = decay_classes(instance.metric(), params.alpha());
    let mut order: Vec<usize> = Vec::with_capacity(instance.len());
    for class in classes {
        let mut sorted = class;
        // `total_cmp`, not `partial_cmp`: a NaN loss (or any non-total
        // comparator) would make the sort panic or produce an unstable
        // order; total ordering keeps equal-loss nodes in stable index
        // order and never panics.
        sorted.sort_by(|&a, &b| instance.loss(a).total_cmp(&instance.loss(b)));
        order.extend(sorted);
    }

    let evaluator = instance.sqrt_evaluator(*params);
    // First pass: greedy insertion in the analysis-guided order.
    let mut kept: Vec<usize> = Vec::with_capacity(order.len());
    for &i in &order {
        kept.push(i);
        if !evaluator.is_feasible_with_gain(&kept, gamma) {
            kept.pop();
        }
    }
    // Second pass: the margin-guided extraction can only keep more nodes;
    // take whichever result is larger.
    let all: Vec<usize> = (0..instance.len()).collect();
    let extracted = extract_feasible_subset(&evaluator, &all, gamma);
    if extracted.len() > kept.len() {
        extracted
    } else {
        kept
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oblisched_metric::StarMetric;
    use rand::Rng;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn params() -> SinrParams {
        SinrParams::new(3.0, 1.0).unwrap()
    }

    /// A star whose loss parameters equal the decays — the "balanced" case in
    /// which the square-root assignment performs best.
    fn balanced_star(n: usize) -> NodeLossInstance<StarMetric> {
        let radii: Vec<f64> = (0..n).map(|i| 2f64.powi(i as i32)).collect();
        let losses: Vec<f64> = radii.iter().map(|r| r.powi(3)).collect();
        NodeLossInstance::new(StarMetric::new(radii), losses).unwrap()
    }

    #[test]
    fn node_kinds_split_by_loss_to_decay_ratio() {
        // Radii 1 and 2 (decays 1 and 8); losses 1000 and 8.
        let star = StarMetric::new(vec![1.0, 2.0]);
        let inst = NodeLossInstance::new(star, vec![1000.0, 8.0]).unwrap();
        let kinds = node_kinds(&inst, &params(), 1.0);
        // Threshold is 2^(α+1)/γ' = 16. Node 0 has a = 1000, node 1 has a = 1.
        assert_eq!(
            kinds,
            vec![StarNodeKind::LargeLoss, StarNodeKind::SmallLoss]
        );
    }

    #[test]
    fn node_kinds_treat_centre_nodes_as_large_loss() {
        let star = StarMetric::new(vec![0.0, 4.0]);
        let inst = NodeLossInstance::new(star, vec![1.0, 1.0]).unwrap();
        let kinds = node_kinds(&inst, &params(), 2.0);
        assert_eq!(kinds[0], StarNodeKind::LargeLoss);
    }

    #[test]
    fn decay_classes_group_by_powers_of_two() {
        let star = StarMetric::new(vec![1.0, 1.1, 2.0, 4.0, 4.1]);
        // alpha = 1 keeps decays equal to radii for easy reasoning.
        let classes = decay_classes(&star, 1.0);
        // Decays: 1, 1.1, 2, 4, 4.1 -> classes {1}, {1.1, 2}, {4}, {4.1}.
        assert_eq!(classes[0], vec![0]);
        assert!(classes.iter().any(|c| c.contains(&1) && c.contains(&2)));
        let total: usize = classes.iter().map(|c| c.len()).sum();
        assert_eq!(total, 5);
    }

    #[test]
    fn decay_classes_handle_degenerate_stars() {
        assert!(decay_classes(&StarMetric::new(vec![]), 3.0).is_empty());
        let all_centre = decay_classes(&StarMetric::new(vec![0.0, 0.0]), 3.0);
        assert_eq!(all_centre, vec![vec![0, 1]]);
    }

    #[test]
    fn star_subset_is_feasible_under_sqrt() {
        let inst = balanced_star(10);
        let p = params();
        let subset = star_sqrt_subset(&inst, &p, 0.5);
        let eval = inst.sqrt_evaluator(p);
        assert!(eval.is_feasible_with_gain(&subset, 0.5));
        assert!(!subset.is_empty());
    }

    #[test]
    fn star_subset_keeps_a_large_fraction_on_balanced_stars() {
        // Lemma 5: when a feasible assignment exists at a higher gain, the
        // square-root assignment keeps most nodes. On the geometrically spread
        // balanced star a large constant fraction survives at a modest gain.
        let inst = balanced_star(16);
        let p = SinrParams::new(3.0, 0.25).unwrap();
        let subset = star_sqrt_subset(&inst, &p, 0.25);
        assert!(
            subset.len() * 2 >= inst.len(),
            "expected at least half of the nodes, kept {} of {}",
            subset.len(),
            inst.len()
        );
    }

    #[test]
    fn star_subset_on_random_stars_is_feasible_and_nonempty() {
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let p = params();
        for _ in 0..5 {
            let n = 20;
            let radii: Vec<f64> = (0..n).map(|_| rng.gen_range(1.0..1000.0)).collect();
            let losses: Vec<f64> = (0..n).map(|_| rng.gen_range(1.0..1.0e6)).collect();
            let inst = NodeLossInstance::new(StarMetric::new(radii), losses).unwrap();
            let subset = star_sqrt_subset(&inst, &p, 1.0);
            let eval = inst.sqrt_evaluator(p);
            assert!(eval.is_feasible_with_gain(&subset, 1.0));
            assert!(!subset.is_empty());
        }
    }

    #[test]
    fn equal_losses_sort_stably_and_deterministically() {
        // Regression for the `partial_cmp` comparator: equal-loss nodes used
        // to rely on `unwrap_or(Equal)`; `total_cmp` keeps the stable index
        // order, so the selection is deterministic run to run.
        let star = StarMetric::new(vec![1.0, 1.0, 1.0, 1.0]);
        let inst = NodeLossInstance::new(star, vec![5.0, 5.0, 5.0, 5.0]).unwrap();
        let p = params();
        let a = star_sqrt_subset(&inst, &p, 0.5);
        let b = star_sqrt_subset(&inst, &p, 0.5);
        assert_eq!(a, b);
        let eval = inst.sqrt_evaluator(p);
        assert!(eval.is_feasible_with_gain(&a, 0.5));
    }

    #[test]
    fn star_subset_of_empty_instance_is_empty() {
        let inst = NodeLossInstance::new(StarMetric::new(vec![]), vec![]).unwrap();
        assert!(star_sqrt_subset(&inst, &params(), 1.0).is_empty());
    }

    #[test]
    #[should_panic(expected = "gamma must be positive")]
    fn invalid_gamma_is_rejected() {
        let inst = balanced_star(3);
        let _ = star_sqrt_subset(&inst, &params(), 0.0);
    }
}

//! The §5 coloring algorithm for the square-root power assignment
//! (Theorem 15).
//!
//! The algorithm colors bidirectional requests under the square-root
//! assignment, one color (round) at a time. Within a round it walks over the
//! **distance classes** `C_i = {j : 4^i ≤ d_j < 4^(i+1)}` from short to long
//! links and, inside each class, selects a large subset via a **packing LP**
//! (one variable per candidate request, one interference-budget constraint
//! per endpoint node) followed by **randomized rounding** — exactly the
//! structure of the paper's algorithm. Candidates are admitted against the
//! interference already caused by earlier classes of the same round with the
//! relaxed gain `β/2` (the paper's slack), and the finished round is thinned
//! back to the exact gain `β` (Proposition 3), so every emitted color class
//! is certified feasible.
//!
//! The greedy repetition of rounds yields the `O(log n)` approximation of
//! Theorem 15 relative to the optimal coloring *for the square-root
//! assignment*; combined with Theorem 2 this gives the paper's headline
//! `polylog(n)` approximation for the bidirectional interference scheduling
//! problem.
//!
//! The round-finishing steps (Proposition 3 thinning and the greedy
//! maximisation) run on the incremental interference engine, so each
//! admission test costs `O(selected)` contributions instead of
//! `O(selected²)`.

use oblisched_lp::{round_packing, PackingLp, RoundingConfig};
use oblisched_metric::{MetricSpace, NodeId};
use oblisched_sinr::{
    extract_feasible_subset, Evaluator, Instance, InterferenceSystem, ObliviousPower, Schedule,
    SinrParams, Variant,
};
use rand::Rng;
use std::collections::BTreeMap;

/// Configuration of the §5 coloring algorithm.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SqrtColoringConfig {
    /// Base of the geometric distance classes (the paper uses 4).
    pub class_base: f64,
    /// Slack factor applied to the gain when admitting candidates inside a
    /// round (the paper uses `β/2`, i.e. a factor of 2).
    pub gain_slack: f64,
    /// Randomized-rounding configuration for the per-class packing LPs.
    pub rounding: RoundingConfig,
    /// Defensive cap on the number of rounds (each round colors at least one
    /// request, so `n` rounds always suffice).
    pub max_rounds: usize,
}

impl Default for SqrtColoringConfig {
    fn default() -> Self {
        Self {
            class_base: 4.0,
            gain_slack: 2.0,
            rounding: RoundingConfig::default(),
            max_rounds: 100_000,
        }
    }
}

/// Colors a bidirectional instance under the square-root power assignment
/// using the randomized LP-rounding algorithm of §5.
///
/// The returned schedule is always feasible for the square-root assignment in
/// the bidirectional variant at the model gain.
///
/// # Panics
///
/// Panics if the configuration is degenerate (non-positive class base or
/// slack).
pub fn sqrt_coloring<M: MetricSpace, R: Rng + ?Sized>(
    instance: &Instance<M>,
    params: &SinrParams,
    config: &SqrtColoringConfig,
    rng: &mut R,
) -> Schedule {
    assert!(config.class_base > 1.0, "class base must exceed 1");
    assert!(config.gain_slack >= 1.0, "gain slack must be at least 1");
    let n = instance.len();
    if n == 0 {
        return Schedule::new(vec![]);
    }
    let evaluator = instance.evaluator(*params, &ObliviousPower::SquareRoot);
    let view = evaluator.view(Variant::Bidirectional);

    let mut colors = vec![usize::MAX; n];
    let mut remaining: Vec<usize> = (0..n).collect();
    let mut color = 0usize;
    while !remaining.is_empty() && color < config.max_rounds {
        let mut selected = select_round(instance, &evaluator, params, config, &remaining, rng);
        if selected.is_empty() {
            // Guaranteed progress: a single request is always feasible.
            selected = vec![remaining[0]];
        }
        debug_assert!(view.is_feasible(&selected));
        for &i in &selected {
            colors[i] = color;
        }
        remaining.retain(|i| !selected.contains(i));
        color += 1;
    }
    for c in colors.iter_mut() {
        if *c == usize::MAX {
            *c = color;
            color += 1;
        }
    }
    Schedule::new(colors)
}

/// Selects one color class among `remaining` (the body of one round of the
/// algorithm).
fn select_round<M: MetricSpace, R: Rng + ?Sized>(
    instance: &Instance<M>,
    evaluator: &Evaluator<'_, M>,
    params: &SinrParams,
    config: &SqrtColoringConfig,
    remaining: &[usize],
    rng: &mut R,
) -> Vec<usize> {
    let beta = params.beta();

    // Distance classes C_i, shortest links first.
    let min_len = remaining
        .iter()
        .map(|&j| instance.link_distance(j))
        .fold(f64::INFINITY, f64::min);
    let mut classes: BTreeMap<i64, Vec<usize>> = BTreeMap::new();
    for &j in remaining {
        let ratio = instance.link_distance(j) / min_len;
        let class = ratio.log(config.class_base).floor().max(0.0) as i64;
        classes.entry(class).or_default().push(j);
    }

    let mut selected: Vec<usize> = Vec::new();
    for class in classes.values() {
        // Candidates: requests of this class that still have SINR slack
        // against the requests selected from earlier classes.
        let candidates: Vec<usize> = class
            .iter()
            .copied()
            .filter(|&j| {
                selected.is_empty()
                    || evaluator.sinr(Variant::Bidirectional, j, &selected)
                        >= config.gain_slack * beta
            })
            .collect();
        if candidates.is_empty() {
            continue;
        }
        let chosen = select_from_class(evaluator, params, config, &selected, &candidates, rng);
        selected.extend(chosen);
    }

    // Proposition 3 / final certification: thin back to the exact gain β,
    // then make the class maximal so the round never does worse than plain
    // greedy.
    let view = evaluator.view(Variant::Bidirectional);
    let certified = extract_feasible_subset(&view, &selected, beta);
    crate::greedy::greedy_augment(&view, certified, remaining)
}

/// Builds and rounds the per-class packing LP: maximise the number of chosen
/// candidates subject to every endpoint node receiving at most its remaining
/// interference budget.
fn select_from_class<M: MetricSpace, R: Rng + ?Sized>(
    evaluator: &Evaluator<'_, M>,
    params: &SinrParams,
    config: &SqrtColoringConfig,
    selected: &[usize],
    candidates: &[usize],
    rng: &mut R,
) -> Vec<usize> {
    let beta = params.beta();
    // One constraint per endpoint node of a candidate request.
    let mut nodes: Vec<(NodeId, usize)> = Vec::with_capacity(2 * candidates.len());
    for &j in candidates {
        let r = evaluator.instance().request(j);
        nodes.push((r.sender, j));
        nodes.push((r.receiver, j));
    }

    let mut rows = Vec::with_capacity(nodes.len());
    let mut capacities = Vec::with_capacity(nodes.len());
    for &(w, owner) in &nodes {
        // Budget: the owner must keep SINR ≥ β/2 at this endpoint, of which
        // half is reserved for later classes — so candidates of this class may
        // add at most signal/(2β) − I(w | selected).
        let budget = evaluator.signal(owner) / (config.gain_slack * beta)
            - evaluator.interference_at_node(w, selected);
        let capacity = budget.max(0.0);
        let row: Vec<f64> = candidates
            .iter()
            .map(|&j| {
                if j == owner {
                    0.0
                } else {
                    let contribution = evaluator.node_contribution(j, w);
                    if contribution.is_finite() {
                        contribution
                    } else {
                        // Coinciding endpoints: selecting j alone must already
                        // violate this constraint.
                        capacity * 2.0 + 1.0
                    }
                }
            })
            .collect();
        rows.push(row);
        capacities.push(capacity);
    }

    let weights = vec![1.0; candidates.len()];
    let lp = match PackingLp::new(weights, rows, capacities) {
        Ok(lp) => lp,
        Err(_) => return Vec::new(),
    };
    let solution = match lp.solve() {
        Ok(s) => s,
        Err(_) => return Vec::new(),
    };
    let rounded = match round_packing(&lp, &solution, config.rounding, rng) {
        Ok(r) => r,
        Err(_) => return Vec::new(),
    };
    rounded.into_iter().map(|local| candidates[local]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy::first_fit_coloring;
    use oblisched_instances::{
        evenly_spaced_line, nested_chain, uniform_deployment, DeploymentConfig,
    };
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn params() -> SinrParams {
        SinrParams::new(3.0, 1.0).unwrap()
    }

    fn validate_sqrt(instance: &Instance<impl MetricSpace>, schedule: &Schedule, p: &SinrParams) {
        let eval = instance.evaluator(*p, &ObliviousPower::SquareRoot);
        schedule
            .validate(&eval, Variant::Bidirectional)
            .expect("schedule must be feasible");
    }

    #[test]
    fn colors_well_separated_links_in_one_round() {
        let inst = evenly_spaced_line(10, 1.0, 200.0);
        let p = params();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let schedule = sqrt_coloring(&inst, &p, &SqrtColoringConfig::default(), &mut rng);
        validate_sqrt(&inst, &schedule, &p);
        assert_eq!(schedule.len(), 10);
        assert!(
            schedule.num_colors() <= 2,
            "well separated links should need at most 2 colors, used {}",
            schedule.num_colors()
        );
    }

    #[test]
    fn schedules_the_nested_chain_with_few_colors() {
        let inst = nested_chain(12, 2.0);
        let p = params();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let schedule = sqrt_coloring(&inst, &p, &SqrtColoringConfig::default(), &mut rng);
        validate_sqrt(&inst, &schedule, &p);
        assert!(
            schedule.num_colors() <= 8,
            "sqrt coloring should need O(1) colors on the nested chain, used {}",
            schedule.num_colors()
        );
    }

    #[test]
    fn random_deployments_are_scheduled_feasibly() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let inst = uniform_deployment(
            DeploymentConfig {
                num_requests: 24,
                side: 500.0,
                min_link: 1.0,
                max_link: 20.0,
            },
            &mut rng,
        );
        let p = params();
        let schedule = sqrt_coloring(&inst, &p, &SqrtColoringConfig::default(), &mut rng);
        validate_sqrt(&inst, &schedule, &p);
        assert_eq!(schedule.len(), 24);
    }

    #[test]
    fn is_competitive_with_greedy_first_fit() {
        // Theorem 15 promises an O(log n) approximation; at the very least the
        // LP-based algorithm should stay within a small factor of plain
        // greedy on moderate random instances.
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let inst = uniform_deployment(
            DeploymentConfig {
                num_requests: 30,
                side: 300.0,
                min_link: 1.0,
                max_link: 15.0,
            },
            &mut rng,
        );
        let p = params();
        let eval = inst.evaluator(p, &ObliviousPower::SquareRoot);
        let greedy = first_fit_coloring(&eval.view(Variant::Bidirectional));
        let lp = sqrt_coloring(&inst, &p, &SqrtColoringConfig::default(), &mut rng);
        validate_sqrt(&inst, &lp, &p);
        assert!(
            lp.num_colors() <= 3 * greedy.num_colors().max(1),
            "LP coloring used {} colors, greedy {}",
            lp.num_colors(),
            greedy.num_colors()
        );
    }

    #[test]
    fn empty_instance_yields_empty_schedule() {
        let metric = oblisched_metric::LineMetric::new(vec![0.0, 1.0]);
        let inst = Instance::new(metric, vec![]).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let schedule = sqrt_coloring(&inst, &params(), &SqrtColoringConfig::default(), &mut rng);
        assert!(schedule.is_empty());
    }

    #[test]
    fn deterministic_given_a_seed() {
        let mut rng_a = ChaCha8Rng::seed_from_u64(77);
        let mut rng_b = ChaCha8Rng::seed_from_u64(77);
        let inst = nested_chain(10, 2.0);
        let p = params();
        let a = sqrt_coloring(&inst, &p, &SqrtColoringConfig::default(), &mut rng_a);
        let b = sqrt_coloring(&inst, &p, &SqrtColoringConfig::default(), &mut rng_b);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "class base")]
    fn degenerate_config_is_rejected() {
        let inst = nested_chain(3, 2.0);
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let config = SqrtColoringConfig {
            class_base: 1.0,
            ..Default::default()
        };
        let _ = sqrt_coloring(&inst, &params(), &config, &mut rng);
    }
}

//! Non-oblivious power control: the "optimal assignment" side of Theorem 1.
//!
//! Theorem 1 contrasts oblivious assignments with schedules that may pick an
//! arbitrary power per request. The classical way to find such powers for a
//! fixed set of simultaneous requests is the Foschini–Miljanic style fixed
//! point iteration: each request repeatedly raises its power to exactly meet
//! its SINR constraint against the current interference. Without noise the
//! iteration (with a small additive floor) converges whenever *some* feasible
//! power vector exists; the result is then verified against the exact SINR
//! checker, so a returned vector is always genuinely feasible.

use oblisched_metric::MetricSpace;
use oblisched_sinr::{Evaluator, Instance, Schedule, SinrParams, Variant};

/// Configuration of the power-control iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerControlConfig {
    /// Maximum number of fixed-point iterations per set.
    pub max_iterations: usize,
    /// Relative slack applied on top of the SINR requirement so the verified
    /// result is strictly feasible despite rounding.
    pub slack: f64,
    /// Abort threshold: if any power exceeds this value the set is declared
    /// infeasible (the iteration is diverging).
    pub power_ceiling: f64,
}

impl Default for PowerControlConfig {
    fn default() -> Self {
        Self {
            max_iterations: 200,
            slack: 1.05,
            power_ceiling: 1e200,
        }
    }
}

/// Tries to find per-request powers under which the whole `set` is
/// simultaneously feasible in the given variant.
///
/// Returns `Some(powers)` (indexed by request id, with untouched requests
/// keeping power 1) if the fixed-point iteration converges to a vector that
/// the exact checker accepts, and `None` otherwise. The procedure is complete
/// in the directed noise-free case (up to the iteration budget) because the
/// SINR constraints there form a monotone linear system; for the
/// bidirectional case it is a sound but possibly conservative heuristic.
pub fn feasible_powers<M: MetricSpace>(
    instance: &Instance<M>,
    params: &SinrParams,
    variant: Variant,
    set: &[usize],
    config: PowerControlConfig,
) -> Option<Vec<f64>> {
    if set.is_empty() {
        return Some(vec![1.0; instance.len()]);
    }
    let beta = params.beta();
    let m = set.len();

    // The geometry of the set is fixed across iterations, so the effective
    // path losses (the expensive distance + `powf` part of every
    // interference term) are cached once, taken from the engine's
    // [`VariantView::effective_loss`] — the single source of truth for the
    // per-variant convention. Each iteration then recomputes the very same
    // `p / loss` terms the naive evaluator folds, so the per-iteration
    // arithmetic is unchanged.
    let geometry = instance.evaluator(*params, &oblisched_sinr::ObliviousPower::Uniform);
    let view = geometry.view(variant);
    let ports = oblisched_sinr::IncrementalSystem::num_ports(&view);
    let link_losses: Vec<f64> = set.iter().map(|&i| geometry.loss(i)).collect();
    // Flat row-major: entry ((a * ports) + port) * m + b is the effective
    // loss of member b's signal at port `port` of member a.
    let mut pair_loss = vec![f64::INFINITY; m * ports * m];
    for (a, &i) in set.iter().enumerate() {
        for port in 0..ports {
            let row = (a * ports + port) * m;
            for (b, &j) in set.iter().enumerate() {
                if j == i {
                    continue;
                }
                pair_loss[row + b] = view.effective_loss(i, port, j);
            }
        }
    }
    // Interference at member `a` under the current (set-local) powers,
    // folding the members in set order exactly as the naive evaluator does.
    let interference_of = |a: usize, local: &[f64]| -> f64 {
        let mut worst = f64::NEG_INFINITY;
        for port in 0..ports {
            let row = (a * ports + port) * m;
            let mut sum = 0.0;
            for b in 0..m {
                if set[b] == set[a] {
                    continue;
                }
                sum += params.received_strength(local[b], pair_loss[row + b]);
            }
            worst = worst.max(sum);
        }
        worst
    };

    let mut local = vec![1.0f64; m];
    for _ in 0..config.max_iterations {
        // One synchronous update: every request raises (or lowers) its power
        // to `slack · β · ℓ_i · (interference + noise)`, with a floor of 1.
        let mut next = local.clone();
        for a in 0..m {
            let interference = interference_of(a, &local) + params.noise();
            let required = config.slack * beta * link_losses[a] * interference;
            next[a] = required.max(1.0);
            if !next[a].is_finite() || next[a] > config.power_ceiling {
                return None;
            }
        }
        let converged = (0..m).all(|a| {
            let rel = (next[a] - local[a]).abs() / local[a].max(1.0);
            rel < 1e-9
        });
        local = next;
        if converged {
            break;
        }
    }
    let mut powers = vec![1.0; instance.len()];
    for (a, &i) in set.iter().enumerate() {
        powers[i] = local[a];
    }
    let eval = Evaluator::with_powers(instance, *params, powers.clone()).ok()?;
    if eval.is_feasible(variant, set) {
        Some(powers)
    } else {
        None
    }
}

/// First-fit coloring where the feasibility test for a color class is "does
/// *some* power assignment make the class feasible?" — i.e. greedy scheduling
/// with per-class optimal power control. This is the non-oblivious baseline
/// against which Theorem 1 measures oblivious assignments.
///
/// Returns the schedule together with one power per request (requests in
/// different classes never transmit together, so stitching the per-class
/// vectors together is sound). The returned schedule is verified feasible
/// under the returned powers.
pub fn greedy_with_power_control<M: MetricSpace>(
    instance: &Instance<M>,
    params: &SinrParams,
    variant: Variant,
    config: PowerControlConfig,
) -> (Schedule, Vec<f64>) {
    let n = instance.len();
    let mut classes: Vec<Vec<usize>> = Vec::new();
    let mut class_powers: Vec<Vec<f64>> = Vec::new();
    let mut colors = vec![usize::MAX; n];
    for (i, color) in colors.iter_mut().enumerate() {
        let mut placed = false;
        for (c, class) in classes.iter_mut().enumerate() {
            class.push(i);
            if let Some(powers) = feasible_powers(instance, params, variant, class, config) {
                class_powers[c] = powers;
                *color = c;
                placed = true;
                break;
            }
            class.pop();
        }
        if !placed {
            let class = vec![i];
            let powers = feasible_powers(instance, params, variant, &class, config)
                .expect("singletons are feasible under some power without noise");
            *color = classes.len();
            classes.push(class);
            class_powers.push(powers);
        }
    }
    // Stitch per-class powers into one vector.
    let mut powers = vec![1.0; n];
    for (class, cp) in classes.iter().zip(class_powers.iter()) {
        for &i in class {
            powers[i] = cp[i];
        }
    }
    (Schedule::new(colors), powers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use oblisched_instances::{adversarial_for, evenly_spaced_line, nested_chain};
    use oblisched_sinr::ObliviousPower;
    use rand::SeedableRng;

    fn params() -> SinrParams {
        SinrParams::new(3.0, 1.0).unwrap()
    }

    #[test]
    fn empty_and_singleton_sets_are_feasible() {
        let inst = evenly_spaced_line(3, 1.0, 5.0);
        let p = params();
        assert!(feasible_powers(&inst, &p, Variant::Directed, &[], Default::default()).is_some());
        let powers =
            feasible_powers(&inst, &p, Variant::Directed, &[1], Default::default()).unwrap();
        assert_eq!(powers.len(), 3);
        assert!(powers.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn power_control_fixes_the_nested_chain_in_the_directed_variant() {
        // Under uniform power no two nested requests coexist; with free power
        // control a well-spread subset does (directed variant).
        let inst = nested_chain(8, 2.0);
        let p = params();
        let spaced: Vec<usize> = (0..8).step_by(3).collect();
        let powers =
            feasible_powers(&inst, &p, Variant::Directed, &spaced, Default::default()).unwrap();
        let eval = Evaluator::with_powers(&inst, p, powers).unwrap();
        assert!(eval.is_feasible(Variant::Directed, &spaced));
        // The uniform assignment cannot do this.
        let uniform = inst.evaluator(p, &ObliviousPower::Uniform);
        assert!(!uniform.is_feasible(Variant::Directed, &spaced));
    }

    #[test]
    fn infeasible_sets_are_reported_as_none() {
        // Two requests sharing a receiver position cannot both be satisfied in
        // the bidirectional variant regardless of power: the closer sender
        // always drowns the other pair (distance ~0 from the shared point).
        let metric = oblisched_metric::LineMetric::new(vec![0.0, 10.0, 10.001, 20.0]);
        let inst = oblisched_sinr::Instance::new(
            metric,
            vec![
                oblisched_sinr::Request::new(0, 1),
                oblisched_sinr::Request::new(2, 3),
            ],
        )
        .unwrap();
        let p = params();
        assert!(feasible_powers(
            &inst,
            &p,
            Variant::Bidirectional,
            &[0, 1],
            Default::default()
        )
        .is_none());
    }

    #[test]
    fn greedy_with_power_control_is_feasible_and_compact() {
        let inst = nested_chain(9, 2.0);
        let p = params();
        let (schedule, powers) =
            greedy_with_power_control(&inst, &p, Variant::Directed, Default::default());
        assert_eq!(schedule.len(), 9);
        let eval = Evaluator::with_powers(&inst, p, powers).unwrap();
        assert!(schedule.validate(&eval, Variant::Directed).is_ok());
        // Non-oblivious power control packs the nested chain into few colors.
        assert!(
            schedule.num_colors() <= 5,
            "power control should need O(1) colors, used {}",
            schedule.num_colors()
        );
    }

    #[test]
    fn theorem1_gap_on_the_adversarial_instance() {
        // The headline of Theorem 1: on the adversarial family the oblivious
        // assignment needs ~n colors, power control O(1).
        let p = params();
        let adv = adversarial_for(&ObliviousPower::Linear, &p, 8);
        let inst = adv.instance();

        let linear = inst.evaluator(p, &ObliviousPower::Linear);
        let oblivious_colors =
            crate::greedy::first_fit_coloring(&linear.view(Variant::Directed)).num_colors();

        let (schedule, powers) =
            greedy_with_power_control(inst, &p, Variant::Directed, Default::default());
        let eval = Evaluator::with_powers(inst, p, powers).unwrap();
        assert!(schedule.validate(&eval, Variant::Directed).is_ok());

        assert_eq!(
            oblivious_colors, 8,
            "every pair conflicts under the target assignment"
        );
        assert!(
            schedule.num_colors() <= 4,
            "power control should need O(1) colors, used {}",
            schedule.num_colors()
        );
    }

    /// The pre-engine implementation of the fixed point, kept verbatim as a
    /// reference: rebuilds an [`Evaluator`] every iteration instead of
    /// caching the loss geometry. `feasible_powers` must agree with it
    /// exactly — this pins the cached `effective_loss` table to the
    /// evaluator's interference convention.
    fn reference_feasible_powers<M: MetricSpace>(
        instance: &Instance<M>,
        params: &SinrParams,
        variant: Variant,
        set: &[usize],
        config: PowerControlConfig,
    ) -> Option<Vec<f64>> {
        if set.is_empty() {
            return Some(vec![1.0; instance.len()]);
        }
        let mut powers = vec![1.0; instance.len()];
        let beta = params.beta();
        for _ in 0..config.max_iterations {
            let eval = Evaluator::with_powers(instance, *params, powers.clone()).unwrap();
            let mut next = powers.clone();
            for &i in set {
                let interference = eval.interference(variant, i, set) + params.noise();
                let loss = instance.link_loss(i, params);
                let required = config.slack * beta * loss * interference;
                next[i] = required.max(1.0);
                if !next[i].is_finite() || next[i] > config.power_ceiling {
                    return None;
                }
            }
            let converged = set.iter().all(|&i| {
                let rel = (next[i] - powers[i]).abs() / powers[i].max(1.0);
                rel < 1e-9
            });
            powers = next;
            if converged {
                break;
            }
        }
        let eval = Evaluator::with_powers(instance, *params, powers.clone()).ok()?;
        if eval.is_feasible(variant, set) {
            Some(powers)
        } else {
            None
        }
    }

    #[test]
    fn cached_geometry_matches_the_reference_fixed_point_exactly() {
        let p = params();
        let chain = nested_chain(8, 2.0);
        let mut rng_sets: Vec<Vec<usize>> = vec![
            vec![],
            vec![3],
            (0..8).step_by(2).collect(),
            (0..8).collect(),
            vec![7, 2, 5, 0],
        ];
        // A Euclidean instance too, so both metric kinds are covered.
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(99);
        let planar = oblisched_instances::uniform_deployment(
            oblisched_instances::DeploymentConfig {
                num_requests: 8,
                side: 150.0,
                min_link: 1.0,
                max_link: 10.0,
            },
            &mut rng,
        );
        rng_sets.push(vec![1, 4, 6]);
        for variant in Variant::all() {
            for set in &rng_sets {
                assert_eq!(
                    feasible_powers(&chain, &p, variant, set, Default::default()),
                    reference_feasible_powers(&chain, &p, variant, set, Default::default()),
                    "chain set {set:?} under {variant}"
                );
                if set.iter().all(|&i| i < planar.len()) {
                    assert_eq!(
                        feasible_powers(&planar, &p, variant, set, Default::default()),
                        reference_feasible_powers(&planar, &p, variant, set, Default::default()),
                        "planar set {set:?} under {variant}"
                    );
                }
            }
        }
    }

    #[test]
    fn returned_powers_cover_all_requests() {
        let inst = evenly_spaced_line(5, 1.0, 50.0);
        let p = params();
        let (schedule, powers) =
            greedy_with_power_control(&inst, &p, Variant::Bidirectional, Default::default());
        assert_eq!(schedule.num_colors(), 1);
        assert_eq!(powers.len(), 5);
        assert!(powers.iter().all(|&x| x.is_finite() && x > 0.0));
    }
}

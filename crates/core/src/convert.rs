//! Simulating bidirectional schedules by directed ones (§6).
//!
//! The discussion section of the paper observes that any bidirectional
//! schedule can be executed in the directed model by doubling the number of
//! colors: each bidirectional slot becomes two directed slots, one per
//! direction of the pairs. This module materialises that construction so the
//! experiment harness can compare the two variants directly.

use oblisched_metric::MetricSpace;
use oblisched_sinr::{Instance, Schedule, SinrError, SinrParams};

/// Builds the directed simulation of a bidirectional instance and schedule:
/// every request is replaced by its two directed copies (forward then
/// backward), and every bidirectional color `c` becomes the two directed
/// colors `2c` (forward copies) and `2c + 1` (backward copies).
///
/// Returns the directed instance (over the same metric, with `2n` requests —
/// request `i` maps to copies `2i` and `2i + 1`) and the doubled schedule.
///
/// # Errors
///
/// Returns [`SinrError::ColoringLengthMismatch`] if the schedule does not
/// cover exactly the instance's requests.
pub fn directed_simulation<M: MetricSpace + Clone>(
    instance: &Instance<M>,
    schedule: &Schedule,
) -> Result<(Instance<M>, Schedule), SinrError> {
    if schedule.len() != instance.len() {
        return Err(SinrError::ColoringLengthMismatch {
            expected: instance.len(),
            actual: schedule.len(),
        });
    }
    let mut requests = Vec::with_capacity(2 * instance.len());
    let mut colors = Vec::with_capacity(2 * instance.len());
    for i in 0..instance.len() {
        let r = instance.request(i);
        requests.push(r);
        colors.push(2 * schedule.color_of(i));
        requests.push(r.reversed());
        colors.push(2 * schedule.color_of(i) + 1);
    }
    let directed = Instance::new(instance.metric().clone(), requests)?;
    Ok((directed, Schedule::new(colors)))
}

/// Duplicates a power assignment of a bidirectional instance onto its
/// directed simulation (both directed copies of a pair transmit with the
/// pair's power).
pub fn duplicate_powers(powers: &[f64]) -> Vec<f64> {
    powers.iter().flat_map(|&p| [p, p]).collect()
}

/// Convenience: checks that the directed simulation of a feasible
/// bidirectional schedule is itself feasible in the directed variant (the §6
/// claim), returning the number of directed colors.
///
/// # Errors
///
/// Propagates construction and validation errors.
pub fn verify_directed_simulation<M: MetricSpace + Clone>(
    instance: &Instance<M>,
    params: &SinrParams,
    powers: &[f64],
    schedule: &Schedule,
) -> Result<usize, SinrError> {
    let (directed, directed_schedule) = directed_simulation(instance, schedule)?;
    let eval =
        oblisched_sinr::Evaluator::with_powers(&directed, *params, duplicate_powers(powers))?;
    directed_schedule.validate(&eval, oblisched_sinr::Variant::Directed)?;
    Ok(directed_schedule.num_colors())
}

/// The trivial direction of §6: interprets a *directed* schedule of the
/// doubled instance as evidence about the bidirectional instance — the number
/// of bidirectional colors needed is at most the number of directed colors
/// (each bidirectional slot can simply reuse the directed slot of its forward
/// copy, transmitting the two directions in consecutive sub-slots).
pub fn directed_to_bidirectional_bound(directed_colors: usize) -> usize {
    directed_colors
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy::first_fit_coloring;
    use oblisched_instances::nested_chain;
    use oblisched_sinr::{ObliviousPower, PowerScheme, Variant};

    fn params() -> SinrParams {
        SinrParams::new(3.0, 1.0).unwrap()
    }

    #[test]
    fn simulation_doubles_requests_and_colors() {
        let inst = nested_chain(6, 2.0);
        let p = params();
        let eval = inst.evaluator(p, &ObliviousPower::SquareRoot);
        let schedule = first_fit_coloring(&eval.view(Variant::Bidirectional));
        let (directed, directed_schedule) = directed_simulation(&inst, &schedule).unwrap();
        assert_eq!(directed.len(), 12);
        assert_eq!(directed_schedule.len(), 12);
        assert_eq!(directed_schedule.num_colors(), 2 * schedule.num_colors());
        // Copies 2i and 2i+1 are the two directions of request i.
        for i in 0..inst.len() {
            assert_eq!(directed.request(2 * i), inst.request(i));
            assert_eq!(directed.request(2 * i + 1), inst.request(i).reversed());
        }
    }

    #[test]
    fn simulated_schedule_is_directed_feasible() {
        let inst = nested_chain(8, 2.0);
        let p = params();
        let eval = inst.evaluator(p, &ObliviousPower::SquareRoot);
        let schedule = first_fit_coloring(&eval.view(Variant::Bidirectional));
        assert!(schedule.validate(&eval, Variant::Bidirectional).is_ok());
        let powers = ObliviousPower::SquareRoot.powers(&inst, &p);
        let directed_colors = verify_directed_simulation(&inst, &p, &powers, &schedule).unwrap();
        assert_eq!(directed_colors, 2 * schedule.num_colors());
        assert_eq!(
            directed_to_bidirectional_bound(directed_colors),
            directed_colors
        );
    }

    #[test]
    fn duplicate_powers_interleaves() {
        assert_eq!(duplicate_powers(&[1.0, 3.0]), vec![1.0, 1.0, 3.0, 3.0]);
        assert!(duplicate_powers(&[]).is_empty());
    }

    #[test]
    fn length_mismatch_is_reported() {
        let inst = nested_chain(4, 2.0);
        let bad = Schedule::new(vec![0, 1]);
        assert!(matches!(
            directed_simulation(&inst, &bad),
            Err(SinrError::ColoringLengthMismatch { .. })
        ));
    }
}

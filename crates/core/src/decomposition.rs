//! The §3 reduction pipeline: general metrics → trees → stars, made
//! constructive (Theorem 2).
//!
//! The paper proves Theorem 2 (the square-root assignment admits a
//! `polylog(n)`-competitive coloring for bidirectional requests) through a
//! chain of reductions:
//!
//! 1. split pairs into the node-loss problem (§3.2,
//!    [`oblisched_sinr::nodeloss::split_pairs`]),
//! 2. embed the metric into a family of dominating trees and restrict to a
//!    tree core containing most nodes (Lemma 6 / Proposition 7,
//!    [`oblisched_metric::embedding`]),
//! 3. decompose the tree recursively at centroids into stars (Lemma 9),
//! 4. on every star keep the nodes that the square-root assignment can serve
//!    (Lemma 5, [`crate::star_analysis`]),
//! 5. re-interpret the surviving nodes in the original metric (Lemma 8) and
//!    rescale the gain (Propositions 3/4).
//!
//! The existence proof is non-constructive only in its use of Lemma 5; since
//! our star step is constructive, the whole pipeline below is an executable
//! algorithm. Every color class it emits is certified by the exact SINR
//! checker, so the schedules are always valid; the `polylog(n)` *quality* is
//! what experiment E4 measures. The per-round certification and greedy
//! maximisation steps run on the incremental interference engine (the
//! node-loss evaluator implements
//! [`oblisched_sinr::IncrementalSystem`]), keeping rounds `O(set)` per
//! admission test.

use crate::star_analysis::star_sqrt_subset;
use oblisched_metric::{
    DominatingTreeFamily, EmbeddingConfig, MetricSpace, NodeId, StarMetric, WeightedTree,
};
use oblisched_sinr::nodeloss::split_pairs;
use oblisched_sinr::{extract_feasible_subset, Instance, NodeLossInstance, Schedule, SinrParams};
use rand::Rng;
// BTree collections, not hash maps: the survivor set is iterated when the
// candidate list is built, and scheduler output must never depend on hash
// iteration order (`oblint`'s map-iteration-order lint enforces this).
use std::collections::{BTreeMap, BTreeSet};

/// Configuration of the decomposition pipeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecompositionConfig {
    /// Configuration of the dominating-tree-family sampling (Lemma 6).
    pub embedding: EmbeddingConfig,
    /// Gain used for the intermediate star selections, as a fraction of the
    /// model gain `β`. Smaller values keep more nodes per star and rely on
    /// the final certification to thin the set.
    pub star_gain_fraction: f64,
    /// Upper bound on the number of scheduling rounds (a defensive guard —
    /// each round schedules at least one request, so `n` rounds always
    /// suffice).
    pub max_rounds: usize,
}

impl Default for DecompositionConfig {
    fn default() -> Self {
        Self {
            embedding: EmbeddingConfig::default(),
            star_gain_fraction: 0.5,
            max_rounds: 100_000,
        }
    }
}

/// Runs the Theorem 2 pipeline on a node-loss instance and returns a subset
/// of nodes that is feasible under the square-root assignment at the model
/// gain `β` (certified by the exact checker).
pub fn sqrt_feasible_nodes<M: MetricSpace, R: Rng + ?Sized>(
    instance: &NodeLossInstance<M>,
    params: &SinrParams,
    config: &DecompositionConfig,
    rng: &mut R,
) -> Vec<usize> {
    let n = instance.len();
    if n == 0 {
        return Vec::new();
    }
    if n == 1 {
        return vec![0];
    }

    // Lemma 6 / Proposition 7: dominating tree family over the node-loss
    // metric, restricted to the core of the best tree.
    let family = DominatingTreeFamily::build(instance.metric(), config.embedding, rng);
    let all: Vec<usize> = (0..n).collect();
    let (tree_index, core_nodes) = family
        .best_tree_for(&all)
        .expect("family contains at least one tree");
    let embedding = family.tree(tree_index);

    // Lemma 9: recursive centroid decomposition of the host tree; the
    // survivors of every star selection along the way are kept.
    let host = embedding.tree();
    let mut active_hosts: Vec<NodeId> = Vec::new();
    let mut hosted: BTreeMap<NodeId, Vec<usize>> = BTreeMap::new();
    for &node in &core_nodes {
        let leaf = embedding.leaf_of(node);
        hosted.entry(leaf).or_default().push(node);
        if !active_hosts.contains(&leaf) {
            active_hosts.push(leaf);
        }
    }
    let component: Vec<NodeId> = (0..host.len()).collect();
    let star_gain = (params.beta() * config.star_gain_fraction).max(f64::MIN_POSITIVE);
    let mut survivors: BTreeSet<usize> = BTreeSet::new();
    recurse_on_tree(
        host,
        &component,
        &hosted,
        instance,
        params,
        star_gain,
        &mut survivors,
    );

    // Lemma 8 + Propositions 3/4: certify the survivors in the original
    // metric under the square-root assignment at the model gain.
    let evaluator = instance.sqrt_evaluator(*params);
    // `BTreeSet` iteration is ascending, so the candidate list is already
    // sorted — deterministically, independent of insertion order.
    let mut candidate: Vec<usize> = survivors.into_iter().collect();
    if candidate.is_empty() {
        candidate = all;
    }
    extract_feasible_subset(&evaluator, &candidate, params.beta())
}

/// One level of the Lemma 9 recursion: pick a centroid of the current
/// component, run the Lemma 5 star selection around it, then recurse into the
/// sub-components.
fn recurse_on_tree<M: MetricSpace>(
    host: &WeightedTree,
    component: &[NodeId],
    hosted: &BTreeMap<NodeId, Vec<usize>>,
    instance: &NodeLossInstance<M>,
    params: &SinrParams,
    star_gain: f64,
    survivors: &mut BTreeSet<usize>,
) {
    // Node-loss nodes present in this component.
    let present: Vec<usize> = component
        .iter()
        .filter_map(|v| hosted.get(v))
        .flat_map(|nodes| nodes.iter().copied())
        .collect();
    if present.is_empty() {
        return;
    }
    if present.len() == 1 {
        survivors.insert(present[0]);
        return;
    }
    let centroid = match host.centroid_of(component) {
        Some(c) => c,
        None => return,
    };

    // Star around the centroid: one leaf per node-loss node, radius = tree
    // distance from the centroid to the node's host vertex.
    let mut active = vec![false; host.len()];
    for &v in component {
        active[v] = true;
    }
    let dist = host.distances_from_restricted(centroid, Some(&active));
    let mut radii = Vec::with_capacity(present.len());
    let mut leaf_to_node = Vec::with_capacity(present.len());
    for &node in &present {
        let host_vertex = component
            .iter()
            .copied()
            .find(|v| hosted.get(v).is_some_and(|nodes| nodes.contains(&node)))
            .expect("present nodes have a host in the component");
        let r = dist[host_vertex];
        if r.is_finite() {
            radii.push(r);
            leaf_to_node.push(node);
        }
    }
    let losses: Vec<f64> = leaf_to_node
        .iter()
        .map(|&node| instance.loss(node))
        .collect();
    let star_instance = NodeLossInstance::new(StarMetric::new(radii), losses)
        .expect("losses are positive by construction");
    let kept_leaves = star_sqrt_subset(&star_instance, params, star_gain);
    for &leaf in &kept_leaves {
        survivors.insert(leaf_to_node[leaf]);
    }

    // Split at the centroid and recurse into the resulting components.
    let mut without_centroid = active.clone();
    without_centroid[centroid] = false;
    for sub in host.components(&without_centroid) {
        recurse_on_tree(host, &sub, hosted, instance, params, star_gain, survivors);
    }
}

/// Schedules a bidirectional instance with the square-root assignment by
/// repeatedly extracting a feasible node set via [`sqrt_feasible_nodes`],
/// coloring the requests whose both endpoints survived, and recursing on the
/// remainder (the strategy of §3.5).
///
/// The returned schedule is always feasible for the square-root assignment in
/// the bidirectional variant. Rounds that fail to cover a full pair fall back
/// to greedy selection so progress is guaranteed.
pub fn sqrt_schedule_via_decomposition<M: MetricSpace, R: Rng + ?Sized>(
    instance: &Instance<M>,
    params: &SinrParams,
    config: &DecompositionConfig,
    rng: &mut R,
) -> Schedule {
    let n = instance.len();
    let mut colors = vec![usize::MAX; n];
    let mut remaining: Vec<usize> = (0..n).collect();
    let mut color = 0;
    let evaluator = instance.evaluator(*params, &oblisched_sinr::ObliviousPower::SquareRoot);
    let view = evaluator.view(oblisched_sinr::Variant::Bidirectional);

    while !remaining.is_empty() && color < config.max_rounds {
        // Build the node-loss problem for the remaining requests only.
        let (restricted, mapping) = instance.restrict(&remaining);
        let (node_loss, pair_map) = split_pairs(&restricted, params);
        let nodes = sqrt_feasible_nodes(&node_loss, params, config, rng);
        let covered_local = pair_map.requests_fully_covered(&nodes);
        let mut covered: Vec<usize> = covered_local.iter().map(|&i| mapping[i]).collect();
        // Certify the pair set (node feasibility implies pair feasibility only
        // up to constant gain factors, so thin explicitly at gain β), then
        // make the color class maximal.
        covered = extract_feasible_subset(&view, &covered, params.beta());
        covered = crate::greedy::greedy_augment(&view, covered, &remaining);
        if covered.is_empty() {
            covered = vec![remaining[0]];
        }
        for &i in &covered {
            colors[i] = color;
        }
        remaining.retain(|i| !covered.contains(i));
        color += 1;
    }
    // Any stragglers (only possible if max_rounds was hit) get their own
    // colors.
    for (i, c) in colors.iter_mut().enumerate() {
        if *c == usize::MAX {
            *c = color;
            color += 1;
            let _ = i;
        }
    }
    Schedule::new(colors)
}

#[cfg(test)]
mod tests {
    use super::*;
    use oblisched_instances::{nested_chain, uniform_deployment, DeploymentConfig};
    use oblisched_sinr::{InterferenceSystem, ObliviousPower, Variant};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn params() -> SinrParams {
        SinrParams::new(3.0, 1.0).unwrap()
    }

    #[test]
    fn node_selection_is_feasible_under_sqrt() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let inst = uniform_deployment(
            DeploymentConfig {
                num_requests: 12,
                side: 400.0,
                min_link: 1.0,
                max_link: 10.0,
            },
            &mut rng,
        );
        let p = params();
        let (node_loss, _) = split_pairs(&inst, &p);
        let nodes = sqrt_feasible_nodes(&node_loss, &p, &DecompositionConfig::default(), &mut rng);
        let eval = node_loss.sqrt_evaluator(p);
        assert!(
            eval.is_feasible(&nodes),
            "selected node set must be feasible at gain beta"
        );
        assert!(!nodes.is_empty());
    }

    #[test]
    fn node_selection_handles_tiny_instances() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let metric = oblisched_metric::LineMetric::new(vec![0.0, 5.0]);
        let inst = NodeLossInstance::new(metric, vec![1.0, 2.0]).unwrap();
        let nodes =
            sqrt_feasible_nodes(&inst, &params(), &DecompositionConfig::default(), &mut rng);
        assert!(!nodes.is_empty());

        let empty =
            NodeLossInstance::new(oblisched_metric::LineMetric::new(vec![]), vec![]).unwrap();
        assert!(
            sqrt_feasible_nodes(&empty, &params(), &DecompositionConfig::default(), &mut rng)
                .is_empty()
        );
    }

    #[test]
    fn decomposition_schedule_is_feasible_on_random_instances() {
        let mut rng = ChaCha8Rng::seed_from_u64(21);
        let inst = uniform_deployment(
            DeploymentConfig {
                num_requests: 14,
                side: 300.0,
                min_link: 1.0,
                max_link: 8.0,
            },
            &mut rng,
        );
        let p = params();
        let schedule =
            sqrt_schedule_via_decomposition(&inst, &p, &DecompositionConfig::default(), &mut rng);
        let eval = inst.evaluator(p, &ObliviousPower::SquareRoot);
        assert!(schedule.validate(&eval, Variant::Bidirectional).is_ok());
        assert_eq!(schedule.len(), 14);
    }

    #[test]
    fn decomposition_schedule_is_feasible_on_the_nested_chain() {
        let mut rng = ChaCha8Rng::seed_from_u64(31);
        let inst = nested_chain(8, 2.0);
        let p = params();
        let schedule =
            sqrt_schedule_via_decomposition(&inst, &p, &DecompositionConfig::default(), &mut rng);
        let eval = inst.evaluator(p, &ObliviousPower::SquareRoot);
        assert!(schedule.validate(&eval, Variant::Bidirectional).is_ok());
        // The sqrt assignment needs only a handful of colors on the nested
        // chain (uniform would need all 8).
        assert!(
            schedule.num_colors() <= 6,
            "used {} colors",
            schedule.num_colors()
        );
    }

    #[test]
    fn decomposition_covers_every_request_exactly_once() {
        let mut rng = ChaCha8Rng::seed_from_u64(41);
        let inst = uniform_deployment(
            DeploymentConfig {
                num_requests: 10,
                side: 200.0,
                min_link: 1.0,
                max_link: 5.0,
            },
            &mut rng,
        );
        let p = params();
        let schedule =
            sqrt_schedule_via_decomposition(&inst, &p, &DecompositionConfig::default(), &mut rng);
        assert_eq!(schedule.len(), 10);
        let total: usize = schedule.classes().iter().map(|c| c.len()).sum();
        assert_eq!(total, 10);
    }
}

//! Regression tests pinning order-independence of the deterministic paths.
//!
//! PR 8 replaced the `HashMap`/`HashSet` uses in `dynamic.rs` and
//! `decomposition.rs` with BTree collections so that no traversal can leak
//! hash-iteration order into scheduler output (the `map-iteration-order`
//! oblint rule keeps it that way). These tests pin the observable guarantee:
//! replaying the same inputs produces bit-identical schedules, including
//! the paths that iterate the converted collections.

use oblisched::decomposition::{sqrt_schedule_via_decomposition, DecompositionConfig};
use oblisched::dynamic::{DynamicScheduler, RequestId};
use oblisched_instances::{scaling_clustered, scaling_uniform};
use oblisched_sinr::{ObliviousPower, SinrParams, Variant};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn params() -> SinrParams {
    SinrParams::new(3.0, 1.0).unwrap()
}

/// The §3 decomposition pipeline iterates the survivor set (now a
/// `BTreeSet`) to build the certification candidate list. Two runs from the
/// same seed must agree color-for-color.
#[test]
fn decomposition_schedule_is_replay_identical() {
    for seed in [7u64, 21, 99] {
        let inst = scaling_uniform(40, seed);
        let p = params();
        let run = |seed: u64| {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            sqrt_schedule_via_decomposition(&inst, &p, &DecompositionConfig::default(), &mut rng)
        };
        let first = run(seed ^ 0xA5);
        let second = run(seed ^ 0xA5);
        assert_eq!(
            first.colors(),
            second.colors(),
            "decomposition schedule diverged between identical runs (seed {seed})"
        );
    }
}

/// Driving two dynamic schedulers through the same churn must leave them in
/// bit-identical logical states — including after removals, whose bounded
/// recoloring consults the live-entry bookkeeping that used to be a
/// `HashMap`.
#[test]
fn dynamic_scheduler_state_is_replay_identical() {
    let inst = scaling_clustered(48, 5);
    let p = params();
    for power in [ObliviousPower::SquareRoot, ObliviousPower::Uniform] {
        let eval = inst.evaluator(p, &power);
        let view = eval.view(Variant::Bidirectional);

        let drive = || {
            let mut sched = DynamicScheduler::new(&view);
            let mut ids: Vec<RequestId> = Vec::new();
            for item in 0..48 {
                ids.push(sched.insert(item).unwrap());
            }
            // A deterministic removal pattern that exercises the recoloring
            // path: drop every third request, then re-insert half of them.
            for k in (0..48).step_by(3) {
                sched.remove(ids[k]).unwrap();
            }
            for item in (0..48).step_by(6) {
                sched.insert(item).unwrap();
            }
            sched
        };

        let a = drive();
        let b = drive();
        assert_eq!(
            a.export_state(),
            b.export_state(),
            "dynamic scheduler state diverged between identical replays"
        );
        assert_eq!(a.color_classes(), b.color_classes());
        a.validate().unwrap();
    }
}

//! Property-based tests for the scheduling algorithms.

use oblisched::durability::{replay_records, DurableScheduler, MemoryStore, WalRecord};
use oblisched::dynamic::{DynamicConfig, RequestId};
use oblisched::solve::{PowerAssignment, SolveRequest};
use oblisched::{
    exact_chromatic_number, exact_max_one_shot, first_fit_coloring, first_fit_coloring_naive,
    first_fit_with_order, first_fit_with_order_naive, greedy_one_shot, sqrt_coloring, Scheduler,
    SqrtColoringConfig,
};
use oblisched_instances::{uniform_deployment, DeploymentConfig};
use oblisched_metric::EuclideanSpace;
use oblisched_sinr::{Instance, InterferenceSystem, ObliviousPower, SinrParams, Variant};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn instance_from_seed(seed: u64, n: usize) -> Instance<EuclideanSpace<2>> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    uniform_deployment(
        DeploymentConfig {
            num_requests: n,
            side: 400.0,
            min_link: 1.0,
            max_link: 25.0,
        },
        &mut rng,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn first_fit_schedules_are_always_feasible(
        seed in any::<u64>(),
        n in 2usize..20,
        alpha in 2.0f64..4.0,
        beta in 0.5f64..2.0,
        power_choice in 0usize..3,
    ) {
        let instance = instance_from_seed(seed, n);
        let params = SinrParams::new(alpha, beta).unwrap();
        let power = ObliviousPower::standard_assignments()[power_choice];
        let eval = instance.evaluator(params, &power);
        for variant in Variant::all() {
            let schedule = first_fit_coloring(&eval.view(variant));
            prop_assert!(schedule.validate(&eval, variant).is_ok());
            prop_assert_eq!(schedule.len(), n);
            prop_assert!(schedule.num_colors() <= n);
        }
    }

    #[test]
    fn first_fit_order_does_not_affect_feasibility(
        seed in any::<u64>(),
        n in 2usize..14,
    ) {
        let instance = instance_from_seed(seed, n);
        let params = SinrParams::new(3.0, 1.0).unwrap();
        let eval = instance.evaluator(params, &ObliviousPower::SquareRoot);
        let view = eval.view(Variant::Bidirectional);
        let forward: Vec<usize> = (0..n).collect();
        let backward: Vec<usize> = (0..n).rev().collect();
        for order in [forward, backward] {
            let schedule = first_fit_with_order(&view, &order);
            prop_assert!(schedule.validate(&eval, Variant::Bidirectional).is_ok());
        }
    }

    #[test]
    fn incremental_first_fit_equals_naive_everywhere(
        seed in any::<u64>(),
        n in 2usize..18,
        alpha in 2.0f64..4.0,
        beta in 0.5f64..2.0,
    ) {
        // The engine migration must be drift-free: the incremental first-fit
        // (and its matrix-cached flavour) produce the *same* coloring as the
        // naive evaluator path on random instances, for every oblivious
        // assignment and both variants.
        let instance = instance_from_seed(seed, n);
        let params = SinrParams::new(alpha, beta).unwrap();
        for power in ObliviousPower::standard_assignments() {
            let eval = instance.evaluator(params, &power);
            for variant in Variant::all() {
                let view = eval.view(variant);
                let naive = first_fit_coloring_naive(&view);
                prop_assert_eq!(first_fit_coloring(&view), naive.clone());
                prop_assert_eq!(first_fit_coloring(&view.cached()), naive.clone());
                let backward: Vec<usize> = (0..n).rev().collect();
                prop_assert_eq!(
                    first_fit_with_order(&view, &backward),
                    first_fit_with_order_naive(&view, &backward)
                );
            }
        }
    }

    #[test]
    fn exact_optimum_never_exceeds_greedy(
        seed in any::<u64>(),
        n in 2usize..9,
    ) {
        let instance = instance_from_seed(seed, n);
        let params = SinrParams::new(3.0, 1.0).unwrap();
        let eval = instance.evaluator(params, &ObliviousPower::SquareRoot);
        let view = eval.view(Variant::Bidirectional);
        let greedy = first_fit_coloring(&view);
        let (optimum, schedule) = exact_chromatic_number(&view);
        prop_assert!(optimum <= greedy.num_colors());
        prop_assert!(schedule.validate(&eval, Variant::Bidirectional).is_ok());
        // The exact maximum one-shot set dominates the greedy one.
        let all: Vec<usize> = (0..n).collect();
        let exact_set = exact_max_one_shot(&view, &all);
        let greedy_set = greedy_one_shot(&view, &all);
        prop_assert!(exact_set.len() >= greedy_set.len());
        prop_assert!(view.is_feasible(&exact_set));
    }

    #[test]
    fn sqrt_lp_coloring_is_feasible_and_complete(
        seed in any::<u64>(),
        n in 2usize..14,
    ) {
        let instance = instance_from_seed(seed, n);
        let params = SinrParams::new(3.0, 1.0).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xabcd);
        let schedule = sqrt_coloring(&instance, &params, &SqrtColoringConfig::default(), &mut rng);
        let eval = instance.evaluator(params, &ObliviousPower::SquareRoot);
        prop_assert!(schedule.validate(&eval, Variant::Bidirectional).is_ok());
        prop_assert_eq!(schedule.len(), n);
    }

    #[test]
    fn scheduler_facade_results_are_consistent(
        seed in any::<u64>(),
        n in 2usize..12,
    ) {
        let instance = instance_from_seed(seed, n);
        let scheduler = Scheduler::new(SinrParams::new(3.0, 1.0).unwrap());
        let result = scheduler
            .solve(&instance, &SolveRequest::first_fit(PowerAssignment::SquareRoot))
            .unwrap();
        prop_assert_eq!(result.schedule.len(), n);
        prop_assert_eq!(result.powers.len(), n);
        prop_assert!(result.num_colors() >= 1);
        prop_assert!(result.total_energy() > 0.0);
        // Power control never uses more colors than the trivial n.
        let pc = scheduler.solve(&instance, &SolveRequest::power_control()).unwrap();
        prop_assert!(pc.num_colors() <= n);
    }

    #[test]
    fn wal_records_round_trip_and_replay_exactly(
        seed in any::<u64>(),
        ops in prop::collection::vec((any::<bool>(), any::<u16>()), 1..48),
        power_choice in 0usize..3,
        variant_choice in 0usize..2,
    ) {
        // Arbitrary insert/remove interleavings, recorded through a durable
        // session: every WAL record must round-trip through its JSONL line
        // form, and replaying the parsed log must rebuild the exact state
        // the live session reached — across all three standard power
        // assignments and both feasibility variants.
        let n = 20usize;
        let instance = instance_from_seed(seed, n);
        let params = SinrParams::new(3.0, 1.0).unwrap();
        let power = ObliviousPower::standard_assignments()[power_choice];
        let eval = instance.evaluator(params, &power);
        let variant = Variant::all()[variant_choice];
        let view = eval.view(variant);
        let config = DynamicConfig::default();
        let mut session = DurableScheduler::create(&view, config, 5, MemoryStore::new()).unwrap();
        let mut live: Vec<RequestId> = Vec::new();
        let mut next_item = 0usize;
        for &(insert, pick) in &ops {
            if (insert || live.is_empty()) && next_item < n {
                live.push(session.insert(next_item).unwrap());
                next_item += 1;
            } else if !live.is_empty() {
                let id = live.remove(pick as usize % live.len());
                session.remove(id).unwrap();
            }
        }
        session.validate().unwrap();
        let direct = session.scheduler().export_state();
        let mut parsed = Vec::new();
        for record in session.store().records() {
            let line = serde_json::to_string(record).unwrap();
            let back: WalRecord = serde_json::from_str(&line).unwrap();
            prop_assert_eq!(&back, record);
            parsed.push(back);
        }
        let replayed = replay_records(&view, config, &parsed).unwrap();
        prop_assert_eq!(replayed.export_state(), direct);
    }
}

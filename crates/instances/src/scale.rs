//! Large-`n` workload constructors for the scaling experiments.
//!
//! These are seed-pinned, density-normalised convenience wrappers around the
//! family generators of this crate, parameterised for the `n = 10⁴–10⁵`
//! regime that the incremental interference engine of `oblisched_sinr`
//! opens up. Generation is `O(n)` time and memory for every family; it is
//! the *scheduling* of these instances that used to be the bottleneck.
//!
//! Two conventions keep the families comparable across sizes:
//!
//! * **constant density** — random deployments live in a square of side
//!   `10·√n`, so the expected number of links per unit area (and with it the
//!   per-color packing behaviour) is independent of `n`;
//! * **seed-pinned determinism** — the same `(n, seed)` always produces the
//!   same instance, which is what lets the scaling bench assert that the
//!   incremental and the naive first-fit produce *identical* colorings.

use crate::line::evenly_spaced_line;
use crate::random::{clustered_deployment, uniform_deployment, DeploymentConfig};
use oblisched_metric::{EuclideanSpace, LineMetric};
use oblisched_sinr::Instance;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// The [`DeploymentConfig`] used by the scaling families: `n` requests of
/// length 1–15 in a square of side `10·√n`. The density is chosen so that
/// first-fit needs a couple of dozen colors — dense enough that color
/// classes stay in the hundreds of members (the regime separating the
/// incremental engine from the naive path), sparse enough that the naive
/// baseline still terminates at `n = 5000`.
pub fn scaling_config(n: usize) -> DeploymentConfig {
    DeploymentConfig {
        num_requests: n,
        side: 10.0 * (n as f64).sqrt(),
        min_link: 1.0,
        max_link: 15.0,
    }
}

/// A seed-pinned uniform random deployment at constant density.
///
/// Tractable to *generate* for any `n` (including `10⁵`); scheduling it with
/// the incremental engine is practical well into the `n ≥ 10⁴` regime.
///
/// # Panics
///
/// Panics if `n == 0` (the deployment config requires at least one request).
///
/// # Example
///
/// ```
/// use oblisched_instances::scaling_uniform;
///
/// let inst = scaling_uniform(100, 7);
/// assert_eq!(inst.len(), 100);
/// assert_eq!(inst, scaling_uniform(100, 7)); // seed-pinned
/// ```
pub fn scaling_uniform(n: usize, seed: u64) -> Instance<EuclideanSpace<2>> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    uniform_deployment(scaling_config(n), &mut rng)
}

/// A seed-pinned clustered deployment at constant density: `max(4, n/256)`
/// clusters of radius 30, producing the locally dense hot spots on which the
/// square-root assignment separates from uniform and linear.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn scaling_clustered(n: usize, seed: u64) -> Instance<EuclideanSpace<2>> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let clusters = (n / 256).max(4);
    clustered_deployment(scaling_config(n), clusters, 30.0, &mut rng)
}

/// A deterministic line family: `n` unit links separated by gaps of 6 length
/// units. Moderately interfering — first-fit needs only a handful of colors,
/// which makes the color classes large and the instance a worst case for the
/// naive `O(class²)` feasibility queries.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn scaling_line(n: usize) -> Instance<LineMetric> {
    evenly_spaced_line(n, 1.0, 6.0)
}

/// The sizes of the *large* scaling tier: deployments the dense `GainMatrix`
/// cannot hold. At `n = 10⁴` the bidirectional matrix would need
/// `8 · 2 · n² = 1.6 GB` — 25× the scheduler facade's default 64 MiB budget
/// — and at `n = 5·10⁴` it would need 40 GB; only the spatially-pruned
/// sparse backend (and the uncached path) can schedule these.
pub const LARGE_SCALE_SIZES: [usize; 2] = [10_000, 50_000];

/// Seed-pinned uniform deployment at the large tier: `n = 10⁴` at constant
/// density. Generation is `O(n)`; scheduling requires the sparse backend
/// (see [`LARGE_SCALE_SIZES`]).
pub fn scaling_uniform_10k(seed: u64) -> Instance<EuclideanSpace<2>> {
    scaling_uniform(LARGE_SCALE_SIZES[0], seed)
}

/// Seed-pinned uniform deployment at the extreme tier: `n = 5·10⁴`.
pub fn scaling_uniform_50k(seed: u64) -> Instance<EuclideanSpace<2>> {
    scaling_uniform(LARGE_SCALE_SIZES[1], seed)
}

/// Seed-pinned clustered deployment at the large tier: `n = 10⁴` with
/// `n/256` hot spots.
pub fn scaling_clustered_10k(seed: u64) -> Instance<EuclideanSpace<2>> {
    scaling_clustered(LARGE_SCALE_SIZES[0], seed)
}

/// Seed-pinned clustered deployment at the extreme tier: `n = 5·10⁴`.
pub fn scaling_clustered_50k(seed: u64) -> Instance<EuclideanSpace<2>> {
    scaling_clustered(LARGE_SCALE_SIZES[1], seed)
}

/// The deterministic line family at the large tier: `n = 10⁴` unit links.
pub fn scaling_line_10k() -> Instance<LineMetric> {
    scaling_line(LARGE_SCALE_SIZES[0])
}

/// The deterministic line family at the extreme tier: `n = 5·10⁴` unit
/// links.
pub fn scaling_line_50k() -> Instance<LineMetric> {
    scaling_line(LARGE_SCALE_SIZES[1])
}

#[cfg(test)]
mod tests {
    use super::*;
    use oblisched_metric::MetricSpace;

    #[test]
    fn families_are_seed_pinned_and_sized() {
        assert_eq!(scaling_uniform(50, 3), scaling_uniform(50, 3));
        assert_ne!(scaling_uniform(50, 3), scaling_uniform(50, 4));
        assert_eq!(scaling_clustered(50, 3), scaling_clustered(50, 3));
        assert_eq!(scaling_uniform(50, 3).len(), 50);
        assert_eq!(scaling_clustered(40, 1).len(), 40);
        assert_eq!(scaling_line(64).len(), 64);
    }

    #[test]
    fn density_is_constant_across_sizes() {
        let small = scaling_config(100);
        let large = scaling_config(10_000);
        let density = |c: &DeploymentConfig| c.num_requests as f64 / (c.side * c.side);
        assert!((density(&small) - density(&large)).abs() < 1e-12);
    }

    #[test]
    fn large_n_generation_is_tractable() {
        // 10⁴-sized instances must come out instantly; this exercises the
        // constructors in the regime the engine targets without scheduling.
        let inst = scaling_uniform_10k(1);
        assert_eq!(inst.len(), 10_000);
        assert_eq!(inst.metric().len(), 20_000);
        let line = scaling_line_10k();
        assert_eq!(line.len(), 10_000);
        let clustered = scaling_clustered_10k(1);
        assert_eq!(clustered.len(), 10_000);
    }

    #[test]
    fn large_tier_exceeds_the_dense_matrix_budget() {
        // The point of the large tier: these sizes cannot be held densely.
        // 64 MiB is the scheduler facade's default budget.
        const DEFAULT_BUDGET: usize = 64 * 1024 * 1024;
        for n in LARGE_SCALE_SIZES {
            for ports in [1usize, 2] {
                let dense = oblisched_sinr::GainMatrix::checked_bytes_for(n, ports)
                    .expect("these sizes do not overflow");
                assert!(
                    dense > DEFAULT_BUDGET,
                    "n={n} ports={ports} would fit the dense budget — not a large-tier size"
                );
            }
        }
    }

    #[test]
    fn extreme_tier_generation_is_tractable() {
        // Generation stays O(n) even at 5·10⁴; seed-pinning holds.
        let a = scaling_uniform_50k(3);
        assert_eq!(a.len(), 50_000);
        assert_eq!(a, scaling_uniform_50k(3));
        assert_eq!(scaling_line_50k().len(), 50_000);
        assert_eq!(scaling_clustered_50k(1).len(), 50_000);
    }
}

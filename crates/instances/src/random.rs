//! Random planar deployments: uniform, clustered, and matching workloads.

use oblisched_metric::{EuclideanSpace, Point2};
use oblisched_sinr::{Instance, Request};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Configuration of a random planar deployment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeploymentConfig {
    /// Number of communication requests.
    pub num_requests: usize,
    /// Side length of the square area in which senders are placed.
    pub side: f64,
    /// Minimum link length.
    pub min_link: f64,
    /// Maximum link length.
    pub max_link: f64,
}

impl Default for DeploymentConfig {
    fn default() -> Self {
        Self {
            num_requests: 32,
            side: 1000.0,
            min_link: 1.0,
            max_link: 50.0,
        }
    }
}

impl DeploymentConfig {
    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics if the side or link lengths are not positive and ordered.
    fn validate(&self) {
        assert!(
            self.side > 0.0 && self.side.is_finite(),
            "side must be positive"
        );
        assert!(
            self.min_link > 0.0 && self.max_link >= self.min_link && self.max_link.is_finite(),
            "link length range must satisfy 0 < min <= max"
        );
    }
}

/// Generates a request set with sender positions uniform in a square and each
/// receiver at a uniformly random direction and distance from its sender.
///
/// # Panics
///
/// Panics if the configuration is invalid (see [`DeploymentConfig`]).
pub fn uniform_deployment<R: Rng + ?Sized>(
    config: DeploymentConfig,
    rng: &mut R,
) -> Instance<EuclideanSpace<2>> {
    config.validate();
    let mut points = Vec::with_capacity(2 * config.num_requests);
    let mut requests = Vec::with_capacity(config.num_requests);
    for _ in 0..config.num_requests {
        let sender = Point2::xy(
            rng.gen_range(0.0..config.side),
            rng.gen_range(0.0..config.side),
        );
        let length = rng.gen_range(config.min_link..=config.max_link);
        let angle = rng.gen_range(0.0..std::f64::consts::TAU);
        let receiver = Point2::xy(
            sender.x() + length * angle.cos(),
            sender.y() + length * angle.sin(),
        );
        let id = points.len();
        points.push(sender);
        points.push(receiver);
        requests.push(Request::new(id, id + 1));
    }
    crate::generated(
        Instance::new(EuclideanSpace::from_points(points), requests),
        "deployment links have positive length",
    )
}

/// Generates a clustered deployment: senders are grouped around
/// `num_clusters` random cluster centres (Gaussian-ish spread implemented as
/// uniform within a disc of radius `cluster_radius`), receivers as in
/// [`uniform_deployment`].
///
/// Clustered instances have highly non-uniform densities and exercise the
/// "nested requests" behaviour that separates the power assignments.
///
/// # Panics
///
/// Panics if the configuration is invalid or `num_clusters == 0`.
pub fn clustered_deployment<R: Rng + ?Sized>(
    config: DeploymentConfig,
    num_clusters: usize,
    cluster_radius: f64,
    rng: &mut R,
) -> Instance<EuclideanSpace<2>> {
    config.validate();
    assert!(num_clusters > 0, "at least one cluster is required");
    assert!(
        cluster_radius > 0.0 && cluster_radius.is_finite(),
        "cluster radius must be positive"
    );
    let centres: Vec<Point2> = (0..num_clusters)
        .map(|_| {
            Point2::xy(
                rng.gen_range(0.0..config.side),
                rng.gen_range(0.0..config.side),
            )
        })
        .collect();
    let mut points = Vec::with_capacity(2 * config.num_requests);
    let mut requests = Vec::with_capacity(config.num_requests);
    for _ in 0..config.num_requests {
        let centre = centres[rng.gen_range(0..num_clusters)];
        let r = cluster_radius * rng.gen_range(0.0f64..1.0).sqrt();
        let phi = rng.gen_range(0.0..std::f64::consts::TAU);
        let sender = Point2::xy(centre.x() + r * phi.cos(), centre.y() + r * phi.sin());
        let length = rng.gen_range(config.min_link..=config.max_link);
        let angle = rng.gen_range(0.0..std::f64::consts::TAU);
        let receiver = Point2::xy(
            sender.x() + length * angle.cos(),
            sender.y() + length * angle.sin(),
        );
        let id = points.len();
        points.push(sender);
        points.push(receiver);
        requests.push(Request::new(id, id + 1));
    }
    crate::generated(
        Instance::new(EuclideanSpace::from_points(points), requests),
        "deployment links have positive length",
    )
}

/// Generates `num_nodes` uniform points and pairs them up by a random perfect
/// matching (dropping one node if the count is odd). The resulting requests
/// have very heterogeneous lengths — the workload used to contrast against
/// controlled-length deployments.
///
/// Coincident nodes are avoided by rejection, so the returned instance is
/// always valid.
///
/// # Panics
///
/// Panics if `num_nodes < 2` or `side` is not positive.
pub fn random_matching<R: Rng + ?Sized>(
    num_nodes: usize,
    side: f64,
    rng: &mut R,
) -> Instance<EuclideanSpace<2>> {
    assert!(num_nodes >= 2, "need at least two nodes to form a request");
    assert!(side > 0.0 && side.is_finite(), "side must be positive");
    let points: Vec<Point2> = (0..num_nodes)
        .map(|_| Point2::xy(rng.gen_range(0.0..side), rng.gen_range(0.0..side)))
        .collect();
    let mut order: Vec<usize> = (0..num_nodes).collect();
    // Fisher–Yates shuffle using the provided RNG.
    for i in (1..order.len()).rev() {
        let j = rng.gen_range(0..=i);
        order.swap(i, j);
    }
    let mut requests = Vec::new();
    let space = EuclideanSpace::from_points(points);
    let mut iter = order.chunks_exact(2);
    for pair in &mut iter {
        let (a, b) = (pair[0], pair[1]);
        if space.points()[a].distance(&space.points()[b]) > 0.0 {
            requests.push(Request::new(a, b));
        }
    }
    crate::generated(
        Instance::new(space, requests),
        "zero-length pairs were filtered out",
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use oblisched_metric::MetricSpace;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn uniform_deployment_respects_config() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let config = DeploymentConfig {
            num_requests: 20,
            side: 500.0,
            min_link: 2.0,
            max_link: 10.0,
        };
        let inst = uniform_deployment(config, &mut rng);
        assert_eq!(inst.len(), 20);
        for i in 0..inst.len() {
            let d = inst.link_distance(i);
            assert!(
                (2.0 - 1e-9..=10.0 + 1e-9).contains(&d),
                "link length {d} out of range"
            );
        }
    }

    #[test]
    fn uniform_deployment_is_deterministic_per_seed() {
        let config = DeploymentConfig::default();
        let a = uniform_deployment(config, &mut ChaCha8Rng::seed_from_u64(7));
        let b = uniform_deployment(config, &mut ChaCha8Rng::seed_from_u64(7));
        let c = uniform_deployment(config, &mut ChaCha8Rng::seed_from_u64(8));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic(expected = "link length range")]
    fn invalid_link_range_panics() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let config = DeploymentConfig {
            min_link: 5.0,
            max_link: 1.0,
            ..Default::default()
        };
        let _ = uniform_deployment(config, &mut rng);
    }

    #[test]
    fn clustered_deployment_produces_valid_instances() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let config = DeploymentConfig {
            num_requests: 30,
            side: 1000.0,
            min_link: 1.0,
            max_link: 5.0,
        };
        let inst = clustered_deployment(config, 4, 20.0, &mut rng);
        assert_eq!(inst.len(), 30);
        assert_eq!(inst.metric().len(), 60);
        // Clustered senders should be denser than the full square: the mean
        // nearest-sender distance must be well below side / sqrt(n).
        let senders: Vec<_> = (0..inst.len()).map(|i| inst.request(i).sender).collect();
        let mut nearest_sum = 0.0;
        for &s in &senders {
            let mut best = f64::INFINITY;
            for &t in &senders {
                if t != s {
                    best = best.min(inst.metric().distance(s, t));
                }
            }
            nearest_sum += best;
        }
        let mean_nearest = nearest_sum / senders.len() as f64;
        assert!(mean_nearest < 1000.0 / (30f64).sqrt());
    }

    #[test]
    fn random_matching_pairs_distinct_nodes() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let inst = random_matching(21, 100.0, &mut rng);
        // 21 nodes -> 10 pairs (one node unused), all with positive length.
        assert_eq!(inst.len(), 10);
        for i in 0..inst.len() {
            assert!(inst.link_distance(i) > 0.0);
            let r = inst.request(i);
            assert_ne!(r.sender, r.receiver);
        }
        // Each node used at most once.
        let mut used = std::collections::HashSet::new();
        for r in inst.requests() {
            assert!(used.insert(r.sender));
            assert!(used.insert(r.receiver));
        }
    }

    #[test]
    #[should_panic(expected = "at least one cluster")]
    fn clustered_requires_clusters() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let _ = clustered_deployment(DeploymentConfig::default(), 0, 10.0, &mut rng);
    }

    #[test]
    fn default_config_is_sane() {
        let c = DeploymentConfig::default();
        assert!(c.num_requests > 0);
        assert!(c.min_link <= c.max_link);
    }
}

//! Family-by-name instance construction: the serializable [`Family`] enum
//! names every generator of this crate, and [`build_family`] turns a
//! `(family, n, seed)` triple into a concrete instance — the constructor the
//! JSONL job runner (`oblisched_bench`'s `jobs` binary) uses to express
//! every scenario as data.
//!
//! # Example
//!
//! ```
//! use oblisched_instances::{build_family, Family};
//!
//! let inst = build_family(Family::Scaling, 50, 42)?;
//! assert_eq!(inst.len(), 50);
//! // Seed-pinned: the same triple always produces the same instance.
//! assert_eq!(inst, build_family(Family::Scaling, 50, 42)?);
//! # Ok::<(), oblisched_instances::FamilyError>(())
//! ```

use crate::adversarial::{adversarial_for, max_supported_n};
use crate::nested::nested_chain;
use crate::random::{clustered_deployment, uniform_deployment, DeploymentConfig};
use crate::scale::{scaling_line, scaling_uniform};
use oblisched_metric::{EuclideanSpace, LineMetric};
use oblisched_sinr::{Instance, ObliviousPower, SinrParams};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::fmt;

/// The instance families job files can name. Every variant is seed-pinned
/// and deterministic: the same `(family, n, seed)` triple always produces
/// the same instance (`line`, `nested` and `adversarial` are fully
/// deterministic and ignore the seed).
///
/// Serializes as its lowercase name (`"uniform"`, `"scaling"`, …) — the
/// spelling job files and the README use — rather than the Rust variant
/// identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Family {
    /// A uniform random deployment at the experiment harness's density:
    /// links of length 1–15 in a square of side `40·√n`.
    Uniform,
    /// A clustered random deployment at the same density: `max(4, n/256)`
    /// hot spots of radius 30.
    Clustered,
    /// The deterministic line family: `n` unit links separated by gaps of 6
    /// length units.
    Line,
    /// The §1.2 nested chain `u_i = −2^i`, `v_i = 2^i` on which the
    /// square-root assignment separates from uniform and linear.
    Nested,
    /// The Theorem 1 adversarial directed family targeting the uniform
    /// assignment (at the default `α = 3`, `β = 1`), on which any oblivious
    /// schedule needs `Ω(n)` colors while power control needs `O(1)`.
    Adversarial,
    /// The constant-density scaling family (square of side `10·√n`) — the
    /// dense regime the incremental engine and the sparse backend target.
    Scaling,
}

impl Family {
    /// All families, in declaration order.
    pub fn all() -> [Family; 6] {
        [
            Family::Uniform,
            Family::Clustered,
            Family::Line,
            Family::Nested,
            Family::Adversarial,
            Family::Scaling,
        ]
    }

    /// Parses a lowercase family name (`"uniform"`, `"clustered"`,
    /// `"line"`, `"nested"`, `"adversarial"`, `"scaling"`).
    pub fn parse(s: &str) -> Option<Family> {
        match s {
            "uniform" => Some(Family::Uniform),
            "clustered" => Some(Family::Clustered),
            "line" => Some(Family::Line),
            "nested" => Some(Family::Nested),
            "adversarial" => Some(Family::Adversarial),
            "scaling" => Some(Family::Scaling),
            _ => None,
        }
    }
}

impl fmt::Display for Family {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Family::Uniform => write!(f, "uniform"),
            Family::Clustered => write!(f, "clustered"),
            Family::Line => write!(f, "line"),
            Family::Nested => write!(f, "nested"),
            Family::Adversarial => write!(f, "adversarial"),
            Family::Scaling => write!(f, "scaling"),
        }
    }
}

impl serde::Serialize for Family {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(&self.to_string())
    }
}

impl<'de> serde::Deserialize<'de> for Family {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct FamilyVisitor;

        impl<'de> serde::de::Visitor<'de> for FamilyVisitor {
            type Value = Family;

            fn expecting(&self, formatter: &mut fmt::Formatter<'_>) -> fmt::Result {
                formatter.write_str("a lowercase family name")
            }

            fn visit_str<E: serde::de::Error>(self, v: &str) -> Result<Family, E> {
                Family::parse(v).ok_or_else(|| {
                    E::unknown_variant(
                        v,
                        &[
                            "uniform",
                            "clustered",
                            "line",
                            "nested",
                            "adversarial",
                            "scaling",
                        ],
                    )
                })
            }
        }

        deserializer.deserialize_str(FamilyVisitor)
    }
}

/// An instance built by [`build_family`]: the families live in two metric
/// spaces, so the constructor returns whichever the family uses. Both are
/// planar, so every scheduling entry point accepts either.
#[derive(Debug, Clone, PartialEq)]
pub enum FamilyInstance {
    /// A two-dimensional Euclidean deployment.
    Planar(Instance<EuclideanSpace<2>>),
    /// A one-dimensional (line-metric) instance.
    Line(Instance<LineMetric>),
}

impl FamilyInstance {
    /// The number of requests.
    pub fn len(&self) -> usize {
        match self {
            FamilyInstance::Planar(inst) => inst.len(),
            FamilyInstance::Line(inst) => inst.len(),
        }
    }

    /// Returns `true` if the instance has no requests.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Why a `(family, n, seed)` triple cannot be built.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FamilyError {
    /// Every family needs at least one request.
    EmptyFamily {
        /// The requested family.
        family: Family,
    },
    /// The adversarial construction is doubly exponential in `n` and only
    /// small sizes fit the `f64` range.
    UnsupportedSize {
        /// The requested family.
        family: Family,
        /// The requested size.
        n: usize,
        /// The largest size the construction supports.
        max: usize,
    },
}

impl fmt::Display for FamilyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FamilyError::EmptyFamily { family } => {
                write!(f, "family {family} needs at least one request, got n = 0")
            }
            FamilyError::UnsupportedSize { family, n, max } => write!(
                f,
                "family {family} supports at most n = {max} (the construction leaves f64 range), \
                 got n = {n}"
            ),
        }
    }
}

impl std::error::Error for FamilyError {}

/// The SINR parameters the adversarial family is built against (`α = 3`,
/// `β = 1` — the harness defaults).
fn adversarial_params() -> SinrParams {
    SinrParams::default()
}

/// Builds the named family at size `n`. The random families (`uniform`,
/// `clustered`, `scaling`) pin their RNG to `seed`; the deterministic ones
/// ignore it.
///
/// # Errors
///
/// [`FamilyError::EmptyFamily`] for `n == 0`, and
/// [`FamilyError::UnsupportedSize`] when the adversarial construction
/// cannot represent `n` pairs in `f64`.
pub fn build_family(family: Family, n: usize, seed: u64) -> Result<FamilyInstance, FamilyError> {
    if n == 0 {
        return Err(FamilyError::EmptyFamily { family });
    }
    Ok(match family {
        Family::Uniform => {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            FamilyInstance::Planar(uniform_deployment(harness_config(n), &mut rng))
        }
        Family::Clustered => {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let clusters = (n / 256).max(4);
            FamilyInstance::Planar(clustered_deployment(
                harness_config(n),
                clusters,
                30.0,
                &mut rng,
            ))
        }
        Family::Line => FamilyInstance::Line(scaling_line(n)),
        Family::Nested => {
            // The generator requires 2^n finite (its outermost radius),
            // which holds only for n <= 1023 — the f64 exponent range; the
            // bound is spelled out rather than computed because
            // log2(f64::MAX) rounds up to 1024.0. Past it the generator
            // would assert; report the cap as a typed error instead (same
            // contract as the adversarial family).
            const NESTED_MAX: usize = 1023;
            if n > NESTED_MAX {
                return Err(FamilyError::UnsupportedSize {
                    family,
                    n,
                    max: NESTED_MAX,
                });
            }
            FamilyInstance::Line(nested_chain(n, 2.0))
        }
        Family::Adversarial => {
            let params = adversarial_params();
            let max = max_supported_n(&ObliviousPower::Uniform, &params);
            if n > max {
                return Err(FamilyError::UnsupportedSize { family, n, max });
            }
            FamilyInstance::Line(
                adversarial_for(&ObliviousPower::Uniform, &params, n).into_instance(),
            )
        }
        Family::Scaling => FamilyInstance::Planar(scaling_uniform(n, seed)),
    })
}

/// The deployment density of the `uniform`/`clustered` families: the
/// experiment harness's convention (side `40·√n`, links 1–15), sparser than
/// the scaling family's `10·√n`.
fn harness_config(n: usize) -> DeploymentConfig {
    DeploymentConfig {
        num_requests: n,
        side: 40.0 * (n as f64).sqrt(),
        min_link: 1.0,
        max_link: 15.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_family_builds_and_is_seed_pinned() {
        for family in Family::all() {
            let n = 12;
            let a = build_family(family, n, 3).unwrap();
            let b = build_family(family, n, 3).unwrap();
            assert_eq!(a, b, "{family} must be deterministic");
            assert_eq!(a.len(), n);
            assert!(!a.is_empty());
        }
    }

    #[test]
    fn random_families_depend_on_the_seed() {
        for family in [Family::Uniform, Family::Clustered, Family::Scaling] {
            let a = build_family(family, 16, 1).unwrap();
            let b = build_family(family, 16, 2).unwrap();
            assert_ne!(a, b, "{family} must vary with the seed");
        }
    }

    #[test]
    fn names_round_trip() {
        for family in Family::all() {
            assert_eq!(Family::parse(&family.to_string()), Some(family));
        }
        assert_eq!(Family::parse("bogus"), None);
    }

    #[test]
    fn zero_and_oversized_requests_are_typed_errors() {
        assert_eq!(
            build_family(Family::Uniform, 0, 1),
            Err(FamilyError::EmptyFamily {
                family: Family::Uniform
            })
        );
        let max = max_supported_n(&ObliviousPower::Uniform, &adversarial_params());
        let err = build_family(Family::Adversarial, max + 1, 0).unwrap_err();
        assert!(matches!(err, FamilyError::UnsupportedSize { .. }));
        assert!(err.to_string().contains("at most"));
        // std::error::Error is implemented, so `?` works in job-runner code.
        let _: &dyn std::error::Error = &err;
        // The nested chain's doubly-exponential coordinates are capped the
        // same way: a typed error, never the generator's assert.
        assert!(build_family(Family::Nested, 1023, 0).is_ok());
        assert!(matches!(
            build_family(Family::Nested, 1024, 0),
            Err(FamilyError::UnsupportedSize { .. })
        ));
    }
}

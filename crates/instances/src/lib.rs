//! Workload and instance generators for the `oblisched` workspace.
//!
//! Every experiment in the paper reduction is driven by one of three kinds of
//! synthetic workloads:
//!
//! * **Random deployments** ([`random`]) — requests with endpoints placed in
//!   a square (uniformly or in clusters), the standard "wireless network in a
//!   field" scenario motivating the MAC-layer problem.
//! * **Nested chains** ([`nested`]) — the instance family from §1.2 of the
//!   paper (`u_i = −b^i`, `v_i = b^i`) on which uniform and linear power
//!   assignments can schedule only `O(1)` requests per color while the
//!   square-root assignment schedules a constant fraction.
//! * **Adversarial directed families** ([`adversarial`]) — the Theorem 1
//!   construction that defeats *any* oblivious power assignment in the
//!   directed variant while an optimal (non-oblivious) assignment needs only
//!   `O(1)` colors.
//! * **Scaling families** ([`scale`]) — seed-pinned, density-normalised
//!   large-`n` variants of the above (`n = 10⁴–10⁵`), the workloads the
//!   incremental interference engine of `oblisched_sinr` makes tractable.
//! * **Churn workloads** ([`churn`]) — seed-pinned arrival/departure traces
//!   over the scaling deployments, the input of the dynamic scheduler
//!   (`oblisched::dynamic`).
//!
//! The [`family`] module names all of these behind one serializable
//! [`Family`] enum with a `(family, n, seed)` constructor
//! ([`build_family`]), so job files can select workloads as data.
//!
//! All generators are deterministic given a seeded RNG, and every instance
//! they produce is a valid [`oblisched_sinr::Instance`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversarial;
pub mod churn;
pub mod family;
pub mod line;
pub mod nested;
pub mod random;
pub mod scale;

pub use adversarial::{adversarial_for, max_supported_n, AdversarialInstance};
pub use churn::{
    churn_clustered, churn_clustered_10k, churn_clustered_50k, churn_trace_for, churn_uniform,
    churn_uniform_10k, churn_uniform_50k, large_churn_shape, ChurnEvent, ChurnTrace,
};
pub use family::{build_family, Family, FamilyError, FamilyInstance};
pub use line::{evenly_spaced_line, exponential_line};
pub use nested::nested_chain;
pub use random::{clustered_deployment, random_matching, uniform_deployment, DeploymentConfig};
pub use scale::{
    scaling_clustered, scaling_clustered_10k, scaling_clustered_50k, scaling_config, scaling_line,
    scaling_line_10k, scaling_line_50k, scaling_uniform, scaling_uniform_10k, scaling_uniform_50k,
    LARGE_SCALE_SIZES,
};

/// Finalises a generator-built instance. Every generator in this crate
/// constructs links with strictly positive length, so
/// [`oblisched_sinr::Instance::new`] cannot reject its output; if it ever
/// does, that is a generator bug, reported as the violated invariant
/// rather than swallowed behind an `expect` on the error path.
pub(crate) fn generated<M: oblisched_metric::MetricSpace>(
    built: Result<oblisched_sinr::Instance<M>, oblisched_sinr::SinrError>,
    invariant: &str,
) -> oblisched_sinr::Instance<M> {
    match built {
        Ok(instance) => instance,
        Err(e) => unreachable!("generator bug — {invariant}: {e}"),
    }
}

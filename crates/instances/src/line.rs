//! Simple line workloads: evenly spaced and exponentially growing request
//! chains.

use oblisched_metric::LineMetric;
use oblisched_sinr::{Instance, Request};

/// Builds `n` requests of identical length laid out left to right on the
/// line, with a fixed gap between consecutive pairs.
///
/// This is the "friendly" baseline workload: with a generous gap every power
/// assignment schedules everything in a handful of colors, so it isolates
/// constant-factor differences between algorithms.
///
/// # Panics
///
/// Panics if `n == 0`, or `link_len`/`gap` are not positive finite numbers.
///
/// # Example
///
/// ```
/// use oblisched_instances::evenly_spaced_line;
///
/// let inst = evenly_spaced_line(3, 1.0, 10.0);
/// assert_eq!(inst.len(), 3);
/// assert_eq!(inst.link_distance(2), 1.0);
/// ```
pub fn evenly_spaced_line(n: usize, link_len: f64, gap: f64) -> Instance<LineMetric> {
    assert!(n > 0, "need at least one request");
    assert!(
        link_len > 0.0 && link_len.is_finite(),
        "link length must be positive and finite"
    );
    assert!(
        gap > 0.0 && gap.is_finite(),
        "gap must be positive and finite"
    );
    let mut coords = Vec::with_capacity(2 * n);
    let mut requests = Vec::with_capacity(n);
    let mut cursor = 0.0;
    for _ in 0..n {
        let u = coords.len();
        coords.push(cursor);
        coords.push(cursor + link_len);
        requests.push(Request::new(u, u + 1));
        cursor += link_len + gap;
    }
    crate::generated(
        Instance::new(LineMetric::new(coords), requests),
        "line links have positive length",
    )
}

/// Builds `n` consecutive requests whose lengths grow geometrically with
/// factor `growth`, each separated from the previous pair by a gap equal to
/// its own length.
///
/// The aspect ratio of this family is `growth^(n-1)`, so it exercises the
/// dependence of schedule length on the aspect ratio discussed in the
/// related-work section.
///
/// # Panics
///
/// Panics if `n == 0`, `growth <= 1`, or the largest length overflows `f64`.
pub fn exponential_line(n: usize, growth: f64) -> Instance<LineMetric> {
    assert!(n > 0, "need at least one request");
    assert!(
        growth > 1.0 && growth.is_finite(),
        "growth factor must exceed 1"
    );
    let largest = growth.powi(n as i32 - 1);
    assert!(largest.is_finite(), "growth^(n-1) overflows f64");
    let mut coords = Vec::with_capacity(2 * n);
    let mut requests = Vec::with_capacity(n);
    let mut cursor = 0.0;
    for i in 0..n {
        let len = growth.powi(i as i32);
        let u = coords.len();
        coords.push(cursor);
        coords.push(cursor + len);
        requests.push(Request::new(u, u + 1));
        cursor += 2.0 * len;
    }
    crate::generated(
        Instance::new(LineMetric::new(coords), requests),
        "line links have positive length",
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use oblisched_metric::{aspect_ratio, MetricSpace};
    use oblisched_sinr::{ObliviousPower, SinrParams, Variant};

    #[test]
    fn evenly_spaced_layout() {
        let inst = evenly_spaced_line(4, 2.0, 8.0);
        assert_eq!(inst.len(), 4);
        for i in 0..4 {
            assert_eq!(inst.link_distance(i), 2.0);
        }
        // Consecutive senders are link + gap apart.
        let m = inst.metric();
        assert_eq!(m.distance(0, 2), 10.0);
    }

    #[test]
    fn evenly_spaced_with_large_gap_is_one_shot_feasible() {
        let inst = evenly_spaced_line(6, 1.0, 40.0);
        let params = SinrParams::new(3.0, 1.0).unwrap();
        let all: Vec<usize> = (0..6).collect();
        for power in ObliviousPower::standard_assignments() {
            let eval = inst.evaluator(params, &power);
            assert!(
                eval.is_feasible(Variant::Bidirectional, &all),
                "assignment {} should schedule the well-separated line in one shot",
                oblisched_sinr::PowerScheme::name(&power)
            );
        }
    }

    #[test]
    fn exponential_line_lengths_grow() {
        let inst = exponential_line(5, 2.0);
        for i in 0..5 {
            assert_eq!(inst.link_distance(i), 2.0f64.powi(i as i32));
        }
        assert!(aspect_ratio(inst.metric()).unwrap() >= 16.0);
    }

    #[test]
    #[should_panic(expected = "growth factor")]
    fn exponential_line_rejects_growth_one() {
        let _ = exponential_line(3, 1.0);
    }

    #[test]
    #[should_panic(expected = "need at least one request")]
    fn evenly_spaced_rejects_zero() {
        let _ = evenly_spaced_line(0, 1.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "overflows")]
    fn exponential_line_rejects_overflow() {
        let _ = exponential_line(5000, 2.0);
    }
}

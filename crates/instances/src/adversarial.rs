//! The Theorem 1 adversarial family: directed instances on the line that
//! defeat a given oblivious power assignment.
//!
//! Theorem 1 of the paper shows that for *every* oblivious power function `f`
//! there is a family of `n` directed requests on the line that needs `Ω(n)`
//! colors when powers are assigned by `f`, while a (non-oblivious) power
//! assignment schedules them with `O(1)` colors.
//!
//! Two constructions are used, depending on the shape of `f = ℓ ↦ ℓ^τ`:
//!
//! * **Unbounded assignments (`τ > 0`, e.g. linear and square-root).** The
//!   paper's recursion: pairs are laid out left to right with gaps
//!   `y_i = 2(x_{i−1} + y_{i−1})` and lengths `x_i` chosen just large enough
//!   that `f(x_i) ≥ y_i^α · f(x_j)/x_j^α` for every earlier pair `j`. With
//!   this choice the sender of any later pair drowns the receiver of the
//!   earliest pair in a common color class, so at most `(4^α)/β + 1` pairs
//!   can share a color.
//! * **Bounded assignments (`τ = 0`, uniform).** The recursion is impossible
//!   (it needs `f` to be unbounded); instead the lengths shrink geometrically
//!   while the pairs stay adjacent, so every later sender sits within one
//!   link length of every earlier receiver and again at most a constant
//!   number of pairs share a color.
//!
//! In both cases the produced instance has geometrically separated structure
//! (`y_{i+1} ≥ 2 x_i`), which is what a good non-oblivious assignment
//! exploits; experiment E1 verifies the `Ω(n)` vs `O(1)` separation.

use oblisched_metric::LineMetric;
use oblisched_sinr::{Instance, ObliviousPower, Request, SinrParams};

/// An adversarial directed instance together with the construction data
/// (lengths and gaps) that the analysis of Theorem 1 refers to.
#[derive(Debug, Clone, PartialEq)]
pub struct AdversarialInstance {
    instance: Instance<LineMetric>,
    lengths: Vec<f64>,
    gaps: Vec<f64>,
    target: ObliviousPower,
}

impl AdversarialInstance {
    /// The generated instance (requests are ordered left to right).
    pub fn instance(&self) -> &Instance<LineMetric> {
        &self.instance
    }

    /// Consumes the wrapper and returns the instance.
    pub fn into_instance(self) -> Instance<LineMetric> {
        self.instance
    }

    /// The link lengths `x_i`.
    pub fn lengths(&self) -> &[f64] {
        &self.lengths
    }

    /// The gaps `y_i` (`gaps[0] == 0`; `gaps[i]` separates pair `i−1` from
    /// pair `i`).
    pub fn gaps(&self) -> &[f64] {
        &self.gaps
    }

    /// The oblivious assignment this instance was built against.
    pub fn target(&self) -> ObliviousPower {
        self.target
    }
}

/// The largest `n` for which [`adversarial_for`] can build an instance
/// without exceeding the range of `f64` (the recursion for slowly growing
/// assignments such as the square root produces doubly exponential
/// coordinates).
pub fn max_supported_n(power: &ObliviousPower, params: &SinrParams) -> usize {
    let mut n = 1;
    while n < 4096 {
        if !fits_in_f64(power, params, n + 1) {
            return n;
        }
        n += 1;
    }
    n
}

fn fits_in_f64(power: &ObliviousPower, params: &SinrParams, n: usize) -> bool {
    let (lengths, gaps) = construction(power, params, n);
    if !lengths.iter().all(|v| v.is_finite() && *v > 0.0)
        || !gaps.iter().all(|v| v.is_finite() && *v >= 0.0)
    {
        return false;
    }
    // Lay the pairs out exactly as `adversarial_for` does and require the
    // resulting coordinates to stay distinct: once the cursor dwarfs a link
    // length (shrinking lengths for bounded assignments, exploding gaps for
    // unbounded ones), `cursor + x` rounds back to `cursor` and the request
    // would be degenerate.
    let mut cursor = 0.0_f64;
    let mut min_length = f64::INFINITY;
    for i in 0..n {
        cursor += gaps[i];
        let end = cursor + lengths[i];
        if !end.is_finite() || end <= cursor {
            return false;
        }
        min_length = min_length.min(end - cursor);
        cursor = end;
    }
    params.loss(cursor).is_finite() && params.loss(min_length) > 0.0
}

/// Computes the lengths `x_i` and gaps `y_i` of the construction (without
/// validating the f64 range).
fn construction(power: &ObliviousPower, params: &SinrParams, n: usize) -> (Vec<f64>, Vec<f64>) {
    let alpha = params.alpha();
    let tau = power.exponent();
    let mut lengths = Vec::with_capacity(n);
    let mut gaps = Vec::with_capacity(n);
    if tau <= 0.0 {
        // Bounded assignment: geometrically shrinking lengths, pairs adjacent
        // (gap equal to a quarter of the previous length). A later sender sits
        // at distance at most x_j/4 + 1.25 · x_j/(shrink − 1) from the
        // receiver of pair j; shrink = 3 keeps that below 0.875 · x_j — within
        // one link length, so every pair conflicts — while consuming only
        // log2(3) ≈ 1.6 bits of f64 precision per pair (shrink = 8 would
        // support barely 18 pairs before coordinates collapse).
        let shrink: f64 = 3.0;
        for i in 0..n {
            let x = shrink.powi(-(i as i32));
            lengths.push(x);
            gaps.push(if i == 0 { 0.0 } else { lengths[i - 1] / 4.0 });
        }
    } else {
        // Unbounded assignment ℓ^τ (as a function of the distance: x^(ατ)).
        // f(x) = x^(α τ); we choose x_i so that the *single* interference
        // term of a later pair already violates the SINR of an earlier pair,
        // i.e. f(x_i) ≥ β · (4 y_i)^α · f(x_j) / x_j^α for all j < i (the
        // factor (4 y_i)^α upper-bounds the sender–receiver distance, cf. the
        // proof of Theorem 1). This is a strengthening of the paper's
        // condition — still realisable for every unbounded f — that makes the
        // Ω(n) behaviour visible already at pairwise granularity.
        let f_exponent = alpha * tau;
        lengths.push(1.0);
        gaps.push(0.0);
        let mut worst_ratio: f64 = 1.0; // max_j f(x_j) / x_j^α = max_j x_j^(α(τ−1))
        for i in 1..n {
            let y = 2.0 * (lengths[i - 1] + gaps[i - 1].max(lengths[0]));
            let required =
                (params.beta() * (4.0_f64 * y).powf(alpha) * worst_ratio).powf(1.0 / f_exponent);
            // A little slack keeps the inequality strict under rounding.
            let x = required * 1.001;
            worst_ratio = worst_ratio.max(x.powf(alpha * (tau - 1.0)));
            lengths.push(x);
            gaps.push(y);
        }
    }
    (lengths, gaps)
}

/// Builds the Theorem 1 adversarial family of `n` directed requests against
/// the oblivious assignment `power`.
///
/// # Panics
///
/// Panics if `n == 0` or if the construction exceeds the range of `f64`
/// (check [`max_supported_n`] first — slowly growing assignments such as the
/// square root only support small `n` because the construction is doubly
/// exponential).
pub fn adversarial_for(
    power: &ObliviousPower,
    params: &SinrParams,
    n: usize,
) -> AdversarialInstance {
    assert!(n > 0, "need at least one request");
    assert!(
        fits_in_f64(power, params, n),
        "adversarial construction for {n} requests exceeds the f64 range; \
         use max_supported_n to pick a smaller n"
    );
    let (lengths, gaps) = construction(power, params, n);
    let mut coords = Vec::with_capacity(2 * n);
    let mut requests = Vec::with_capacity(n);
    let mut cursor = 0.0;
    for i in 0..n {
        cursor += gaps[i];
        let u = coords.len();
        coords.push(cursor);
        coords.push(cursor + lengths[i]);
        requests.push(Request::new(u, u + 1));
        cursor += lengths[i];
    }
    let instance = crate::generated(
        Instance::new(LineMetric::new(coords), requests),
        "adversarial links have positive length",
    );
    AdversarialInstance {
        instance,
        lengths,
        gaps,
        target: *power,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oblisched_sinr::Variant;

    fn params() -> SinrParams {
        SinrParams::new(3.0, 1.0).unwrap()
    }

    #[test]
    fn linear_construction_matches_recursion() {
        let adv = adversarial_for(&ObliviousPower::Linear, &params(), 6);
        assert_eq!(adv.lengths().len(), 6);
        assert_eq!(adv.gaps()[0], 0.0);
        // For the linear assignment the recursion gives x_i ≈ y_i.
        for i in 1..6 {
            let y = adv.gaps()[i];
            let x = adv.lengths()[i];
            assert!(
                x >= y * 0.999,
                "length {x} must satisfy the growth condition (gap {y})"
            );
            // Gap recursion y_i = 2 (x_{i-1} + y_{i-1}-ish) implies doubling.
            assert!(y >= 2.0 * adv.lengths()[i - 1]);
        }
        assert_eq!(adv.target(), ObliviousPower::Linear);
    }

    #[test]
    fn pairs_conflict_pairwise_under_the_target_assignment() {
        // The defining property: under the targeted oblivious assignment, the
        // earliest pair of any two-element color class is drowned, so no two
        // pairs can share a color (for beta = 1, alpha = 3 the bound
        // (4^alpha)/beta + 1 is much larger, but pairwise conflict is the
        // empirically strongest and simplest form on small n).
        for power in [ObliviousPower::Linear, ObliviousPower::SquareRoot] {
            let n = max_supported_n(&power, &params()).min(6);
            assert!(n >= 3, "construction for {power:?} supports too few pairs");
            let adv = adversarial_for(&power, &params(), n);
            let eval = adv.instance().evaluator(params(), &power);
            let mut conflicts = 0;
            let mut total = 0;
            for i in 0..n {
                for j in (i + 1)..n {
                    total += 1;
                    if !eval.is_feasible(Variant::Directed, &[i, j]) {
                        conflicts += 1;
                    }
                }
            }
            assert_eq!(
                conflicts, total,
                "{power:?}: every pair of requests must conflict ({conflicts}/{total})"
            );
        }
    }

    #[test]
    fn uniform_construction_conflicts_pairwise_too() {
        let adv = adversarial_for(&ObliviousPower::Uniform, &params(), 8);
        let eval = adv.instance().evaluator(params(), &ObliviousPower::Uniform);
        for i in 0..8 {
            for j in (i + 1)..8 {
                assert!(
                    !eval.is_feasible(Variant::Directed, &[i, j]),
                    "uniform adversarial pairs {i} and {j} must conflict"
                );
            }
        }
    }

    #[test]
    fn a_non_oblivious_assignment_schedules_widely_spaced_subsets() {
        // Witness for the O(1) side of Theorem 1 on the linear-adversarial
        // instance: geometric powers schedule every other pair in one shot.
        let adv = adversarial_for(&ObliviousPower::Linear, &params(), 6);
        let inst = adv.instance();
        let p = params();
        // One concrete good assignment: linear in the loss with a geometric
        // damping factor, so that within each parity class the signals form a
        // decreasing geometric series that dominates the interference.
        let powers: Vec<f64> = (0..inst.len())
            .map(|i| inst.link_loss(i, &p) * 200.0f64.powi(-((i / 2) as i32)))
            .collect();
        let eval = oblisched_sinr::Evaluator::with_powers(inst, p, powers).unwrap();
        let evens: Vec<usize> = (0..inst.len()).step_by(2).collect();
        let odds: Vec<usize> = (0..inst.len()).skip(1).step_by(2).collect();
        assert!(eval.is_feasible(Variant::Directed, &evens));
        assert!(eval.is_feasible(Variant::Directed, &odds));
    }

    #[test]
    fn max_supported_n_is_small_for_sqrt_and_large_for_linear() {
        let p = params();
        let sqrt_n = max_supported_n(&ObliviousPower::SquareRoot, &p);
        let linear_n = max_supported_n(&ObliviousPower::Linear, &p);
        let uniform_n = max_supported_n(&ObliviousPower::Uniform, &p);
        assert!(
            sqrt_n >= 3,
            "sqrt construction must support at least a few pairs, got {sqrt_n}"
        );
        assert!(
            linear_n >= 30,
            "linear construction should support many pairs, got {linear_n}"
        );
        assert!(
            uniform_n >= 30,
            "uniform construction should support many pairs, got {uniform_n}"
        );
        assert!(sqrt_n < linear_n);
        // The reported n is actually buildable.
        let _ = adversarial_for(&ObliviousPower::SquareRoot, &p, sqrt_n);
    }

    #[test]
    #[should_panic(expected = "exceeds the f64 range")]
    fn oversized_construction_panics() {
        let _ = adversarial_for(&ObliviousPower::SquareRoot, &params(), 500);
    }

    #[test]
    #[should_panic(expected = "at least one request")]
    fn zero_requests_rejected() {
        let _ = adversarial_for(&ObliviousPower::Linear, &params(), 0);
    }
}

//! The nested request chain from §1.2 of the paper.

use oblisched_metric::LineMetric;
use oblisched_sinr::{Instance, Request};

/// Builds the nested bidirectional chain `u_i = −b^i`, `v_i = b^i` for
/// `i = 1..=n` with base `b` (the paper uses `b = 2`).
///
/// The pairs are perfectly nested: every outer pair contains all inner pairs.
/// The paper uses this family to explain why the square-root assignment
/// works: uniform power lets inner pairs drown the outer ones, linear power
/// lets outer pairs drown the inner ones, while the square-root assignment
/// balances the interference and schedules a constant fraction
/// simultaneously.
///
/// Request `i` (0-based) connects the nodes at `−b^(i+1)` and `+b^(i+1)`.
///
/// # Panics
///
/// Panics if `n == 0`, `base <= 1`, or the largest coordinate would overflow
/// `f64` (`base^n` must be finite).
///
/// # Example
///
/// ```
/// use oblisched_instances::nested_chain;
///
/// let inst = nested_chain(4, 2.0);
/// assert_eq!(inst.len(), 4);
/// assert_eq!(inst.link_distance(0), 4.0);   // from -2 to +2
/// assert_eq!(inst.link_distance(3), 32.0);  // from -16 to +16
/// ```
pub fn nested_chain(n: usize, base: f64) -> Instance<LineMetric> {
    assert!(n > 0, "the nested chain needs at least one request");
    assert!(
        base > 1.0 && base.is_finite(),
        "base must be a finite number greater than 1"
    );
    let largest = base.powi(n as i32);
    assert!(largest.is_finite(), "base^n overflows f64");

    let mut coords = Vec::with_capacity(2 * n);
    let mut requests = Vec::with_capacity(n);
    for i in 1..=n {
        let radius = base.powi(i as i32);
        let u = coords.len();
        coords.push(-radius);
        coords.push(radius);
        requests.push(Request::new(u, u + 1));
    }
    crate::generated(
        Instance::new(LineMetric::new(coords), requests),
        "nested links have positive length",
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use oblisched_metric::MetricSpace;
    use oblisched_sinr::{ObliviousPower, SinrParams, Variant};

    #[test]
    fn coordinates_follow_the_paper() {
        let inst = nested_chain(5, 2.0);
        assert_eq!(inst.len(), 5);
        // Request i spans [-2^(i+1), 2^(i+1)].
        for i in 0..5 {
            let expected = 2.0 * 2.0f64.powi(i as i32 + 1);
            assert_eq!(inst.link_distance(i), expected);
        }
        // All pairs share the midpoint: the distance between the left nodes of
        // consecutive pairs is the difference of radii.
        assert_eq!(inst.metric().distance(0, 2), 2.0);
    }

    #[test]
    fn base_three_chains_grow_faster() {
        let inst = nested_chain(3, 3.0);
        assert_eq!(inst.link_distance(2), 54.0);
    }

    #[test]
    #[should_panic(expected = "at least one request")]
    fn zero_requests_is_rejected() {
        let _ = nested_chain(0, 2.0);
    }

    #[test]
    #[should_panic(expected = "greater than 1")]
    fn base_one_is_rejected() {
        let _ = nested_chain(3, 1.0);
    }

    #[test]
    #[should_panic(expected = "overflows")]
    fn overflowing_base_is_rejected() {
        let _ = nested_chain(2000, 2.0);
    }

    #[test]
    fn uniform_power_cannot_schedule_many_nested_requests_together() {
        // The defining property from §1.2: under uniform (and linear) power
        // only O(1) nested requests are simultaneously feasible, while the
        // square-root assignment handles a constant fraction. Here we check
        // the qualitative separation for n = 10, alpha = 3, beta = 1.
        let inst = nested_chain(10, 2.0);
        let params = SinrParams::new(3.0, 1.0).unwrap();
        let all: Vec<usize> = (0..inst.len()).collect();

        let uniform = inst.evaluator(params, &ObliviousPower::Uniform);
        assert!(!uniform.is_feasible(Variant::Bidirectional, &all));

        let linear = inst.evaluator(params, &ObliviousPower::Linear);
        assert!(!linear.is_feasible(Variant::Bidirectional, &all));

        let sqrt = inst.evaluator(params, &ObliviousPower::SquareRoot);
        // A constant fraction (here every fourth request) is simultaneously
        // feasible under the square-root assignment; under uniform or linear
        // power the same sub-family is still infeasible.
        let spaced: Vec<usize> = (0..inst.len()).step_by(4).collect();
        assert!(spaced.len() >= 3);
        assert!(sqrt.is_feasible(Variant::Bidirectional, &spaced));
        assert!(!uniform.is_feasible(Variant::Bidirectional, &spaced));
    }
}

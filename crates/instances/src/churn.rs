//! Churn workloads: seed-pinned arrival/departure traces over the scaling
//! deployments.
//!
//! A churn workload is a fixed *universe* instance (one of the
//! density-normalised [`scale`](crate::scale) families) plus a deterministic
//! event trace toggling which universe requests are live. The trace is the
//! input of the dynamic scheduler (`oblisched::dynamic`): arrivals insert a
//! universe request, departures remove a live one, and the live count hovers
//! around a configurable target after a pure-arrival ramp-up.
//!
//! Determinism is load-bearing, exactly as for the scaling families: the
//! same `(n, target_live, num_events, seed)` always produces the same
//! universe *and* the same trace, which is what lets the `churn` bench and
//! experiment E10 compare incremental maintenance against full reschedules
//! on identical event sequences.

use crate::scale::{scaling_clustered, scaling_uniform, LARGE_SCALE_SIZES};
use oblisched_metric::EuclideanSpace;
use oblisched_sinr::Instance;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// One churn event over a universe instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ChurnEvent {
    /// The universe request with this index becomes live.
    Arrive(usize),
    /// The universe request with this index departs (it is always live at
    /// this point of the trace).
    Depart(usize),
}

/// A deterministic arrival/departure trace over a universe of `universe`
/// requests. Every `Arrive(i)` targets a currently-dead request and every
/// `Depart(i)` a currently-live one, so the trace can be replayed without
/// bookkeeping errors by construction.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChurnTrace {
    /// Number of requests in the universe instance.
    pub universe: usize,
    /// The events, in order.
    pub events: Vec<ChurnEvent>,
}

impl ChurnTrace {
    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Returns `true` when the trace has no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The largest number of simultaneously live requests over the replay
    /// (and, as a by-product, a consistency check of the trace).
    ///
    /// # Panics
    ///
    /// Panics if the trace is inconsistent (arrival of a live request or
    /// departure of a dead one) — impossible for generator-produced traces.
    pub fn max_live(&self) -> usize {
        let mut live = vec![false; self.universe];
        let mut count = 0usize;
        let mut max = 0usize;
        for event in &self.events {
            match *event {
                ChurnEvent::Arrive(i) => {
                    assert!(!live[i], "arrival of already-live request {i}");
                    live[i] = true;
                    count += 1;
                    max = max.max(count);
                }
                ChurnEvent::Depart(i) => {
                    assert!(live[i], "departure of dead request {i}");
                    live[i] = false;
                    count -= 1;
                }
            }
        }
        max
    }

    /// The requests live after the full replay, in increasing index order.
    pub fn final_live(&self) -> Vec<usize> {
        let mut live = vec![false; self.universe];
        for event in &self.events {
            match *event {
                ChurnEvent::Arrive(i) => live[i] = true,
                ChurnEvent::Depart(i) => live[i] = false,
            }
        }
        (0..self.universe).filter(|&i| live[i]).collect()
    }

    /// Renders the trace as JSONL: a `{"universe":N}` header line followed
    /// by one event object per line (`{"Arrive":5}` / `{"Depart":5}`) — the
    /// interchange format of the server load generator's `--export-trace`.
    ///
    /// # Errors
    ///
    /// Serialization failures (none for well-formed traces).
    pub fn to_jsonl(&self) -> Result<String, serde_json::Error> {
        let mut out = serde_json::to_string(&TraceHeader {
            universe: self.universe,
        })?;
        out.push('\n');
        for event in &self.events {
            out.push_str(&serde_json::to_string(event)?);
            out.push('\n');
        }
        Ok(out)
    }

    /// Parses a trace from the [`to_jsonl`](ChurnTrace::to_jsonl) format
    /// (blank lines and `#` comments skipped) and verifies its consistency:
    /// indices in range, arrivals of dead requests, departures of live ones.
    ///
    /// # Errors
    ///
    /// A description of the first malformed or inconsistent line.
    pub fn from_jsonl(input: &str) -> Result<ChurnTrace, String> {
        let mut lines = input
            .lines()
            .enumerate()
            .map(|(i, line)| (i + 1, line.trim()))
            .filter(|(_, line)| !line.is_empty() && !line.starts_with('#'));
        let Some((header_no, header)) = lines.next() else {
            return Err(String::from("empty trace: missing {\"universe\":N} header"));
        };
        let header: TraceHeader = serde_json::from_str(header)
            .map_err(|e| format!("line {header_no}: bad trace header: {e}"))?;
        let mut events = Vec::new();
        let mut live = vec![false; header.universe];
        for (line_no, line) in lines {
            let event: ChurnEvent = serde_json::from_str(line)
                .map_err(|e| format!("line {line_no}: bad churn event: {e}"))?;
            let (index, arriving) = match event {
                ChurnEvent::Arrive(i) => (i, true),
                ChurnEvent::Depart(i) => (i, false),
            };
            if index >= header.universe {
                return Err(format!(
                    "line {line_no}: request {index} outside universe {}",
                    header.universe
                ));
            }
            if live[index] == arriving {
                return Err(format!(
                    "line {line_no}: {} of {} request {index}",
                    if arriving { "arrival" } else { "departure" },
                    if live[index] { "live" } else { "dead" },
                ));
            }
            live[index] = arriving;
            events.push(event);
        }
        Ok(ChurnTrace {
            universe: header.universe,
            events,
        })
    }
}

/// The header line of the JSONL trace format.
#[derive(Serialize, Deserialize)]
struct TraceHeader {
    universe: usize,
}

/// Generates a churn trace over a universe of `universe` requests: a pure
/// arrival ramp-up to `target_live`, then a mixed phase whose
/// arrival/departure mix nudges the live count back toward the target
/// (probability 0.7 of arriving below target, 0.3 above).
fn churn_trace(
    universe: usize,
    target_live: usize,
    num_events: usize,
    rng: &mut ChaCha8Rng,
) -> ChurnTrace {
    assert!(
        universe > 0,
        "the universe must contain at least one request"
    );
    assert!(
        target_live <= universe,
        "target live count {target_live} exceeds the universe size {universe}"
    );
    // Swap-remove index pools keep both draws O(1).
    let mut dead: Vec<usize> = (0..universe).collect();
    let mut live: Vec<usize> = Vec::with_capacity(target_live.max(1));
    let mut events = Vec::with_capacity(num_events);
    while events.len() < num_events {
        let ramping = live.len() < target_live && events.len() < target_live;
        let arrive = if live.is_empty() || ramping {
            true
        } else if dead.is_empty() {
            false
        } else {
            let p_arrive = if live.len() < target_live { 0.7 } else { 0.3 };
            rng.gen_range(0.0f64..1.0) < p_arrive
        };
        if arrive {
            let pick = rng.gen_range(0..dead.len());
            let item = dead.swap_remove(pick);
            live.push(item);
            events.push(ChurnEvent::Arrive(item));
        } else {
            let pick = rng.gen_range(0..live.len());
            let item = live.swap_remove(pick);
            dead.push(item);
            events.push(ChurnEvent::Depart(item));
        }
    }
    ChurnTrace { universe, events }
}

/// A seed-pinned churn trace alone, without building a universe instance —
/// the trace half of [`churn_uniform`] decoupled from the deployment, for
/// callers that replay a trace over an instance they already have (e.g. a
/// durable session over a family-built instance). The same
/// `(universe, target_live, num_events, seed)` always produces the same
/// trace.
///
/// # Panics
///
/// Panics if `universe == 0` or `target_live > universe`.
pub fn churn_trace_for(
    universe: usize,
    target_live: usize,
    num_events: usize,
    seed: u64,
) -> ChurnTrace {
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xD2C6_F00D);
    churn_trace(universe, target_live, num_events, &mut rng)
}

/// A seed-pinned churn workload over the uniform scaling deployment
/// [`scaling_uniform`]: the universe instance plus an arrival/departure
/// trace of `num_events` events hovering around `target_live` live requests
/// after the ramp-up.
///
/// # Panics
///
/// Panics if `n == 0` or `target_live > n`.
///
/// # Example
///
/// ```
/// use oblisched_instances::churn_uniform;
///
/// let (instance, trace) = churn_uniform(200, 120, 400, 7);
/// assert_eq!(instance.len(), 200);
/// assert_eq!(trace.len(), 400);
/// assert!(trace.max_live() >= 120);
/// // Seed-pinned: the same arguments reproduce the same workload.
/// let (again, trace_again) = churn_uniform(200, 120, 400, 7);
/// assert_eq!(instance, again);
/// assert_eq!(trace, trace_again);
/// ```
pub fn churn_uniform(
    n: usize,
    target_live: usize,
    num_events: usize,
    seed: u64,
) -> (Instance<EuclideanSpace<2>>, ChurnTrace) {
    let instance = scaling_uniform(n, seed);
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xC0A1_E5CE);
    let trace = churn_trace(n, target_live, num_events, &mut rng);
    (instance, trace)
}

/// A seed-pinned churn workload over the clustered scaling deployment
/// [`scaling_clustered`], with the same trace conventions as
/// [`churn_uniform`]. The locally dense hot spots are where the square-root
/// assignment separates from uniform and linear under churn.
///
/// # Panics
///
/// Panics if `n == 0` or `target_live > n`.
pub fn churn_clustered(
    n: usize,
    target_live: usize,
    num_events: usize,
    seed: u64,
) -> (Instance<EuclideanSpace<2>>, ChurnTrace) {
    let instance = scaling_clustered(n, seed);
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xC1B5_7E2D);
    let trace = churn_trace(n, target_live, num_events, &mut rng);
    (instance, trace)
}

/// The churn shape of the large-tier workloads for a universe of `n`
/// requests: the live target is `n / 4` (a quarter of the universe live
/// after the ramp-up — enough pressure that color classes stay large, with
/// plenty of dead requests to draw arrivals from), capped at 8000 on the
/// extreme tier so replay work (which scales with `events × live`) stays
/// bounded while the universe — and hence the grid, the cutoffs and the
/// dense-infeasibility of the instance — keeps growing. The event count is
/// `2 · target`: the ramp-up plus an equal stretch of mixed
/// arrivals/departures.
pub fn large_churn_shape(n: usize) -> (usize, usize) {
    let target = (n / 4).min(8_000);
    (target, 2 * target)
}

/// The uniform churn workload at the large tier (`n = 10⁴`, see
/// [`LARGE_SCALE_SIZES`]) with the [`large_churn_shape`] trace — the E10
/// family that needs the churn-capable sparse backend (the dense matrix
/// would take 1.6 GB).
pub fn churn_uniform_10k(seed: u64) -> (Instance<EuclideanSpace<2>>, ChurnTrace) {
    let n = LARGE_SCALE_SIZES[0];
    let (target, events) = large_churn_shape(n);
    churn_uniform(n, target, events, seed)
}

/// The uniform churn workload at the extreme tier (`n = 5·10⁴`) with the
/// [`large_churn_shape`] trace.
pub fn churn_uniform_50k(seed: u64) -> (Instance<EuclideanSpace<2>>, ChurnTrace) {
    let n = LARGE_SCALE_SIZES[1];
    let (target, events) = large_churn_shape(n);
    churn_uniform(n, target, events, seed)
}

/// The clustered churn workload at the large tier (`n = 10⁴`, `n/256` hot
/// spots) with the [`large_churn_shape`] trace.
pub fn churn_clustered_10k(seed: u64) -> (Instance<EuclideanSpace<2>>, ChurnTrace) {
    let n = LARGE_SCALE_SIZES[0];
    let (target, events) = large_churn_shape(n);
    churn_clustered(n, target, events, seed)
}

/// The clustered churn workload at the extreme tier (`n = 5·10⁴`) with the
/// [`large_churn_shape`] trace.
pub fn churn_clustered_50k(seed: u64) -> (Instance<EuclideanSpace<2>>, ChurnTrace) {
    let n = LARGE_SCALE_SIZES[1];
    let (target, events) = large_churn_shape(n);
    churn_clustered(n, target, events, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traces_are_seed_pinned() {
        let (a_inst, a_trace) = churn_uniform(50, 30, 200, 3);
        let (b_inst, b_trace) = churn_uniform(50, 30, 200, 3);
        assert_eq!(a_inst, b_inst);
        assert_eq!(a_trace, b_trace);
        let (_, c_trace) = churn_uniform(50, 30, 200, 4);
        assert_ne!(a_trace, c_trace);
        let (d_inst, d_trace) = churn_clustered(50, 30, 200, 3);
        assert_eq!(d_trace, churn_clustered(50, 30, 200, 3).1);
        assert_eq!(d_inst.len(), 50);
    }

    #[test]
    fn traces_are_replayable_and_hover_near_the_target() {
        let (_, trace) = churn_uniform(100, 60, 500, 9);
        assert_eq!(trace.len(), 500);
        // max_live also validates arrive-dead / depart-live consistency.
        let max = trace.max_live();
        assert!(max >= 60, "ramp-up must reach the target, got {max}");
        assert!(max <= 100);
        // The ramp-up is pure arrivals.
        assert!(trace.events[..60]
            .iter()
            .all(|e| matches!(e, ChurnEvent::Arrive(_))));
        // The mixed phase contains genuine departures.
        assert!(trace
            .events
            .iter()
            .any(|e| matches!(e, ChurnEvent::Depart(_))));
        let live = trace.final_live();
        assert!(!live.is_empty());
        assert!(live.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn full_universe_target_drains_the_dead_pool() {
        // target == universe: once everything is live only departures remain
        // possible, and the generator must not get stuck.
        let (_, trace) = churn_uniform(20, 20, 100, 1);
        assert_eq!(trace.len(), 100);
        assert_eq!(trace.max_live(), 20);
    }

    #[test]
    #[should_panic(expected = "exceeds the universe")]
    fn oversized_target_is_rejected() {
        let _ = churn_uniform(10, 11, 50, 1);
    }

    #[test]
    fn standalone_traces_are_seed_pinned_and_consistent() {
        let a = churn_trace_for(40, 25, 120, 6);
        let b = churn_trace_for(40, 25, 120, 6);
        assert_eq!(a, b);
        assert_ne!(a, churn_trace_for(40, 25, 120, 7));
        assert_eq!(a.len(), 120);
        assert!(a.max_live() >= 25);
    }

    #[test]
    fn traces_round_trip_through_json() {
        let trace = churn_trace_for(20, 12, 60, 3);
        let json = serde_json::to_string(&trace).unwrap();
        let back: ChurnTrace = serde_json::from_str(&json).unwrap();
        assert_eq!(back, trace);
        // Events serialize as tagged variants a hand-written line can spell.
        let event: ChurnEvent = serde_json::from_str("{\"Arrive\":5}").unwrap();
        assert_eq!(event, ChurnEvent::Arrive(5));
    }

    #[test]
    fn jsonl_round_trips_and_rejects_inconsistent_traces() {
        let trace = churn_trace_for(40, 15, 80, 11);
        let rendered = trace.to_jsonl().unwrap();
        assert!(rendered.starts_with("{\"universe\":40}\n"));
        let back = ChurnTrace::from_jsonl(&rendered).unwrap();
        assert_eq!(back, trace);

        // Comments and blank lines are tolerated.
        let commented = format!("# a trace\n\n{rendered}");
        assert_eq!(ChurnTrace::from_jsonl(&commented).unwrap(), trace);

        // Inconsistencies are rejected with the offending line.
        for (input, needle) in [
            ("", "missing"),
            ("{\"universe\":2}\n{\"Depart\":0}\n", "departure of dead"),
            (
                "{\"universe\":2}\n{\"Arrive\":0}\n{\"Arrive\":0}\n",
                "arrival of live",
            ),
            ("{\"universe\":2}\n{\"Arrive\":7}\n", "outside universe"),
            ("{\"universe\":2}\nnot json\n", "bad churn event"),
        ] {
            let err = ChurnTrace::from_jsonl(input).unwrap_err();
            assert!(err.contains(needle), "{input:?} -> {err}");
        }
    }
}

//! Property-based tests for the LP substrate.

use oblisched_lp::{round_packing, LinearProgram, LpOutcome, PackingLp, RoundingConfig};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A random bounded LP: non-negative objective and coefficients with an extra
/// row bounding the sum of all variables, so the program is never unbounded.
fn arb_bounded_lp() -> impl Strategy<Value = LinearProgram> {
    (1usize..6, 0usize..5).prop_flat_map(|(n, m)| {
        (
            prop::collection::vec(0.0f64..5.0, n),
            prop::collection::vec(prop::collection::vec(0.0f64..3.0, n), m),
            prop::collection::vec(0.5f64..10.0, m),
        )
            .prop_map(move |(c, mut rows, mut rhs)| {
                rows.push(vec![1.0; n]);
                rhs.push(25.0);
                LinearProgram::new(c, rows, rhs).unwrap()
            })
    })
}

fn arb_packing() -> impl Strategy<Value = PackingLp> {
    (1usize..8, 1usize..8).prop_flat_map(|(n, m)| {
        (
            prop::collection::vec(0.1f64..3.0, n),
            prop::collection::vec(prop::collection::vec(0.0f64..2.0, n), m),
            prop::collection::vec(0.1f64..6.0, m),
        )
            .prop_map(|(w, rows, caps)| PackingLp::new(w, rows, caps).unwrap())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn simplex_solutions_are_feasible(lp in arb_bounded_lp()) {
        match lp.solve().unwrap() {
            LpOutcome::Optimal(s) => {
                prop_assert!(lp.is_feasible(s.values(), 1e-6));
                prop_assert!((lp.objective_value(s.values()) - s.objective()).abs() < 1e-6);
                prop_assert!(s.objective() >= -1e-9);
            }
            LpOutcome::Unbounded => prop_assert!(false, "bounded LP reported unbounded"),
        }
    }

    #[test]
    fn simplex_dominates_the_origin_and_axis_points(lp in arb_bounded_lp()) {
        // The optimum must be at least as good as any feasible axis-aligned
        // candidate we can construct cheaply.
        if let LpOutcome::Optimal(s) = lp.solve().unwrap() {
            let n = lp.num_variables();
            for j in 0..n {
                for magnitude in [0.5, 1.0, 2.0] {
                    let mut x = vec![0.0; n];
                    x[j] = magnitude;
                    if lp.is_feasible(&x, 1e-9) {
                        prop_assert!(s.objective() + 1e-6 >= lp.objective_value(&x));
                    }
                }
            }
        }
    }

    #[test]
    fn packing_solutions_respect_bounds(lp in arb_packing()) {
        let s = lp.solve().unwrap();
        for &x in s.values() {
            prop_assert!(x >= -1e-9);
            prop_assert!(x <= 1.0 + 1e-9);
        }
        // Feasibility of the fractional solution against every row.
        for (row, &cap) in lp.rows().iter().zip(lp.capacities().iter()) {
            let load: f64 = row.iter().zip(s.values()).map(|(a, x)| a * x).sum();
            prop_assert!(load <= cap + 1e-6 * (1.0 + cap));
        }
    }

    #[test]
    fn rounding_is_always_feasible(lp in arb_packing(), seed in any::<u64>()) {
        let s = lp.solve().unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let selection = round_packing(&lp, &s, RoundingConfig::default(), &mut rng).unwrap();
        prop_assert!(lp.selection_is_feasible(&selection));
        // No duplicates and all indices in range.
        let mut sorted = selection.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), selection.len());
        prop_assert!(selection.iter().all(|&j| j < lp.num_items()));
    }

    #[test]
    fn fractional_optimum_dominates_greedy_integral_solutions(lp in arb_packing()) {
        let s = lp.solve().unwrap();
        // Greedy integral packing in index order; the LP relaxation must
        // dominate every integral feasible selection.
        let n = lp.num_items();
        let mut selection = Vec::new();
        for j in 0..n {
            selection.push(j);
            if !lp.selection_is_feasible(&selection) {
                selection.pop();
            }
        }
        prop_assert!(lp.selection_is_feasible(&selection));
        prop_assert!(s.objective() + 1e-6 >= lp.selection_weight(&selection));
    }
}

//! Dense primal simplex for `max cᵀx  s.t.  Ax ≤ b, x ≥ 0, b ≥ 0`.
//!
//! The restriction `b ≥ 0` means the origin is always feasible, so no phase-I
//! procedure is needed. Every LP solved in this workspace (the per-class
//! packing LPs of §5 and the test programs) has this form. Bland's pivoting
//! rule guarantees termination; an iteration cap is kept as a defensive
//! guard against numerical pathologies.

use crate::error::LpError;
use serde::{Deserialize, Serialize};

/// Numerical tolerance for pivoting decisions.
const EPS: f64 = 1e-9;

/// A linear program `max cᵀx  s.t.  Ax ≤ b, x ≥ 0` with `b ≥ 0`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinearProgram {
    objective: Vec<f64>,
    rows: Vec<Vec<f64>>,
    rhs: Vec<f64>,
}

/// The result of solving a [`LinearProgram`].
#[derive(Debug, Clone, PartialEq)]
pub enum LpOutcome {
    /// An optimal solution was found.
    Optimal(LpSolution),
    /// The objective is unbounded above on the feasible region.
    Unbounded,
}

/// An optimal solution of a [`LinearProgram`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LpSolution {
    values: Vec<f64>,
    objective: f64,
}

impl LpSolution {
    /// The optimal variable values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// The optimal objective value.
    pub fn objective(&self) -> f64 {
        self.objective
    }
}

impl LinearProgram {
    /// Creates a linear program, validating shapes and values.
    ///
    /// # Errors
    ///
    /// * [`LpError::DimensionMismatch`] if the rows and the right-hand side
    ///   have inconsistent lengths.
    /// * [`LpError::InvalidValue`] for NaN or infinite coefficients.
    /// * [`LpError::NegativeCapacity`] if an entry of `b` is negative.
    pub fn new(objective: Vec<f64>, rows: Vec<Vec<f64>>, rhs: Vec<f64>) -> Result<Self, LpError> {
        let n = objective.len();
        if rows.len() != rhs.len() {
            return Err(LpError::DimensionMismatch {
                reason: format!(
                    "{} constraint rows but {} right-hand sides",
                    rows.len(),
                    rhs.len()
                ),
            });
        }
        for (i, row) in rows.iter().enumerate() {
            if row.len() != n {
                return Err(LpError::DimensionMismatch {
                    reason: format!("row {i} has {} coefficients, expected {n}", row.len()),
                });
            }
        }
        let all_values = objective
            .iter()
            .chain(rows.iter().flatten())
            .chain(rhs.iter());
        for &v in all_values {
            if !v.is_finite() {
                return Err(LpError::InvalidValue {
                    reason: format!("non-finite coefficient {v}"),
                });
            }
        }
        for (row, &value) in rhs.iter().enumerate() {
            if value < 0.0 {
                return Err(LpError::NegativeCapacity { row, value });
            }
        }
        Ok(Self {
            objective,
            rows,
            rhs,
        })
    }

    /// Number of structural variables.
    pub fn num_variables(&self) -> usize {
        self.objective.len()
    }

    /// Number of constraints.
    pub fn num_constraints(&self) -> usize {
        self.rows.len()
    }

    /// Checks whether `x` is feasible (within tolerance `tol`).
    pub fn is_feasible(&self, x: &[f64], tol: f64) -> bool {
        if x.len() != self.num_variables() {
            return false;
        }
        if x.iter().any(|&v| v < -tol) {
            return false;
        }
        self.rows.iter().zip(self.rhs.iter()).all(|(row, &b)| {
            let lhs: f64 = row.iter().zip(x.iter()).map(|(a, v)| a * v).sum();
            lhs <= b + tol * (1.0 + b.abs())
        })
    }

    /// Evaluates the objective at `x`.
    pub fn objective_value(&self, x: &[f64]) -> f64 {
        self.objective
            .iter()
            .zip(x.iter())
            .map(|(c, v)| c * v)
            .sum()
    }

    /// Solves the program with the primal simplex method.
    ///
    /// # Errors
    ///
    /// Returns [`LpError::IterationLimit`] if the (very generous) iteration
    /// cap is exceeded, which indicates a numerical pathology.
    pub fn solve(&self) -> Result<LpOutcome, LpError> {
        let n = self.num_variables();
        let m = self.num_constraints();

        if n == 0 {
            return Ok(LpOutcome::Optimal(LpSolution {
                values: Vec::new(),
                objective: 0.0,
            }));
        }

        // Tableau: m constraint rows over n structural + m slack columns,
        // followed by the RHS column; plus an objective row holding the
        // negated reduced costs.
        let cols = n + m + 1;
        let mut tableau = vec![vec![0.0; cols]; m + 1];
        for i in 0..m {
            tableau[i][..n].copy_from_slice(&self.rows[i]);
            tableau[i][n + i] = 1.0;
            tableau[i][cols - 1] = self.rhs[i];
        }
        for (cell, c) in tableau[m].iter_mut().zip(&self.objective) {
            *cell = -c;
        }
        // basis[i] = index of the variable that is basic in row i.
        let mut basis: Vec<usize> = (n..n + m).collect();

        let limit = 200 + 50 * (n + m) * (n + m);
        // Scratch copy of the pivot row, reused across pivots so the
        // elimination below can update every other row without aliasing.
        let mut pivot_values = vec![0.0; cols];
        for _ in 0..limit {
            // Bland's rule: entering variable is the lowest-index column with
            // a negative reduced cost.
            let entering = (0..n + m).find(|&j| tableau[m][j] < -EPS);
            let entering = match entering {
                Some(j) => j,
                None => {
                    // Optimal: read off the solution.
                    let mut values = vec![0.0; n];
                    for (i, &b) in basis.iter().enumerate() {
                        if b < n {
                            values[b] = tableau[i][cols - 1];
                        }
                    }
                    let objective = self.objective_value(&values);
                    return Ok(LpOutcome::Optimal(LpSolution { values, objective }));
                }
            };

            // Ratio test; Bland's rule breaks ties by the smallest basis index.
            let mut leaving: Option<(usize, f64)> = None;
            for i in 0..m {
                let coeff = tableau[i][entering];
                if coeff > EPS {
                    let ratio = tableau[i][cols - 1] / coeff;
                    let better = match leaving {
                        None => true,
                        Some((best_row, best_ratio)) => {
                            ratio < best_ratio - EPS
                                || (ratio < best_ratio + EPS && basis[i] < basis[best_row])
                        }
                    };
                    if better {
                        leaving = Some((i, ratio));
                    }
                }
            }
            let (pivot_row, _) = match leaving {
                Some(x) => x,
                None => return Ok(LpOutcome::Unbounded),
            };

            // Pivot.
            let pivot = tableau[pivot_row][entering];
            for value in tableau[pivot_row].iter_mut() {
                *value /= pivot;
            }
            pivot_values.copy_from_slice(&tableau[pivot_row]);
            for (i, row) in tableau.iter_mut().enumerate() {
                if i != pivot_row {
                    let factor = row[entering];
                    if factor.abs() > 0.0 {
                        for (value, pivot_value) in row.iter_mut().zip(&pivot_values) {
                            *value -= factor * pivot_value;
                        }
                    }
                }
            }
            basis[pivot_row] = entering;
        }
        Err(LpError::IterationLimit { limit })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn optimal(lp: &LinearProgram) -> LpSolution {
        match lp.solve().unwrap() {
            LpOutcome::Optimal(s) => s,
            LpOutcome::Unbounded => panic!("expected optimal, got unbounded"),
        }
    }

    #[test]
    fn textbook_two_variable_program() {
        // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  (optimum 36 at (2,6))
        let lp = LinearProgram::new(
            vec![3.0, 5.0],
            vec![vec![1.0, 0.0], vec![0.0, 2.0], vec![3.0, 2.0]],
            vec![4.0, 12.0, 18.0],
        )
        .unwrap();
        let s = optimal(&lp);
        assert!((s.objective() - 36.0).abs() < 1e-9);
        assert!((s.values()[0] - 2.0).abs() < 1e-9);
        assert!((s.values()[1] - 6.0).abs() < 1e-9);
        assert!(lp.is_feasible(s.values(), 1e-9));
    }

    #[test]
    fn doc_example_program() {
        let lp = LinearProgram::new(
            vec![1.0, 1.0],
            vec![vec![1.0, 2.0], vec![3.0, 1.0]],
            vec![4.0, 6.0],
        )
        .unwrap();
        let s = optimal(&lp);
        // Optimum at the intersection (1.6, 1.2).
        assert!((s.objective() - 2.8).abs() < 1e-9);
    }

    #[test]
    fn unbounded_program_is_detected() {
        // max x with no constraints binding it from above in that direction.
        let lp = LinearProgram::new(vec![1.0, 0.0], vec![vec![0.0, 1.0]], vec![5.0]).unwrap();
        assert_eq!(lp.solve().unwrap(), LpOutcome::Unbounded);
    }

    #[test]
    fn degenerate_programs_terminate() {
        // Multiple redundant constraints through the origin; Bland's rule must
        // not cycle.
        let lp = LinearProgram::new(
            vec![1.0, 1.0, 1.0],
            vec![
                vec![1.0, 1.0, 0.0],
                vec![1.0, 1.0, 0.0],
                vec![0.0, 1.0, 1.0],
                vec![1.0, 0.0, 1.0],
            ],
            vec![0.0, 0.0, 1.0, 1.0],
        )
        .unwrap();
        let s = optimal(&lp);
        // x0 = x1 = 0 forced; best is x2 = 1.
        assert!((s.objective() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zero_capacity_forces_zero_solution() {
        let lp = LinearProgram::new(vec![2.0], vec![vec![1.0]], vec![0.0]).unwrap();
        let s = optimal(&lp);
        assert_eq!(s.objective(), 0.0);
        assert_eq!(s.values(), &[0.0]);
    }

    #[test]
    fn empty_objective_program() {
        let lp = LinearProgram::new(vec![], vec![], vec![]).unwrap();
        let s = optimal(&lp);
        assert_eq!(s.objective(), 0.0);
        assert!(s.values().is_empty());
    }

    #[test]
    fn negative_objective_coefficients_stay_at_zero() {
        let lp = LinearProgram::new(vec![-1.0, 2.0], vec![vec![1.0, 1.0]], vec![3.0]).unwrap();
        let s = optimal(&lp);
        assert!((s.objective() - 6.0).abs() < 1e-9);
        assert!((s.values()[0]).abs() < 1e-9);
        assert!((s.values()[1] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn validation_rejects_bad_inputs() {
        assert!(matches!(
            LinearProgram::new(vec![1.0], vec![vec![1.0]], vec![1.0, 2.0]),
            Err(LpError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            LinearProgram::new(vec![1.0], vec![vec![1.0, 2.0]], vec![1.0]),
            Err(LpError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            LinearProgram::new(vec![f64::NAN], vec![vec![1.0]], vec![1.0]),
            Err(LpError::InvalidValue { .. })
        ));
        assert!(matches!(
            LinearProgram::new(vec![1.0], vec![vec![1.0]], vec![-1.0]),
            Err(LpError::NegativeCapacity { row: 0, .. })
        ));
    }

    #[test]
    fn feasibility_and_objective_helpers() {
        let lp = LinearProgram::new(vec![1.0, 2.0], vec![vec![1.0, 1.0]], vec![2.0]).unwrap();
        assert!(lp.is_feasible(&[1.0, 1.0], 1e-9));
        assert!(!lp.is_feasible(&[3.0, 0.0], 1e-9));
        assert!(!lp.is_feasible(&[-0.5, 0.0], 1e-9));
        assert!(!lp.is_feasible(&[1.0], 1e-9));
        assert_eq!(lp.objective_value(&[1.0, 1.0]), 3.0);
        assert_eq!(lp.num_variables(), 2);
        assert_eq!(lp.num_constraints(), 1);
    }

    #[test]
    fn larger_random_like_program_is_solved_and_feasible() {
        // A 6-variable, 8-constraint packing-style program with deterministic
        // pseudo-random coefficients.
        let n = 6;
        let m = 8;
        let coeff = |i: usize, j: usize| ((i * 7 + j * 13) % 10) as f64 / 3.0 + 0.1;
        let rows: Vec<Vec<f64>> = (0..m)
            .map(|i| (0..n).map(|j| coeff(i, j)).collect())
            .collect();
        let rhs: Vec<f64> = (0..m).map(|i| 5.0 + (i % 3) as f64).collect();
        let lp = LinearProgram::new(vec![1.0; n], rows, rhs).unwrap();
        let s = optimal(&lp);
        assert!(lp.is_feasible(s.values(), 1e-7));
        assert!(s.objective() > 0.0);
        // Weak duality style sanity check: objective cannot exceed the most
        // generous single-constraint bound sum(b) / min coefficient.
        assert!(s.objective() < 100.0);
    }
}

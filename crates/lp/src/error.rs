//! Error types for the LP substrate.

use std::fmt;

/// Errors produced while constructing or solving linear programs.
#[derive(Debug, Clone, PartialEq)]
pub enum LpError {
    /// The dimensions of the objective, constraint matrix and right-hand side
    /// do not agree.
    DimensionMismatch {
        /// Human-readable description of the mismatch.
        reason: String,
    },
    /// A coefficient, capacity or objective value is NaN or infinite.
    InvalidValue {
        /// Human-readable description of the offending value.
        reason: String,
    },
    /// A right-hand side entry is negative. The solver only handles the
    /// `b ≥ 0` form (the origin is then feasible), which covers every LP in
    /// this workspace.
    NegativeCapacity {
        /// Index of the offending constraint.
        row: usize,
        /// The offending value.
        value: f64,
    },
    /// The simplex iteration limit was exceeded (should not happen with
    /// Bland's rule; kept as a defensive guard).
    IterationLimit {
        /// The limit that was reached.
        limit: usize,
    },
}

impl fmt::Display for LpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LpError::DimensionMismatch { reason } => write!(f, "dimension mismatch: {reason}"),
            LpError::InvalidValue { reason } => write!(f, "invalid value: {reason}"),
            LpError::NegativeCapacity { row, value } => {
                write!(f, "constraint {row} has negative capacity {value}")
            }
            LpError::IterationLimit { limit } => {
                write!(f, "simplex iteration limit of {limit} exceeded")
            }
        }
    }
}

impl std::error::Error for LpError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(LpError::DimensionMismatch {
            reason: "c vs A".into()
        }
        .to_string()
        .contains("c vs A"));
        assert!(LpError::InvalidValue {
            reason: "NaN".into()
        }
        .to_string()
        .contains("NaN"));
        assert!(LpError::NegativeCapacity {
            row: 2,
            value: -1.0
        }
        .to_string()
        .contains("-1"));
        assert!(LpError::IterationLimit { limit: 10 }
            .to_string()
            .contains("10"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_error<E: std::error::Error + Send + Sync>() {}
        assert_error::<LpError>();
    }
}

//! Packing LPs: `max Σ w_j x_j  s.t.  Ax ≤ b, 0 ≤ x ≤ 1` with non-negative
//! data.
//!
//! The per-class selection problem of §5 of the paper is exactly this shape:
//! one variable per candidate request, one capacity constraint per node
//! bounding the interference it may receive.

use crate::error::LpError;
use crate::simplex::{LinearProgram, LpOutcome};
use serde::{Deserialize, Serialize};

/// A packing linear program with optional unit upper bounds on the variables.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PackingLp {
    weights: Vec<f64>,
    rows: Vec<Vec<f64>>,
    capacities: Vec<f64>,
    unit_bounds: bool,
}

/// A (fractional) solution of a [`PackingLp`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PackingSolution {
    values: Vec<f64>,
    objective: f64,
}

impl PackingSolution {
    /// The fractional variable values, one per item.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// The objective value `Σ w_j x_j`.
    pub fn objective(&self) -> f64 {
        self.objective
    }

    /// The items with strictly positive fractional value.
    pub fn support(&self) -> Vec<usize> {
        (0..self.values.len())
            .filter(|&j| self.values[j] > 1e-12)
            .collect()
    }
}

impl PackingLp {
    /// Creates a packing LP with `x_j ≤ 1` bounds (the common case).
    ///
    /// # Errors
    ///
    /// * [`LpError::DimensionMismatch`] for inconsistent shapes.
    /// * [`LpError::InvalidValue`] for NaN/infinite or negative coefficients
    ///   or weights (packing data must be non-negative).
    /// * [`LpError::NegativeCapacity`] for negative capacities.
    pub fn new(
        weights: Vec<f64>,
        rows: Vec<Vec<f64>>,
        capacities: Vec<f64>,
    ) -> Result<Self, LpError> {
        Self::with_bounds(weights, rows, capacities, true)
    }

    /// Creates a packing LP, choosing whether to add the `x_j ≤ 1` bounds.
    ///
    /// # Errors
    ///
    /// See [`PackingLp::new`].
    pub fn with_bounds(
        weights: Vec<f64>,
        rows: Vec<Vec<f64>>,
        capacities: Vec<f64>,
        unit_bounds: bool,
    ) -> Result<Self, LpError> {
        let n = weights.len();
        if rows.len() != capacities.len() {
            return Err(LpError::DimensionMismatch {
                reason: format!("{} rows but {} capacities", rows.len(), capacities.len()),
            });
        }
        for (i, row) in rows.iter().enumerate() {
            if row.len() != n {
                return Err(LpError::DimensionMismatch {
                    reason: format!("row {i} has {} coefficients, expected {n}", row.len()),
                });
            }
        }
        for &w in &weights {
            if !w.is_finite() || w < 0.0 {
                return Err(LpError::InvalidValue {
                    reason: format!("packing weights must be finite and non-negative, got {w}"),
                });
            }
        }
        for row in &rows {
            for &a in row {
                if !a.is_finite() || a < 0.0 {
                    return Err(LpError::InvalidValue {
                        reason: format!(
                            "packing constraint coefficients must be finite and non-negative, got {a}"
                        ),
                    });
                }
            }
        }
        for (row, &b) in capacities.iter().enumerate() {
            if !b.is_finite() {
                return Err(LpError::InvalidValue {
                    reason: format!("capacity {b} in row {row} is not finite"),
                });
            }
            if b < 0.0 {
                return Err(LpError::NegativeCapacity { row, value: b });
            }
        }
        Ok(Self {
            weights,
            rows,
            capacities,
            unit_bounds,
        })
    }

    /// Number of items (variables).
    pub fn num_items(&self) -> usize {
        self.weights.len()
    }

    /// The objective weights.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// The total weight of an integral selection.
    pub fn selection_weight(&self, selection: &[usize]) -> f64 {
        selection.iter().map(|&j| self.weights[j]).sum()
    }

    /// Number of capacity constraints (excluding the unit bounds).
    pub fn num_constraints(&self) -> usize {
        self.rows.len()
    }

    /// The capacity constraint rows.
    pub fn rows(&self) -> &[Vec<f64>] {
        &self.rows
    }

    /// The capacities.
    pub fn capacities(&self) -> &[f64] {
        &self.capacities
    }

    /// Checks whether an integral selection of items respects every capacity
    /// constraint (unit bounds are automatic for selections).
    pub fn selection_is_feasible(&self, selection: &[usize]) -> bool {
        self.rows
            .iter()
            .zip(self.capacities.iter())
            .all(|(row, &b)| {
                let load: f64 = selection.iter().map(|&j| row[j]).sum();
                load <= b + 1e-9 * (1.0 + b.abs())
            })
    }

    /// Solves the fractional relaxation with the simplex solver.
    ///
    /// # Errors
    ///
    /// Propagates solver errors; packing LPs are always bounded, so an
    /// unbounded outcome is reported as an [`LpError::InvalidValue`].
    pub fn solve(&self) -> Result<PackingSolution, LpError> {
        let n = self.num_items();
        let mut rows = self.rows.clone();
        let mut capacities = self.capacities.clone();
        if self.unit_bounds {
            for j in 0..n {
                let mut bound = vec![0.0; n];
                bound[j] = 1.0;
                rows.push(bound);
                capacities.push(1.0);
            }
        }
        let lp = LinearProgram::new(self.weights.clone(), rows, capacities)?;
        match lp.solve()? {
            LpOutcome::Optimal(s) => Ok(PackingSolution {
                objective: s.objective(),
                values: s.values().to_vec(),
            }),
            LpOutcome::Unbounded => Err(LpError::InvalidValue {
                reason: "packing LP reported unbounded; weights or bounds are inconsistent".into(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_packing_prefers_heavy_items() {
        // Two items, one shared capacity of 1; item 1 is heavier.
        let lp = PackingLp::new(vec![1.0, 2.0], vec![vec![1.0, 1.0]], vec![1.0]).unwrap();
        let s = lp.solve().unwrap();
        assert!((s.objective() - 2.0).abs() < 1e-9);
        assert!((s.values()[1] - 1.0).abs() < 1e-9);
        assert!(s.values()[0].abs() < 1e-9);
        assert_eq!(s.support(), vec![1]);
    }

    #[test]
    fn unit_bounds_cap_variables_at_one() {
        // Single item, huge capacity: without unit bounds the LP would pick a
        // large fractional value.
        let bounded = PackingLp::new(vec![1.0], vec![vec![1.0]], vec![10.0]).unwrap();
        let s = bounded.solve().unwrap();
        assert!((s.objective() - 1.0).abs() < 1e-9);

        let unbounded =
            PackingLp::with_bounds(vec![1.0], vec![vec![1.0]], vec![10.0], false).unwrap();
        let s = unbounded.solve().unwrap();
        assert!((s.objective() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn fractional_solutions_appear_when_capacity_is_tight() {
        // Three identical items, capacity 1.5: optimum 1.5, necessarily
        // fractional.
        let lp = PackingLp::new(vec![1.0, 1.0, 1.0], vec![vec![1.0, 1.0, 1.0]], vec![1.5]).unwrap();
        let s = lp.solve().unwrap();
        assert!((s.objective() - 1.5).abs() < 1e-9);
        let total: f64 = s.values().iter().sum();
        assert!((total - 1.5).abs() < 1e-9);
        assert!(s.values().iter().all(|&x| x <= 1.0 + 1e-9));
    }

    #[test]
    fn zero_items_and_zero_constraints() {
        let lp = PackingLp::new(vec![], vec![], vec![]).unwrap();
        let s = lp.solve().unwrap();
        assert_eq!(s.objective(), 0.0);
        assert!(s.values().is_empty());
        assert!(s.support().is_empty());

        // No constraints at all: every variable goes to its unit bound.
        let lp = PackingLp::new(vec![1.0, 1.0], vec![], vec![]).unwrap();
        let s = lp.solve().unwrap();
        assert!((s.objective() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn selection_feasibility_check() {
        let lp = PackingLp::new(
            vec![1.0, 1.0, 1.0],
            vec![vec![1.0, 1.0, 0.0], vec![0.0, 1.0, 1.0]],
            vec![1.0, 1.0],
        )
        .unwrap();
        assert!(lp.selection_is_feasible(&[0, 2]));
        assert!(!lp.selection_is_feasible(&[0, 1]));
        assert!(lp.selection_is_feasible(&[]));
        assert_eq!(lp.num_items(), 3);
        assert_eq!(lp.num_constraints(), 2);
        assert_eq!(lp.rows().len(), 2);
        assert_eq!(lp.capacities(), &[1.0, 1.0]);
    }

    #[test]
    fn validation_rejects_bad_data() {
        assert!(matches!(
            PackingLp::new(vec![1.0], vec![vec![1.0, 2.0]], vec![1.0]),
            Err(LpError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            PackingLp::new(vec![1.0], vec![vec![1.0]], vec![1.0, 2.0]),
            Err(LpError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            PackingLp::new(vec![-1.0], vec![vec![1.0]], vec![1.0]),
            Err(LpError::InvalidValue { .. })
        ));
        assert!(matches!(
            PackingLp::new(vec![1.0], vec![vec![-1.0]], vec![1.0]),
            Err(LpError::InvalidValue { .. })
        ));
        assert!(matches!(
            PackingLp::new(vec![1.0], vec![vec![1.0]], vec![-1.0]),
            Err(LpError::NegativeCapacity { .. })
        ));
        assert!(matches!(
            PackingLp::new(vec![1.0], vec![vec![1.0]], vec![f64::INFINITY]),
            Err(LpError::InvalidValue { .. })
        ));
    }

    #[test]
    fn lp_optimum_upper_bounds_any_integral_selection() {
        // The fractional optimum must dominate the best of a few integral
        // selections (weak LP relaxation property, used by §5's analysis).
        let lp = PackingLp::new(
            vec![2.0, 1.0, 1.5, 1.0],
            vec![vec![1.0, 0.5, 0.0, 1.0], vec![0.0, 1.0, 1.0, 1.0]],
            vec![1.5, 2.0],
        )
        .unwrap();
        let s = lp.solve().unwrap();
        for selection in [vec![0], vec![0, 1], vec![2, 3], vec![0, 2]] {
            if lp.selection_is_feasible(&selection) {
                let value: f64 = selection.iter().map(|&j| [2.0, 1.0, 1.5, 1.0][j]).sum();
                assert!(s.objective() + 1e-9 >= value);
            }
        }
    }
}

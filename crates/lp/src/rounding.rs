//! Randomized rounding with alteration for packing LPs.
//!
//! §5 of the paper computes an optimal fractional solution of the per-class
//! packing LP and states that "a feasible subset of cardinality Ω(opt') can
//! be computed via randomized rounding" (details omitted). This module
//! implements the standard rounding-with-alteration scheme:
//!
//! 1. include item `j` independently with probability `scale · x_j` for a
//!    down-scaling factor `scale ∈ (0, 1]`,
//! 2. while some capacity constraint is violated, drop the included item with
//!    the largest total contribution to violated constraints.
//!
//! The returned selection always satisfies every constraint; with
//! `scale = 1/2` the expected number of survivors is a constant fraction of
//! the fractional objective for the row-sparse programs produced by the
//! coloring algorithm (validated empirically in experiment E3 and the tests
//! below).

use crate::error::LpError;
use crate::packing::{PackingLp, PackingSolution};
use rand::Rng;

/// Configuration of the rounding procedure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoundingConfig {
    /// Down-scaling factor applied to the fractional values before sampling.
    pub scale: f64,
    /// Number of independent sampling attempts; the best feasible outcome is
    /// returned.
    pub attempts: usize,
}

impl Default for RoundingConfig {
    fn default() -> Self {
        Self {
            scale: 0.5,
            attempts: 8,
        }
    }
}

/// Rounds a fractional packing solution to an integral selection that
/// satisfies every constraint of `lp`.
///
/// Several independent attempts are made and the largest surviving selection
/// (by weight of the original objective, i.e. cardinality for unit weights)
/// is returned; the greedy alteration step guarantees feasibility of every
/// attempt, so the result is always feasible (possibly empty).
///
/// # Errors
///
/// Returns [`LpError::DimensionMismatch`] if the solution length does not
/// match the LP.
///
/// # Panics
///
/// Panics if `config.scale` is not in `(0, 1]` or `config.attempts` is zero.
pub fn round_packing<R: Rng + ?Sized>(
    lp: &PackingLp,
    solution: &PackingSolution,
    config: RoundingConfig,
    rng: &mut R,
) -> Result<Vec<usize>, LpError> {
    assert!(
        config.scale > 0.0 && config.scale <= 1.0,
        "rounding scale must lie in (0, 1]"
    );
    assert!(
        config.attempts > 0,
        "at least one rounding attempt is required"
    );
    if solution.values().len() != lp.num_items() {
        return Err(LpError::DimensionMismatch {
            reason: format!(
                "solution has {} values but the LP has {} items",
                solution.values().len(),
                lp.num_items()
            ),
        });
    }

    let mut best: Vec<usize> = Vec::new();
    for _ in 0..config.attempts {
        let mut selected: Vec<usize> = (0..lp.num_items())
            .filter(|&j| {
                let p = (config.scale * solution.values()[j]).clamp(0.0, 1.0);
                rng.gen_bool(p)
            })
            .collect();
        alter_until_feasible(lp, &mut selected);
        if selected.len() > best.len() {
            best = selected;
        }
    }
    Ok(best)
}

/// Greedy alteration: while a constraint is violated, drop the selected item
/// with the largest total coefficient in the violated rows.
fn alter_until_feasible(lp: &PackingLp, selected: &mut Vec<usize>) {
    loop {
        let violated: Vec<usize> = (0..lp.num_constraints())
            .filter(|&i| {
                let load: f64 = selected.iter().map(|&j| lp.rows()[i][j]).sum();
                load > lp.capacities()[i] + 1e-9 * (1.0 + lp.capacities()[i].abs())
            })
            .collect();
        if violated.is_empty() || selected.is_empty() {
            return;
        }
        let worst = selected
            .iter()
            .copied()
            .max_by(|&a, &b| {
                let contribution =
                    |j: usize| -> f64 { violated.iter().map(|&i| lp.rows()[i][j]).sum() };
                // Total ordering: NaN contributions must not collapse the
                // comparison to Equal and leave the choice order-dependent.
                contribution(a).total_cmp(&contribution(b))
            })
            .expect("selection is non-empty");
        selected.retain(|&j| j != worst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn interference_style_lp(n: usize) -> PackingLp {
        // n items, n constraints; item j loads constraint i with a value that
        // decays with |i - j| — a caricature of geometric interference. The
        // capacity of 2 leaves room for several well-spread items.
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                (0..n)
                    .map(|j| {
                        if i == j {
                            0.0
                        } else {
                            1.0 / (1.0 + (i as f64 - j as f64).powi(2))
                        }
                    })
                    .collect()
            })
            .collect();
        let capacities = vec![2.0; n];
        PackingLp::new(vec![1.0; n], rows, capacities).unwrap()
    }

    #[test]
    fn rounded_selection_is_always_feasible() {
        let lp = interference_style_lp(12);
        let solution = lp.solve().unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..5 {
            let selection =
                round_packing(&lp, &solution, RoundingConfig::default(), &mut rng).unwrap();
            assert!(lp.selection_is_feasible(&selection));
        }
    }

    #[test]
    fn rounding_recovers_a_constant_fraction() {
        let lp = interference_style_lp(16);
        let solution = lp.solve().unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let selection = round_packing(
            &lp,
            &solution,
            RoundingConfig {
                scale: 0.5,
                attempts: 16,
            },
            &mut rng,
        )
        .unwrap();
        assert!(
            selection.len() as f64 >= 0.2 * solution.objective(),
            "rounding kept {} of a fractional optimum of {}",
            selection.len(),
            solution.objective()
        );
    }

    #[test]
    fn rounding_handles_empty_programs() {
        let lp = PackingLp::new(vec![], vec![], vec![]).unwrap();
        let solution = lp.solve().unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let selection = round_packing(&lp, &solution, RoundingConfig::default(), &mut rng).unwrap();
        assert!(selection.is_empty());
    }

    #[test]
    fn rounding_respects_tight_capacity_zero() {
        // Capacity 0 on an all-ones row forbids selecting anything.
        let lp = PackingLp::new(vec![1.0, 1.0], vec![vec![1.0, 1.0]], vec![0.0]).unwrap();
        let solution = lp.solve().unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let selection = round_packing(&lp, &solution, RoundingConfig::default(), &mut rng).unwrap();
        assert!(selection.is_empty());
    }

    #[test]
    fn rounding_validates_solution_length() {
        let lp = PackingLp::new(vec![1.0], vec![vec![1.0]], vec![1.0]).unwrap();
        let other = PackingLp::new(vec![1.0, 1.0], vec![vec![1.0, 1.0]], vec![1.0]).unwrap();
        let solution = other.solve().unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        assert!(matches!(
            round_packing(&lp, &solution, RoundingConfig::default(), &mut rng),
            Err(LpError::DimensionMismatch { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "rounding scale")]
    fn invalid_scale_panics() {
        let lp = PackingLp::new(vec![1.0], vec![vec![1.0]], vec![1.0]).unwrap();
        let solution = lp.solve().unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let _ = round_packing(
            &lp,
            &solution,
            RoundingConfig {
                scale: 1.5,
                attempts: 1,
            },
            &mut rng,
        );
    }
}

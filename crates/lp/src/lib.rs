//! Linear-programming substrate for the `oblisched` workspace.
//!
//! The coloring algorithm of §5 of the paper selects, inside every distance
//! class, a maximum set of requests subject to per-node interference budgets.
//! That selection is a **packing LP** (maximise the number of chosen
//! requests subject to non-negative linear capacity constraints) followed by
//! **randomized rounding**. The paper assumes an LP oracle and omits the
//! rounding details; this crate provides both from scratch:
//!
//! * [`simplex`] — a dense primal simplex solver for
//!   `max cᵀx  s.t.  Ax ≤ b, x ≥ 0` with `b ≥ 0` (the form all our LPs take),
//!   using Bland's rule so it always terminates,
//! * [`packing`] — a convenience front end for packing LPs with optional
//!   `x ≤ 1` upper bounds,
//! * [`rounding`] — randomized rounding with alteration, turning a fractional
//!   packing solution into an integral one that respects every constraint.
//!
//! # Example
//!
//! ```
//! use oblisched_lp::{LinearProgram, LpOutcome};
//!
//! // max x0 + x1  s.t.  x0 + 2 x1 <= 4,  3 x0 + x1 <= 6
//! let lp = LinearProgram::new(
//!     vec![1.0, 1.0],
//!     vec![vec![1.0, 2.0], vec![3.0, 1.0]],
//!     vec![4.0, 6.0],
//! )?;
//! let outcome = lp.solve()?;
//! match outcome {
//!     LpOutcome::Optimal(solution) => assert!((solution.objective() - 2.8).abs() < 1e-9),
//!     LpOutcome::Unbounded => unreachable!(),
//! }
//! # Ok::<(), oblisched_lp::LpError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod packing;
pub mod rounding;
pub mod simplex;

pub use error::LpError;
pub use packing::{PackingLp, PackingSolution};
pub use rounding::{round_packing, RoundingConfig};
pub use simplex::{LinearProgram, LpOutcome, LpSolution};

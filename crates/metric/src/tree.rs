//! Edge-weighted trees, tree metrics and centroid decomposition.
//!
//! The reduction in §3 of the paper first simulates a general metric by a
//! family of trees (Lemma 6) and then hierarchically decomposes each tree
//! into stars (Lemma 9). The decomposition picks a *centroid* — a node whose
//! removal splits the tree into components of at most half the size — and
//! treats the tree distances towards that centroid as a star metric.

use crate::error::MetricError;
use crate::matrix::DistanceMatrix;
use crate::space::MetricSpace;
use crate::star::StarMetric;
use crate::NodeId;
use serde::{Deserialize, Serialize};

/// An undirected tree (or forest while under construction) with positive
/// edge weights.
///
/// # Example
///
/// ```
/// use oblisched_metric::WeightedTree;
///
/// let mut tree = WeightedTree::new(3);
/// tree.add_edge(0, 1, 1.0)?;
/// tree.add_edge(1, 2, 2.0)?;
/// assert_eq!(tree.distances_from(0)[2], 3.0);
/// # Ok::<(), oblisched_metric::MetricError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WeightedTree {
    adj: Vec<Vec<(NodeId, f64)>>,
    edge_count: usize,
}

impl WeightedTree {
    /// Creates an edgeless graph on `n` nodes.
    pub fn new(n: usize) -> Self {
        Self {
            adj: vec![Vec::new(); n],
            edge_count: 0,
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.adj.len()
    }

    /// Returns `true` if the tree has no nodes.
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// Number of edges added so far.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Neighbours of a node together with the connecting edge weights.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn neighbors(&self, u: NodeId) -> &[(NodeId, f64)] {
        &self.adj[u]
    }

    /// Adds an undirected edge of weight `w`.
    ///
    /// # Errors
    ///
    /// * [`MetricError::NodeOutOfRange`] if either endpoint does not exist.
    /// * [`MetricError::InvalidDistance`] if `w` is not a positive finite
    ///   number.
    /// * [`MetricError::NotATree`] if the edge would be a self-loop.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId, w: f64) -> Result<(), MetricError> {
        let n = self.len();
        if u >= n {
            return Err(MetricError::NodeOutOfRange { node: u, len: n });
        }
        if v >= n {
            return Err(MetricError::NodeOutOfRange { node: v, len: n });
        }
        if u == v {
            return Err(MetricError::NotATree {
                reason: format!("self-loop at node {u}"),
            });
        }
        if !w.is_finite() || w <= 0.0 {
            return Err(MetricError::InvalidDistance { u, v, value: w });
        }
        self.adj[u].push((v, w));
        self.adj[v].push((u, w));
        self.edge_count += 1;
        Ok(())
    }

    /// Returns `true` if the graph is a single connected tree.
    pub fn is_tree(&self) -> bool {
        let n = self.len();
        if n == 0 {
            return true;
        }
        if self.edge_count != n - 1 {
            return false;
        }
        let order = self.dfs_order(0, None);
        order.len() == n
    }

    /// Validates that the graph is a connected tree.
    ///
    /// # Errors
    ///
    /// Returns [`MetricError::NotATree`] describing the violation.
    pub fn validate(&self) -> Result<(), MetricError> {
        let n = self.len();
        if n == 0 {
            return Ok(());
        }
        if self.edge_count != n - 1 {
            return Err(MetricError::NotATree {
                reason: format!(
                    "{} edges for {} nodes (expected {})",
                    self.edge_count,
                    n,
                    n - 1
                ),
            });
        }
        let reachable = self.dfs_order(0, None).len();
        if reachable != n {
            return Err(MetricError::NotATree {
                reason: format!("only {reachable} of {n} nodes reachable from node 0"),
            });
        }
        Ok(())
    }

    /// Depth-first order of the nodes reachable from `start`, optionally
    /// restricted to an active subset (`active[v] == true`).
    fn dfs_order(&self, start: NodeId, active: Option<&[bool]>) -> Vec<NodeId> {
        let n = self.len();
        let mut seen = vec![false; n];
        let mut order = Vec::new();
        if let Some(a) = active {
            if !a[start] {
                return order;
            }
        }
        let mut stack = vec![start];
        seen[start] = true;
        while let Some(u) = stack.pop() {
            order.push(u);
            for &(v, _) in &self.adj[u] {
                let allowed = active.is_none_or(|a| a[v]);
                if allowed && !seen[v] {
                    seen[v] = true;
                    stack.push(v);
                }
            }
        }
        order
    }

    /// Shortest-path distances from `root` to every node.
    ///
    /// Unreachable nodes get `f64::INFINITY`.
    ///
    /// # Panics
    ///
    /// Panics if `root` is out of range.
    pub fn distances_from(&self, root: NodeId) -> Vec<f64> {
        self.distances_from_restricted(root, None)
    }

    /// Shortest-path distances from `root`, walking only through nodes marked
    /// active (the root itself must be active). Inactive or unreachable nodes
    /// get `f64::INFINITY`.
    pub fn distances_from_restricted(&self, root: NodeId, active: Option<&[bool]>) -> Vec<f64> {
        let n = self.len();
        assert!(root < n, "root out of range");
        let mut dist = vec![f64::INFINITY; n];
        if let Some(a) = active {
            if !a[root] {
                return dist;
            }
        }
        dist[root] = 0.0;
        let mut stack = vec![root];
        let mut seen = vec![false; n];
        seen[root] = true;
        while let Some(u) = stack.pop() {
            for &(v, w) in &self.adj[u] {
                let allowed = active.is_none_or(|a| a[v]);
                if allowed && !seen[v] {
                    seen[v] = true;
                    dist[v] = dist[u] + w;
                    stack.push(v);
                }
            }
        }
        dist
    }

    /// All-pairs shortest-path distances as a [`DistanceMatrix`].
    ///
    /// # Panics
    ///
    /// Panics if the graph is disconnected (some distance would be infinite).
    pub fn all_pairs(&self) -> DistanceMatrix {
        let n = self.len();
        let rows: Vec<Vec<f64>> = (0..n).map(|u| self.distances_from(u)).collect();
        for row in &rows {
            assert!(
                row.iter().all(|d| d.is_finite()),
                "graph must be connected for all_pairs"
            );
        }
        DistanceMatrix::from_rows_unchecked(rows)
    }

    /// Connected components among the nodes marked active.
    pub fn components(&self, active: &[bool]) -> Vec<Vec<NodeId>> {
        assert_eq!(active.len(), self.len(), "active mask must cover all nodes");
        let mut seen = vec![false; self.len()];
        let mut comps = Vec::new();
        for s in 0..self.len() {
            if active[s] && !seen[s] {
                let comp = self.dfs_order(s, Some(active));
                for &v in &comp {
                    seen[v] = true;
                }
                comps.push(comp);
            }
        }
        comps
    }

    /// A centroid of the component containing `component[0]`, restricted to
    /// the active nodes given in `component`.
    ///
    /// The centroid is a node whose removal splits the component into pieces
    /// of size at most `⌈|component| / 2⌉`; such a node always exists in a
    /// tree. Returns `None` for an empty component.
    ///
    /// # Panics
    ///
    /// Panics if the nodes in `component` are not all connected to each other
    /// through active nodes (i.e. they do not form one component).
    pub fn centroid_of(&self, component: &[NodeId]) -> Option<NodeId> {
        if component.is_empty() {
            return None;
        }
        let n = self.len();
        let mut active = vec![false; n];
        for &v in component {
            active[v] = true;
        }
        let reach = self.dfs_order(component[0], Some(&active));
        assert_eq!(
            reach.len(),
            component.len(),
            "component nodes must be connected"
        );

        let size = component.len();
        let mut best: Option<(NodeId, usize)> = None;
        for &c in component {
            // Largest piece after removing c.
            let mut without_c = active.clone();
            without_c[c] = false;
            let largest = self
                .components(&without_c)
                .into_iter()
                .filter(|comp| comp.iter().any(|v| active[*v]))
                .map(|comp| comp.len())
                .max()
                .unwrap_or(0);
            if best.is_none_or(|(_, b)| largest < b) {
                best = Some((c, largest));
            }
        }
        let (c, largest) = best.expect("non-empty component has a centroid");
        debug_assert!(
            largest <= size / 2 + 1,
            "centroid piece too large: {largest} of {size}"
        );
        Some(c)
    }

    /// Builds the star metric obtained by selecting `center` and using the
    /// tree distances (restricted to the active component) as radii.
    ///
    /// Returns the star together with the list of original node ids, ordered
    /// consistently with the star's leaf indices (the centre is not a leaf).
    pub fn star_around(&self, center: NodeId, component: &[NodeId]) -> (StarMetric, Vec<NodeId>) {
        let n = self.len();
        let mut active = vec![false; n];
        for &v in component {
            active[v] = true;
        }
        active[center] = true;
        let dist = self.distances_from_restricted(center, Some(&active));
        let mut leaves = Vec::new();
        let mut radii = Vec::new();
        for &v in component {
            if v != center {
                leaves.push(v);
                radii.push(dist[v]);
            }
        }
        (StarMetric::new(radii), leaves)
    }
}

/// A connected [`WeightedTree`] together with its materialised shortest-path
/// metric.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TreeMetric {
    tree: WeightedTree,
    matrix: DistanceMatrix,
}

impl TreeMetric {
    /// Builds the shortest-path metric of a connected tree.
    ///
    /// # Errors
    ///
    /// Returns [`MetricError::NotATree`] if the graph is not a connected
    /// tree.
    pub fn new(tree: WeightedTree) -> Result<Self, MetricError> {
        tree.validate()?;
        let matrix = if tree.is_empty() {
            DistanceMatrix::from_rows_unchecked(Vec::new())
        } else {
            tree.all_pairs()
        };
        Ok(Self { tree, matrix })
    }

    /// The underlying tree.
    pub fn tree(&self) -> &WeightedTree {
        &self.tree
    }

    /// The materialised all-pairs matrix.
    pub fn matrix(&self) -> &DistanceMatrix {
        &self.matrix
    }
}

impl MetricSpace for TreeMetric {
    fn len(&self) -> usize {
        self.tree.len()
    }

    fn distance(&self, u: NodeId, v: NodeId) -> f64 {
        self.matrix.distance(u, v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A path 0 - 1 - 2 - 3 with unit weights.
    fn path4() -> WeightedTree {
        let mut t = WeightedTree::new(4);
        t.add_edge(0, 1, 1.0).unwrap();
        t.add_edge(1, 2, 1.0).unwrap();
        t.add_edge(2, 3, 1.0).unwrap();
        t
    }

    /// A star with centre 0 and leaves 1..=4 at distances 1..=4.
    fn star5() -> WeightedTree {
        let mut t = WeightedTree::new(5);
        for i in 1..5 {
            t.add_edge(0, i, i as f64).unwrap();
        }
        t
    }

    #[test]
    fn add_edge_validates_inputs() {
        let mut t = WeightedTree::new(3);
        assert!(matches!(
            t.add_edge(0, 9, 1.0),
            Err(MetricError::NodeOutOfRange { .. })
        ));
        assert!(matches!(
            t.add_edge(9, 0, 1.0),
            Err(MetricError::NodeOutOfRange { .. })
        ));
        assert!(matches!(
            t.add_edge(0, 0, 1.0),
            Err(MetricError::NotATree { .. })
        ));
        assert!(matches!(
            t.add_edge(0, 1, 0.0),
            Err(MetricError::InvalidDistance { .. })
        ));
        assert!(matches!(
            t.add_edge(0, 1, f64::NAN),
            Err(MetricError::InvalidDistance { .. })
        ));
        assert!(t.add_edge(0, 1, 2.0).is_ok());
        assert_eq!(t.edge_count(), 1);
    }

    #[test]
    fn path_distances() {
        let t = path4();
        let d = t.distances_from(0);
        assert_eq!(d, vec![0.0, 1.0, 2.0, 3.0]);
        let d = t.distances_from(2);
        assert_eq!(d, vec![2.0, 1.0, 0.0, 1.0]);
    }

    #[test]
    fn is_tree_and_validate() {
        let t = path4();
        assert!(t.is_tree());
        assert!(t.validate().is_ok());

        let mut not_enough = WeightedTree::new(3);
        not_enough.add_edge(0, 1, 1.0).unwrap();
        assert!(!not_enough.is_tree());
        assert!(matches!(
            not_enough.validate(),
            Err(MetricError::NotATree { .. })
        ));

        // A cycle: 3 nodes, 3 edges.
        let mut cycle = WeightedTree::new(3);
        cycle.add_edge(0, 1, 1.0).unwrap();
        cycle.add_edge(1, 2, 1.0).unwrap();
        cycle.add_edge(2, 0, 1.0).unwrap();
        assert!(!cycle.is_tree());
    }

    #[test]
    fn empty_tree_is_valid() {
        let t = WeightedTree::new(0);
        assert!(t.is_tree());
        assert!(t.validate().is_ok());
        assert!(t.is_empty());
    }

    #[test]
    fn all_pairs_matches_manual_distances() {
        let t = path4();
        let m = t.all_pairs();
        assert_eq!(m.distance(0, 3), 3.0);
        assert_eq!(m.distance(1, 3), 2.0);
        assert_eq!(m.distance(2, 2), 0.0);
    }

    #[test]
    fn tree_metric_is_a_metric() {
        let tm = TreeMetric::new(star5()).unwrap();
        assert_eq!(tm.len(), 5);
        assert_eq!(tm.distance(1, 2), 3.0); // 1 + 2 via the centre
        assert!(tm.validate().is_ok());
        assert_eq!(tm.tree().len(), 5);
        assert_eq!(tm.matrix().size(), 5);
    }

    #[test]
    fn tree_metric_rejects_disconnected() {
        let mut t = WeightedTree::new(3);
        t.add_edge(0, 1, 1.0).unwrap();
        assert!(TreeMetric::new(t).is_err());
    }

    #[test]
    fn components_respect_active_mask() {
        let t = path4();
        // Deactivate node 1: components are {0} and {2, 3}.
        let comps = t.components(&[true, false, true, true]);
        let mut sizes: Vec<usize> = comps.iter().map(|c| c.len()).collect();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![1, 2]);
    }

    #[test]
    fn centroid_of_path_is_middle() {
        let t = path4();
        let c = t.centroid_of(&[0, 1, 2, 3]).unwrap();
        // Both 1 and 2 are valid centroids of a 4-path.
        assert!(c == 1 || c == 2);
    }

    #[test]
    fn centroid_of_star_is_center() {
        let t = star5();
        assert_eq!(t.centroid_of(&[0, 1, 2, 3, 4]).unwrap(), 0);
    }

    #[test]
    fn centroid_of_empty_is_none() {
        let t = path4();
        assert_eq!(t.centroid_of(&[]), None);
    }

    #[test]
    fn centroid_of_subset() {
        let t = path4();
        // Only the sub-path {2, 3}.
        let c = t.centroid_of(&[2, 3]).unwrap();
        assert!(c == 2 || c == 3);
    }

    #[test]
    fn star_around_uses_tree_distances() {
        let t = star5();
        let (star, leaves) = t.star_around(0, &[0, 1, 2, 3, 4]);
        assert_eq!(leaves, vec![1, 2, 3, 4]);
        assert_eq!(star.len(), 4);
        // Leaf distances through the centre: radius_i + radius_j.
        assert_eq!(star.distance(0, 1), 1.0 + 2.0);
        assert_eq!(star.radius(3), 4.0);
    }

    #[test]
    fn star_around_respects_component_restriction() {
        let t = path4();
        let (star, leaves) = t.star_around(2, &[2, 3]);
        assert_eq!(leaves, vec![3]);
        assert_eq!(star.radius(0), 1.0);
    }

    #[test]
    fn distances_restricted_blocks_inactive_paths() {
        let t = path4();
        // Node 1 inactive: node 3 unreachable from 0.
        let d = t.distances_from_restricted(0, Some(&[true, false, true, true]));
        assert_eq!(d[0], 0.0);
        assert!(d[2].is_infinite());
        assert!(d[3].is_infinite());
    }

    #[test]
    fn neighbors_lists_edges() {
        let t = star5();
        assert_eq!(t.neighbors(0).len(), 4);
        assert_eq!(t.neighbors(3), &[(0, 3.0)]);
    }
}

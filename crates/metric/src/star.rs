//! Star metrics: leaves arranged around a centre.
//!
//! Section 4 of the paper analyses the square-root power assignment on
//! *stars*: `n` nodes placed around an (implicit) centre `c`, where node `i`
//! sits at distance `δ_i` from the centre. The distance between two distinct
//! leaves is `δ_i + δ_j` (the path through the centre), which is exactly the
//! shortest-path metric of a star-shaped tree.

use crate::space::MetricSpace;
use crate::NodeId;
use serde::{Deserialize, Serialize};

/// A star metric over `n` leaves with given centre distances (radii).
///
/// Leaf indices are `0..n`; the centre is *not* a node of the metric (the
/// node-loss scheduling problem of §3.2 only places requests on leaves) but
/// its distances are available through [`StarMetric::radius`].
///
/// # Example
///
/// ```
/// use oblisched_metric::{MetricSpace, StarMetric};
///
/// let star = StarMetric::new(vec![1.0, 2.0, 4.0]);
/// assert_eq!(star.distance(0, 2), 5.0);
/// assert_eq!(star.radius(1), 2.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct StarMetric {
    radii: Vec<f64>,
}

impl StarMetric {
    /// Creates a star metric with the given centre distances.
    ///
    /// # Panics
    ///
    /// Panics if any radius is negative, NaN or infinite.
    pub fn new(radii: Vec<f64>) -> Self {
        assert!(
            radii.iter().all(|r| r.is_finite() && *r >= 0.0),
            "star radii must be finite and non-negative"
        );
        Self { radii }
    }

    /// The distance from leaf `i` to the centre.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn radius(&self, i: NodeId) -> f64 {
        self.radii[i]
    }

    /// All radii.
    pub fn radii(&self) -> &[f64] {
        &self.radii
    }

    /// The *decay* of leaf `i`: `radius(i)^alpha`, the loss between the leaf
    /// and the centre (notation `d_i` in §4 of the paper).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn decay(&self, i: NodeId, alpha: f64) -> f64 {
        self.radii[i].powf(alpha)
    }

    /// Adds a leaf with the given radius and returns its index.
    ///
    /// # Panics
    ///
    /// Panics if the radius is negative, NaN or infinite.
    pub fn push(&mut self, radius: f64) -> NodeId {
        assert!(
            radius.is_finite() && radius >= 0.0,
            "star radii must be finite and non-negative"
        );
        self.radii.push(radius);
        self.radii.len() - 1
    }

    /// Returns the leaves sorted by increasing radius (ties keep index order).
    ///
    /// §4 assumes w.l.o.g. that decays are sorted (`d_1 ≤ d_2 ≤ …`); this is
    /// the permutation that realises that ordering.
    pub fn leaves_by_radius(&self) -> Vec<NodeId> {
        let mut order: Vec<NodeId> = (0..self.radii.len()).collect();
        // Total ordering instead of `partial_cmp(..).expect(..)`: a NaN
        // radius must not panic the sort mid-comparison.
        order.sort_by(|&a, &b| self.radii[a].total_cmp(&self.radii[b]).then(a.cmp(&b)));
        order
    }
}

impl MetricSpace for StarMetric {
    fn len(&self) -> usize {
        self.radii.len()
    }

    fn distance(&self, u: NodeId, v: NodeId) -> f64 {
        if u == v {
            0.0
        } else {
            self.radii[u] + self.radii[v]
        }
    }
}

impl FromIterator<f64> for StarMetric {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        Self::new(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaf_distances_go_through_center() {
        let star = StarMetric::new(vec![1.0, 2.0, 3.0]);
        assert_eq!(star.distance(0, 1), 3.0);
        assert_eq!(star.distance(1, 2), 5.0);
        assert_eq!(star.distance(2, 2), 0.0);
    }

    #[test]
    fn star_is_a_valid_metric() {
        let star = StarMetric::new(vec![0.5, 1.5, 2.5, 10.0]);
        assert!(star.validate().is_ok());
    }

    #[test]
    fn radius_and_decay() {
        let star = StarMetric::new(vec![2.0, 3.0]);
        assert_eq!(star.radius(1), 3.0);
        assert_eq!(star.decay(0, 3.0), 8.0);
        assert_eq!(star.decay(1, 2.0), 9.0);
    }

    #[test]
    fn push_appends_leaves() {
        let mut star = StarMetric::default();
        assert_eq!(star.push(1.0), 0);
        assert_eq!(star.push(4.0), 1);
        assert_eq!(star.len(), 2);
        assert_eq!(star.distance(0, 1), 5.0);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_radius_rejected() {
        let _ = StarMetric::new(vec![-1.0]);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn push_rejects_nan() {
        let mut star = StarMetric::default();
        star.push(f64::NAN);
    }

    #[test]
    fn leaves_by_radius_sorts() {
        let star = StarMetric::new(vec![3.0, 1.0, 2.0, 1.0]);
        assert_eq!(star.leaves_by_radius(), vec![1, 3, 2, 0]);
    }

    #[test]
    fn from_iterator_collects() {
        let star: StarMetric = vec![1.0, 2.0].into_iter().collect();
        assert_eq!(star.radii(), &[1.0, 2.0]);
    }

    #[test]
    fn empty_star() {
        let star = StarMetric::default();
        assert!(star.is_empty());
        assert!(star.leaves_by_radius().is_empty());
    }

    #[test]
    fn zero_radius_leaves_coincide_with_center() {
        let star = StarMetric::new(vec![0.0, 2.0]);
        assert_eq!(star.distance(0, 1), 2.0);
        assert!(star.validate().is_ok());
    }
}

//! Probabilistic tree embeddings and dominating tree families (Lemma 6).
//!
//! Lemma 6 of the paper (adapted from Gupta, Hajiaghayi and Räcke, SODA 2006)
//! asserts that every finite metric admits `r = O(log n)` edge-weighted trees
//! such that (1) every tree *dominates* the metric (`d_T ≥ d`) and (2) every
//! node has, in at least a 9/10 fraction of the trees, all of its distances
//! stretched by at most `O(log n)` — the node is in the tree's *core*.
//!
//! We realise this with the classic FRT construction: a random 2-HST obtained
//! from a random permutation and a random radius scale. A single FRT tree
//! dominates the metric and stretches each pair by `O(log n)` *in
//! expectation*; sampling `Θ(log n)` independent trees and measuring the
//! actual per-node stretch yields the core structure Lemma 6 needs. The
//! builder verifies the 9/10 property explicitly and relaxes the stretch
//! threshold when an unlucky sample misses it, so the returned family always
//! satisfies the interface contract.

use crate::matrix::DistanceMatrix;
use crate::space::MetricSpace;
use crate::tree::WeightedTree;
use crate::NodeId;
use rand::seq::SliceRandom;
use rand::Rng;

/// A single tree embedding of a finite metric.
///
/// The embedding consists of an edge-weighted tree over auxiliary vertices,
/// a mapping from original nodes to tree vertices, and the induced
/// leaf-to-leaf distances. The tree distance always dominates the original
/// distance.
///
/// # Example
///
/// ```
/// use oblisched_metric::{EuclideanSpace, MetricSpace, Point2, TreeEmbedding};
/// use rand::SeedableRng;
///
/// let metric = EuclideanSpace::from_points(vec![
///     Point2::xy(0.0, 0.0),
///     Point2::xy(1.0, 0.0),
///     Point2::xy(5.0, 5.0),
/// ]);
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
/// let emb = TreeEmbedding::frt(&metric, &mut rng);
/// for u in 0..3 {
///     for v in 0..3 {
///         assert!(emb.distance(u, v) + 1e-9 >= metric.distance(u, v));
///     }
/// }
/// ```
#[derive(Debug, Clone)]
pub struct TreeEmbedding {
    tree: WeightedTree,
    leaf_of: Vec<NodeId>,
    embedded: DistanceMatrix,
}

impl TreeEmbedding {
    /// Samples one FRT tree embedding of `metric` using `rng`.
    ///
    /// # Panics
    ///
    /// Panics if the metric contains non-finite distances.
    pub fn frt<M: MetricSpace, R: Rng + ?Sized>(metric: &M, rng: &mut R) -> Self {
        let n = metric.len();
        if n == 0 {
            return Self {
                tree: WeightedTree::new(0),
                leaf_of: Vec::new(),
                embedded: DistanceMatrix::from_rows_unchecked(Vec::new()),
            };
        }
        if n == 1 {
            return Self {
                tree: WeightedTree::new(1),
                leaf_of: vec![0],
                embedded: DistanceMatrix::from_rows_unchecked(vec![vec![0.0]]),
            };
        }

        let d_min = crate::aspect::min_positive_distance(metric).unwrap_or(1.0);
        let diameter = crate::aspect::diameter(metric).max(d_min);
        // Scaled distances: d(u, v) / d_min ∈ {0} ∪ [1, Δ].
        let scale = d_min;
        let delta = diameter / scale;
        // Number of levels: 2^levels ≥ Δ.
        let levels = delta.log2().ceil().max(1.0) as u32 + 1;

        let mut permutation: Vec<NodeId> = (0..n).collect();
        permutation.shuffle(rng);
        // Rank in the permutation: lower rank wins cluster-centre assignment.
        let mut rank = vec![0usize; n];
        for (r, &v) in permutation.iter().enumerate() {
            rank[v] = r;
        }
        let beta: f64 = rng.gen_range(1.0..2.0);

        // Hierarchical decomposition. `clusters[level]` is the partition at
        // that level; level `levels` is the single root cluster, level 0 the
        // finest partition (radius < min distance, so clusters only contain
        // coincident nodes).
        let mut cluster_levels: Vec<Vec<Vec<NodeId>>> = Vec::with_capacity(levels as usize + 1);
        cluster_levels.push(vec![(0..n).collect()]);
        for level in (0..levels).rev() {
            let radius = beta * 2.0_f64.powi(level as i32 - 1);
            let parents = cluster_levels
                .last()
                .expect("at least the root level exists");
            let mut children: Vec<Vec<NodeId>> = Vec::new();
            for parent in parents {
                // Assign every node of the parent cluster to the lowest-rank
                // node (over the whole metric) within the scaled radius.
                let mut groups: Vec<(usize, Vec<NodeId>)> = Vec::new();
                for &u in parent {
                    let center = (0..n)
                        .filter(|&c| metric.distance(u, c) / scale <= radius)
                        .min_by_key(|&c| rank[c])
                        .expect("infallible: distance(u, u) = 0 <= radius, so the filter keeps u");
                    match groups.iter_mut().find(|(c, _)| *c == rank[center]) {
                        Some((_, members)) => members.push(u),
                        None => groups.push((rank[center], vec![u])),
                    }
                }
                for (_, members) in groups {
                    children.push(members);
                }
            }
            cluster_levels.push(children);
        }
        // cluster_levels[0] = root level (level `levels`), last = level 0.

        // Build the HST: one tree vertex per cluster, plus the original nodes
        // are identified with (a representative vertex of) their level-0
        // cluster.
        let total_clusters: usize = cluster_levels.iter().map(|l| l.len()).sum();
        let mut tree = WeightedTree::new(total_clusters);
        // Vertex ids per level, parallel to cluster_levels.
        let mut vertex_ids: Vec<Vec<usize>> = Vec::with_capacity(cluster_levels.len());
        let mut next_id = 0usize;
        for level_clusters in &cluster_levels {
            let ids: Vec<usize> = (0..level_clusters.len()).map(|i| next_id + i).collect();
            next_id += level_clusters.len();
            vertex_ids.push(ids);
        }
        // Connect each cluster to its parent: the parent of a cluster at
        // depth d+1 is the unique cluster at depth d containing its nodes.
        for depth in 1..cluster_levels.len() {
            // Tree level corresponding to this depth (depth 0 = level `levels`).
            let level = levels as i32 - depth as i32;
            // Edge weight 2^(level+1) in scaled units.
            let weight = scale * 2.0_f64.powi(level + 1);
            for (ci, cluster) in cluster_levels[depth].iter().enumerate() {
                let representative = cluster[0];
                let parent_index = cluster_levels[depth - 1]
                    .iter()
                    .position(|p| p.contains(&representative))
                    .expect(
                        "infallible: each level refines the previous one, so the \
                         representative's parent cluster exists",
                    );
                tree.add_edge(
                    vertex_ids[depth][ci],
                    vertex_ids[depth - 1][parent_index],
                    weight,
                )
                .expect("edge endpoints are valid and weights positive");
            }
        }

        // Map original nodes to their level-0 cluster vertex.
        let mut leaf_of = vec![0usize; n];
        let last_depth = cluster_levels.len() - 1;
        for (ci, cluster) in cluster_levels[last_depth].iter().enumerate() {
            for &u in cluster {
                leaf_of[u] = vertex_ids[last_depth][ci];
            }
        }

        let embedded = embedded_distances(&tree, &leaf_of);
        Self {
            tree,
            leaf_of,
            embedded,
        }
    }

    /// The underlying host tree (over auxiliary vertices).
    pub fn tree(&self) -> &WeightedTree {
        &self.tree
    }

    /// The tree vertex hosting original node `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn leaf_of(&self, u: NodeId) -> NodeId {
        self.leaf_of[u]
    }

    /// Tree distance between two original nodes.
    ///
    /// # Panics
    ///
    /// Panics if `u` or `v` is out of range.
    pub fn distance(&self, u: NodeId, v: NodeId) -> f64 {
        self.embedded.distance(u, v)
    }

    /// The embedded metric (tree distances between original nodes) as a
    /// matrix.
    pub fn as_matrix(&self) -> &DistanceMatrix {
        &self.embedded
    }

    /// The worst-case stretch of distances involving `v`:
    /// `max_u d_T(u, v) / d(u, v)` over nodes `u` at positive distance.
    ///
    /// Returns 1.0 when no such node exists.
    pub fn max_stretch_at<M: MetricSpace>(&self, metric: &M, v: NodeId) -> f64 {
        let n = metric.len();
        let mut worst: f64 = 1.0;
        for u in 0..n {
            let d = metric.distance(u, v);
            if u != v && d > 0.0 {
                worst = worst.max(self.distance(u, v) / d);
            }
        }
        worst
    }
}

impl MetricSpace for TreeEmbedding {
    fn len(&self) -> usize {
        self.leaf_of.len()
    }

    fn distance(&self, u: NodeId, v: NodeId) -> f64 {
        TreeEmbedding::distance(self, u, v)
    }
}

fn embedded_distances(tree: &WeightedTree, leaf_of: &[NodeId]) -> DistanceMatrix {
    let n = leaf_of.len();
    let mut rows = vec![vec![0.0; n]; n];
    for u in 0..n {
        let from_u = tree.distances_from(leaf_of[u]);
        for v in 0..n {
            rows[u][v] = if leaf_of[u] == leaf_of[v] {
                0.0
            } else {
                from_u[leaf_of[v]]
            };
        }
    }
    DistanceMatrix::from_rows_unchecked(rows)
}

/// Configuration for building a [`DominatingTreeFamily`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EmbeddingConfig {
    /// Number of trees to sample; `None` selects `⌈4 · log2(n + 1)⌉`.
    pub num_trees: Option<usize>,
    /// Multiplier `c` of the stretch threshold `c · log2(n + 1)` that defines
    /// core membership.
    pub stretch_multiplier: f64,
    /// Fraction of trees in which every node must be a core node (Lemma 6
    /// demands 9/10). The builder relaxes the stretch threshold until this
    /// holds.
    pub core_fraction: f64,
}

impl Default for EmbeddingConfig {
    fn default() -> Self {
        Self {
            num_trees: None,
            stretch_multiplier: 4.0,
            core_fraction: 0.9,
        }
    }
}

/// A family of dominating tree embeddings with per-tree cores — the object
/// promised by Lemma 6.
///
/// Every tree dominates the original metric. For every original node, at
/// least a [`EmbeddingConfig::core_fraction`] fraction of the trees contains
/// the node in its core, i.e. stretches all distances involving the node by
/// at most [`DominatingTreeFamily::stretch_threshold`].
#[derive(Debug, Clone)]
pub struct DominatingTreeFamily {
    trees: Vec<TreeEmbedding>,
    cores: Vec<Vec<bool>>,
    stretch_threshold: f64,
}

impl DominatingTreeFamily {
    /// Samples a dominating tree family for `metric`.
    ///
    /// The number of trees and the initial stretch threshold come from
    /// `config`; the threshold is doubled (finitely many times) until every
    /// node is a core node in the required fraction of trees, so the returned
    /// family always satisfies the Lemma 6 interface.
    pub fn build<M: MetricSpace, R: Rng + ?Sized>(
        metric: &M,
        config: EmbeddingConfig,
        rng: &mut R,
    ) -> Self {
        let n = metric.len();
        let r = config.num_trees.unwrap_or_else(|| {
            let suggested = (4.0 * ((n + 1) as f64).log2()).ceil() as usize;
            suggested.max(1)
        });
        let trees: Vec<TreeEmbedding> = (0..r).map(|_| TreeEmbedding::frt(metric, rng)).collect();

        let mut threshold = (config.stretch_multiplier * ((n + 1) as f64).log2()).max(1.0);
        let stretches: Vec<Vec<f64>> = trees
            .iter()
            .map(|t| (0..n).map(|v| t.max_stretch_at(metric, v)).collect())
            .collect();
        loop {
            let cores: Vec<Vec<bool>> = stretches
                .iter()
                .map(|s| s.iter().map(|&x| x <= threshold).collect())
                .collect();
            let ok = (0..n).all(|v| {
                let hits = cores.iter().filter(|c| c[v]).count();
                (hits as f64) >= config.core_fraction * (r as f64) - 1e-9
            });
            if ok || n == 0 {
                return Self {
                    trees,
                    cores,
                    stretch_threshold: threshold,
                };
            }
            threshold *= 2.0;
        }
    }

    /// Number of trees in the family.
    pub fn num_trees(&self) -> usize {
        self.trees.len()
    }

    /// The `i`-th tree embedding.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn tree(&self, i: usize) -> &TreeEmbedding {
        &self.trees[i]
    }

    /// All tree embeddings.
    pub fn trees(&self) -> &[TreeEmbedding] {
        &self.trees
    }

    /// Core membership of original nodes in tree `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn core(&self, i: usize) -> &[bool] {
        &self.cores[i]
    }

    /// The stretch threshold that defines core membership.
    pub fn stretch_threshold(&self) -> f64 {
        self.stretch_threshold
    }

    /// Fraction of trees whose core contains `node`.
    pub fn core_fraction_of(&self, node: NodeId) -> f64 {
        if self.trees.is_empty() {
            return 1.0;
        }
        let hits = self.cores.iter().filter(|c| c[node]).count();
        hits as f64 / self.trees.len() as f64
    }

    /// The tree whose core covers the largest part of `subset`, together with
    /// the covered sub-subset (Proposition 7 of the paper: some tree's core
    /// contains at least a 9/10 fraction of any node set).
    ///
    /// Returns `None` if the family is empty.
    pub fn best_tree_for(&self, subset: &[NodeId]) -> Option<(usize, Vec<NodeId>)> {
        (0..self.trees.len())
            .map(|i| {
                let covered: Vec<NodeId> = subset
                    .iter()
                    .copied()
                    .filter(|&v| self.cores[i][v])
                    .collect();
                (i, covered)
            })
            .max_by_key(|(_, covered)| covered.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::Point2;
    use crate::space::{EuclideanSpace, LineMetric};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn sample_plane(n: usize, seed: u64) -> EuclideanSpace<2> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let points: Vec<Point2> = (0..n)
            .map(|_| Point2::xy(rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0)))
            .collect();
        EuclideanSpace::from_points(points)
    }

    #[test]
    fn frt_dominates_the_metric() {
        let metric = sample_plane(20, 1);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        for _ in 0..3 {
            let emb = TreeEmbedding::frt(&metric, &mut rng);
            for u in 0..metric.len() {
                for v in 0..metric.len() {
                    assert!(
                        emb.distance(u, v) + 1e-6 >= metric.distance(u, v),
                        "tree distance must dominate: d_T({u},{v})={} < d={}",
                        emb.distance(u, v),
                        metric.distance(u, v)
                    );
                }
            }
        }
    }

    #[test]
    fn frt_distance_to_self_is_zero_and_symmetric() {
        let metric = sample_plane(12, 3);
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let emb = TreeEmbedding::frt(&metric, &mut rng);
        for u in 0..metric.len() {
            assert_eq!(emb.distance(u, u), 0.0);
            for v in 0..metric.len() {
                assert!((emb.distance(u, v) - emb.distance(v, u)).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn frt_host_is_a_tree() {
        let metric = sample_plane(15, 5);
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let emb = TreeEmbedding::frt(&metric, &mut rng);
        assert!(emb.tree().is_tree());
        assert_eq!(emb.len(), 15);
    }

    #[test]
    fn frt_handles_tiny_metrics() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let empty: EuclideanSpace<2> = EuclideanSpace::default();
        let emb = TreeEmbedding::frt(&empty, &mut rng);
        assert_eq!(emb.len(), 0);

        let single = EuclideanSpace::from_points(vec![Point2::xy(1.0, 1.0)]);
        let emb = TreeEmbedding::frt(&single, &mut rng);
        assert_eq!(emb.len(), 1);
        assert_eq!(emb.distance(0, 0), 0.0);

        let pair = LineMetric::new(vec![0.0, 3.0]);
        let emb = TreeEmbedding::frt(&pair, &mut rng);
        assert!(emb.distance(0, 1) >= 3.0);
    }

    #[test]
    fn frt_keeps_coincident_points_at_distance_zero() {
        let metric = LineMetric::new(vec![1.0, 1.0, 5.0]);
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let emb = TreeEmbedding::frt(&metric, &mut rng);
        assert_eq!(emb.distance(0, 1), 0.0);
        assert!(emb.distance(0, 2) >= 4.0);
    }

    #[test]
    fn stretch_is_bounded_for_small_instances() {
        // Not a theorem for a single sample, but with a fixed seed the value is
        // deterministic; this guards against gross construction errors.
        let metric = sample_plane(16, 11);
        let mut rng = ChaCha8Rng::seed_from_u64(12);
        let emb = TreeEmbedding::frt(&metric, &mut rng);
        for v in 0..metric.len() {
            assert!(emb.max_stretch_at(&metric, v) < 2_000.0);
        }
    }

    #[test]
    fn family_covers_every_node_in_required_fraction() {
        let metric = sample_plane(24, 21);
        let mut rng = ChaCha8Rng::seed_from_u64(22);
        let family = DominatingTreeFamily::build(&metric, EmbeddingConfig::default(), &mut rng);
        assert!(family.num_trees() >= 1);
        for v in 0..metric.len() {
            assert!(
                family.core_fraction_of(v) >= 0.9 - 1e-9,
                "node {v} core fraction {}",
                family.core_fraction_of(v)
            );
        }
    }

    #[test]
    fn family_trees_dominate() {
        let metric = sample_plane(10, 31);
        let mut rng = ChaCha8Rng::seed_from_u64(32);
        let family = DominatingTreeFamily::build(
            &metric,
            EmbeddingConfig {
                num_trees: Some(4),
                ..EmbeddingConfig::default()
            },
            &mut rng,
        );
        assert_eq!(family.num_trees(), 4);
        for t in family.trees() {
            for u in 0..metric.len() {
                for v in 0..metric.len() {
                    assert!(t.distance(u, v) + 1e-6 >= metric.distance(u, v));
                }
            }
        }
    }

    #[test]
    fn best_tree_covers_most_of_a_subset() {
        let metric = sample_plane(18, 41);
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let family = DominatingTreeFamily::build(&metric, EmbeddingConfig::default(), &mut rng);
        let subset: Vec<usize> = (0..metric.len()).step_by(2).collect();
        let (i, covered) = family.best_tree_for(&subset).unwrap();
        assert!(i < family.num_trees());
        // Averaging argument: some tree covers at least a core_fraction share.
        assert!(covered.len() as f64 >= 0.9 * subset.len() as f64 - 1.0);
        // Covered nodes are indeed core nodes of that tree.
        assert!(covered.iter().all(|&v| family.core(i)[v]));
    }

    #[test]
    fn cores_respect_stretch_threshold() {
        let metric = sample_plane(14, 51);
        let mut rng = ChaCha8Rng::seed_from_u64(52);
        let family = DominatingTreeFamily::build(&metric, EmbeddingConfig::default(), &mut rng);
        for (i, tree) in family.trees().iter().enumerate() {
            for v in 0..metric.len() {
                if family.core(i)[v] {
                    assert!(tree.max_stretch_at(&metric, v) <= family.stretch_threshold() + 1e-9);
                }
            }
        }
    }

    #[test]
    fn embedding_is_itself_a_metric_space() {
        let metric = sample_plane(9, 61);
        let mut rng = ChaCha8Rng::seed_from_u64(62);
        let emb = TreeEmbedding::frt(&metric, &mut rng);
        // Tree metrics satisfy the triangle inequality.
        assert!(emb.validate().is_ok());
    }
}

//! Fixed-dimension Euclidean points.
//!
//! Points are the raw material of the Euclidean metric spaces used by the
//! instance generators and by most experiments. The dimension is a const
//! generic so that 1-, 2- and 3-dimensional deployments share one code path.

use serde::de::{Error as DeError, SeqAccess, Visitor};
use serde::ser::SerializeSeq;
use serde::{Deserialize, Deserializer, Serialize, Serializer};
use std::fmt;
use std::marker::PhantomData;
use std::ops::{Add, Index, Mul, Sub};

/// A point in `D`-dimensional Euclidean space.
///
/// # Example
///
/// ```
/// use oblisched_metric::Point2;
///
/// let a = Point2::new([0.0, 0.0]);
/// let b = Point2::new([3.0, 4.0]);
/// assert_eq!(a.distance(&b), 5.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point<const D: usize> {
    coords: [f64; D],
}

// Serde's derive does not support const-generic arrays, so (de)serialize the
// coordinates as a sequence of length `D`.
impl<const D: usize> Serialize for Point<D> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut seq = serializer.serialize_seq(Some(D))?;
        for c in &self.coords {
            seq.serialize_element(c)?;
        }
        seq.end()
    }
}

impl<'de, const D: usize> Deserialize<'de> for Point<D> {
    fn deserialize<De: Deserializer<'de>>(deserializer: De) -> Result<Self, De::Error> {
        struct CoordVisitor<const D: usize>(PhantomData<[(); D]>);

        impl<'de, const D: usize> Visitor<'de> for CoordVisitor<D> {
            type Value = Point<D>;

            fn expecting(&self, formatter: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(formatter, "a sequence of {D} floating point coordinates")
            }

            fn visit_seq<A: SeqAccess<'de>>(self, mut seq: A) -> Result<Self::Value, A::Error> {
                let mut coords = [0.0; D];
                for (i, c) in coords.iter_mut().enumerate() {
                    *c = seq
                        .next_element()?
                        .ok_or_else(|| A::Error::invalid_length(i, &self))?;
                }
                if seq.next_element::<f64>()?.is_some() {
                    return Err(A::Error::invalid_length(D + 1, &self));
                }
                Ok(Point { coords })
            }
        }

        deserializer.deserialize_seq(CoordVisitor::<D>(PhantomData))
    }
}

/// A point on the real line.
pub type Point1 = Point<1>;
/// A point in the Euclidean plane.
pub type Point2 = Point<2>;
/// A point in three-dimensional Euclidean space.
pub type Point3 = Point<3>;

impl<const D: usize> Point<D> {
    /// Creates a point from its coordinates.
    pub fn new(coords: [f64; D]) -> Self {
        Self { coords }
    }

    /// Returns the origin (all coordinates zero).
    pub fn origin() -> Self {
        Self { coords: [0.0; D] }
    }

    /// Returns the coordinates as a slice.
    pub fn coords(&self) -> &[f64; D] {
        &self.coords
    }

    /// Euclidean distance to another point.
    pub fn distance(&self, other: &Self) -> f64 {
        self.distance_squared(other).sqrt()
    }

    /// Squared Euclidean distance to another point.
    ///
    /// Useful when only comparisons are needed and the square root can be
    /// avoided.
    pub fn distance_squared(&self, other: &Self) -> f64 {
        self.coords
            .iter()
            .zip(other.coords.iter())
            .map(|(a, b)| (a - b) * (a - b))
            .sum()
    }

    /// Euclidean norm of the point seen as a vector.
    pub fn norm(&self) -> f64 {
        self.distance(&Self::origin())
    }

    /// Midpoint between `self` and `other`.
    pub fn midpoint(&self, other: &Self) -> Self {
        let mut coords = [0.0; D];
        for (i, c) in coords.iter_mut().enumerate() {
            *c = (self.coords[i] + other.coords[i]) / 2.0;
        }
        Self { coords }
    }

    /// Returns `true` if every coordinate is finite (not NaN or infinite).
    pub fn is_finite(&self) -> bool {
        self.coords.iter().all(|c| c.is_finite())
    }
}

impl Point1 {
    /// Convenience constructor for a 1-dimensional point.
    pub fn at(x: f64) -> Self {
        Self::new([x])
    }

    /// The single coordinate of a 1-dimensional point.
    pub fn x(&self) -> f64 {
        self.coords[0]
    }
}

impl Point2 {
    /// Convenience constructor for a 2-dimensional point.
    pub fn xy(x: f64, y: f64) -> Self {
        Self::new([x, y])
    }

    /// The first coordinate.
    pub fn x(&self) -> f64 {
        self.coords[0]
    }

    /// The second coordinate.
    pub fn y(&self) -> f64 {
        self.coords[1]
    }
}

impl<const D: usize> Default for Point<D> {
    fn default() -> Self {
        Self::origin()
    }
}

impl<const D: usize> Index<usize> for Point<D> {
    type Output = f64;

    fn index(&self, index: usize) -> &f64 {
        &self.coords[index]
    }
}

impl<const D: usize> Add for Point<D> {
    type Output = Point<D>;

    fn add(self, rhs: Point<D>) -> Point<D> {
        let mut coords = [0.0; D];
        for (i, c) in coords.iter_mut().enumerate() {
            *c = self.coords[i] + rhs.coords[i];
        }
        Point { coords }
    }
}

impl<const D: usize> Sub for Point<D> {
    type Output = Point<D>;

    fn sub(self, rhs: Point<D>) -> Point<D> {
        let mut coords = [0.0; D];
        for (i, c) in coords.iter_mut().enumerate() {
            *c = self.coords[i] - rhs.coords[i];
        }
        Point { coords }
    }
}

impl<const D: usize> Mul<f64> for Point<D> {
    type Output = Point<D>;

    fn mul(self, rhs: f64) -> Point<D> {
        let mut coords = [0.0; D];
        for (i, c) in coords.iter_mut().enumerate() {
            *c = self.coords[i] * rhs;
        }
        Point { coords }
    }
}

impl<const D: usize> From<[f64; D]> for Point<D> {
    fn from(coords: [f64; D]) -> Self {
        Self::new(coords)
    }
}

impl<const D: usize> fmt::Display for Point<D> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.coords.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_euclidean() {
        let a = Point2::xy(0.0, 0.0);
        let b = Point2::xy(3.0, 4.0);
        assert_eq!(a.distance(&b), 5.0);
        assert_eq!(a.distance_squared(&b), 25.0);
    }

    #[test]
    fn distance_is_symmetric() {
        let a = Point3::new([1.0, 2.0, 3.0]);
        let b = Point3::new([-4.0, 0.5, 9.0]);
        assert_eq!(a.distance(&b), b.distance(&a));
    }

    #[test]
    fn distance_to_self_is_zero() {
        let a = Point2::xy(1.25, -7.5);
        assert_eq!(a.distance(&a), 0.0);
    }

    #[test]
    fn one_dimensional_accessors() {
        let p = Point1::at(-3.5);
        assert_eq!(p.x(), -3.5);
        assert_eq!(p.distance(&Point1::at(1.5)), 5.0);
    }

    #[test]
    fn two_dimensional_accessors() {
        let p = Point2::xy(2.0, -1.0);
        assert_eq!(p.x(), 2.0);
        assert_eq!(p.y(), -1.0);
        assert_eq!(p[0], 2.0);
        assert_eq!(p[1], -1.0);
    }

    #[test]
    fn arithmetic_operations() {
        let a = Point2::xy(1.0, 2.0);
        let b = Point2::xy(3.0, -4.0);
        assert_eq!(a + b, Point2::xy(4.0, -2.0));
        assert_eq!(b - a, Point2::xy(2.0, -6.0));
        assert_eq!(a * 2.0, Point2::xy(2.0, 4.0));
    }

    #[test]
    fn midpoint_is_between() {
        let a = Point2::xy(0.0, 0.0);
        let b = Point2::xy(2.0, 6.0);
        assert_eq!(a.midpoint(&b), Point2::xy(1.0, 3.0));
    }

    #[test]
    fn norm_of_origin_is_zero() {
        assert_eq!(Point3::origin().norm(), 0.0);
        assert_eq!(Point2::xy(3.0, 4.0).norm(), 5.0);
    }

    #[test]
    fn default_is_origin() {
        assert_eq!(Point2::default(), Point2::origin());
    }

    #[test]
    fn finiteness_detection() {
        assert!(Point2::xy(1.0, 2.0).is_finite());
        assert!(!Point2::xy(f64::NAN, 2.0).is_finite());
        assert!(!Point2::xy(1.0, f64::INFINITY).is_finite());
    }

    #[test]
    fn display_formats_coordinates() {
        let p = Point2::xy(1.0, -2.5);
        assert_eq!(p.to_string(), "(1, -2.5)");
    }

    #[test]
    fn from_array_conversion() {
        let p: Point2 = [1.0, 2.0].into();
        assert_eq!(p, Point2::xy(1.0, 2.0));
    }

    #[test]
    fn serde_round_trip() {
        let p = Point2::xy(0.5, 1.5);
        let json = serde_json_like(&p);
        assert!(json.contains("0.5"));
    }

    // Minimal serialization smoke test without pulling serde_json into the
    // dependency tree: use the `serde` test through the Debug representation.
    fn serde_json_like(p: &Point2) -> String {
        format!("{:?}", p.coords())
    }

    #[test]
    fn triangle_inequality_spot_check() {
        let a = Point2::xy(0.0, 0.0);
        let b = Point2::xy(1.0, 7.0);
        let c = Point2::xy(-5.0, 2.0);
        assert!(a.distance(&c) <= a.distance(&b) + b.distance(&c) + 1e-12);
    }
}

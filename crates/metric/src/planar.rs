//! Metrics whose nodes carry explicit planar coordinates.
//!
//! The spatially-pruned interference backend
//! (`oblisched_sinr::engine::sparse`) and the tile-sharded parallel
//! schedulers need more than distances: they bucket nodes into a uniform
//! grid, which requires actual positions. [`PlanarMetric`] exposes them for
//! the metrics that have any — Euclidean plane deployments and line metrics
//! (embedded on the x-axis). Tree, star and matrix metrics do not implement
//! it; algorithms that need positions simply are not available for them.

use crate::space::{EuclideanSpace, LineMetric};
use crate::{MetricSpace, NodeId};

/// A [`MetricSpace`] whose nodes have explicit coordinates in the plane,
/// consistent with the metric: `distance(u, v)` equals the Euclidean
/// distance between `position(u)` and `position(v)` (up to floating-point
/// rounding — [`LineMetric`] computes `|x_u − x_v|` directly while the
/// planar formula takes `√((x_u − x_v)²)`, which may differ in the last
/// ulp).
///
/// # Example
///
/// ```
/// use oblisched_metric::{LineMetric, PlanarMetric};
///
/// let line = LineMetric::new(vec![0.0, 3.0]);
/// assert_eq!(line.position(1), [3.0, 0.0]);
/// ```
pub trait PlanarMetric: MetricSpace {
    /// The planar coordinates of `node`.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `node` is out of range.
    fn position(&self, node: NodeId) -> [f64; 2];
}

impl PlanarMetric for EuclideanSpace<2> {
    fn position(&self, node: NodeId) -> [f64; 2] {
        *self.point(node).coords()
    }
}

impl PlanarMetric for LineMetric {
    fn position(&self, node: NodeId) -> [f64; 2] {
        [self.coord(node), 0.0]
    }
}

impl<M: PlanarMetric + ?Sized> PlanarMetric for &M {
    fn position(&self, node: NodeId) -> [f64; 2] {
        (**self).position(node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Point2;

    #[test]
    fn euclidean_positions_round_trip() {
        let space = EuclideanSpace::from_points(vec![Point2::xy(1.0, 2.0), Point2::xy(-3.5, 4.0)]);
        assert_eq!(space.position(0), [1.0, 2.0]);
        assert_eq!(space.position(1), [-3.5, 4.0]);
    }

    #[test]
    fn line_positions_sit_on_the_x_axis() {
        let line = LineMetric::new(vec![-2.0, 7.5]);
        assert_eq!(line.position(0), [-2.0, 0.0]);
        assert_eq!(line.position(1), [7.5, 0.0]);
        // Positions are consistent with the metric.
        let [ax, _] = line.position(0);
        let [bx, _] = line.position(1);
        assert!((line.distance(0, 1) - (ax - bx).abs()).abs() < 1e-12);
    }

    #[test]
    fn references_forward_positions() {
        let line = LineMetric::new(vec![0.0, 1.0]);
        let by_ref: &LineMetric = &line;
        assert_eq!(by_ref.position(1), [1.0, 0.0]);
    }
}

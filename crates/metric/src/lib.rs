//! Metric-space substrate for the `oblisched` workspace.
//!
//! The interference scheduling problem of Fanghänel, Kesselheim, Räcke and
//! Vöcking (PODC 2009) is posed over an arbitrary metric space: communication
//! requests are pairs of points, the path loss between two points is a power
//! of their distance, and the analysis of the square-root power assignment
//! proceeds by reducing general metrics to **tree metrics** and tree metrics
//! to **star metrics**.
//!
//! This crate provides every metric-space ingredient that reduction needs:
//!
//! * [`Point`] — fixed-dimension Euclidean points ([`Point1`], [`Point2`], …),
//! * [`MetricSpace`] — the trait all finite metrics implement,
//! * [`EuclideanSpace`], [`LineMetric`] — point-set metrics,
//! * [`DistanceMatrix`] — validated explicit metrics,
//! * [`WeightedTree`], [`TreeMetric`] — edge-weighted trees, their shortest
//!   path metrics and centroid decompositions (used by Lemma 9 of the paper),
//! * [`StarMetric`] — stars around a centre (the object analysed in §4),
//! * [`embedding`] — FRT-style probabilistic tree embeddings and dominating
//!   tree families with *cores* (the Lemma 6 substrate).
//!
//! # Example
//!
//! ```
//! use oblisched_metric::{EuclideanSpace, MetricSpace, Point2};
//!
//! let space = EuclideanSpace::from_points(vec![
//!     Point2::new([0.0, 0.0]),
//!     Point2::new([3.0, 4.0]),
//! ]);
//! assert_eq!(space.distance(0, 1), 5.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aspect;
pub mod embedding;
pub mod error;
pub mod matrix;
pub mod planar;
pub mod point;
pub mod space;
pub mod star;
pub mod tree;

pub use aspect::{aspect_ratio, diameter, min_positive_distance};
pub use embedding::{DominatingTreeFamily, EmbeddingConfig, TreeEmbedding};
pub use error::MetricError;
pub use matrix::DistanceMatrix;
pub use planar::PlanarMetric;
pub use point::{Point, Point1, Point2, Point3};
pub use space::{EuclideanSpace, LineMetric, MetricSpace, ScaledMetric, SubMetric};
pub use star::StarMetric;
pub use tree::{TreeMetric, WeightedTree};

/// Identifier of a node (point) within a finite metric space.
///
/// Nodes of an `n`-point metric are always `0..n`; request end-points, tree
/// vertices and star leaves all use the same index space.
pub type NodeId = usize;

//! Error types for metric construction and validation.

use std::fmt;

/// Errors produced when constructing or validating a metric.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricError {
    /// A distance value was negative, NaN or infinite.
    InvalidDistance {
        /// First node of the offending pair.
        u: usize,
        /// Second node of the offending pair.
        v: usize,
        /// The offending value.
        value: f64,
    },
    /// The matrix is not symmetric: `d(u, v) != d(v, u)`.
    Asymmetric {
        /// First node of the offending pair.
        u: usize,
        /// Second node of the offending pair.
        v: usize,
    },
    /// A diagonal entry `d(u, u)` is non-zero.
    NonZeroDiagonal {
        /// The offending node.
        u: usize,
    },
    /// The triangle inequality `d(u, w) <= d(u, v) + d(v, w)` is violated.
    TriangleViolation {
        /// First node of the offending triple.
        u: usize,
        /// Middle node of the offending triple.
        v: usize,
        /// Last node of the offending triple.
        w: usize,
    },
    /// A node index was out of range for the metric.
    NodeOutOfRange {
        /// The offending node index.
        node: usize,
        /// Number of nodes in the metric.
        len: usize,
    },
    /// The provided data had an inconsistent shape (e.g. a non-square matrix).
    ShapeMismatch {
        /// Expected number of entries.
        expected: usize,
        /// Number of entries actually provided.
        actual: usize,
    },
    /// A tree operation was attempted on a disconnected or cyclic edge set.
    NotATree {
        /// Human-readable reason.
        reason: String,
    },
}

impl fmt::Display for MetricError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MetricError::InvalidDistance { u, v, value } => {
                write!(f, "invalid distance {value} between nodes {u} and {v}")
            }
            MetricError::Asymmetric { u, v } => {
                write!(f, "distance matrix is asymmetric at pair ({u}, {v})")
            }
            MetricError::NonZeroDiagonal { u } => {
                write!(f, "diagonal entry for node {u} is non-zero")
            }
            MetricError::TriangleViolation { u, v, w } => {
                write!(f, "triangle inequality violated for nodes ({u}, {v}, {w})")
            }
            MetricError::NodeOutOfRange { node, len } => {
                write!(
                    f,
                    "node index {node} out of range for metric with {len} nodes"
                )
            }
            MetricError::ShapeMismatch { expected, actual } => {
                write!(f, "expected {expected} entries, got {actual}")
            }
            MetricError::NotATree { reason } => write!(f, "edge set is not a tree: {reason}"),
        }
    }
}

impl std::error::Error for MetricError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = MetricError::InvalidDistance {
            u: 1,
            v: 2,
            value: f64::NAN,
        };
        assert!(e.to_string().contains("invalid distance"));
        let e = MetricError::Asymmetric { u: 0, v: 3 };
        assert!(e.to_string().contains("asymmetric"));
        let e = MetricError::NonZeroDiagonal { u: 7 };
        assert!(e.to_string().contains("diagonal"));
        let e = MetricError::TriangleViolation { u: 0, v: 1, w: 2 };
        assert!(e.to_string().contains("triangle"));
        let e = MetricError::NodeOutOfRange { node: 9, len: 3 };
        assert!(e.to_string().contains("out of range"));
        let e = MetricError::ShapeMismatch {
            expected: 9,
            actual: 8,
        };
        assert!(e.to_string().contains("expected 9"));
        let e = MetricError::NotATree {
            reason: "cycle".into(),
        };
        assert!(e.to_string().contains("cycle"));
    }

    #[test]
    fn error_trait_is_implemented() {
        fn assert_error<E: std::error::Error + Send + Sync>() {}
        assert_error::<MetricError>();
    }
}

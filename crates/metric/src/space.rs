//! The [`MetricSpace`] trait and point-set metric implementations.

use crate::error::MetricError;
use crate::matrix::DistanceMatrix;
use crate::point::Point;
use crate::NodeId;
use serde::{Deserialize, Serialize};

/// A finite metric space over nodes `0..len()`.
///
/// All scheduling algorithms in the workspace are generic over this trait so
/// that the same code runs on Euclidean deployments, explicit distance
/// matrices, tree metrics and star metrics.
///
/// Implementations must guarantee the metric axioms for nodes in range:
/// non-negativity, `distance(u, u) == 0`, symmetry, and the triangle
/// inequality (up to floating-point rounding).
///
/// # Example
///
/// ```
/// use oblisched_metric::{LineMetric, MetricSpace};
///
/// let line = LineMetric::new(vec![0.0, 1.0, 4.0]);
/// assert_eq!(line.distance(0, 2), 4.0);
/// assert_eq!(line.len(), 3);
/// ```
pub trait MetricSpace {
    /// Number of nodes in the metric.
    fn len(&self) -> usize;

    /// Returns `true` if the metric has no nodes.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Distance between two nodes.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `u` or `v` is out of range.
    fn distance(&self, u: NodeId, v: NodeId) -> f64;

    /// Materialises the metric into an explicit [`DistanceMatrix`].
    ///
    /// This is `O(n^2)` space and is used when repeated distance queries make
    /// the matrix representation cheaper than recomputation.
    fn to_matrix(&self) -> DistanceMatrix {
        DistanceMatrix::from_fn(self.len(), |u, v| self.distance(u, v))
            .expect("a well-formed metric always yields a valid matrix")
    }

    /// Validates the metric axioms exhaustively in `O(n^3)`.
    ///
    /// # Errors
    ///
    /// Returns the first violation found (invalid value, asymmetry, non-zero
    /// diagonal, or a triangle-inequality violation).
    fn validate(&self) -> Result<(), MetricError> {
        let n = self.len();
        let tol = 1e-9;
        for u in 0..n {
            if self.distance(u, u).abs() > tol {
                return Err(MetricError::NonZeroDiagonal { u });
            }
            for v in 0..n {
                let d = self.distance(u, v);
                if !d.is_finite() || d < 0.0 {
                    return Err(MetricError::InvalidDistance { u, v, value: d });
                }
                if (d - self.distance(v, u)).abs() > tol * (1.0 + d.abs()) {
                    return Err(MetricError::Asymmetric { u, v });
                }
            }
        }
        for u in 0..n {
            for v in 0..n {
                for w in 0..n {
                    let direct = self.distance(u, w);
                    let via = self.distance(u, v) + self.distance(v, w);
                    if direct > via + tol * (1.0 + via.abs()) {
                        return Err(MetricError::TriangleViolation { u, v, w });
                    }
                }
            }
        }
        Ok(())
    }
}

impl<M: MetricSpace + ?Sized> MetricSpace for &M {
    fn len(&self) -> usize {
        (**self).len()
    }

    fn distance(&self, u: NodeId, v: NodeId) -> f64 {
        (**self).distance(u, v)
    }
}

impl<M: MetricSpace + ?Sized> MetricSpace for Box<M> {
    fn len(&self) -> usize {
        (**self).len()
    }

    fn distance(&self, u: NodeId, v: NodeId) -> f64 {
        (**self).distance(u, v)
    }
}

/// A Euclidean metric over an explicit list of `D`-dimensional points.
///
/// # Example
///
/// ```
/// use oblisched_metric::{EuclideanSpace, MetricSpace, Point2};
///
/// let space = EuclideanSpace::from_points(vec![Point2::xy(0.0, 0.0), Point2::xy(0.0, 2.0)]);
/// assert_eq!(space.distance(0, 1), 2.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EuclideanSpace<const D: usize> {
    points: Vec<Point<D>>,
}

impl<const D: usize> EuclideanSpace<D> {
    /// Creates a space from a list of points.
    pub fn from_points(points: Vec<Point<D>>) -> Self {
        Self { points }
    }

    /// Returns the underlying points.
    pub fn points(&self) -> &[Point<D>] {
        &self.points
    }

    /// Adds a point, returning its node id.
    pub fn push(&mut self, p: Point<D>) -> NodeId {
        self.points.push(p);
        self.points.len() - 1
    }

    /// Returns the point for a node.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn point(&self, node: NodeId) -> Point<D> {
        self.points[node]
    }
}

impl<const D: usize> Default for EuclideanSpace<D> {
    fn default() -> Self {
        Self { points: Vec::new() }
    }
}

impl<const D: usize> MetricSpace for EuclideanSpace<D> {
    fn len(&self) -> usize {
        self.points.len()
    }

    fn distance(&self, u: NodeId, v: NodeId) -> f64 {
        self.points[u].distance(&self.points[v])
    }
}

impl<const D: usize> FromIterator<Point<D>> for EuclideanSpace<D> {
    fn from_iter<I: IntoIterator<Item = Point<D>>>(iter: I) -> Self {
        Self {
            points: iter.into_iter().collect(),
        }
    }
}

/// A one-dimensional metric given by coordinates on the real line.
///
/// The paper's lower-bound constructions (Theorem 1, the nested chain of
/// §1.2) all live on the line, so this metric gets a dedicated, allocation
/// friendly representation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct LineMetric {
    coords: Vec<f64>,
}

impl LineMetric {
    /// Creates a line metric from coordinates.
    pub fn new(coords: Vec<f64>) -> Self {
        Self { coords }
    }

    /// The coordinate of a node.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn coord(&self, node: NodeId) -> f64 {
        self.coords[node]
    }

    /// Returns all coordinates.
    pub fn coords(&self) -> &[f64] {
        &self.coords
    }

    /// Adds a coordinate, returning its node id.
    pub fn push(&mut self, x: f64) -> NodeId {
        self.coords.push(x);
        self.coords.len() - 1
    }
}

impl MetricSpace for LineMetric {
    fn len(&self) -> usize {
        self.coords.len()
    }

    fn distance(&self, u: NodeId, v: NodeId) -> f64 {
        (self.coords[u] - self.coords[v]).abs()
    }
}

impl FromIterator<f64> for LineMetric {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        Self {
            coords: iter.into_iter().collect(),
        }
    }
}

/// A metric with all distances multiplied by a positive constant.
///
/// Scaling distances is used by the coloring algorithm of §5, which
/// normalises each distance class so requests have length one.
#[derive(Debug, Clone)]
pub struct ScaledMetric<M> {
    inner: M,
    factor: f64,
}

impl<M: MetricSpace> ScaledMetric<M> {
    /// Wraps `inner`, multiplying every distance by `factor`.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not a finite positive number.
    pub fn new(inner: M, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor > 0.0,
            "scale factor must be positive and finite"
        );
        Self { inner, factor }
    }

    /// The scale factor applied to every distance.
    pub fn factor(&self) -> f64 {
        self.factor
    }

    /// Returns the wrapped metric.
    pub fn into_inner(self) -> M {
        self.inner
    }
}

impl<M: MetricSpace> MetricSpace for ScaledMetric<M> {
    fn len(&self) -> usize {
        self.inner.len()
    }

    fn distance(&self, u: NodeId, v: NodeId) -> f64 {
        self.factor * self.inner.distance(u, v)
    }
}

/// A metric induced on a subset of the nodes of another metric.
///
/// Node `i` of the sub-metric corresponds to node `selection[i]` of the
/// underlying metric. Used when the decomposition pipeline restricts
/// attention to the *core* nodes of a tree (Lemma 6) or to one component of a
/// centroid split (Lemma 9).
#[derive(Debug, Clone)]
pub struct SubMetric<M> {
    inner: M,
    selection: Vec<NodeId>,
}

impl<M: MetricSpace> SubMetric<M> {
    /// Restricts `inner` to the nodes in `selection`.
    ///
    /// # Errors
    ///
    /// Returns [`MetricError::NodeOutOfRange`] if any selected node does not
    /// exist in the underlying metric.
    pub fn new(inner: M, selection: Vec<NodeId>) -> Result<Self, MetricError> {
        let len = inner.len();
        if let Some(&node) = selection.iter().find(|&&s| s >= len) {
            return Err(MetricError::NodeOutOfRange { node, len });
        }
        Ok(Self { inner, selection })
    }

    /// The underlying node id of sub-metric node `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn original_node(&self, i: NodeId) -> NodeId {
        self.selection[i]
    }

    /// The selected node ids, in sub-metric order.
    pub fn selection(&self) -> &[NodeId] {
        &self.selection
    }
}

impl<M: MetricSpace> MetricSpace for SubMetric<M> {
    fn len(&self) -> usize {
        self.selection.len()
    }

    fn distance(&self, u: NodeId, v: NodeId) -> f64 {
        self.inner.distance(self.selection[u], self.selection[v])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::Point2;

    fn small_plane() -> EuclideanSpace<2> {
        EuclideanSpace::from_points(vec![
            Point2::xy(0.0, 0.0),
            Point2::xy(1.0, 0.0),
            Point2::xy(0.0, 1.0),
            Point2::xy(3.0, 4.0),
        ])
    }

    #[test]
    fn euclidean_distances() {
        let s = small_plane();
        assert_eq!(s.len(), 4);
        assert!(!s.is_empty());
        assert_eq!(s.distance(0, 3), 5.0);
        assert_eq!(s.distance(0, 1), 1.0);
    }

    #[test]
    fn euclidean_validates() {
        assert!(small_plane().validate().is_ok());
    }

    #[test]
    fn euclidean_push_and_point() {
        let mut s = EuclideanSpace::default();
        assert!(s.is_empty());
        let id = s.push(Point2::xy(1.0, 1.0));
        assert_eq!(id, 0);
        assert_eq!(s.point(0), Point2::xy(1.0, 1.0));
        assert_eq!(s.points().len(), 1);
    }

    #[test]
    fn euclidean_from_iterator() {
        let s: EuclideanSpace<2> = vec![Point2::xy(0.0, 0.0), Point2::xy(2.0, 0.0)]
            .into_iter()
            .collect();
        assert_eq!(s.distance(0, 1), 2.0);
    }

    #[test]
    fn line_metric_distances() {
        let line = LineMetric::new(vec![-2.0, 0.0, 5.0]);
        assert_eq!(line.distance(0, 2), 7.0);
        assert_eq!(line.distance(2, 0), 7.0);
        assert_eq!(line.coord(1), 0.0);
        assert_eq!(line.coords(), &[-2.0, 0.0, 5.0]);
    }

    #[test]
    fn line_metric_push_and_collect() {
        let mut line = LineMetric::default();
        line.push(1.0);
        let id = line.push(4.0);
        assert_eq!(id, 1);
        let collected: LineMetric = vec![1.0, 4.0].into_iter().collect();
        assert_eq!(collected, line);
    }

    #[test]
    fn line_metric_validates() {
        let line = LineMetric::new(vec![0.0, 1.0, 10.0, -4.0]);
        assert!(line.validate().is_ok());
    }

    #[test]
    fn to_matrix_round_trips_distances() {
        let s = small_plane();
        let m = s.to_matrix();
        for u in 0..s.len() {
            for v in 0..s.len() {
                assert!((m.distance(u, v) - s.distance(u, v)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn scaled_metric_multiplies_distances() {
        let s = ScaledMetric::new(small_plane(), 2.5);
        assert_eq!(s.factor(), 2.5);
        assert_eq!(s.distance(0, 1), 2.5);
        assert_eq!(s.len(), 4);
        let inner = s.into_inner();
        assert_eq!(inner.distance(0, 1), 1.0);
    }

    #[test]
    #[should_panic(expected = "scale factor")]
    fn scaled_metric_rejects_nonpositive_factor() {
        let _ = ScaledMetric::new(small_plane(), 0.0);
    }

    #[test]
    fn sub_metric_restricts_nodes() {
        let s = SubMetric::new(small_plane(), vec![0, 3]).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.distance(0, 1), 5.0);
        assert_eq!(s.original_node(1), 3);
        assert_eq!(s.selection(), &[0, 3]);
    }

    #[test]
    fn sub_metric_rejects_out_of_range() {
        let err = SubMetric::new(small_plane(), vec![0, 9]).unwrap_err();
        assert_eq!(err, MetricError::NodeOutOfRange { node: 9, len: 4 });
    }

    #[test]
    fn references_and_boxes_are_metrics() {
        let s = small_plane();
        fn diameter_of<M: MetricSpace>(m: M) -> f64 {
            let mut best: f64 = 0.0;
            for u in 0..m.len() {
                for v in 0..m.len() {
                    best = best.max(m.distance(u, v));
                }
            }
            best
        }
        assert_eq!(diameter_of(&s), 5.0);
        let boxed: Box<dyn MetricSpace> = Box::new(s);
        assert_eq!(diameter_of(&boxed), 5.0);
    }

    #[test]
    fn validate_detects_triangle_violation() {
        // An explicit non-metric: d(0,2) much larger than d(0,1)+d(1,2).
        let m = DistanceMatrix::from_rows_unchecked(vec![
            vec![0.0, 1.0, 10.0],
            vec![1.0, 0.0, 1.0],
            vec![10.0, 1.0, 0.0],
        ]);
        assert!(matches!(
            m.validate(),
            Err(MetricError::TriangleViolation { .. })
        ));
    }

    #[test]
    fn empty_space_is_valid() {
        let s: EuclideanSpace<2> = EuclideanSpace::default();
        assert!(s.validate().is_ok());
        assert!(s.is_empty());
    }
}

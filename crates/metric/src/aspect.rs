//! Aspect ratio and related global statistics of a metric.
//!
//! The related-work discussion of the paper (and the follow-up ICALP 2009
//! paper on linear power assignments) measures approximation factors in terms
//! of the *aspect ratio* Δ — the ratio between the largest and smallest
//! positive distance. The experiment harness reports these statistics for
//! every generated instance.

use crate::space::MetricSpace;

/// Largest pairwise distance of the metric (0 for metrics with fewer than two
/// nodes).
pub fn diameter<M: MetricSpace>(metric: &M) -> f64 {
    let n = metric.len();
    let mut best: f64 = 0.0;
    for u in 0..n {
        for v in (u + 1)..n {
            best = best.max(metric.distance(u, v));
        }
    }
    best
}

/// Smallest strictly positive pairwise distance, or `None` if all pairs
/// coincide (or there are fewer than two nodes).
pub fn min_positive_distance<M: MetricSpace>(metric: &M) -> Option<f64> {
    let n = metric.len();
    let mut best: Option<f64> = None;
    for u in 0..n {
        for v in (u + 1)..n {
            let d = metric.distance(u, v);
            if d > 0.0 {
                best = Some(best.map_or(d, |b: f64| b.min(d)));
            }
        }
    }
    best
}

/// Aspect ratio Δ = (maximum distance) / (minimum positive distance).
///
/// Returns `None` when the ratio is undefined (fewer than two distinct
/// points).
pub fn aspect_ratio<M: MetricSpace>(metric: &M) -> Option<f64> {
    let min = min_positive_distance(metric)?;
    Some(diameter(metric) / min)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::LineMetric;

    #[test]
    fn diameter_of_line() {
        let line = LineMetric::new(vec![0.0, 1.0, 10.0]);
        assert_eq!(diameter(&line), 10.0);
    }

    #[test]
    fn min_positive_skips_zero_pairs() {
        let line = LineMetric::new(vec![0.0, 0.0, 3.0]);
        assert_eq!(min_positive_distance(&line), Some(3.0));
    }

    #[test]
    fn aspect_ratio_of_line() {
        let line = LineMetric::new(vec![0.0, 1.0, 10.0]);
        assert_eq!(aspect_ratio(&line), Some(10.0));
    }

    #[test]
    fn degenerate_metrics_have_no_aspect_ratio() {
        let single = LineMetric::new(vec![5.0]);
        assert_eq!(aspect_ratio(&single), None);
        assert_eq!(min_positive_distance(&single), None);
        assert_eq!(diameter(&single), 0.0);

        let coincident = LineMetric::new(vec![2.0, 2.0]);
        assert_eq!(aspect_ratio(&coincident), None);
    }

    #[test]
    fn empty_metric() {
        let empty = LineMetric::new(vec![]);
        assert_eq!(diameter(&empty), 0.0);
        assert_eq!(min_positive_distance(&empty), None);
        assert_eq!(aspect_ratio(&empty), None);
    }
}

//! Explicit, validated distance matrices.

use crate::error::MetricError;
use crate::space::MetricSpace;
use crate::NodeId;
use serde::{Deserialize, Serialize};

/// A symmetric `n × n` distance matrix stored densely.
///
/// This is the "materialised" form of a metric: every other metric in the
/// crate can be converted into a `DistanceMatrix` via
/// [`MetricSpace::to_matrix`]. The checked constructors validate symmetry and
/// the diagonal; full triangle-inequality validation is available through
/// [`MetricSpace::validate`].
///
/// # Example
///
/// ```
/// use oblisched_metric::{DistanceMatrix, MetricSpace};
///
/// let m = DistanceMatrix::from_rows(vec![
///     vec![0.0, 1.0, 2.0],
///     vec![1.0, 0.0, 1.5],
///     vec![2.0, 1.5, 0.0],
/// ])?;
/// assert_eq!(m.distance(0, 2), 2.0);
/// # Ok::<(), oblisched_metric::MetricError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DistanceMatrix {
    n: usize,
    /// Row-major `n * n` entries.
    entries: Vec<f64>,
}

impl DistanceMatrix {
    /// Builds a matrix by evaluating `f(u, v)` for every ordered pair.
    ///
    /// The function is only evaluated for `u <= v`; the matrix is filled in
    /// symmetrically and the diagonal is forced to zero.
    ///
    /// # Errors
    ///
    /// Returns [`MetricError::InvalidDistance`] if `f` produces a negative,
    /// NaN or infinite value.
    pub fn from_fn<F: FnMut(NodeId, NodeId) -> f64>(
        n: usize,
        mut f: F,
    ) -> Result<Self, MetricError> {
        let mut entries = vec![0.0; n * n];
        for u in 0..n {
            for v in (u + 1)..n {
                let d = f(u, v);
                if !d.is_finite() || d < 0.0 {
                    return Err(MetricError::InvalidDistance { u, v, value: d });
                }
                entries[u * n + v] = d;
                entries[v * n + u] = d;
            }
        }
        Ok(Self { n, entries })
    }

    /// Builds a matrix from explicit rows, validating shape, symmetry and the
    /// diagonal.
    ///
    /// # Errors
    ///
    /// * [`MetricError::ShapeMismatch`] if the rows do not form an `n × n`
    ///   square.
    /// * [`MetricError::InvalidDistance`] for negative/NaN/infinite entries.
    /// * [`MetricError::Asymmetric`] if `rows[u][v] != rows[v][u]`.
    /// * [`MetricError::NonZeroDiagonal`] if `rows[u][u] != 0`.
    pub fn from_rows(rows: Vec<Vec<f64>>) -> Result<Self, MetricError> {
        let n = rows.len();
        for row in &rows {
            if row.len() != n {
                return Err(MetricError::ShapeMismatch {
                    expected: n,
                    actual: row.len(),
                });
            }
        }
        let mut entries = vec![0.0; n * n];
        for (u, row) in rows.iter().enumerate() {
            for (v, &d) in row.iter().enumerate() {
                if !d.is_finite() || d < 0.0 {
                    return Err(MetricError::InvalidDistance { u, v, value: d });
                }
                entries[u * n + v] = d;
            }
        }
        for u in 0..n {
            if entries[u * n + u] != 0.0 {
                return Err(MetricError::NonZeroDiagonal { u });
            }
            for v in (u + 1)..n {
                if (entries[u * n + v] - entries[v * n + u]).abs() > 1e-9 {
                    return Err(MetricError::Asymmetric { u, v });
                }
            }
        }
        Ok(Self { n, entries })
    }

    /// Builds a matrix from rows without validation.
    ///
    /// Intended for tests and for representing *non*-metrics (e.g. when
    /// exercising failure paths). Prefer [`DistanceMatrix::from_rows`].
    ///
    /// # Panics
    ///
    /// Panics if the rows are not square.
    pub fn from_rows_unchecked(rows: Vec<Vec<f64>>) -> Self {
        let n = rows.len();
        let mut entries = Vec::with_capacity(n * n);
        for row in rows {
            assert_eq!(row.len(), n, "rows must form a square matrix");
            entries.extend(row);
        }
        Self { n, entries }
    }

    /// Builds the matrix of pairwise distances of any metric.
    pub fn from_metric<M: MetricSpace>(metric: &M) -> Self {
        Self::from_fn(metric.len(), |u, v| metric.distance(u, v))
            .expect("metrics produce finite non-negative distances")
    }

    /// The raw distance entry for an ordered pair.
    ///
    /// # Panics
    ///
    /// Panics if `u` or `v` is out of range.
    pub fn distance(&self, u: NodeId, v: NodeId) -> f64 {
        assert!(u < self.n && v < self.n, "node out of range");
        self.entries[u * self.n + v]
    }

    /// Overwrites the distance of a pair (kept symmetric).
    ///
    /// # Panics
    ///
    /// Panics if `u` or `v` is out of range or `d` is negative/not finite.
    pub fn set_distance(&mut self, u: NodeId, v: NodeId, d: f64) {
        assert!(u < self.n && v < self.n, "node out of range");
        assert!(
            d.is_finite() && d >= 0.0,
            "distance must be finite and non-negative"
        );
        self.entries[u * self.n + v] = d;
        self.entries[v * self.n + u] = d;
    }

    /// Number of nodes.
    pub fn size(&self) -> usize {
        self.n
    }

    /// Iterator over all unordered pairs `(u, v, d)` with `u < v`.
    pub fn pairs(&self) -> impl Iterator<Item = (NodeId, NodeId, f64)> + '_ {
        (0..self.n)
            .flat_map(move |u| ((u + 1)..self.n).map(move |v| (u, v, self.entries[u * self.n + v])))
    }
}

impl MetricSpace for DistanceMatrix {
    fn len(&self) -> usize {
        self.n
    }

    fn distance(&self, u: NodeId, v: NodeId) -> f64 {
        DistanceMatrix::distance(self, u, v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_fn_builds_symmetric_matrix() {
        let m = DistanceMatrix::from_fn(3, |u, v| (u as f64 - v as f64).abs()).unwrap();
        assert_eq!(m.size(), 3);
        assert_eq!(m.distance(0, 2), 2.0);
        assert_eq!(m.distance(2, 0), 2.0);
        assert_eq!(m.distance(1, 1), 0.0);
    }

    #[test]
    fn from_fn_rejects_invalid_values() {
        let err = DistanceMatrix::from_fn(2, |_, _| f64::NAN).unwrap_err();
        assert!(matches!(err, MetricError::InvalidDistance { .. }));
        let err = DistanceMatrix::from_fn(2, |_, _| -1.0).unwrap_err();
        assert!(matches!(err, MetricError::InvalidDistance { .. }));
    }

    #[test]
    fn from_rows_accepts_valid_metric() {
        let m = DistanceMatrix::from_rows(vec![
            vec![0.0, 1.0, 2.0],
            vec![1.0, 0.0, 1.5],
            vec![2.0, 1.5, 0.0],
        ])
        .unwrap();
        assert_eq!(m.distance(1, 2), 1.5);
        assert!(m.validate().is_ok());
    }

    #[test]
    fn from_rows_rejects_non_square() {
        let err = DistanceMatrix::from_rows(vec![vec![0.0, 1.0], vec![1.0]]).unwrap_err();
        assert!(matches!(err, MetricError::ShapeMismatch { .. }));
    }

    #[test]
    fn from_rows_rejects_asymmetry() {
        let err = DistanceMatrix::from_rows(vec![vec![0.0, 1.0], vec![2.0, 0.0]]).unwrap_err();
        assert!(matches!(err, MetricError::Asymmetric { .. }));
    }

    #[test]
    fn from_rows_rejects_nonzero_diagonal() {
        let err = DistanceMatrix::from_rows(vec![vec![1.0, 1.0], vec![1.0, 0.0]]).unwrap_err();
        assert!(matches!(err, MetricError::NonZeroDiagonal { .. }));
    }

    #[test]
    fn set_distance_keeps_symmetry() {
        let mut m = DistanceMatrix::from_fn(3, |_, _| 1.0).unwrap();
        m.set_distance(0, 2, 4.0);
        assert_eq!(m.distance(0, 2), 4.0);
        assert_eq!(m.distance(2, 0), 4.0);
    }

    #[test]
    #[should_panic(expected = "node out of range")]
    fn distance_panics_out_of_range() {
        let m = DistanceMatrix::from_fn(2, |_, _| 1.0).unwrap();
        let _ = m.distance(0, 5);
    }

    #[test]
    fn pairs_enumerates_each_unordered_pair_once() {
        let m = DistanceMatrix::from_fn(4, |u, v| (u + v) as f64).unwrap();
        let pairs: Vec<_> = m.pairs().collect();
        assert_eq!(pairs.len(), 6);
        assert!(pairs.contains(&(0, 3, 3.0)));
        assert!(pairs.iter().all(|&(u, v, _)| u < v));
    }

    #[test]
    fn from_metric_round_trips() {
        let inner = DistanceMatrix::from_fn(5, |u, v| ((u * 7 + v * 3) % 5) as f64 + 1.0);
        // That function is not symmetric; use from_fn result (symmetric by construction).
        let inner = inner.unwrap();
        let copy = DistanceMatrix::from_metric(&inner);
        assert_eq!(inner, copy);
    }

    #[test]
    fn empty_matrix_is_fine() {
        let m = DistanceMatrix::from_rows(vec![]).unwrap();
        assert_eq!(m.size(), 0);
        assert!(m.validate().is_ok());
        assert_eq!(m.pairs().count(), 0);
    }
}

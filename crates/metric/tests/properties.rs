//! Property-based tests for the metric substrate.

use oblisched_metric::{
    aspect_ratio, diameter, min_positive_distance, DistanceMatrix, DominatingTreeFamily,
    EmbeddingConfig, EuclideanSpace, LineMetric, MetricSpace, Point2, StarMetric, SubMetric,
    TreeEmbedding, TreeMetric, WeightedTree,
};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn arb_points(max_n: usize) -> impl Strategy<Value = Vec<Point2>> {
    prop::collection::vec((-1000.0f64..1000.0, -1000.0f64..1000.0), 1..max_n)
        .prop_map(|coords| coords.into_iter().map(|(x, y)| Point2::xy(x, y)).collect())
}

fn arb_line(max_n: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1.0e6f64..1.0e6, 1..max_n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn euclidean_space_satisfies_metric_axioms(points in arb_points(12)) {
        let space = EuclideanSpace::from_points(points);
        prop_assert!(space.validate().is_ok());
    }

    #[test]
    fn line_metric_satisfies_metric_axioms(coords in arb_line(12)) {
        let line = LineMetric::new(coords);
        prop_assert!(line.validate().is_ok());
    }

    #[test]
    fn star_metric_satisfies_metric_axioms(radii in prop::collection::vec(0.0f64..1.0e4, 1..16)) {
        let star = StarMetric::new(radii);
        prop_assert!(star.validate().is_ok());
    }

    #[test]
    fn to_matrix_preserves_distances(points in arb_points(10)) {
        let space = EuclideanSpace::from_points(points);
        let matrix = space.to_matrix();
        for u in 0..space.len() {
            for v in 0..space.len() {
                prop_assert!((matrix.distance(u, v) - space.distance(u, v)).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn sub_metric_agrees_with_parent(points in arb_points(10), selector in prop::collection::vec(any::<bool>(), 10)) {
        let space = EuclideanSpace::from_points(points);
        let selection: Vec<usize> = (0..space.len()).filter(|&i| selector.get(i).copied().unwrap_or(false)).collect();
        let sub = SubMetric::new(&space, selection.clone()).unwrap();
        for (i, &orig_i) in selection.iter().enumerate() {
            for (j, &orig_j) in selection.iter().enumerate() {
                prop_assert_eq!(sub.distance(i, j), space.distance(orig_i, orig_j));
            }
        }
    }

    #[test]
    fn aspect_ratio_is_at_least_one(points in arb_points(10)) {
        let space = EuclideanSpace::from_points(points);
        if let Some(ratio) = aspect_ratio(&space) {
            prop_assert!(ratio >= 1.0 - 1e-12);
            let dmin = min_positive_distance(&space).unwrap();
            prop_assert!((ratio - diameter(&space) / dmin).abs() < 1e-9);
        }
    }

    #[test]
    fn frt_embedding_dominates(points in arb_points(10), seed in any::<u64>()) {
        let space = EuclideanSpace::from_points(points);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let emb = TreeEmbedding::frt(&space, &mut rng);
        for u in 0..space.len() {
            for v in 0..space.len() {
                prop_assert!(emb.distance(u, v) + 1e-6 >= space.distance(u, v));
            }
        }
    }

    #[test]
    fn frt_embedding_is_a_metric(points in arb_points(8), seed in any::<u64>()) {
        let space = EuclideanSpace::from_points(points);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let emb = TreeEmbedding::frt(&space, &mut rng);
        prop_assert!(emb.validate().is_ok());
    }

    #[test]
    fn dominating_family_has_cores(points in arb_points(8), seed in any::<u64>()) {
        let space = EuclideanSpace::from_points(points);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let config = EmbeddingConfig { num_trees: Some(6), ..EmbeddingConfig::default() };
        let family = DominatingTreeFamily::build(&space, config, &mut rng);
        for v in 0..space.len() {
            prop_assert!(family.core_fraction_of(v) >= 0.9 - 1e-9);
        }
    }

    #[test]
    fn random_path_tree_metric_is_valid(weights in prop::collection::vec(0.001f64..1.0e3, 1..12)) {
        let n = weights.len() + 1;
        let mut tree = WeightedTree::new(n);
        for (i, w) in weights.iter().enumerate() {
            tree.add_edge(i, i + 1, *w).unwrap();
        }
        let tm = TreeMetric::new(tree).unwrap();
        prop_assert!(tm.validate().is_ok());
        // Path distance from 0 to n-1 is the sum of weights.
        let total: f64 = weights.iter().sum();
        prop_assert!((tm.distance(0, n - 1) - total).abs() < 1e-6 * total.max(1.0));
    }

    #[test]
    fn centroid_splits_components_in_half(weights in prop::collection::vec(0.001f64..1.0e3, 2..14)) {
        let n = weights.len() + 1;
        let mut tree = WeightedTree::new(n);
        for (i, w) in weights.iter().enumerate() {
            tree.add_edge(i, i + 1, *w).unwrap();
        }
        let all: Vec<usize> = (0..n).collect();
        let c = tree.centroid_of(&all).unwrap();
        let mut active = vec![true; n];
        active[c] = false;
        let comps = tree.components(&active);
        for comp in comps {
            prop_assert!(comp.len() <= n / 2 + 1);
        }
    }

    #[test]
    fn distance_matrix_from_fn_is_symmetric(n in 1usize..10, seed in any::<u64>()) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let points: Vec<Point2> = (0..n)
            .map(|_| Point2::xy(rand::Rng::gen_range(&mut rng, -10.0..10.0), rand::Rng::gen_range(&mut rng, -10.0..10.0)))
            .collect();
        let space = EuclideanSpace::from_points(points);
        let m = DistanceMatrix::from_metric(&space);
        for u in 0..n {
            prop_assert_eq!(m.distance(u, u), 0.0);
            for v in 0..n {
                prop_assert_eq!(m.distance(u, v), m.distance(v, u));
            }
        }
    }
}

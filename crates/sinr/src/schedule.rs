//! Schedules (colorings) of request sets and their validation.

use crate::error::SinrError;
use crate::feasibility::{Evaluator, InterferenceSystem, Variant};
use oblisched_metric::MetricSpace;
use serde::{Deserialize, Serialize};

/// A schedule: an assignment of a color (time slot) to every request.
///
/// Colors are consecutive integers starting at 0; all requests with the same
/// color transmit simultaneously. The number of colors is the schedule length
/// the paper minimises.
///
/// # Example
///
/// ```
/// use oblisched_sinr::Schedule;
///
/// let schedule = Schedule::new(vec![0, 1, 0, 2]);
/// assert_eq!(schedule.num_colors(), 3);
/// assert_eq!(schedule.class(0), vec![0, 2]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schedule {
    colors: Vec<usize>,
    num_colors: usize,
}

impl Schedule {
    /// Creates a schedule from per-request colors.
    ///
    /// Colors may be sparse; they are compacted so that the used colors are
    /// exactly `0..num_colors()`.
    pub fn new(colors: Vec<usize>) -> Self {
        let mut used: Vec<usize> = colors.clone();
        used.sort_unstable();
        used.dedup();
        let remap = |c: usize| {
            used.binary_search(&c)
                .expect("color present by construction")
        };
        let colors: Vec<usize> = colors.iter().map(|&c| remap(c)).collect();
        let num_colors = used.len();
        Self { colors, num_colors }
    }

    /// The schedule that gives every one of `n` requests its own color — the
    /// trivial `O(n)` upper bound mentioned in the abstract.
    pub fn sequential(n: usize) -> Self {
        Self {
            colors: (0..n).collect(),
            num_colors: n,
        }
    }

    /// Number of requests covered by the schedule.
    pub fn len(&self) -> usize {
        self.colors.len()
    }

    /// Returns `true` if the schedule covers no requests.
    pub fn is_empty(&self) -> bool {
        self.colors.is_empty()
    }

    /// Number of colors (time slots) used.
    pub fn num_colors(&self) -> usize {
        self.num_colors
    }

    /// The color of request `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn color_of(&self, i: usize) -> usize {
        self.colors[i]
    }

    /// The per-request colors.
    pub fn colors(&self) -> &[usize] {
        &self.colors
    }

    /// The requests assigned to color `c`.
    pub fn class(&self, c: usize) -> Vec<usize> {
        (0..self.colors.len())
            .filter(|&i| self.colors[i] == c)
            .collect()
    }

    /// All color classes, indexed by color.
    pub fn classes(&self) -> Vec<Vec<usize>> {
        let mut classes = vec![Vec::new(); self.num_colors];
        for (i, &c) in self.colors.iter().enumerate() {
            classes[c].push(i);
        }
        classes
    }

    /// Size of the largest color class.
    pub fn max_class_size(&self) -> usize {
        self.classes().iter().map(|c| c.len()).max().unwrap_or(0)
    }

    /// Validates the schedule against an interference system: every color
    /// class must be simultaneously feasible at the system's gain.
    ///
    /// # Errors
    ///
    /// * [`SinrError::ColoringLengthMismatch`] if the schedule does not cover
    ///   exactly the system's items.
    /// * [`SinrError::InfeasibleColorClass`] naming the first violating class
    ///   and request.
    pub fn validate_against<S: InterferenceSystem>(&self, system: &S) -> Result<(), SinrError> {
        if self.colors.len() != system.len() {
            return Err(SinrError::ColoringLengthMismatch {
                expected: system.len(),
                actual: self.colors.len(),
            });
        }
        for (color, class) in self.classes().iter().enumerate() {
            for &i in class {
                if system.sinr(i, class) < system.beta() * (1.0 - crate::feasibility::REL_TOL) {
                    return Err(SinrError::InfeasibleColorClass { color, request: i });
                }
            }
        }
        Ok(())
    }

    /// Validates the schedule for a pair instance in the given variant.
    ///
    /// # Errors
    ///
    /// See [`Schedule::validate_against`].
    pub fn validate<M: MetricSpace>(
        &self,
        evaluator: &Evaluator<'_, M>,
        variant: Variant,
    ) -> Result<(), SinrError> {
        self.validate_against(&evaluator.view(variant))
    }

    /// Merges another schedule for a disjoint set of requests onto new
    /// colors, returning the combined schedule over `self.len() +
    /// other.len()` requests (the first block keeps its colors, the second
    /// block is shifted).
    pub fn concat(&self, other: &Schedule) -> Schedule {
        let mut colors = self.colors.clone();
        colors.extend(other.colors.iter().map(|c| c + self.num_colors));
        Schedule {
            colors,
            num_colors: self.num_colors + other.num_colors,
        }
    }
}

impl FromIterator<usize> for Schedule {
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        Schedule::new(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::SinrParams;
    use crate::power::ObliviousPower;
    use crate::request::{Instance, Request};
    use oblisched_metric::LineMetric;

    #[test]
    fn colors_are_compacted() {
        let s = Schedule::new(vec![5, 9, 5, 2]);
        assert_eq!(s.num_colors(), 3);
        assert_eq!(s.colors(), &[1, 2, 1, 0]);
        assert_eq!(s.color_of(3), 0);
    }

    #[test]
    fn classes_partition_the_requests() {
        let s = Schedule::new(vec![0, 1, 0, 2, 1]);
        assert_eq!(s.class(0), vec![0, 2]);
        assert_eq!(s.class(1), vec![1, 4]);
        assert_eq!(s.class(2), vec![3]);
        let classes = s.classes();
        assert_eq!(classes.len(), 3);
        let total: usize = classes.iter().map(|c| c.len()).sum();
        assert_eq!(total, s.len());
        assert_eq!(s.max_class_size(), 2);
    }

    #[test]
    fn sequential_schedule_uses_one_color_per_request() {
        let s = Schedule::sequential(4);
        assert_eq!(s.num_colors(), 4);
        assert_eq!(s.len(), 4);
        assert_eq!(s.max_class_size(), 1);
    }

    #[test]
    fn empty_schedule() {
        let s = Schedule::new(vec![]);
        assert!(s.is_empty());
        assert_eq!(s.num_colors(), 0);
        assert_eq!(s.max_class_size(), 0);
        assert_eq!(s.classes().len(), 0);
    }

    #[test]
    fn from_iterator_collects() {
        let s: Schedule = vec![1, 1, 3].into_iter().collect();
        assert_eq!(s.num_colors(), 2);
    }

    #[test]
    fn concat_shifts_second_block() {
        let a = Schedule::new(vec![0, 1]);
        let b = Schedule::new(vec![0, 0, 1]);
        let c = a.concat(&b);
        assert_eq!(c.len(), 5);
        assert_eq!(c.num_colors(), 4);
        assert_eq!(c.colors(), &[0, 1, 2, 2, 3]);
    }

    fn overlapping_instance() -> Instance<LineMetric> {
        // Two nested links that interfere heavily under uniform power, plus a
        // far-away third link.
        let metric = LineMetric::new(vec![0.0, 10.0, 4.0, 5.0, 1000.0, 1001.0]);
        Instance::new(
            metric,
            vec![Request::new(0, 1), Request::new(2, 3), Request::new(4, 5)],
        )
        .unwrap()
    }

    #[test]
    fn validate_accepts_sequential_schedule() {
        let inst = overlapping_instance();
        let eval = inst.evaluator(SinrParams::new(3.0, 1.0).unwrap(), &ObliviousPower::Uniform);
        let s = Schedule::sequential(3);
        assert!(s.validate(&eval, Variant::Directed).is_ok());
        assert!(s.validate(&eval, Variant::Bidirectional).is_ok());
    }

    #[test]
    fn validate_rejects_infeasible_class() {
        let inst = overlapping_instance();
        let eval = inst.evaluator(SinrParams::new(3.0, 1.0).unwrap(), &ObliviousPower::Uniform);
        // Requests 0 and 1 are nested: scheduling them together under uniform
        // power violates the SINR constraint of the long link.
        let s = Schedule::new(vec![0, 0, 1]);
        let err = s.validate(&eval, Variant::Directed).unwrap_err();
        assert!(matches!(
            err,
            SinrError::InfeasibleColorClass { color: 0, .. }
        ));
    }

    #[test]
    fn validate_accepts_good_two_color_schedule() {
        let inst = overlapping_instance();
        let eval = inst.evaluator(SinrParams::new(3.0, 1.0).unwrap(), &ObliviousPower::Uniform);
        // Separate the nested links; the far-away link can share with either.
        let s = Schedule::new(vec![0, 1, 0]);
        assert!(s.validate(&eval, Variant::Directed).is_ok());
    }

    #[test]
    fn validate_checks_length() {
        let inst = overlapping_instance();
        let eval = inst.evaluator(SinrParams::default(), &ObliviousPower::Uniform);
        let s = Schedule::new(vec![0, 1]);
        assert!(matches!(
            s.validate(&eval, Variant::Directed),
            Err(SinrError::ColoringLengthMismatch {
                expected: 3,
                actual: 2
            })
        ));
    }
}

//! Communication requests and problem instances.

use crate::error::SinrError;
use crate::feasibility::Evaluator;
use crate::params::SinrParams;
use crate::power::PowerScheme;
use oblisched_metric::{MetricSpace, NodeId};
use serde::{Deserialize, Serialize};

/// A single communication request between two nodes of a metric space.
///
/// In the **directed** variant `sender` transmits to `receiver`; in the
/// **bidirectional** variant the two endpoints exchange signals in both
/// directions and the naming is only a convention.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Request {
    /// The transmitting node (directed variant) or first endpoint.
    pub sender: NodeId,
    /// The receiving node (directed variant) or second endpoint.
    pub receiver: NodeId,
}

impl Request {
    /// Creates a request between two nodes.
    pub fn new(sender: NodeId, receiver: NodeId) -> Self {
        Self { sender, receiver }
    }

    /// The two endpoints as an array `[sender, receiver]`.
    pub fn endpoints(&self) -> [NodeId; 2] {
        [self.sender, self.receiver]
    }

    /// The request with sender and receiver swapped.
    pub fn reversed(&self) -> Self {
        Self {
            sender: self.receiver,
            receiver: self.sender,
        }
    }
}

/// An interference scheduling instance: a metric space together with a list
/// of communication requests between its nodes.
///
/// # Example
///
/// ```
/// use oblisched_metric::LineMetric;
/// use oblisched_sinr::{Instance, Request, SinrParams};
///
/// let metric = LineMetric::new(vec![0.0, 1.0, 10.0, 12.0]);
/// let instance = Instance::new(metric, vec![Request::new(0, 1), Request::new(2, 3)])?;
/// assert_eq!(instance.len(), 2);
/// assert_eq!(instance.link_distance(1), 2.0);
/// let params = SinrParams::new(3.0, 1.0)?;
/// assert_eq!(instance.link_loss(1, &params), 8.0);
/// # Ok::<(), oblisched_sinr::SinrError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Instance<M> {
    metric: M,
    requests: Vec<Request>,
}

impl<M: MetricSpace> Instance<M> {
    /// Creates an instance, validating that every request references existing
    /// nodes and has positive length.
    ///
    /// # Errors
    ///
    /// * [`SinrError::NodeOutOfRange`] if a request references a node outside
    ///   the metric.
    /// * [`SinrError::DegenerateRequest`] if a request's endpoints coincide
    ///   (distance zero), which would make its SINR undefined.
    pub fn new(metric: M, requests: Vec<Request>) -> Result<Self, SinrError> {
        let n = metric.len();
        for (i, r) in requests.iter().enumerate() {
            for node in r.endpoints() {
                if node >= n {
                    return Err(SinrError::NodeOutOfRange {
                        request: i,
                        node,
                        len: n,
                    });
                }
            }
            if r.sender == r.receiver || metric.distance(r.sender, r.receiver) == 0.0 {
                return Err(SinrError::DegenerateRequest { request: i });
            }
        }
        Ok(Self { metric, requests })
    }

    /// Number of requests.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// Returns `true` if the instance has no requests.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// The underlying metric space.
    pub fn metric(&self) -> &M {
        &self.metric
    }

    /// The list of requests.
    pub fn requests(&self) -> &[Request] {
        &self.requests
    }

    /// A single request.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn request(&self, i: usize) -> Request {
        self.requests[i]
    }

    /// The distance between the endpoints of request `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn link_distance(&self, i: usize) -> f64 {
        let r = self.requests[i];
        self.metric.distance(r.sender, r.receiver)
    }

    /// The path loss `ℓ_i = d_i^α` of request `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn link_loss(&self, i: usize, params: &SinrParams) -> f64 {
        params.loss(self.link_distance(i))
    }

    /// All link losses.
    pub fn link_losses(&self, params: &SinrParams) -> Vec<f64> {
        (0..self.len()).map(|i| self.link_loss(i, params)).collect()
    }

    /// Builds an [`Evaluator`] for this instance with the given parameters
    /// and power scheme.
    pub fn evaluator<P: PowerScheme + ?Sized>(
        &self,
        params: SinrParams,
        scheme: &P,
    ) -> Evaluator<'_, M> {
        Evaluator::new(self, params, scheme)
    }

    /// Restricts the instance to the requests with the given indices, keeping
    /// the same metric. Returns the new instance together with the mapping
    /// from new request index to original request index.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    pub fn restrict(&self, indices: &[usize]) -> (Instance<&M>, Vec<usize>)
    where
        M: Sized,
    {
        let requests: Vec<Request> = indices.iter().map(|&i| self.requests[i]).collect();
        let instance = Instance {
            metric: &self.metric,
            requests,
        };
        (instance, indices.to_vec())
    }

    /// Consumes the instance and returns its parts.
    pub fn into_parts(self) -> (M, Vec<Request>) {
        (self.metric, self.requests)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::power::ObliviousPower;
    use oblisched_metric::LineMetric;

    fn line_instance() -> Instance<LineMetric> {
        let metric = LineMetric::new(vec![0.0, 1.0, 10.0, 12.0, 12.0]);
        Instance::new(metric, vec![Request::new(0, 1), Request::new(2, 3)]).unwrap()
    }

    #[test]
    fn request_accessors() {
        let r = Request::new(3, 5);
        assert_eq!(r.endpoints(), [3, 5]);
        assert_eq!(r.reversed(), Request::new(5, 3));
    }

    #[test]
    fn instance_basic_accessors() {
        let inst = line_instance();
        assert_eq!(inst.len(), 2);
        assert!(!inst.is_empty());
        assert_eq!(inst.request(0), Request::new(0, 1));
        assert_eq!(inst.requests().len(), 2);
        assert_eq!(inst.link_distance(0), 1.0);
        assert_eq!(inst.link_distance(1), 2.0);
        assert_eq!(inst.metric().len(), 5);
    }

    #[test]
    fn link_loss_uses_alpha() {
        let inst = line_instance();
        let params = SinrParams::new(3.0, 1.0).unwrap();
        assert_eq!(inst.link_loss(1, &params), 8.0);
        assert_eq!(inst.link_losses(&params), vec![1.0, 8.0]);
    }

    #[test]
    fn rejects_out_of_range_nodes() {
        let metric = LineMetric::new(vec![0.0, 1.0]);
        let err = Instance::new(metric, vec![Request::new(0, 7)]).unwrap_err();
        assert!(matches!(
            err,
            SinrError::NodeOutOfRange {
                request: 0,
                node: 7,
                ..
            }
        ));
    }

    #[test]
    fn rejects_degenerate_requests() {
        let metric = LineMetric::new(vec![0.0, 1.0, 1.0]);
        let err = Instance::new(metric.clone(), vec![Request::new(1, 1)]).unwrap_err();
        assert!(matches!(err, SinrError::DegenerateRequest { request: 0 }));
        // Distinct nodes at distance zero are also degenerate.
        let err = Instance::new(metric, vec![Request::new(1, 2)]).unwrap_err();
        assert!(matches!(err, SinrError::DegenerateRequest { request: 0 }));
    }

    #[test]
    fn empty_instance_is_allowed() {
        let metric = LineMetric::new(vec![0.0, 1.0]);
        let inst = Instance::new(metric, vec![]).unwrap();
        assert!(inst.is_empty());
        assert_eq!(inst.len(), 0);
    }

    #[test]
    fn restrict_keeps_selected_requests() {
        let inst = line_instance();
        let (restricted, mapping) = inst.restrict(&[1]);
        assert_eq!(restricted.len(), 1);
        assert_eq!(restricted.request(0), Request::new(2, 3));
        assert_eq!(mapping, vec![1]);
        assert_eq!(restricted.link_distance(0), 2.0);
    }

    #[test]
    fn into_parts_round_trips() {
        let inst = line_instance();
        let (metric, requests) = inst.into_parts();
        assert_eq!(metric.len(), 5);
        assert_eq!(requests.len(), 2);
    }

    #[test]
    fn evaluator_is_constructible() {
        let inst = line_instance();
        let params = SinrParams::default();
        let eval = inst.evaluator(params, &ObliviousPower::Uniform);
        assert_eq!(eval.len(), 2);
    }
}

//! The incremental interference engine.
//!
//! Every scheduling algorithm in the workspace is driven by the same query:
//! *"can request `i` join color class `C`?"*. Answered naively through
//! [`InterferenceSystem::is_feasible`] this costs `O(|C|²)` interference
//! terms per query, which makes first-fit coloring effectively cubic in the
//! class sizes and caps usable instance sizes. This module removes that
//! bottleneck while preserving the naive semantics **exactly**:
//!
//! * [`IncrementalSystem`] — the structural property the engine exploits:
//!   interference is a *sum of pairwise contributions per port* (one port for
//!   directed / node-loss items, the two endpoints for bidirectional pairs),
//!   and an item's interference is the maximum over its ports.
//! * [`GainBackend`] — the backend contract: how the engine obtains
//!   contributions. Exact backends represent every pair; pruned backends
//!   (the [`sparse`] module) drop far-field pairs and report conservative
//!   bounds on what they dropped.
//! * [`ColorAccumulator`] — maintains the per-port running interference sums
//!   of one color class, so a join query costs `O(|C|)` contributions instead
//!   of `O(|C|²)`, and a commit is a further `O(|C|)` update.
//! * [`GainMatrix`] — a flat row-major cache of all `ports · n · n`
//!   contributions, computed once per (instance, power assignment, variant),
//!   turning every contribution into an array lookup. It is itself a
//!   self-contained [`InterferenceSystem`] + [`IncrementalSystem`].
//! * [`sparse`] — the spatially-pruned tier:
//!   [`SparseGainMatrix`](sparse::SparseGainMatrix) stores per row only the
//!   contributions above a cutoff (located through a uniform spatial grid
//!   over request positions) and tracks the total dropped mass per row, so
//!   feasibility verdicts stay conservative at a fraction of the dense
//!   footprint.
//!
//! # Exact-equivalence guarantee
//!
//! The accumulator adds contributions in exactly the order the naive
//! [`Evaluator`] path folds them (class insertion order),
//! and the matrix stores the very values the naive path computes, so every
//! `sinr` / `is_feasible` verdict — and therefore every coloring produced by
//! the migrated algorithms — is **bit-for-bit identical** to the naive path.
//! The property tests in `tests/properties.rs` pin this down across all
//! oblivious assignments and both problem variants.
//!
//! # When is the naive path still used?
//!
//! The naive `Evaluator` remains the single source of truth for *validation*
//! ([`Schedule::validate`](crate::Schedule::validate) recomputes every sum
//! from scratch), for one-off queries where no class state exists, and as the
//! reference implementation the engine is tested against. [`GainMatrix`]
//! costs `8 · ports · n²` bytes, so callers (e.g. the `Scheduler` facade in
//! `oblisched`) only build it under a memory budget and otherwise fall back
//! to on-the-fly contributions — which still get the accumulator's
//! `O(|C|)`-per-query behaviour.
//!
//! # Example
//!
//! ```
//! use oblisched_metric::LineMetric;
//! use oblisched_sinr::engine::{ColorAccumulator, GainMatrix};
//! use oblisched_sinr::{Instance, InterferenceSystem, ObliviousPower, Request, SinrParams, Variant};
//!
//! let metric = LineMetric::new(vec![0.0, 1.0, 50.0, 51.0, 52.0, 53.0]);
//! let instance = Instance::new(
//!     metric,
//!     vec![Request::new(0, 1), Request::new(2, 3), Request::new(4, 5)],
//! )?;
//! let eval = instance.evaluator(SinrParams::new(3.0, 1.0)?, &ObliviousPower::SquareRoot);
//! let view = eval.view(Variant::Bidirectional);
//! let matrix = GainMatrix::build(&view);
//!
//! let mut class = ColorAccumulator::new(&matrix);
//! assert!(class.try_insert(0));
//! assert!(class.try_insert(1));
//! // Verdicts agree exactly with the naive evaluator.
//! assert_eq!(matrix.is_feasible(&[0, 1]), eval.is_feasible(Variant::Bidirectional, &[0, 1]));
//! # Ok::<(), oblisched_sinr::SinrError>(())
//! ```

use crate::feasibility::{Evaluator, InterferenceSystem, Variant, VariantView, REL_TOL};
use crate::nodeloss::NodeLossEvaluator;
use oblisched_metric::MetricSpace;

pub mod sparse;

/// Upper bound on [`IncrementalSystem::num_ports`]: directed and node-loss
/// systems have one interference port per item, bidirectional pairs have two
/// (their endpoints).
pub const MAX_PORTS: usize = 2;

/// Widens a stored `u32` item id to a `usize` index.
///
/// Checked rather than an `as` cast so the engine's hot paths carry no
/// silent-truncation sites (`oblint`'s lossy-cast-in-engine rule). The
/// conversion is infallible on every supported target — `usize` is at least
/// 32 bits — so the check compiles away.
#[inline]
pub(crate) fn item_index(id: u32) -> usize {
    usize::try_from(id)
        .unwrap_or_else(|_| unreachable!("usize is at least 32 bits on all supported targets"))
}

/// Narrows an item index into the engine's `u32` id space.
///
/// # Panics
///
/// Panics if `index` exceeds `u32::MAX`. In practice `n` is capped orders of
/// magnitude below that by the engine memory budgets, so the panic marks a
/// logic error, never a data-dependent failure.
#[inline]
pub(crate) fn item_id(index: usize) -> u32 {
    u32::try_from(index)
        .unwrap_or_else(|_| panic!("item index {index} exceeds the engine's u32 id space"))
}

/// Approximate `usize → f64` for diagnostics and sizing heuristics (fill
/// ratios, occupancy targets). Exact below 2⁵³ items, far beyond any
/// buildable instance.
#[inline]
pub(crate) fn approx_f64(n: usize) -> f64 {
    // oblint::allow(lossy-cast-in-engine): diagnostic/sizing conversion, exact below 2^53 items.
    n as f64
}

/// An [`InterferenceSystem`] whose interference decomposes into pairwise
/// contributions.
///
/// The contract mirrors how the naive evaluator computes interference: item
/// `i` has [`num_ports`](IncrementalSystem::num_ports) ports, the
/// interference of `i` against a set `S` is
/// `max_port Σ_{j ∈ S \ {i}} contribution(i, port, j)`, and its SINR is
/// `signal(i) / (interference + noise)` (infinite when the denominator is
/// zero). Implementations must make `contribution` agree term-for-term with
/// their [`InterferenceSystem::sinr`], so that accumulated sums reproduce the
/// naive fold exactly.
pub trait IncrementalSystem: InterferenceSystem {
    /// Number of interference ports per item (`1` or `2`, never more than
    /// [`MAX_PORTS`]). Uniform across the system.
    fn num_ports(&self) -> usize;

    /// The interference contribution of item `j` at port `port` of item `i`.
    ///
    /// Must return `0.0` when `j == i` (an item never interferes with
    /// itself), and may return `f64::INFINITY` for coinciding positions.
    fn contribution(&self, i: usize, port: usize, j: usize) -> f64;

    /// The received strength of item `i`'s own signal.
    fn signal(&self, i: usize) -> f64;

    /// The ambient noise added to every interference sum.
    fn noise(&self) -> f64;
}

/// One stored (non-pruned) contribution of a sparse backend row: the
/// interferer index and the contribution value it adds at the row's port.
///
/// Rows are sorted by interferer index, so membership queries are binary
/// searches and row/class intersections are linear merges.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SparseEntry {
    /// The interfering item (`u32` to halve the index footprint of large
    /// sparse matrices; systems are far below `u32::MAX` items).
    pub j: u32,
    /// The stored contribution value.
    pub v: f64,
}

/// A borrowed sparse row in structure-of-arrays form: the sorted interferer
/// indices and their contribution values as two parallel slices.
///
/// Splitting the former interleaved `&[SparseEntry]` rows keeps membership
/// scans on a dense `u32` array (twice as many indices per cache line, no
/// padding) and drops the per-entry footprint from 16 to 12 bytes. Values
/// stay `f64`: an `f32` representation was evaluated and rejected — rounding
/// a stored value down would break the conservativeness contract (stored
/// values must upper-bound the true contribution), rounding it up would break
/// the bit-for-bit `stored == SAFETY · raw` identity the churn conservatism
/// tests and golden schedules pin.
#[derive(Debug, Clone, Copy)]
pub struct RowRef<'a> {
    /// Sorted interferer indices (parallel to `vals`).
    pub cols: &'a [u32],
    /// Stored contribution values (parallel to `cols`).
    pub vals: &'a [f64],
}

impl<'a> RowRef<'a> {
    /// The empty row (usable at any lifetime).
    pub const EMPTY: RowRef<'static> = RowRef {
        cols: &[],
        vals: &[],
    };

    /// Borrows a row from its parallel column/value slices.
    ///
    /// # Panics
    ///
    /// Panics if the slices disagree in length.
    pub fn new(cols: &'a [u32], vals: &'a [f64]) -> Self {
        assert_eq!(
            cols.len(),
            vals.len(),
            "row columns and values must stay parallel"
        );
        Self { cols, vals }
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.cols.len()
    }

    /// Returns `true` when the row stores nothing.
    pub fn is_empty(&self) -> bool {
        self.cols.is_empty()
    }

    /// The stored value of interferer `j`, or `None` when the row pruned it
    /// (binary search over the sorted columns).
    pub fn get(&self, j: u32) -> Option<f64> {
        self.cols.binary_search(&j).ok().map(|pos| self.vals[pos])
    }

    /// Iterates `(column, value)` pairs in column order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, f64)> + 'a {
        self.cols.iter().copied().zip(self.vals.iter().copied())
    }
}

/// The backend contract of the interference engine: an [`IncrementalSystem`]
/// that may additionally *prune* small contributions, as long as it accounts
/// for everything it dropped.
///
/// Two kinds of backends implement this trait:
///
/// * **exact backends** ([`GainMatrix`], [`VariantView`],
///   [`NodeLossEvaluator`]) represent every contribution exactly — all
///   methods keep their defaults and the engine behaves bit-for-bit like the
///   naive evaluator fold;
/// * **pruned backends** ([`sparse::SparseGainMatrix`]) store only the
///   contributions above a per-row cutoff and report, per row, an upper
///   bound on what they dropped ([`pruned_cap`](GainBackend::pruned_cap) /
///   [`pruned_mass`](GainBackend::pruned_mass)). The [`ColorAccumulator`]
///   adds that bound back into its running sums, so every feasibility
///   verdict is **conservative**: a set accepted through a pruned backend is
///   always feasible for the exact system (the reverse may not hold — a
///   pruned backend can reject borderline sets the exact system accepts,
///   costing colors, never correctness).
///
/// # Contract
///
/// * [`stored_contribution`](GainBackend::stored_contribution) returns
///   `Some(v)` exactly when the pair is represented; `v` must be an upper
///   bound on (for exact backends: equal to) the true contribution.
/// * Every unrepresented pair's true contribution must be at most
///   [`pruned_cap`](GainBackend::pruned_cap) of its row, and the sum of all
///   unrepresented contributions of a row at most
///   [`pruned_mass`](GainBackend::pruned_mass).
/// * [`exact_contribution`](GainBackend::exact_contribution) recomputes a
///   contribution without pruning and must not underestimate the true value
///   (exact backends return it verbatim).
pub trait GainBackend: IncrementalSystem {
    /// The stored contribution of pair `(i, port, j)`, or `None` when the
    /// backend pruned it. Exact backends store everything.
    fn stored_contribution(&self, i: usize, port: usize, j: usize) -> Option<f64> {
        Some(self.contribution(i, port, j))
    }

    /// The stored row of `(i, port)` in sorted structure-of-arrays form,
    /// when the backend materialises rows (pruned backends do; exact
    /// backends return `None` and the engine falls back to per-member
    /// [`contribution`](IncrementalSystem::contribution) queries).
    fn stored_row(&self, i: usize, port: usize) -> Option<RowRef<'_>> {
        let _ = (i, port);
        None
    }

    /// Folds the candidate-side probe of the per-member path: for every `j`
    /// in `members` (in order), add
    /// [`stored_contribution`](GainBackend::stored_contribution)`(i, port, j)`
    /// into `acc[port]` — or count a drop in `dropped[port]` when the pair is
    /// pruned — checking `acc[port] > limit_hi` after each addition and
    /// returning `false` on the first exceedance (an early reject; see
    /// [`ColorAccumulator::try_insert_with_gain`]). Returns `true` with the
    /// complete sums otherwise.
    ///
    /// Backends may override this with a layout-aware loop (the dense matrix
    /// folds each port's row as a contiguous slice; the churn tier holds one
    /// row borrow across the whole walk) — overrides must produce bit-for-bit
    /// identical per-port sums (same members, same addition order) and an
    /// equivalent verdict. Since contributions are non-negative, per-port
    /// sums are monotone in the member prefix, so "some prefix sum exceeds
    /// `limit_hi`" is equivalent to "some full port sum exceeds `limit_hi`"
    /// and overrides may re-batch the exceedance checks freely.
    fn fold_candidate(
        &self,
        i: usize,
        ports: usize,
        members: &[usize],
        limit_hi: f64,
        acc: &mut [f64; MAX_PORTS],
        dropped: &mut [u32; MAX_PORTS],
    ) -> bool {
        for &j in members {
            for (port, slot) in acc.iter_mut().enumerate().take(ports) {
                match self.stored_contribution(i, port, j) {
                    Some(v) => *slot += v,
                    None => dropped[port] += 1,
                }
                if *slot > limit_hi {
                    return false;
                }
            }
        }
        true
    }

    /// Upper bound on any single pruned contribution into `(i, port)`.
    /// `0.0` for exact backends.
    fn pruned_cap(&self, i: usize, port: usize) -> f64 {
        let _ = (i, port);
        0.0
    }

    /// Upper bound on the *total* pruned mass of row `(i, port)` — the sum
    /// of every contribution the backend dropped from this row. `0.0` for
    /// exact backends.
    fn pruned_mass(&self, i: usize, port: usize) -> f64 {
        let _ = (i, port);
        0.0
    }

    /// `true` when every contribution is represented exactly and the engine
    /// may skip all pruning bookkeeping (the default).
    fn is_exact(&self) -> bool {
        true
    }

    /// `true` when borderline verdicts (rejected with the pruning bound,
    /// accepted without it) should be re-checked through
    /// [`exact_contribution`](GainBackend::exact_contribution) — the
    /// `strict()` mode of pruned backends. Irrelevant for exact backends.
    fn strict_recheck(&self) -> bool {
        false
    }

    /// Recomputes the contribution of `(i, port, j)` without pruning. Must
    /// not underestimate the true contribution; pruned backends may inflate
    /// by a relative epsilon to stay conservative under floating-point
    /// divergence from the naive path.
    fn exact_contribution(&self, i: usize, port: usize, j: usize) -> f64 {
        self.contribution(i, port, j)
    }

    /// Notifies the backend that `item` is about to become live in a dynamic
    /// session. Churn-capable pruned backends patch their live aggregates and
    /// materialised rows here; exact and batch backends (whose stored state
    /// covers the whole universe unconditionally) ignore it.
    fn note_arrival(&self, item: usize) {
        let _ = item;
    }

    /// Notifies the backend that `item` has left a dynamic session (after
    /// its interference contributions were already subtracted from every
    /// color accumulator). The default is a no-op, mirroring
    /// [`note_arrival`](GainBackend::note_arrival).
    fn note_departure(&self, item: usize) {
        let _ = item;
    }
}

/// Combines per-port interference sums into an SINR the way the naive
/// evaluator does: max over ports, plus noise, infinite on a zero
/// denominator.
#[inline]
fn sinr_from_ports(signal: f64, ports: &[f64], noise: f64) -> f64 {
    let worst = ports.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let total = worst + noise;
    if total == 0.0 {
        f64::INFINITY
    } else {
        signal / total
    }
}

/// Default number of removals after which [`ColorAccumulator`] rebuilds its
/// running sums exactly (see [`ColorAccumulator::remove`]).
pub const DEFAULT_REBUILD_INTERVAL: usize = 64;

/// Sentinel "not in any color class" value of the `color_of` maps fed to
/// [`ProbeBatch::gather`].
pub const NO_COLOR: u32 = u32::MAX;

/// Reusable workspace of a *batched* multi-class candidate probe: one walk
/// over the candidate's stored row per port, bucketing every contribution by
/// the current color of its interferer.
///
/// First-fit probes a candidate against every open class in turn; with `C`
/// open classes and a stored row of length `L`, the sequential row path costs
/// `O(C · L)` because each class's probe re-walks the whole row filtering by
/// its own membership bitset. A gathered batch walks the row **once**,
/// accumulating each entry into the bucket of `color_of[j]`, and hands every
/// class its per-port sums and hit counts in `O(1)` — `O(L + C)` total. The
/// per-class bucket sum adds the exact same row-order subsequence of values
/// the sequential walk adds (an entry is bucketed into class `c` exactly when
/// the sequential probe's bitset test for class `c` accepts it), so the sums
/// are bit-for-bit identical.
///
/// The drivers in `oblisched_core::greedy` own one `ProbeBatch` per first-fit
/// call (inside their scratch state), [`gather`](ProbeBatch::gather) it once
/// per item, and feed it to
/// [`ColorAccumulator::try_insert_with_gain_batched`], which falls back to
/// the sequential probe whenever the batch does not apply (exact backends,
/// backends without stored rows, or classes whose size heuristic prefers the
/// member path).
#[derive(Debug, Default)]
pub struct ProbeBatch {
    /// Per-bucket per-port sums: entry `class * MAX_PORTS + port`.
    sums: Vec<f64>,
    /// Per-bucket per-port count of row entries landing in the bucket.
    hits: Vec<u32>,
    /// Stored-row length per port of the gathered item (`usize::MAX` when the
    /// backend exposed no row), feeding the per-class row-vs-member path
    /// heuristic.
    row_len: [usize; MAX_PORTS],
    /// `true` when the gathered item had a stored row at every port.
    valid: bool,
}

impl ProbeBatch {
    /// Creates an empty batch (no allocation until the first gather).
    pub fn new() -> Self {
        Self::default()
    }

    /// Walks candidate `i`'s stored row once per port and buckets every
    /// contribution by `color_of[j]` into `classes` buckets. Entries whose
    /// interferer is uncolored ([`NO_COLOR`]) or equal to `i` are skipped —
    /// exactly the entries the sequential per-class row walk skips.
    ///
    /// `color_of[j]` must be the bucket index of the class currently holding
    /// item `j` (below `classes`), or [`NO_COLOR`]. When the backend exposes
    /// no stored row at some port the batch is marked invalid and every
    /// class falls back to its sequential probe.
    ///
    /// # Panics
    ///
    /// Panics if `color_of` is shorter than the system or maps an interferer
    /// to a bucket at or above `classes`.
    pub fn gather<S: GainBackend + ?Sized>(
        &mut self,
        system: &S,
        i: usize,
        classes: usize,
        color_of: &[u32],
    ) {
        self.valid = false;
        self.row_len = [usize::MAX; MAX_PORTS];
        let ports = system.num_ports();
        let slots = classes * MAX_PORTS;
        self.sums.clear();
        self.sums.resize(slots, 0.0);
        self.hits.clear();
        self.hits.resize(slots, 0);
        let mut rows = [RowRef::EMPTY; MAX_PORTS];
        for (port, (len, row)) in self
            .row_len
            .iter_mut()
            .zip(rows.iter_mut())
            .enumerate()
            .take(ports)
        {
            match system.stored_row(i, port) {
                Some(r) => {
                    *len = r.len();
                    *row = r;
                }
                None => return,
            }
        }
        for (port, row) in rows.iter().enumerate().take(ports) {
            for (col, v) in row.iter() {
                let j = item_index(col);
                let c = color_of[j];
                if c != NO_COLOR && j != i {
                    let slot = item_index(c) * MAX_PORTS + port;
                    self.sums[slot] += v;
                    self.hits[slot] += 1;
                }
            }
        }
        self.valid = true;
    }

    /// The gathered candidate sums and drop counts of one class bucket, or
    /// `None` when some port's sum already exceeds `limit_hi` (equivalent to
    /// the sequential probe's early reject: sums are monotone in the row
    /// prefix, so a prefix exceedance and a full-sum exceedance coincide).
    ///
    /// `members` is the class size at probe time (hits are subtracted from it
    /// to recover the per-port pruned-member count).
    fn class_candidate(
        &self,
        class: usize,
        ports: usize,
        members: usize,
        limit_hi: f64,
    ) -> Option<([f64; MAX_PORTS], [u32; MAX_PORTS])> {
        let mut acc = [0.0f64; MAX_PORTS];
        let mut dropped = [0u32; MAX_PORTS];
        let base = class * MAX_PORTS;
        for port in 0..ports {
            let sum = self.sums[base + port];
            if sum > limit_hi {
                return None;
            }
            acc[port] = sum;
            dropped[port] = item_id(members) - self.hits[base + port];
        }
        Some((acc, dropped))
    }
}

/// Incrementally maintained interference state of one color class.
///
/// The accumulator stores, for every member, the running interference sum at
/// each of its ports. Checking whether a candidate can join is `O(members)`;
/// committing the candidate is another `O(members)` update. Sums are
/// accumulated in insertion order — the same left-to-right fold the naive
/// evaluator performs over the class vector — so verdicts are exactly those
/// of the naive path.
///
/// # Removal and the drift guard
///
/// [`remove`](ColorAccumulator::remove) subtracts the departing member's
/// contributions from the remaining running sums in `O(members)`. Unlike
/// insert-only sequences, a removal breaks the bit-for-bit fold equivalence:
/// floating-point subtraction leaves rounding residue, so sums (and with
/// them borderline verdicts) are only guaranteed to stay *within tolerance*
/// of an accumulator rebuilt from scratch on the surviving members. A drift
/// guard bounds the residue: after
/// [`rebuild_interval`](ColorAccumulator::with_rebuild_interval) removals
/// (default [`DEFAULT_REBUILD_INTERVAL`]) — or immediately, when an infinite
/// contribution makes subtraction ill-defined — the sums are recomputed
/// exactly by [`rebuild`](ColorAccumulator::rebuild), which also reports the
/// maximum relative drift it erased. The removal property tests in
/// `tests/properties.rs` pin the within-tolerance guarantee across all
/// oblivious assignments and both variants.
#[derive(Debug)]
pub struct ColorAccumulator<'s, S: ?Sized> {
    system: &'s S,
    ports: usize,
    members: Vec<usize>,
    /// Flat row-major per-member sums: entry `pos * ports + port`.
    sums: Vec<f64>,
    /// Per-member count of class members whose contribution the backend
    /// pruned away (same layout as `sums`). Always zero for exact backends;
    /// for pruned backends the feasibility checks add
    /// `min(pruned_mass, drops · pruned_cap)` of the member's row back onto
    /// the sum, which keeps every verdict conservative.
    drops: Vec<u32>,
    /// Membership bitset over the system's items, maintained only for pruned
    /// backends (where candidate probes iterate the stored row and need an
    /// `O(1)` "is this interferer in the class" test). `None` keeps exact
    /// backends at `O(members)` memory.
    in_class: Option<Vec<u64>>,
    /// Removals since the last exact rebuild (drift guard state).
    removals: usize,
    /// Drift guard threshold: rebuild exactly after this many removals.
    rebuild_interval: usize,
}

// Manual impl: the derive would demand `S: Clone`, but the accumulator only
// holds a shared reference to the system.
impl<S: ?Sized> Clone for ColorAccumulator<'_, S> {
    fn clone(&self) -> Self {
        Self {
            system: self.system,
            ports: self.ports,
            members: self.members.clone(),
            sums: self.sums.clone(),
            drops: self.drops.clone(),
            in_class: self.in_class.clone(),
            removals: self.removals,
            rebuild_interval: self.rebuild_interval,
        }
    }
}

impl<'s, S: GainBackend + ?Sized> ColorAccumulator<'s, S> {
    /// Creates an empty accumulator for one color class.
    pub fn new(system: &'s S) -> Self {
        let ports = system.num_ports();
        assert!(
            (1..=MAX_PORTS).contains(&ports),
            "systems must expose between 1 and {MAX_PORTS} ports, got {ports}"
        );
        let in_class = (!system.is_exact()).then(|| vec![0u64; system.len().div_ceil(64)]);
        Self {
            system,
            ports,
            members: Vec::new(),
            sums: Vec::new(),
            drops: Vec::new(),
            in_class,
            removals: 0,
            rebuild_interval: DEFAULT_REBUILD_INTERVAL,
        }
    }

    /// Sets the drift-guard threshold: the number of removals after which the
    /// running sums are rebuilt exactly. `1` rebuilds after every removal
    /// (sums always bit-for-bit equal to a fresh accumulator, removal cost
    /// `O(members²)`); larger values amortise the rebuild.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero.
    pub fn with_rebuild_interval(mut self, interval: usize) -> Self {
        assert!(interval >= 1, "the rebuild interval must be at least 1");
        self.rebuild_interval = interval;
        self
    }

    /// Creates an accumulator pre-filled with `members`, inserted unchecked
    /// in order (the set need not be feasible).
    pub fn with_members(system: &'s S, members: &[usize]) -> Self {
        let mut acc = Self::new(system);
        for &i in members {
            acc.insert_unchecked(i);
        }
        acc
    }

    /// The members of the class, in insertion order.
    pub fn members(&self) -> &[usize] {
        &self.members
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Returns `true` if the class is empty.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Removes all members.
    pub fn clear(&mut self) {
        self.members.clear();
        self.sums.clear();
        self.drops.clear();
        if let Some(bits) = &mut self.in_class {
            bits.fill(0);
        }
        self.removals = 0;
    }

    /// Rebinds a recycled accumulator to `system` and empties it, keeping
    /// the member/sum allocations (and, when possible, the membership-bitset
    /// allocation) warm. A pooled accumulator reset this way is
    /// indistinguishable from [`new`](ColorAccumulator::new) — the first-fit
    /// drivers in `oblisched_core` recycle class accumulators across merge
    /// layers with this instead of reallocating.
    ///
    /// # Panics
    ///
    /// Panics if `system` exposes an unsupported port count (as
    /// [`new`](ColorAccumulator::new) does).
    pub fn reset_for(&mut self, system: &'s S) {
        let ports = system.num_ports();
        assert!(
            (1..=MAX_PORTS).contains(&ports),
            "systems must expose between 1 and {MAX_PORTS} ports, got {ports}"
        );
        self.system = system;
        self.ports = ports;
        self.members.clear();
        self.sums.clear();
        self.drops.clear();
        self.removals = 0;
        if system.is_exact() {
            self.in_class = None;
        } else {
            let words = system.len().div_ceil(64);
            match &mut self.in_class {
                Some(bits) => {
                    bits.clear();
                    bits.resize(words, 0);
                }
                None => self.in_class = Some(vec![0u64; words]),
            }
        }
    }

    /// Removals applied since the last exact rebuild (drift-guard state,
    /// exposed for tests and diagnostics).
    pub fn removals_since_rebuild(&self) -> usize {
        self.removals
    }

    /// Returns `true` if item `i` is already a member (`O(1)` via the
    /// membership bitset for pruned backends, `O(members)` scan otherwise).
    pub fn contains(&self, i: usize) -> bool {
        match &self.in_class {
            Some(bits) => i < self.system.len() && bits[i / 64] >> (i % 64) & 1 == 1,
            None => self.members.contains(&i),
        }
    }

    /// The pruning pad of row `(item, port)` given `drops` pruned class
    /// members: the tightest available upper bound on the interference mass
    /// the backend dropped from this row's class sum. Exactly `0.0` when
    /// nothing was dropped, so exact backends stay bit-for-bit unpadded.
    fn pad(&self, item: usize, port: usize, drops: u32) -> f64 {
        if drops == 0 {
            return 0.0;
        }
        let per_member = f64::from(drops) * self.system.pruned_cap(item, port);
        per_member.min(self.system.pruned_mass(item, port))
    }

    /// The current interference experienced by the member at position `pos`
    /// (max over its ports, before noise), including the conservative
    /// pruning pad of its row (zero for exact backends).
    ///
    /// # Panics
    ///
    /// Panics if `pos` is out of range.
    pub fn interference_of(&self, pos: usize) -> f64 {
        assert!(pos < self.members.len(), "position {pos} out of range");
        let item = self.members[pos];
        (0..self.ports)
            .map(|port| {
                let slot = pos * self.ports + port;
                self.sums[slot] + self.pad(item, port, self.drops[slot])
            })
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// The current SINR of the member at position `pos` against the rest of
    /// the class (padded conservatively for pruned backends).
    ///
    /// # Panics
    ///
    /// Panics if `pos` is out of range.
    pub fn sinr_of(&self, pos: usize) -> f64 {
        assert!(pos < self.members.len(), "position {pos} out of range");
        let item = self.members[pos];
        let mut ports = [0.0f64; MAX_PORTS];
        for (port, slot) in ports.iter_mut().enumerate().take(self.ports) {
            let idx = pos * self.ports + port;
            *slot = self.sums[idx] + self.pad(item, port, self.drops[idx]);
        }
        sinr_from_ports(
            self.system.signal(item),
            &ports[..self.ports],
            self.system.noise(),
        )
    }

    /// The per-port stored interference candidate `i` would experience from
    /// the current members, plus the per-port count of members whose
    /// contribution the backend pruned.
    ///
    /// Exact backends take the per-member path (`O(members)` contributions,
    /// summed in member order — the naive fold). Pruned backends with
    /// materialised rows take the row path when the class is large: iterate
    /// the stored row and filter by class membership, which costs `O(row)`
    /// instead of `O(members · log row)` lookups.
    ///
    /// Returns `None` when the stored sums alone already exceed
    /// `limit_hi` at some port — since stored sums never overestimate the
    /// padded (or exact) interference, the caller's feasibility check is
    /// guaranteed to fail, and the scan can stop early. Callers that need
    /// the full sums pass `f64::INFINITY`.
    fn candidate_probe(
        &self,
        i: usize,
        limit_hi: f64,
    ) -> Option<([f64; MAX_PORTS], [u32; MAX_PORTS])> {
        let mut acc = [0.0f64; MAX_PORTS];
        let mut dropped = [0u32; MAX_PORTS];
        self.probe_into(i, limit_hi, &mut acc, &mut dropped)
            .then_some((acc, dropped))
    }

    /// [`candidate_probe`](ColorAccumulator::candidate_probe) with an
    /// infinite limit: the scan always completes (no finite sum exceeds
    /// `+∞`), so the full sums come back unconditionally — what the
    /// unchecked insert and rebuild paths need.
    fn probe_full(&self, i: usize) -> ([f64; MAX_PORTS], [u32; MAX_PORTS]) {
        let mut acc = [0.0f64; MAX_PORTS];
        let mut dropped = [0u32; MAX_PORTS];
        let complete = self.probe_into(i, f64::INFINITY, &mut acc, &mut dropped);
        debug_assert!(complete, "an infinite limit never rejects early");
        (acc, dropped)
    }

    /// The workhorse behind the probes: accumulates into the caller's
    /// buffers, returning `false` on an early reject (some partial sum
    /// exceeded `limit_hi`, in which case the buffers are only partially
    /// filled) and `true` with the complete sums otherwise.
    fn probe_into(
        &self,
        i: usize,
        limit_hi: f64,
        acc: &mut [f64; MAX_PORTS],
        dropped: &mut [u32; MAX_PORTS],
    ) -> bool {
        if let Some(bits) = &self.in_class {
            // Row iteration beats per-member binary searches once the class
            // outgrows a fraction of the row; below that the member path is
            // cheaper. Both orders are deterministic.
            let mut rows = [RowRef::EMPTY; MAX_PORTS];
            let use_rows = (0..self.ports).all(|port| match self.system.stored_row(i, port) {
                Some(row) if row.len() < self.members.len().saturating_mul(12) => {
                    rows[port] = row;
                    true
                }
                _ => false,
            });
            if use_rows {
                for (port, slot) in acc.iter_mut().enumerate().take(self.ports) {
                    let mut hits = 0u32;
                    for (col, v) in rows[port].iter() {
                        let j = item_index(col);
                        if bits[j / 64] >> (j % 64) & 1 == 1 && j != i {
                            *slot += v;
                            hits += 1;
                            if *slot > limit_hi {
                                return false;
                            }
                        }
                    }
                    dropped[port] = item_id(self.members.len()) - hits;
                }
                return true;
            }
        }
        self.system
            .fold_candidate(i, self.ports, &self.members, limit_hi, acc, dropped)
    }

    /// Checks whether the class stays feasible at `gain` if `i` joins, and
    /// commits the insertion when it does. Returns `true` on success; on
    /// failure the accumulator is left untouched.
    ///
    /// For exact backends, verdicts match
    /// `is_feasible_with_gain(class ∪ {i}, gain)` of the naive path exactly.
    /// For pruned backends the verdict is *conservative*: the pruning pad is
    /// added to every sum before comparing, so an accept implies the exact
    /// system accepts too, while a borderline reject (rejected with the pad,
    /// accepted without it) may cost a color — unless the backend requests
    /// [`strict_recheck`](GainBackend::strict_recheck), in which case
    /// borderline verdicts are settled by recomputing the class exactly
    /// (`O(members²)` un-pruned contributions).
    pub fn try_insert_with_gain(&mut self, i: usize, gain: f64) -> bool {
        let (threshold, limit_hi) = self.gain_limits(i, gain);
        let Some((cand, cand_drops)) = self.candidate_probe(i, limit_hi) else {
            return false;
        };
        self.admit_with_candidate(i, threshold, cand, cand_drops)
    }

    /// [`try_insert_with_gain`](ColorAccumulator::try_insert_with_gain) fed
    /// from a gathered [`ProbeBatch`]: when the batch holds a usable row walk
    /// for this class (the backend materialises rows and the per-class size
    /// heuristic prefers them), the candidate sums come from the batch's
    /// single bucketed walk instead of a fresh per-class row scan; otherwise
    /// this falls back to the sequential probe. Verdicts and committed sums
    /// are bit-for-bit identical to the sequential path either way.
    ///
    /// `class` is the bucket index this accumulator's members carry in the
    /// `color_of` map the batch was gathered with.
    pub fn try_insert_with_gain_batched(
        &mut self,
        i: usize,
        gain: f64,
        batch: &ProbeBatch,
        class: usize,
    ) -> bool {
        let (threshold, limit_hi) = self.gain_limits(i, gain);
        let probe = if self.batch_applies(batch) {
            batch.class_candidate(class, self.ports, self.members.len(), limit_hi)
        } else {
            self.candidate_probe(i, limit_hi)
        };
        let Some((cand, cand_drops)) = probe else {
            return false;
        };
        self.admit_with_candidate(i, threshold, cand, cand_drops)
    }

    /// `true` when a gathered batch can stand in for this class's sequential
    /// row-path probe — the exact condition the sequential
    /// [`probe_into`](ColorAccumulator::probe_into) row path requires: a
    /// membership bitset (pruned backend), a stored row at every port, and
    /// every row shorter than the member-path crossover.
    fn batch_applies(&self, batch: &ProbeBatch) -> bool {
        self.in_class.is_some()
            && batch.valid
            && batch.row_len[..self.ports]
                .iter()
                .all(|&len| len < self.members.len().saturating_mul(12))
    }

    /// The feasibility threshold at `gain` and the one-sided early-reject
    /// limit on the candidate's stored interference sums.
    ///
    /// `sinr < threshold ⇔ sum > signal/threshold − noise` in real
    /// arithmetic; the `1e-9` headroom makes the float comparison safely
    /// one-sided, so an early reject is always a true reject (stored sums
    /// never overestimate) and the full-evaluation verdicts are unchanged.
    /// NaN limits disable the shortcut (comparisons are false).
    fn gain_limits(&self, i: usize, gain: f64) -> (f64, f64) {
        let threshold = gain * (1.0 - REL_TOL);
        let limit = self.system.signal(i) / threshold - self.system.noise();
        (threshold, limit + limit.abs() * 1e-9)
    }

    /// The member-side half of an insertion attempt: given the candidate's
    /// probed per-port sums and drop counts, checks the candidate's own SINR
    /// and every member's updated SINR against `threshold`, settles
    /// borderline verdicts via the strict recheck when the backend requests
    /// it, and commits on acceptance. Returns `true` on success; on failure
    /// the accumulator is left untouched.
    fn admit_with_candidate(
        &mut self,
        i: usize,
        threshold: f64,
        cand: [f64; MAX_PORTS],
        cand_drops: [u32; MAX_PORTS],
    ) -> bool {
        let noise = self.system.noise();
        let strict = self.system.strict_recheck() && !self.system.is_exact();
        let mut borderline = false;
        let signal_i = self.system.signal(i);
        let mut padded = [0.0f64; MAX_PORTS];
        for (port, slot) in padded.iter_mut().enumerate().take(self.ports) {
            *slot = cand[port] + self.pad(i, port, cand_drops[port]);
        }
        // `sinr >= threshold` (not a negated `<`) so that a NaN SINR counts
        // as infeasible, exactly as in the naive `is_feasible_with_gain`.
        let cand_ok = sinr_from_ports(signal_i, &padded[..self.ports], noise) >= threshold;
        if !cand_ok {
            // Borderline only if the un-padded (stored-sum) verdict accepts;
            // when even the underestimate rejects, the exact system rejects.
            let optimistic_ok = sinr_from_ports(signal_i, &cand[..self.ports], noise) >= threshold;
            if !strict || !optimistic_ok {
                return false;
            }
            borderline = true;
        }
        for (pos, &j) in self.members.iter().enumerate() {
            let mut raw = [0.0f64; MAX_PORTS];
            let mut member_padded = [0.0f64; MAX_PORTS];
            for port in 0..self.ports {
                let slot = pos * self.ports + port;
                let (add, extra) = match self.system.stored_contribution(j, port, i) {
                    Some(v) => (v, 0),
                    None => (0.0, 1),
                };
                raw[port] = self.sums[slot] + add;
                member_padded[port] = raw[port] + self.pad(j, port, self.drops[slot] + extra);
            }
            let signal_j = self.system.signal(j);
            let member_ok =
                sinr_from_ports(signal_j, &member_padded[..self.ports], noise) >= threshold;
            if !member_ok {
                let optimistic_ok =
                    sinr_from_ports(signal_j, &raw[..self.ports], noise) >= threshold;
                if !strict || !optimistic_ok {
                    return false;
                }
                borderline = true;
            }
        }
        if borderline && !self.exact_recheck(i, threshold) {
            return false;
        }
        self.commit(i, cand, cand_drops);
        true
    }

    /// Settles a borderline verdict by refolding the would-be class
    /// `members ∪ {i}` through the backend's un-pruned
    /// [`exact_contribution`](GainBackend::exact_contribution) — the
    /// `strict()` escape hatch of pruned backends. `O(members²)`
    /// contributions.
    fn exact_recheck(&self, i: usize, threshold: f64) -> bool {
        let noise = self.system.noise();
        let feasible_for = |item: usize| -> bool {
            let mut ports = [0.0f64; MAX_PORTS];
            for (port, slot) in ports.iter_mut().enumerate().take(self.ports) {
                for &j in self.members.iter().chain(std::iter::once(&i)) {
                    if j != item {
                        *slot += self.system.exact_contribution(item, port, j);
                    }
                }
            }
            sinr_from_ports(self.system.signal(item), &ports[..self.ports], noise) >= threshold
        };
        if !feasible_for(i) {
            return false;
        }
        self.members.iter().all(|&j| feasible_for(j))
    }

    /// [`try_insert_with_gain`](ColorAccumulator::try_insert_with_gain) at
    /// the system's own gain [`InterferenceSystem::beta`].
    pub fn try_insert(&mut self, i: usize) -> bool {
        self.try_insert_with_gain(i, self.system.beta())
    }

    /// Inserts `i` without any feasibility check (used to open a fresh class
    /// for an item no existing class accepts, mirroring first-fit, and to
    /// rebuild state from an existing — possibly infeasible — set).
    pub fn insert_unchecked(&mut self, i: usize) {
        let (cand, cand_drops) = self.probe_full(i);
        self.commit(i, cand, cand_drops);
    }

    /// Removes member `i` from the class, subtracting its contributions from
    /// the remaining running sums in `O(members)`. Returns `true` when `i`
    /// was a member and was removed, `false` otherwise.
    ///
    /// Triggers the drift guard: after
    /// [`with_rebuild_interval`](ColorAccumulator::with_rebuild_interval)
    /// removals the sums are recomputed exactly, and an infinite contribution
    /// (whose subtraction would poison the sums with NaN) forces an immediate
    /// exact rebuild.
    pub fn remove(&mut self, i: usize) -> bool {
        match self.members.iter().position(|&m| m == i) {
            Some(pos) => {
                self.remove_at(pos);
                true
            }
            None => false,
        }
    }

    /// Removes the member at position `pos` (insertion order), returning its
    /// item index. Same cost and drift-guard behaviour as
    /// [`remove`](ColorAccumulator::remove).
    ///
    /// # Panics
    ///
    /// Panics if `pos` is out of range.
    pub fn remove_at(&mut self, pos: usize) -> usize {
        assert!(pos < self.members.len(), "position {pos} out of range");
        let i = self.members.remove(pos);
        let start = pos * self.ports;
        self.sums.drain(start..start + self.ports);
        self.drops.drain(start..start + self.ports);
        if let Some(bits) = &mut self.in_class {
            bits[i / 64] &= !(1u64 << (i % 64));
        }
        let mut needs_exact = false;
        for (p, &j) in self.members.iter().enumerate() {
            for port in 0..self.ports {
                match self.system.stored_contribution(j, port, i) {
                    Some(c) if c.is_finite() => self.sums[p * self.ports + port] -= c,
                    Some(_) => {
                        // Subtracting ±∞ (or NaN) from a running sum is
                        // ill-defined; fall back to an exact rebuild below.
                        needs_exact = true;
                    }
                    None => self.drops[p * self.ports + port] -= 1,
                }
            }
        }
        self.removals += 1;
        if needs_exact || self.removals >= self.rebuild_interval {
            self.rebuild();
        }
        i
    }

    /// Recomputes every running sum exactly — the same left-to-right fold a
    /// fresh [`with_members`](ColorAccumulator::with_members) accumulator
    /// performs — and resets the drift guard.
    ///
    /// Returns the maximum relative drift that was erased:
    /// `max |old − new| / max(|old|, |new|, 1)` over all per-port sums
    /// (`f64::INFINITY` if a sum had been poisoned to a non-finite value that
    /// the rebuild repaired, `0.0` for an untouched accumulator).
    pub fn rebuild(&mut self) -> f64 {
        let members = std::mem::take(&mut self.members);
        let old = std::mem::take(&mut self.sums);
        self.drops.clear();
        if let Some(bits) = &mut self.in_class {
            bits.fill(0);
        }
        self.removals = 0;
        for &i in &members {
            let (cand, cand_drops) = self.probe_full(i);
            self.commit(i, cand, cand_drops);
        }
        let mut drift = 0.0f64;
        for (&o, &n) in old.iter().zip(&self.sums) {
            if o.is_finite() && n.is_finite() {
                drift = drift.max((o - n).abs() / o.abs().max(n.abs()).max(1.0));
            } else if o.to_bits() != n.to_bits() {
                drift = f64::INFINITY;
            }
        }
        drift
    }

    /// Adds `i` as a member with pre-computed candidate sums and drop
    /// counts, updating every existing member's running sums (or their drop
    /// counts, when the backend pruned the new pair).
    fn commit(&mut self, i: usize, cand: [f64; MAX_PORTS], cand_drops: [u32; MAX_PORTS]) {
        for (pos, &j) in self.members.iter().enumerate() {
            for port in 0..self.ports {
                match self.system.stored_contribution(j, port, i) {
                    Some(v) => self.sums[pos * self.ports + port] += v,
                    None => self.drops[pos * self.ports + port] += 1,
                }
            }
        }
        self.members.push(i);
        self.sums.extend_from_slice(&cand[..self.ports]);
        self.drops.extend_from_slice(&cand_drops[..self.ports]);
        if let Some(bits) = &mut self.in_class {
            bits[i / 64] |= 1u64 << (i % 64);
        }
    }
}

/// A flat row-major cache of all pairwise interference contributions of an
/// [`IncrementalSystem`], plus its signals, noise and gain.
///
/// Built once per (instance, power assignment, variant), the matrix is a
/// self-contained interference system: every later contribution query is an
/// array lookup instead of a distance computation and a `powf`. Memory is
/// `8 · ports · n²` bytes (see [`GainMatrix::bytes_for`]), so large-`n`
/// callers should prefer the un-cached accumulator path.
#[derive(Debug, Clone)]
pub struct GainMatrix {
    n: usize,
    ports: usize,
    beta: f64,
    noise: f64,
    signals: Vec<f64>,
    /// Entry `(i * ports + port) * n + j` = contribution of `j` at `port` of
    /// `i`; the diagonal (`j == i`) is zero.
    data: Vec<f64>,
}

impl GainMatrix {
    /// Computes the full contribution matrix of `system`.
    ///
    /// Runs in `O(ports · n²)` time and allocates
    /// [`bytes_for`](GainMatrix::bytes_for) bytes.
    pub fn build<S: IncrementalSystem + ?Sized>(system: &S) -> Self {
        let n = system.len();
        let ports = system.num_ports();
        assert!(
            (1..=MAX_PORTS).contains(&ports),
            "systems must expose between 1 and {MAX_PORTS} ports, got {ports}"
        );
        let mut data = Vec::with_capacity(n * n * ports);
        for i in 0..n {
            for port in 0..ports {
                for j in 0..n {
                    data.push(if j == i {
                        0.0
                    } else {
                        system.contribution(i, port, j)
                    });
                }
            }
        }
        let signals = (0..n).map(|i| system.signal(i)).collect();
        Self {
            n,
            ports,
            beta: system.beta(),
            noise: system.noise(),
            signals,
            data,
        }
    }

    /// [`build`](GainMatrix::build) with the row construction fanned out over
    /// `threads` scoped worker threads, each filling a contiguous chunk of
    /// whole item rows. Every cell is computed by the same expression as the
    /// serial build and lands at the same offset, so the result is bit-for-bit
    /// identical regardless of `threads` (pinned by a unit test).
    ///
    /// `threads <= 1` falls back to the serial build.
    pub fn build_with_threads<S: IncrementalSystem + Sync + ?Sized>(
        system: &S,
        threads: usize,
    ) -> Self {
        let n = system.len();
        if threads <= 1 || n == 0 {
            return Self::build(system);
        }
        let ports = system.num_ports();
        assert!(
            (1..=MAX_PORTS).contains(&ports),
            "systems must expose between 1 and {MAX_PORTS} ports, got {ports}"
        );
        let per_item = ports * n;
        let mut data = vec![0.0f64; n * per_item];
        let chunk_items = n.div_ceil(threads);
        // A panicking worker propagates when the scope joins it, so no
        // explicit join handling is needed.
        std::thread::scope(|scope| {
            for (chunk_idx, chunk) in data.chunks_mut(chunk_items * per_item).enumerate() {
                let first = chunk_idx * chunk_items;
                scope.spawn(move || {
                    for (offset, item_rows) in chunk.chunks_mut(per_item).enumerate() {
                        let i = first + offset;
                        for (port, row) in item_rows.chunks_mut(n).enumerate() {
                            for (j, slot) in row.iter_mut().enumerate() {
                                *slot = if j == i {
                                    0.0
                                } else {
                                    system.contribution(i, port, j)
                                };
                            }
                        }
                    }
                });
            }
        });
        let signals = (0..n).map(|i| system.signal(i)).collect();
        Self {
            n,
            ports,
            beta: system.beta(),
            noise: system.noise(),
            signals,
            data,
        }
    }

    /// The memory footprint (in bytes) of the contribution table of a matrix
    /// for `n` items with `ports` ports: `n · n · ports · 8`, or `None` when
    /// the product overflows `usize`. Budget checks must treat overflow as
    /// over-budget — an overflowed (wrapped) product could wrongly enable the
    /// matrix for huge `n` — which `None` makes impossible to get wrong:
    /// `checked_bytes_for(n, ports).is_some_and(|b| b <= budget)`.
    pub fn checked_bytes_for(n: usize, ports: usize) -> Option<usize> {
        n.checked_mul(n)?
            .checked_mul(ports)?
            .checked_mul(std::mem::size_of::<f64>())
    }

    /// [`checked_bytes_for`](GainMatrix::checked_bytes_for), saturating to
    /// `usize::MAX` on overflow. Convenient for display; budget comparisons
    /// should prefer the checked variant.
    pub fn bytes_for(n: usize, ports: usize) -> usize {
        Self::checked_bytes_for(n, ports).unwrap_or(usize::MAX)
    }

    /// Number of ports per item.
    pub fn ports(&self) -> usize {
        self.ports
    }

    /// The row of contributions arriving at `port` of item `i` (indexed by
    /// interferer).
    ///
    /// # Panics
    ///
    /// Panics if `i` or `port` is out of range.
    pub fn row(&self, i: usize, port: usize) -> &[f64] {
        assert!(port < self.ports, "port {port} out of range");
        let start = (i * self.ports + port) * self.n;
        &self.data[start..start + self.n]
    }
}

impl InterferenceSystem for GainMatrix {
    fn len(&self) -> usize {
        self.n
    }

    fn sinr(&self, i: usize, others: &[usize]) -> f64 {
        let mut ports = [0.0f64; MAX_PORTS];
        for &j in others {
            for (port, slot) in ports.iter_mut().enumerate().take(self.ports) {
                // The diagonal is zero, so `j == i` adds nothing — same fold
                // as the naive path's explicit skip.
                *slot += self.data[(i * self.ports + port) * self.n + j];
            }
        }
        sinr_from_ports(self.signals[i], &ports[..self.ports], self.noise)
    }

    fn beta(&self) -> f64 {
        self.beta
    }
}

impl IncrementalSystem for GainMatrix {
    fn num_ports(&self) -> usize {
        self.ports
    }

    fn contribution(&self, i: usize, port: usize, j: usize) -> f64 {
        self.data[(i * self.ports + port) * self.n + j]
    }

    fn signal(&self, i: usize) -> f64 {
        self.signals[i]
    }

    fn noise(&self) -> f64 {
        self.noise
    }
}

// The dense matrix stores every contribution: it is the exact reference
// backend, with all `GainBackend` pruning hooks at their no-op defaults.
// Only the candidate fold is overridden, for speed, not semantics.
impl GainBackend for GainMatrix {
    fn fold_candidate(
        &self,
        i: usize,
        ports: usize,
        members: &[usize],
        limit_hi: f64,
        acc: &mut [f64; MAX_PORTS],
        dropped: &mut [u32; MAX_PORTS],
    ) -> bool {
        // Every pair is stored, so `dropped` is never touched. Each port's
        // fold walks one contiguous row with gathered loads, adding in member
        // order (the same left-to-right fold as the default hook, hence
        // bit-for-bit identical sums); the early-exit check runs once per
        // block, which the trait contract allows because contributions are
        // non-negative.
        let _ = dropped;
        for (port, slot) in acc.iter_mut().enumerate().take(ports) {
            let row = self.row(i, port);
            let mut sum = *slot;
            for block in members.chunks(64) {
                for &j in block {
                    sum += row[j];
                }
                if sum > limit_hi {
                    return false;
                }
            }
            *slot = sum;
        }
        true
    }
}

impl<'e, 'a, M: MetricSpace> VariantView<'e, 'a, M> {
    /// Builds the cached [`GainMatrix`] of this view (`O(ports · n²)` time
    /// and memory).
    pub fn cached(&self) -> GainMatrix {
        GainMatrix::build(self)
    }

    /// The effective path loss of request `j`'s signal at port `port` of
    /// request `i` — the single source of truth for the per-variant
    /// interference convention: the interferer's *sender*-to-receiver loss
    /// in the directed variant, the *closest-endpoint* loss in the
    /// bidirectional one. [`IncrementalSystem::contribution`] is
    /// `received_strength(p_j, effective_loss)`, and the power-control
    /// fixed point caches exactly these values.
    ///
    /// # Panics
    ///
    /// Panics if an index or port is out of range.
    pub fn effective_loss(&self, i: usize, port: usize, j: usize) -> f64 {
        let eval = self.evaluator();
        let params = eval.params();
        let metric = eval.instance().metric();
        let ri = eval.instance().request(i);
        let rj = eval.instance().request(j);
        match self.variant() {
            Variant::Directed => {
                assert_eq!(port, 0, "directed requests have a single port");
                params.loss(metric.distance(rj.sender, ri.receiver))
            }
            Variant::Bidirectional => {
                assert!(port < 2, "bidirectional requests have two ports");
                let w = if port == 0 { ri.sender } else { ri.receiver };
                params
                    .loss(metric.distance(rj.sender, w))
                    .min(params.loss(metric.distance(rj.receiver, w)))
            }
        }
    }
}

impl<'e, 'a, M: MetricSpace> IncrementalSystem for VariantView<'e, 'a, M> {
    fn num_ports(&self) -> usize {
        match self.variant() {
            Variant::Directed => 1,
            Variant::Bidirectional => 2,
        }
    }

    fn contribution(&self, i: usize, port: usize, j: usize) -> f64 {
        if j == i {
            return 0.0;
        }
        let eval: &Evaluator<'a, M> = self.evaluator();
        eval.params()
            .received_strength(eval.power(j), self.effective_loss(i, port, j))
    }

    fn signal(&self, i: usize) -> f64 {
        self.evaluator().signal(i)
    }

    fn noise(&self) -> f64 {
        self.evaluator().params().noise()
    }
}

// On-the-fly contributions are computed exactly from the metric — the
// un-cached exact backend.
impl<'e, 'a, M: MetricSpace> GainBackend for VariantView<'e, 'a, M> {}

impl<'a, M: MetricSpace> IncrementalSystem for NodeLossEvaluator<'a, M> {
    fn num_ports(&self) -> usize {
        1
    }

    fn contribution(&self, i: usize, port: usize, j: usize) -> f64 {
        debug_assert_eq!(port, 0);
        if j == i {
            return 0.0;
        }
        let loss = self.params().loss(self.instance().metric().distance(i, j));
        self.params().received_strength(self.power(j), loss)
    }

    fn signal(&self, i: usize) -> f64 {
        NodeLossEvaluator::signal(self, i)
    }

    fn noise(&self) -> f64 {
        self.params().noise()
    }
}

// Node-loss contributions are computed exactly from the metric — an exact
// backend.
impl<'a, M: MetricSpace> GainBackend for NodeLossEvaluator<'a, M> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nodeloss::NodeLossInstance;
    use crate::params::SinrParams;
    use crate::power::ObliviousPower;
    use crate::request::{Instance, Request};
    use oblisched_metric::LineMetric;

    /// Four unit links with mixed separations so that some subsets are
    /// feasible and some are not.
    fn mixed_instance() -> Instance<LineMetric> {
        let metric = LineMetric::new(vec![0.0, 1.0, 3.0, 4.0, 40.0, 41.0, 43.0, 44.0]);
        Instance::new(
            metric,
            vec![
                Request::new(0, 1),
                Request::new(2, 3),
                Request::new(4, 5),
                Request::new(6, 7),
            ],
        )
        .unwrap()
    }

    fn all_subsets(n: usize) -> Vec<Vec<usize>> {
        (0..1usize << n)
            .map(|mask| (0..n).filter(|&i| mask >> i & 1 == 1).collect())
            .collect()
    }

    #[test]
    fn matrix_sinr_matches_naive_evaluator_exactly() {
        let inst = mixed_instance();
        for power in ObliviousPower::standard_assignments() {
            for params in [
                SinrParams::new(3.0, 1.0).unwrap(),
                SinrParams::with_noise(2.5, 0.5, 0.01).unwrap(),
            ] {
                let eval = inst.evaluator(params, &power);
                for variant in Variant::all() {
                    let view = eval.view(variant);
                    let matrix = view.cached();
                    for set in all_subsets(inst.len()) {
                        for &i in &set {
                            assert_eq!(
                                matrix.sinr(i, &set),
                                view.sinr(i, &set),
                                "sinr({i}, {set:?}) diverged for {variant}"
                            );
                        }
                        assert_eq!(matrix.is_feasible(&set), view.is_feasible(&set));
                        assert_eq!(matrix.max_feasible_gain(&set), view.max_feasible_gain(&set));
                    }
                }
            }
        }
    }

    #[test]
    fn accumulator_matches_naive_push_pop_sequence() {
        let inst = mixed_instance();
        let params = SinrParams::new(3.0, 1.0).unwrap();
        for power in ObliviousPower::standard_assignments() {
            let eval = inst.evaluator(params, &power);
            for variant in Variant::all() {
                let view = eval.view(variant);
                let mut acc = ColorAccumulator::new(&view);
                let mut naive: Vec<usize> = Vec::new();
                for i in 0..inst.len() {
                    naive.push(i);
                    let naive_ok = view.is_feasible(&naive);
                    if !naive_ok {
                        naive.pop();
                    }
                    assert_eq!(
                        acc.try_insert(i),
                        naive_ok,
                        "verdict for {i} under {variant}"
                    );
                    assert_eq!(acc.members(), naive.as_slice());
                }
                // The accumulated per-member SINRs equal fresh recomputation.
                for (pos, &i) in acc.members().iter().enumerate() {
                    assert_eq!(acc.sinr_of(pos), view.sinr(i, &naive));
                }
            }
        }
    }

    #[test]
    fn accumulator_respects_explicit_gain() {
        let inst = mixed_instance();
        let params = SinrParams::new(3.0, 1.0).unwrap();
        let eval = inst.evaluator(params, &ObliviousPower::SquareRoot);
        let view = eval.view(Variant::Bidirectional);
        for gain in [0.25, 1.0, 4.0] {
            let mut acc = ColorAccumulator::new(&view);
            let mut naive: Vec<usize> = Vec::new();
            for i in 0..inst.len() {
                naive.push(i);
                let naive_ok = view.is_feasible_with_gain(&naive, gain);
                if !naive_ok {
                    naive.pop();
                }
                assert_eq!(acc.try_insert_with_gain(i, gain), naive_ok);
            }
            assert_eq!(acc.members(), naive.as_slice());
        }
    }

    #[test]
    fn accumulator_state_helpers() {
        let inst = mixed_instance();
        let params = SinrParams::new(3.0, 1.0).unwrap();
        let eval = inst.evaluator(params, &ObliviousPower::Uniform);
        let view = eval.view(Variant::Directed);
        let mut acc = ColorAccumulator::with_members(&view, &[2, 3]);
        assert_eq!(acc.len(), 2);
        assert!(!acc.is_empty());
        assert!(acc.contains(2) && !acc.contains(0));
        assert!(acc.interference_of(0) > 0.0);
        acc.clear();
        assert!(acc.is_empty());
        assert_eq!(acc.members(), &[] as &[usize]);
    }

    #[test]
    fn unchecked_insert_tracks_infeasible_sets() {
        // Nested links are mutually infeasible under uniform power; the
        // accumulator must still track their sums faithfully.
        let metric = LineMetric::new(vec![0.0, 10.0, 4.0, 5.0]);
        let inst = Instance::new(metric, vec![Request::new(0, 1), Request::new(2, 3)]).unwrap();
        let params = SinrParams::new(3.0, 1.0).unwrap();
        let eval = inst.evaluator(params, &ObliviousPower::Uniform);
        let view = eval.view(Variant::Bidirectional);
        let acc = ColorAccumulator::with_members(&view, &[0, 1]);
        assert!(!view.is_feasible(&[0, 1]));
        for (pos, &i) in acc.members().iter().enumerate() {
            assert_eq!(acc.sinr_of(pos), view.sinr(i, &[0, 1]));
        }
    }

    #[test]
    fn nodeloss_incremental_matches_naive() {
        let metric = LineMetric::new(vec![0.0, 5.0, 11.0, 18.0, 26.0]);
        let inst = NodeLossInstance::new(metric, vec![1.0, 1.5, 2.0, 1.0, 3.0]).unwrap();
        let eval = inst.sqrt_evaluator(SinrParams::new(2.0, 0.25).unwrap());
        let matrix = GainMatrix::build(&eval);
        for set in all_subsets(inst.len()) {
            for &i in &set {
                assert_eq!(matrix.sinr(i, &set), eval.sinr(i, &set));
            }
            assert_eq!(matrix.is_feasible(&set), eval.is_feasible(&set));
        }
        let mut acc = ColorAccumulator::new(&eval);
        let mut naive: Vec<usize> = Vec::new();
        for i in 0..inst.len() {
            naive.push(i);
            let ok = eval.is_feasible(&naive);
            if !ok {
                naive.pop();
            }
            assert_eq!(acc.try_insert(i), ok);
        }
    }

    #[test]
    fn matrix_accessors_and_memory_estimate() {
        let inst = mixed_instance();
        let params = SinrParams::new(3.0, 1.0).unwrap();
        let eval = inst.evaluator(params, &ObliviousPower::Uniform);
        let matrix = eval.view(Variant::Bidirectional).cached();
        assert_eq!(matrix.len(), 4);
        assert_eq!(matrix.ports(), 2);
        assert_eq!(matrix.row(1, 0).len(), 4);
        assert_eq!(matrix.row(1, 0)[1], 0.0, "diagonal must be zero");
        assert_eq!(GainMatrix::bytes_for(4, 2), 4 * 4 * 2 * 8);
        assert_eq!(GainMatrix::bytes_for(usize::MAX, 2), usize::MAX);
        assert_eq!(GainMatrix::checked_bytes_for(4, 2), Some(4 * 4 * 2 * 8));
        let directed = eval.view(Variant::Directed).cached();
        assert_eq!(directed.ports(), 1);
    }

    #[test]
    fn checked_bytes_for_treats_overflow_as_over_budget() {
        // At the overflow boundary the checked product must vanish instead of
        // wrapping: a wrapped product could slip under any finite budget and
        // wrongly enable the matrix for huge n.
        let boundary = (usize::MAX / 8 / 2).isqrt();
        assert!(GainMatrix::checked_bytes_for(boundary, 2).is_some());
        let overflowing = 1usize << (usize::BITS / 2);
        assert_eq!(GainMatrix::checked_bytes_for(overflowing, 2), None);
        assert_eq!(GainMatrix::bytes_for(overflowing, 2), usize::MAX);
        assert_eq!(GainMatrix::checked_bytes_for(usize::MAX, 1), None);
        // The budget predicate the Scheduler facade uses: overflow is
        // over-budget against any budget.
        let in_budget = GainMatrix::checked_bytes_for(overflowing, 2).is_some_and(|b| b <= 1 << 60);
        assert!(!in_budget);
    }

    #[test]
    fn removal_inverts_insertion() {
        let inst = mixed_instance();
        let params = SinrParams::new(3.0, 1.0).unwrap();
        for power in ObliviousPower::standard_assignments() {
            let eval = inst.evaluator(params, &power);
            for variant in Variant::all() {
                let view = eval.view(variant);
                let mut acc = ColorAccumulator::with_members(&view, &[0, 1, 2, 3]);
                assert!(acc.remove(2));
                assert!(!acc.remove(2), "double removal must report false");
                assert_eq!(acc.members(), &[0, 1, 3]);
                let fresh = ColorAccumulator::with_members(&view, &[0, 1, 3]);
                for pos in 0..acc.len() {
                    let drifted = acc.interference_of(pos);
                    let exact = fresh.interference_of(pos);
                    let scale = drifted.abs().max(exact.abs()).max(1.0);
                    assert!(
                        (drifted - exact).abs() <= 1e-12 * scale,
                        "sums drifted beyond tolerance after removal under {variant}"
                    );
                }
            }
        }
    }

    #[test]
    fn drift_guard_rebuilds_after_configured_interval() {
        let inst = mixed_instance();
        let params = SinrParams::new(3.0, 1.0).unwrap();
        let eval = inst.evaluator(params, &ObliviousPower::SquareRoot);
        let view = eval.view(Variant::Bidirectional);
        let mut acc = ColorAccumulator::with_members(&view, &[0, 1, 2, 3]).with_rebuild_interval(2);
        acc.remove(0);
        assert_eq!(acc.removals_since_rebuild(), 1);
        acc.remove(3);
        // Second removal hits the interval: the guard rebuilt and reset.
        assert_eq!(acc.removals_since_rebuild(), 0);
        // After a rebuild the sums are bit-for-bit those of a fresh fold.
        let fresh = ColorAccumulator::with_members(&view, &[1, 2]);
        for pos in 0..acc.len() {
            assert_eq!(acc.interference_of(pos), fresh.interference_of(pos));
        }
        // An interval of 1 keeps the accumulator exactly fresh.
        let mut exact =
            ColorAccumulator::with_members(&view, &[0, 1, 2, 3]).with_rebuild_interval(1);
        exact.remove(1);
        let fresh = ColorAccumulator::with_members(&view, &[0, 2, 3]);
        for pos in 0..exact.len() {
            assert_eq!(exact.interference_of(pos), fresh.interference_of(pos));
            assert_eq!(exact.sinr_of(pos), fresh.sinr_of(pos));
        }
    }

    #[test]
    fn removal_of_infinite_contribution_triggers_exact_rebuild() {
        // Request 1's sender coincides with request 0's receiver, producing an
        // infinite contribution; removing that member must not leave NaN sums.
        let metric = LineMetric::new(vec![0.0, 1.0, 1.0, 5.0, 40.0, 41.0]);
        let inst = Instance::new(
            metric,
            vec![Request::new(0, 1), Request::new(2, 3), Request::new(4, 5)],
        )
        .unwrap();
        let params = SinrParams::new(3.0, 1.0).unwrap();
        let eval = inst.evaluator(params, &ObliviousPower::Uniform);
        let view = eval.view(Variant::Directed);
        let mut acc = ColorAccumulator::with_members(&view, &[0, 1, 2]);
        assert!(acc.remove(1));
        assert_eq!(
            acc.removals_since_rebuild(),
            0,
            "infinite removal must force a rebuild"
        );
        let fresh = ColorAccumulator::with_members(&view, &[0, 2]);
        for pos in 0..acc.len() {
            assert_eq!(acc.interference_of(pos), fresh.interference_of(pos));
            assert!(!acc.interference_of(pos).is_nan());
        }
    }

    #[test]
    fn clear_resets_drift_guard_state() {
        let inst = mixed_instance();
        let params = SinrParams::new(3.0, 1.0).unwrap();
        let eval = inst.evaluator(params, &ObliviousPower::Uniform);
        let view = eval.view(Variant::Directed);
        let mut acc = ColorAccumulator::with_members(&view, &[0, 1, 2]);
        acc.remove(0);
        assert_eq!(acc.removals_since_rebuild(), 1);
        acc.clear();
        assert_eq!(acc.removals_since_rebuild(), 0);
        assert!(acc.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_rebuild_interval_is_rejected() {
        let inst = mixed_instance();
        let params = SinrParams::new(3.0, 1.0).unwrap();
        let eval = inst.evaluator(params, &ObliviousPower::Uniform);
        let view = eval.view(Variant::Directed);
        let _ = ColorAccumulator::new(&view).with_rebuild_interval(0);
    }

    #[test]
    fn noise_is_carried_through() {
        // With heavy noise even singletons are infeasible; the accumulator
        // must mirror the naive first-fit behaviour of rejecting them while
        // unchecked insertion still works.
        let metric = LineMetric::new(vec![0.0, 1.0, 50.0, 51.0]);
        let inst = Instance::new(metric, vec![Request::new(0, 1), Request::new(2, 3)]).unwrap();
        let params = SinrParams::with_noise(2.0, 1.0, 10.0).unwrap();
        let eval = inst.evaluator(params, &ObliviousPower::Uniform);
        let view = eval.view(Variant::Directed);
        assert!(!view.is_feasible(&[0]));
        let mut acc = ColorAccumulator::new(&view);
        assert!(!acc.try_insert(0));
        acc.insert_unchecked(0);
        assert_eq!(acc.members(), &[0]);
        assert_eq!(acc.sinr_of(0), view.sinr(0, &[0]));
    }

    #[test]
    fn empty_set_queries_are_well_defined() {
        let inst = mixed_instance();
        let params = SinrParams::new(3.0, 1.0).unwrap();
        let eval = inst.evaluator(params, &ObliviousPower::Uniform);
        let view = eval.view(Variant::Bidirectional);
        let matrix = view.cached();
        assert!(matrix.is_feasible(&[]));
        assert_eq!(matrix.max_feasible_gain(&[]), f64::INFINITY);
        let acc = ColorAccumulator::new(&matrix);
        assert!(acc.is_empty());
    }

    #[test]
    fn threaded_matrix_build_is_bit_for_bit_identical_to_serial() {
        let inst = mixed_instance();
        let params = SinrParams::with_noise(2.5, 0.5, 0.01).unwrap();
        for power in ObliviousPower::standard_assignments() {
            let eval = inst.evaluator(params, &power);
            for variant in Variant::all() {
                let view = eval.view(variant);
                let serial = GainMatrix::build(&view);
                for threads in [1usize, 2, 3, 8] {
                    let threaded = GainMatrix::build_with_threads(&view, threads);
                    for i in 0..inst.len() {
                        for port in 0..view.num_ports() {
                            let s: Vec<u64> =
                                serial.row(i, port).iter().map(|v| v.to_bits()).collect();
                            let t: Vec<u64> =
                                threaded.row(i, port).iter().map(|v| v.to_bits()).collect();
                            assert_eq!(
                                s, t,
                                "row ({i}, {port}) diverged at {threads} threads ({variant})"
                            );
                        }
                        assert_eq!(serial.signal(i).to_bits(), threaded.signal(i).to_bits());
                    }
                }
            }
        }
    }

    #[test]
    fn reset_for_matches_a_fresh_accumulator() {
        let inst = mixed_instance();
        let params = SinrParams::new(3.0, 1.0).unwrap();
        let eval = inst.evaluator(params, &ObliviousPower::SquareRoot);
        let view = eval.view(Variant::Bidirectional);
        let mut recycled = ColorAccumulator::new(&view);
        for &i in &[0usize, 1, 2] {
            recycled.insert_unchecked(i);
        }
        recycled.reset_for(&view);
        let mut fresh = ColorAccumulator::new(&view);
        for i in 0..inst.len() {
            assert_eq!(
                recycled.try_insert(i),
                fresh.try_insert(i),
                "recycled and fresh accumulators diverged on {i}"
            );
        }
        assert_eq!(recycled.members(), fresh.members());
        for pos in 0..recycled.len() {
            assert_eq!(
                recycled.sinr_of(pos).to_bits(),
                fresh.sinr_of(pos).to_bits()
            );
        }
    }

    #[test]
    fn gathered_batch_matches_sequential_probes_exactly() {
        // Drive two first-fits over the same cached matrix side by side —
        // one with per-class sequential probes, one through a gathered
        // batch — and require identical verdicts and identical committed
        // sums at every step. The dense matrix is exact (no stored rows),
        // so this also pins the batched entry point's fallback path; the
        // row-walk path is pinned at the sparse tier by
        // `tests/probe_equivalence.rs` and the sparse goldens.
        let inst = mixed_instance();
        let params = SinrParams::new(3.0, 1.0).unwrap();
        for power in ObliviousPower::standard_assignments() {
            let eval = inst.evaluator(params, &power);
            for variant in Variant::all() {
                let view = eval.view(variant);
                let matrix = view.cached();
                let n = inst.len();
                let gain = matrix.beta();
                let mut seq: Vec<ColorAccumulator<'_, GainMatrix>> = Vec::new();
                let mut bat: Vec<ColorAccumulator<'_, GainMatrix>> = Vec::new();
                let mut color_of = vec![NO_COLOR; n];
                let mut batch = ProbeBatch::new();
                for i in 0..n {
                    let seq_color = match seq
                        .iter_mut()
                        .position(|class| class.try_insert_with_gain(i, gain))
                    {
                        Some(c) => c,
                        None => {
                            let mut class = ColorAccumulator::new(&matrix);
                            class.insert_unchecked(i);
                            seq.push(class);
                            seq.len() - 1
                        }
                    };
                    batch.gather(&matrix, i, bat.len(), &color_of);
                    let bat_color = match (0..bat.len())
                        .find(|&c| bat[c].try_insert_with_gain_batched(i, gain, &batch, c))
                    {
                        Some(c) => c,
                        None => {
                            let mut class = ColorAccumulator::new(&matrix);
                            class.insert_unchecked(i);
                            bat.push(class);
                            bat.len() - 1
                        }
                    };
                    assert_eq!(seq_color, bat_color, "placement of {i} diverged");
                    color_of[i] = item_id(bat_color);
                }
                for (s, b) in seq.iter().zip(&bat) {
                    assert_eq!(s.members(), b.members());
                    for pos in 0..s.len() {
                        assert_eq!(
                            s.sinr_of(pos).to_bits(),
                            b.sinr_of(pos).to_bits(),
                            "committed sums diverged ({variant})"
                        );
                    }
                }
            }
        }
    }
}

//! SINR physical-model substrate for the `oblisched` workspace.
//!
//! This crate implements the "physical model" of wireless interference used
//! throughout the paper *Oblivious Interference Scheduling* (Fanghänel,
//! Kesselheim, Räcke, Vöcking; PODC 2009):
//!
//! * [`SinrParams`] — the model parameters: path-loss exponent `α`, gain `β`
//!   and ambient noise `ν`,
//! * [`Request`], [`Instance`] — communication requests (pairs of metric
//!   nodes) and problem instances,
//! * [`power`] — power assignments, in particular the **oblivious**
//!   assignments (uniform, linear, square-root, arbitrary exponent) that the
//!   paper studies,
//! * [`feasibility`] — SINR feasibility of a set of simultaneously scheduled
//!   requests, in both the **directed** and the **bidirectional** variant,
//! * [`engine`] — the **incremental interference engine**: the
//!   [`GainBackend`] contract over tiered backends — a cached
//!   [`GainMatrix`] of pairwise contributions (exact, bit-for-bit the naive
//!   [`Evaluator`] verdicts) and the spatially-pruned
//!   [`SparseGainMatrix`] (conservative verdicts at `O(n)` memory, with a
//!   churn-capable sibling [`SparseChurnMatrix`] for dynamic sessions) —
//!   plus a
//!   [`ColorAccumulator`] that maintains per-color running interference
//!   sums, turning the "can request *i* join color *c*" query from
//!   `O(|c|²)` into `O(|c|)`; the naive path remains the source of truth
//!   for schedule validation,
//! * [`nodeloss`] — the node-loss scheduling problem of §3.2 (splitting
//!   pairs) used by the analysis of the square-root assignment,
//! * [`gain`] — constructive counterparts of Propositions 3 and 4 (trading
//!   gain against the number of colors),
//! * [`schedule`] — colorings of request sets and their validation,
//! * [`measure`] — static interference statistics used as baselines.
//!
//! # Example
//!
//! ```
//! use oblisched_metric::LineMetric;
//! use oblisched_sinr::{Instance, ObliviousPower, Request, SinrParams, Variant};
//!
//! // Two well separated unit-length requests on the line.
//! let metric = LineMetric::new(vec![0.0, 1.0, 100.0, 101.0]);
//! let instance = Instance::new(metric, vec![Request::new(0, 1), Request::new(2, 3)])?;
//! let params = SinrParams::new(3.0, 1.0)?;
//! let eval = instance.evaluator(params, &ObliviousPower::SquareRoot);
//! assert!(eval.is_feasible(Variant::Bidirectional, &[0, 1]));
//! # Ok::<(), oblisched_sinr::SinrError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod error;
pub mod feasibility;
pub mod gain;
pub mod measure;
pub mod nodeloss;
pub mod params;
pub mod power;
pub mod request;
pub mod schedule;

pub use engine::sparse::{SparseChurnMatrix, SparseConfig, SparseGainMatrix};
pub use engine::{
    ColorAccumulator, GainBackend, GainMatrix, IncrementalSystem, ProbeBatch, NO_COLOR,
};
pub use error::SinrError;
pub use feasibility::{Evaluator, InterferenceSystem, Variant};
pub use gain::{extract_feasible_subset, partition_by_gain, rescale_coloring};
pub use nodeloss::{NodeLossEvaluator, NodeLossInstance};
pub use params::SinrParams;
pub use power::{ObliviousPower, PowerScheme, PowerVec};
pub use request::{Instance, Request};
pub use schedule::Schedule;

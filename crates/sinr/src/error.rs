//! Error types for the SINR model.

use std::fmt;

/// Errors produced when constructing instances, power assignments or
/// schedules.
#[derive(Debug, Clone, PartialEq)]
pub enum SinrError {
    /// The path-loss exponent, gain or noise value is outside its legal
    /// range.
    InvalidParams {
        /// Human-readable description of the violated constraint.
        reason: String,
    },
    /// A request references a node that does not exist in the metric.
    NodeOutOfRange {
        /// Index of the offending request.
        request: usize,
        /// The offending node id.
        node: usize,
        /// Number of nodes in the metric.
        len: usize,
    },
    /// A request has sender equal to receiver or the two endpoints coincide
    /// (distance zero), which makes the SINR undefined.
    DegenerateRequest {
        /// Index of the offending request.
        request: usize,
    },
    /// A power vector does not match the number of requests.
    PowerLengthMismatch {
        /// Number of requests in the instance.
        expected: usize,
        /// Number of powers provided.
        actual: usize,
    },
    /// A power value is not a positive finite number.
    InvalidPower {
        /// Index of the offending request/node.
        index: usize,
        /// The offending power value.
        value: f64,
    },
    /// A loss parameter of the node-loss problem is not a positive finite
    /// number.
    InvalidLoss {
        /// Index of the offending node.
        index: usize,
        /// The offending loss value.
        value: f64,
    },
    /// A coloring does not match the number of requests.
    ColoringLengthMismatch {
        /// Number of requests in the instance.
        expected: usize,
        /// Number of colors provided.
        actual: usize,
    },
    /// A color class of a schedule violates the SINR constraints.
    InfeasibleColorClass {
        /// The violating color.
        color: usize,
        /// A request in the class whose constraint is violated.
        request: usize,
    },
    /// The number of losses does not match the metric size in a node-loss
    /// instance.
    LossLengthMismatch {
        /// Number of nodes in the metric.
        expected: usize,
        /// Number of losses provided.
        actual: usize,
    },
    /// A node selection (e.g. a restriction of a node-loss instance)
    /// references a node outside the metric.
    SelectionOutOfRange {
        /// Position of the offending entry in the selection.
        index: usize,
        /// The offending node id.
        node: usize,
        /// Number of nodes in the metric.
        len: usize,
    },
}

impl fmt::Display for SinrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SinrError::InvalidParams { reason } => write!(f, "invalid SINR parameters: {reason}"),
            SinrError::NodeOutOfRange { request, node, len } => write!(
                f,
                "request {request} references node {node} but the metric has only {len} nodes"
            ),
            SinrError::DegenerateRequest { request } => {
                write!(
                    f,
                    "request {request} is degenerate (zero distance between endpoints)"
                )
            }
            SinrError::PowerLengthMismatch { expected, actual } => {
                write!(f, "expected {expected} power values, got {actual}")
            }
            SinrError::InvalidPower { index, value } => {
                write!(
                    f,
                    "power value {value} at index {index} is not positive and finite"
                )
            }
            SinrError::InvalidLoss { index, value } => {
                write!(
                    f,
                    "loss parameter {value} at index {index} is not positive and finite"
                )
            }
            SinrError::ColoringLengthMismatch { expected, actual } => {
                write!(f, "expected {expected} colors, got {actual}")
            }
            SinrError::InfeasibleColorClass { color, request } => {
                write!(
                    f,
                    "color class {color} violates the SINR constraint of request {request}"
                )
            }
            SinrError::LossLengthMismatch { expected, actual } => {
                write!(f, "expected {expected} loss parameters, got {actual}")
            }
            SinrError::SelectionOutOfRange { index, node, len } => write!(
                f,
                "selection entry {index} references node {node} but the metric has only {len} \
                 nodes"
            ),
        }
    }
}

impl std::error::Error for SinrError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_key_facts() {
        let e = SinrError::InvalidParams {
            reason: "alpha < 1".into(),
        };
        assert!(e.to_string().contains("alpha < 1"));
        let e = SinrError::NodeOutOfRange {
            request: 3,
            node: 10,
            len: 4,
        };
        assert!(e.to_string().contains("request 3"));
        let e = SinrError::DegenerateRequest { request: 1 };
        assert!(e.to_string().contains("degenerate"));
        let e = SinrError::PowerLengthMismatch {
            expected: 5,
            actual: 4,
        };
        assert!(e.to_string().contains("5"));
        let e = SinrError::InvalidPower {
            index: 2,
            value: -1.0,
        };
        assert!(e.to_string().contains("-1"));
        let e = SinrError::InvalidLoss {
            index: 2,
            value: f64::NAN,
        };
        assert!(e.to_string().contains("index 2"));
        let e = SinrError::ColoringLengthMismatch {
            expected: 3,
            actual: 2,
        };
        assert!(e.to_string().contains("colors"));
        let e = SinrError::InfeasibleColorClass {
            color: 0,
            request: 7,
        };
        assert!(e.to_string().contains("request 7"));
        let e = SinrError::LossLengthMismatch {
            expected: 3,
            actual: 1,
        };
        assert!(e.to_string().contains("loss"));
        let e = SinrError::SelectionOutOfRange {
            index: 1,
            node: 9,
            len: 4,
        };
        assert!(e.to_string().contains("node 9"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_error<E: std::error::Error + Send + Sync + 'static>() {}
        assert_error::<SinrError>();
    }
}

//! Trading gain against the number of colors (Propositions 3 and 4).
//!
//! Proposition 3 of the paper states that a set that is feasible at gain `γ`
//! contains a subset of at least a `γ/8γ'` fraction that is feasible at a
//! stricter gain `γ' > γ`. Proposition 4 turns this into a re-coloring with
//! `O(γ'/γ · log n)` times more colors.
//!
//! The paper's proofs are existential (and omitted); here we provide greedy
//! constructive counterparts operating on any [`InterferenceSystem`]:
//!
//! * [`extract_feasible_subset`] — first-fit extraction of a `γ'`-feasible
//!   subset. Requests are considered in order of decreasing SINR margin, so
//!   the "easy" requests are kept first.
//! * [`partition_by_gain`] — first-fit partition of a feasible set into
//!   `γ'`-feasible groups; the number of groups plays the role of the `8γ'/γ`
//!   factor.
//! * [`rescale_coloring`] — Proposition 4: apply the partition color class by
//!   color class.
//!
//! Experiment E5 measures the extracted fraction and group counts against the
//! `γ/8γ'` and `O(γ'/γ log n)` bounds.

use crate::engine::{ColorAccumulator, GainBackend};
use crate::feasibility::InterferenceSystem;
use crate::schedule::Schedule;

/// Orders `set` by decreasing SINR against the full set, so that greedy
/// procedures consider the least-interfered items first.
fn by_decreasing_margin<S: InterferenceSystem>(system: &S, set: &[usize]) -> Vec<usize> {
    let mut order: Vec<usize> = set.to_vec();
    let mut margin: Vec<(usize, f64)> = order.iter().map(|&i| (i, system.sinr(i, set))).collect();
    // Total ordering so NaN margins cannot panic the comparator or leave the
    // order unstable; ties keep stable index order (the sort is stable).
    margin.sort_by(|a, b| b.1.total_cmp(&a.1));
    order.clear();
    order.extend(margin.into_iter().map(|(i, _)| i));
    order
}

/// Greedily extracts a subset of `set` that is feasible at the stricter gain
/// `gamma_prime`.
///
/// Items are processed in order of decreasing SINR margin; an item is kept if
/// the kept set remains `gamma_prime`-feasible. The result is therefore
/// always feasible at `gamma_prime`; its size is the quantity Proposition 3
/// lower-bounds by `γ/(8γ') · |set|`, which experiment E5 verifies
/// empirically.
///
/// Returns the extracted subset (a sub-slice of `set`, original indices).
///
/// Runs on the incremental engine, so each admission test costs `O(kept)`
/// contributions; verdicts are exactly those of the naive path. An empty
/// `set` yields an empty subset.
pub fn extract_feasible_subset<S: GainBackend>(
    system: &S,
    set: &[usize],
    gamma_prime: f64,
) -> Vec<usize> {
    let order = by_decreasing_margin(system, set);
    let mut kept = ColorAccumulator::new(system);
    for &i in &order {
        let _ = kept.try_insert_with_gain(i, gamma_prime);
    }
    kept.members().to_vec()
}

/// Partitions `set` into groups, each feasible at gain `gamma_prime`, using
/// first-fit in order of decreasing SINR margin.
///
/// Every item ends up in some group: in the worst case it opens a fresh group
/// of its own, which is feasible because singletons are always feasible when
/// the noise is dominated by the item's own signal. (With heavy noise a
/// singleton can be infeasible at `gamma_prime`; such items still get their
/// own group, mirroring the paper's noise-free analysis.)
pub fn partition_by_gain<S: GainBackend>(
    system: &S,
    set: &[usize],
    gamma_prime: f64,
) -> Vec<Vec<usize>> {
    let order = by_decreasing_margin(system, set);
    let mut groups: Vec<ColorAccumulator<'_, S>> = Vec::new();
    for &i in &order {
        let mut placed = false;
        for group in groups.iter_mut() {
            if group.try_insert_with_gain(i, gamma_prime) {
                placed = true;
                break;
            }
        }
        if !placed {
            let mut group = ColorAccumulator::new(system);
            group.insert_unchecked(i);
            groups.push(group);
        }
    }
    groups.into_iter().map(|g| g.members().to_vec()).collect()
}

/// Proposition 4: refines a coloring that is feasible at the system's gain
/// into one that is feasible at the stricter gain `gamma_prime`, by
/// partitioning every color class with [`partition_by_gain`].
///
/// The input schedule is not required to be feasible — each class is simply
/// re-partitioned — but the guarantee on the number of output colors
/// (`O(γ'/γ · log n)` per input color) corresponds to feasible inputs.
///
/// # Panics
///
/// Panics if the schedule length differs from the system size.
pub fn rescale_coloring<S: GainBackend>(
    system: &S,
    schedule: &Schedule,
    gamma_prime: f64,
) -> Schedule {
    assert_eq!(
        schedule.len(),
        system.len(),
        "schedule must cover the whole system"
    );
    let mut colors = vec![0usize; system.len()];
    let mut next_color = 0usize;
    for class in schedule.classes() {
        let groups = partition_by_gain(system, &class, gamma_prime);
        for group in groups {
            for i in group {
                colors[i] = next_color;
            }
            next_color += 1;
        }
    }
    Schedule::new(colors)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feasibility::Variant;
    use crate::nodeloss::NodeLossInstance;
    use crate::params::SinrParams;
    use crate::power::ObliviousPower;
    use crate::request::{Instance, Request};
    use oblisched_metric::LineMetric;

    /// Well-separated unit links on the line: all simultaneously feasible at
    /// a moderate gain, so gain rescaling has room to work.
    fn spread_instance(n: usize, spacing: f64) -> Instance<LineMetric> {
        let mut coords = Vec::new();
        let mut requests = Vec::new();
        for i in 0..n {
            let base = i as f64 * spacing;
            coords.push(base);
            coords.push(base + 1.0);
            requests.push(Request::new(2 * i, 2 * i + 1));
        }
        Instance::new(LineMetric::new(coords), requests).unwrap()
    }

    #[test]
    fn extraction_returns_feasible_subset() {
        let inst = spread_instance(8, 6.0);
        let params = SinrParams::new(3.0, 0.5).unwrap();
        let eval = inst.evaluator(params, &ObliviousPower::SquareRoot);
        let view = eval.view(Variant::Bidirectional);
        let all: Vec<usize> = (0..8).collect();
        let gamma_prime = 4.0;
        let subset = extract_feasible_subset(&view, &all, gamma_prime);
        assert!(!subset.is_empty());
        assert!(view.is_feasible_with_gain(&subset, gamma_prime));
        // The subset only contains original items, each at most once.
        let mut sorted = subset.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), subset.len());
        assert!(sorted.iter().all(|i| all.contains(i)));
    }

    #[test]
    fn extraction_keeps_everything_when_gain_is_not_stricter() {
        let inst = spread_instance(5, 50.0);
        let params = SinrParams::new(3.0, 1.0).unwrap();
        let eval = inst.evaluator(params, &ObliviousPower::SquareRoot);
        let view = eval.view(Variant::Bidirectional);
        let all: Vec<usize> = (0..5).collect();
        assert!(view.is_feasible(&all));
        let subset = extract_feasible_subset(&view, &all, 1.0);
        assert_eq!(subset.len(), 5);
    }

    #[test]
    fn extraction_satisfies_proposition3_bound_on_spread_instances() {
        // Proposition 3 promises at least a γ/(8γ') fraction; the greedy
        // procedure should comfortably exceed it on benign instances.
        let inst = spread_instance(16, 8.0);
        let params = SinrParams::new(3.0, 0.25).unwrap();
        let eval = inst.evaluator(params, &ObliviousPower::SquareRoot);
        let view = eval.view(Variant::Bidirectional);
        let all: Vec<usize> = (0..16).collect();
        let gamma = view.max_feasible_gain(&all).min(0.25);
        let gamma_prime = 2.0;
        let subset = extract_feasible_subset(&view, &all, gamma_prime);
        let bound = gamma / (8.0 * gamma_prime) * all.len() as f64;
        assert!(
            subset.len() as f64 >= bound,
            "greedy extraction ({}) fell below the Proposition 3 bound ({bound})",
            subset.len()
        );
    }

    #[test]
    fn partition_covers_all_items_with_feasible_groups() {
        let inst = spread_instance(10, 3.0);
        let params = SinrParams::new(3.0, 0.5).unwrap();
        let eval = inst.evaluator(params, &ObliviousPower::SquareRoot);
        let view = eval.view(Variant::Bidirectional);
        let all: Vec<usize> = (0..10).collect();
        let gamma_prime = 3.0;
        let groups = partition_by_gain(&view, &all, gamma_prime);
        let mut covered: Vec<usize> = groups.iter().flatten().copied().collect();
        covered.sort_unstable();
        assert_eq!(covered, all);
        for group in &groups {
            assert!(view.is_feasible_with_gain(group, gamma_prime));
        }
        // Each group is non-empty.
        assert!(groups.iter().all(|g| !g.is_empty()));
    }

    #[test]
    fn rescale_coloring_produces_stricter_feasible_schedule() {
        let inst = spread_instance(12, 4.0);
        let params = SinrParams::new(3.0, 0.5).unwrap();
        let eval = inst.evaluator(params, &ObliviousPower::SquareRoot);
        let view = eval.view(Variant::Bidirectional);
        // Start from the all-one-color schedule (feasible at the base gain on
        // this spread-out instance or not — rescaling handles both).
        let base = Schedule::new(vec![0; 12]);
        let gamma_prime = 2.0;
        let rescaled = rescale_coloring(&view, &base, gamma_prime);
        assert_eq!(rescaled.len(), 12);
        for class in rescaled.classes() {
            assert!(view.is_feasible_with_gain(&class, gamma_prime));
        }
        // Stricter gain needs at least as many colors.
        assert!(rescaled.num_colors() >= base.num_colors());
    }

    #[test]
    fn rescale_coloring_keeps_color_count_moderate() {
        // Proposition 4 bound: O(γ'/γ · log n) per input color. For this
        // spread instance with γ'/γ = 4 and n = 12 the greedy partition should
        // stay well within, say, 4 · γ'/γ · log2(n) groups.
        let inst = spread_instance(12, 10.0);
        let params = SinrParams::new(3.0, 0.5).unwrap();
        let eval = inst.evaluator(params, &ObliviousPower::SquareRoot);
        let view = eval.view(Variant::Bidirectional);
        let base = Schedule::new(vec![0; 12]);
        let rescaled = rescale_coloring(&view, &base, 2.0);
        let bound = (4.0 * 4.0 * (12f64).log2()).ceil() as usize;
        assert!(rescaled.num_colors() <= bound);
    }

    #[test]
    fn works_on_node_loss_systems_too() {
        let metric = LineMetric::new(vec![0.0, 5.0, 11.0, 18.0, 26.0]);
        let node_loss = NodeLossInstance::new(metric, vec![1.0, 1.5, 2.0, 1.0, 3.0]).unwrap();
        let eval = node_loss.sqrt_evaluator(SinrParams::new(2.0, 0.25).unwrap());
        let all: Vec<usize> = (0..5).collect();
        let subset = extract_feasible_subset(&eval, &all, 1.0);
        assert!(eval.is_feasible_with_gain(&subset, 1.0));
        let groups = partition_by_gain(&eval, &all, 1.0);
        let total: usize = groups.iter().map(|g| g.len()).sum();
        assert_eq!(total, 5);
    }

    #[test]
    fn empty_set_edge_cases() {
        let inst = spread_instance(4, 5.0);
        let params = SinrParams::default();
        let eval = inst.evaluator(params, &ObliviousPower::Uniform);
        let view = eval.view(Variant::Bidirectional);
        // Extraction and partition of the empty set are empty, not errors.
        assert!(extract_feasible_subset(&view, &[], 2.0).is_empty());
        assert!(partition_by_gain(&view, &[], 2.0).is_empty());
        // The empty set is vacuously feasible at every gain.
        assert_eq!(view.max_feasible_gain(&[]), f64::INFINITY);
        assert!(view.is_feasible_with_gain(&[], f64::MAX));
    }

    #[test]
    fn rescale_handles_empty_schedule() {
        let metric = LineMetric::new(vec![0.0, 1.0]);
        let inst = Instance::new(metric, vec![]).unwrap();
        let eval = inst.evaluator(SinrParams::default(), &ObliviousPower::Uniform);
        let view = eval.view(Variant::Directed);
        let rescaled = rescale_coloring(&view, &Schedule::new(vec![]), 2.0);
        assert!(rescaled.is_empty());
        assert_eq!(rescaled.num_colors(), 0);
    }

    #[test]
    fn rescale_handles_singleton_color_classes() {
        // A sequential schedule has only singleton classes; rescaling to any
        // stricter gain keeps them singleton (without noise singletons are
        // feasible at every finite gain).
        let inst = spread_instance(3, 2.0);
        let eval = inst.evaluator(SinrParams::new(3.0, 1.0).unwrap(), &ObliviousPower::Uniform);
        let view = eval.view(Variant::Bidirectional);
        let base = Schedule::sequential(3);
        let rescaled = rescale_coloring(&view, &base, 1e6);
        assert_eq!(rescaled.num_colors(), 3);
        assert_eq!(rescaled.len(), 3);
        for class in rescaled.classes() {
            assert_eq!(class.len(), 1);
        }
    }

    #[test]
    fn singleton_set_max_feasible_gain_and_extraction() {
        let inst = spread_instance(2, 8.0);
        let params = SinrParams::new(3.0, 1.0).unwrap();
        let eval = inst.evaluator(params, &ObliviousPower::SquareRoot);
        let view = eval.view(Variant::Bidirectional);
        // A noise-free singleton has infinite max feasible gain and survives
        // extraction at any gain.
        assert_eq!(view.max_feasible_gain(&[1]), f64::INFINITY);
        assert_eq!(extract_feasible_subset(&view, &[1], 1e12), vec![1]);
        assert_eq!(partition_by_gain(&view, &[1], 1e12), vec![vec![1]]);
    }

    #[test]
    #[should_panic(expected = "schedule must cover")]
    fn rescale_panics_on_length_mismatch() {
        let inst = spread_instance(3, 5.0);
        let params = SinrParams::default();
        let eval = inst.evaluator(params, &ObliviousPower::Uniform);
        let view = eval.view(Variant::Directed);
        let bad = Schedule::new(vec![0, 0]);
        let _ = rescale_coloring(&view, &bad, 2.0);
    }
}

//! The spatially-pruned sparse interference backend.
//!
//! The dense [`GainMatrix`](super::GainMatrix) costs `8 · ports · n²` bytes,
//! which blows any reasonable memory budget near `n ≈ 2000` and leaves large
//! instances on the slow uncached path. In *metric* instances the far field
//! is harmless: a polynomial path loss `d^α` makes the contribution of a
//! request at distance `d` decay like `d^{−α}`, so almost all of the `n²`
//! pairs are individually negligible. [`SparseGainMatrix`] exploits that:
//!
//! * requests are bucketed into a **uniform spatial grid** (with a coarser
//!   supertile level on top) keyed by their interfering endpoints;
//! * each row `(i, port)` stores, sorted by interferer, only the
//!   contributions at least the row's **cutoff**
//!   `cutoff_fraction · signal(i) / β`; everything below it — individual
//!   near-field runts and whole far-away (super)tiles, bounded through the
//!   grid aggregates without ever being computed — is *dropped*;
//! * what was dropped is **conservatively accounted**: the row tracks the
//!   total dropped mass and the largest single dropped contribution, and the
//!   [`ColorAccumulator`](super::ColorAccumulator) adds
//!   `min(total mass, dropped members · largest)` back onto its running sums
//!   before any feasibility comparison.
//!
//! The result is the engine's third tier (naive → dense incremental →
//! sparse pruned): `O(n)` memory at fixed density and cutoff, verdicts that
//! are **never non-conservative** — a color class accepted through the
//! sparse backend is always feasible for the exact evaluator, proven by the
//! property tests in `tests/properties.rs` — at the price of occasionally
//! rejecting a borderline join the exact system would accept (costing
//! colors, not correctness). The [`strict`](SparseConfig::strict) mode
//! buys those verdicts back by re-checking borderline rejections through
//! un-pruned contributions.
//!
//! All stored values, dropped masses and exact re-checks are inflated by a
//! relative `1e-12` so that the conservativeness guarantee survives the
//! last-ulp divergence between this module's position-based arithmetic and
//! the naive evaluator's metric-based arithmetic (identical for
//! [`EuclideanSpace<2>`](oblisched_metric::EuclideanSpace), one ulp apart
//! for [`LineMetric`](oblisched_metric::LineMetric)).
//!
//! [`SparseGainMatrix`] is batch-only: grid aggregates, rows and pads are
//! built once and never change. Dynamic sessions use the
//! [`churn`] submodule's [`SparseChurnMatrix`], which maintains the same
//! pruning structure incrementally under arrivals and departures.
//!
//! # Example
//!
//! ```
//! use oblisched_metric::LineMetric;
//! use oblisched_sinr::engine::sparse::{SparseConfig, SparseGainMatrix};
//! use oblisched_sinr::{ColorAccumulator, Instance, InterferenceSystem, ObliviousPower,
//!     Request, SinrParams, Variant};
//!
//! let metric = LineMetric::new(vec![0.0, 1.0, 50.0, 51.0, 100.0, 101.0]);
//! let instance = Instance::new(
//!     metric,
//!     vec![Request::new(0, 1), Request::new(2, 3), Request::new(4, 5)],
//! )?;
//! let eval = instance.evaluator(SinrParams::new(3.0, 1.0)?, &ObliviousPower::SquareRoot);
//! let view = eval.view(Variant::Bidirectional);
//! let sparse = SparseGainMatrix::build(&view, &SparseConfig::default());
//!
//! let mut class = ColorAccumulator::new(&sparse);
//! for i in 0..3 {
//!     if class.try_insert(i) {
//!         // Conservative: whatever the sparse backend accepts, the naive
//!         // evaluator accepts too.
//!         assert!(view.is_feasible(class.members()));
//!     }
//! }
//! # Ok::<(), oblisched_sinr::SinrError>(())
//! ```

use super::{
    approx_f64, item_id, item_index, GainBackend, IncrementalSystem, RowRef, SparseEntry, MAX_PORTS,
};
use crate::feasibility::{InterferenceSystem, Variant, VariantView};
use crate::params::SinrParams;
use oblisched_metric::{MetricSpace, PlanarMetric};

pub mod churn;

pub use churn::{SparseChurnMatrix, DEFAULT_REFRESH_INTERVAL};

/// Relative inflation applied to every stored contribution, dropped-mass
/// bound and exact re-check, so conservativeness survives last-ulp
/// divergence from the naive evaluator's arithmetic.
const SAFETY: f64 = 1.0 + 1e-12;

/// Side length of a supertile, in tiles. Far-field pruning first tries to
/// discard a whole supertile through its aggregate bounds and only descends
/// to individual tiles near the cutoff boundary, which keeps the per-row
/// build cost at `O(supertiles + boundary tiles + near entries)`.
const SUPER: usize = 4;

/// A specialised path-loss evaluator: `d^α` through plain multiplications
/// for the integer exponents the experiments use (`powf` costs ~10× a
/// multiply, and the build evaluates millions of losses). The ulp-level
/// divergence from [`SinrParams::loss`]'s `powf` is covered by the
/// [`SAFETY`] inflation, so conservativeness is unaffected.
#[derive(Debug, Clone, Copy)]
enum FastLoss {
    One,
    Two,
    Three,
    Four,
    General(f64),
}

impl FastLoss {
    fn for_alpha(alpha: f64) -> FastLoss {
        if alpha == 1.0 {
            FastLoss::One
        } else if alpha == 2.0 {
            FastLoss::Two
        } else if alpha == 3.0 {
            FastLoss::Three
        } else if alpha == 4.0 {
            FastLoss::Four
        } else {
            FastLoss::General(alpha)
        }
    }

    /// `d^α` from the *squared* distance, saving the square root where the
    /// exponent allows it.
    #[inline]
    fn loss_sq(&self, d_sq: f64) -> f64 {
        match *self {
            FastLoss::One => d_sq.sqrt(),
            FastLoss::Two => d_sq,
            FastLoss::Three => d_sq * d_sq.sqrt(),
            FastLoss::Four => d_sq * d_sq,
            FastLoss::General(alpha) => d_sq.powf(alpha * 0.5),
        }
    }

    /// `p / d^α` from the squared distance, infinite at distance zero
    /// (matching [`SinrParams::received_strength`]).
    #[inline]
    fn strength_sq(&self, power: f64, d_sq: f64) -> f64 {
        let loss = self.loss_sq(d_sq);
        if loss == 0.0 {
            f64::INFINITY
        } else {
            power / loss
        }
    }
}

/// Construction knobs of the [`SparseGainMatrix`].
///
/// Serializable so job files (`SolveRequest` in `oblisched`) can pin a
/// sparse profile as data.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SparseConfig {
    /// Per-row cutoff as a fraction of the row's interference budget
    /// (`signal / β`): contributions below `cutoff_fraction · signal(i) / β`
    /// are dropped from row `i` and covered by the dropped-mass bound.
    /// `0.0` disables pruning (every pair is stored — the dense verdicts at
    /// sparse prices, useful for testing). Default `1e-3`.
    pub cutoff_fraction: f64,
    /// Target number of grid entries (interfering endpoints) per tile; the
    /// tile side is derived from it and the deployment's density. Default
    /// `8.0`.
    pub tile_occupancy: f64,
    /// When `true`, borderline verdicts (rejected with the dropped-mass pad,
    /// accepted without it) are settled by re-checking the class through
    /// un-pruned contributions (`O(|class|²)` per borderline). Recovers
    /// most of the colors conservativeness costs. Default `false`.
    pub strict: bool,
    /// When `true` (the default), the two ports of a bidirectional request
    /// are folded into a single row storing `max(port contributions)` per
    /// pair. Since `max_port Σ_j v ≤ Σ_j max_port v`, folded sums
    /// overestimate the worst-port interference — still conservative —
    /// while halving build time, probe cost and memory. Costs some extra
    /// colors on instances where the two endpoints hear very different
    /// interferers; set to `false` for exact per-port rows. Irrelevant for
    /// the directed variant (one port either way).
    pub fold_ports: bool,
    /// Number of threads used to build the rows (`0` = one per available
    /// core). The build output is identical for every thread count. Default
    /// `1`.
    pub build_threads: usize,
}

impl Default for SparseConfig {
    fn default() -> Self {
        Self {
            cutoff_fraction: 1e-3,
            tile_occupancy: 8.0,
            strict: false,
            fold_ports: true,
            build_threads: 1,
        }
    }
}

impl SparseConfig {
    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics if `cutoff_fraction` is negative or not finite, or if
    /// `tile_occupancy` is not positive and finite.
    fn validate(&self) {
        assert!(
            self.cutoff_fraction.is_finite() && self.cutoff_fraction >= 0.0,
            "cutoff fraction must be finite and non-negative"
        );
        assert!(
            self.tile_occupancy.is_finite() && self.tile_occupancy > 0.0,
            "tile occupancy must be finite and positive"
        );
    }
}

/// One interfering endpoint in the spatial grid: its position, its request
/// and that request's transmission power.
#[derive(Debug, Clone, Copy)]
struct GridEntry {
    pos: [f64; 2],
    item: u32,
    power: f64,
}

/// Axis-aligned bounding box of the entries actually assigned to a tile (or
/// supertile). Distances are measured against this box, never against the
/// nominal tile rectangle, so clamped boundary entries can never make the
/// pruning bound overshoot.
#[derive(Debug, Clone, Copy)]
struct BBox {
    min: [f64; 2],
    max: [f64; 2],
}

impl BBox {
    const EMPTY: BBox = BBox {
        min: [f64::INFINITY; 2],
        max: [f64::NEG_INFINITY; 2],
    };

    fn grow(&mut self, p: [f64; 2]) {
        self.min = [self.min[0].min(p[0]), self.min[1].min(p[1])];
        self.max = [self.max[0].max(p[0]), self.max[1].max(p[1])];
    }

    fn merge(&mut self, other: &BBox) {
        self.min = [self.min[0].min(other.min[0]), self.min[1].min(other.min[1])];
        self.max = [self.max[0].max(other.max[0]), self.max[1].max(other.max[1])];
    }

    /// Lower bound on the *squared* distance from `p` to any point inside
    /// the box (zero when `p` is inside).
    fn distance_sq_from(&self, p: [f64; 2]) -> f64 {
        let dx = (self.min[0] - p[0]).max(p[0] - self.max[0]).max(0.0);
        let dy = (self.min[1] - p[1]).max(p[1] - self.max[1]).max(0.0);
        dx * dx + dy * dy
    }
}

/// The uniform spatial grid over interfering endpoints, with per-tile and
/// per-supertile power aggregates for far-field pruning.
#[derive(Debug)]
struct SpatialGrid {
    cols: usize,
    rows: usize,
    /// CSR layout: entries of tile `t` are `entries[offsets[t]..offsets[t+1]]`.
    offsets: Vec<usize>,
    entries: Vec<GridEntry>,
    tile_bbox: Vec<BBox>,
    tile_power_sum: Vec<f64>,
    tile_power_max: Vec<f64>,
    super_cols: usize,
    super_rows: usize,
    super_bbox: Vec<BBox>,
    super_power_sum: Vec<f64>,
    super_power_max: Vec<f64>,
}

/// Saturating `f64 → usize` for grid sizing and cell coordinates.
///
/// Positions and cell sizes are finite by construction (instances validate
/// their coordinates), and saturation is the *intended* behaviour for
/// degenerate ratios: oversized dimension guesses fail the tile cap and
/// retry with a doubled cell, and cell coordinates are clamped to the grid
/// edge by the callers.
#[inline]
fn grid_index(x: f64) -> usize {
    debug_assert!(!x.is_nan(), "grid arithmetic produced NaN");
    // oblint::allow(lossy-cast-in-engine): saturating by design — see the doc comment above.
    x as usize
}

impl SpatialGrid {
    fn build(points: &[GridEntry], occupancy: f64) -> SpatialGrid {
        let mut bbox = BBox::EMPTY;
        for e in points {
            bbox.grow(e.pos);
        }
        let (width, height) = if points.is_empty() {
            (0.0, 0.0)
        } else {
            (bbox.max[0] - bbox.min[0], bbox.max[1] - bbox.min[1])
        };
        // The tile count must scale with the number of points, never with
        // the spatial extent: collinear point sets (every `LineMetric`
        // instance has y ≡ 0, so zero bounding-box area) fall back to the
        // 1-D density, and the hard cap below bounds the tile table for any
        // geometry — a nested chain spans 2ⁿ length units with only n
        // requests, and an extent-derived grid would try to allocate a tile
        // per unit.
        let area = width * height;
        let cell = if points.is_empty() {
            1.0
        } else {
            let by_area = if area > 0.0 {
                (occupancy * area / approx_f64(points.len())).sqrt()
            } else {
                0.0
            };
            let extent = width.max(height);
            let by_line = if extent > 0.0 {
                occupancy * extent / approx_f64(points.len())
            } else {
                1.0
            };
            by_area.max(by_line).max(1e-9)
        };
        let tile_cap = points.len().saturating_mul(4).max(1024);
        let dims = |cell: f64| -> (usize, usize) {
            // The float→usize conversion saturates, so absurd ratios simply
            // fail the cap check and double the cell again.
            (
                grid_index((width / cell).ceil()).max(1),
                grid_index((height / cell).ceil()).max(1),
            )
        };
        let mut cell = cell;
        let (mut cols, mut rows) = dims(cell);
        while cols.saturating_mul(rows) > tile_cap {
            cell *= 2.0;
            (cols, rows) = dims(cell);
        }
        let tile_of = |pos: [f64; 2]| -> usize {
            let cx = grid_index((pos[0] - bbox.min[0]) / cell).min(cols - 1);
            let cy = grid_index((pos[1] - bbox.min[1]) / cell).min(rows - 1);
            cy * cols + cx
        };

        let num_tiles = cols * rows;
        let mut counts = vec![0usize; num_tiles];
        for e in points {
            counts[tile_of(e.pos)] += 1;
        }
        let mut offsets = Vec::with_capacity(num_tiles + 1);
        let mut acc = 0usize;
        offsets.push(0);
        for &c in &counts {
            acc += c;
            offsets.push(acc);
        }
        let mut cursor = offsets.clone();
        let mut entries = vec![
            GridEntry {
                pos: [0.0; 2],
                item: 0,
                power: 0.0
            };
            points.len()
        ];
        let mut tile_bbox = vec![BBox::EMPTY; num_tiles];
        let mut tile_power_sum = vec![0.0f64; num_tiles];
        let mut tile_power_max = vec![0.0f64; num_tiles];
        for e in points {
            let t = tile_of(e.pos);
            entries[cursor[t]] = *e;
            cursor[t] += 1;
            tile_bbox[t].grow(e.pos);
            tile_power_sum[t] += e.power;
            tile_power_max[t] = tile_power_max[t].max(e.power);
        }

        let super_cols = cols.div_ceil(SUPER);
        let super_rows = rows.div_ceil(SUPER);
        let num_super = super_cols * super_rows;
        let mut super_bbox = vec![BBox::EMPTY; num_super];
        let mut super_power_sum = vec![0.0f64; num_super];
        let mut super_power_max = vec![0.0f64; num_super];
        for ty in 0..rows {
            for tx in 0..cols {
                let t = ty * cols + tx;
                if tile_power_sum[t] == 0.0 {
                    continue;
                }
                let s = (ty / SUPER) * super_cols + tx / SUPER;
                super_bbox[s].merge(&tile_bbox[t]);
                super_power_sum[s] += tile_power_sum[t];
                super_power_max[s] = super_power_max[s].max(tile_power_max[t]);
            }
        }

        SpatialGrid {
            cols,
            rows,
            offsets,
            entries,
            tile_bbox,
            tile_power_sum,
            tile_power_max,
            super_cols,
            super_rows,
            super_bbox,
            super_power_sum,
            super_power_max,
        }
    }
}

/// A spatially-pruned contribution cache implementing the engine's
/// [`GainBackend`] contract with conservative pruning accounting.
///
/// Built once per (instance, power assignment, variant) from a
/// [`VariantView`] over a [`PlanarMetric`]; self-contained afterwards (the
/// positions, powers and parameters needed for strict re-checks are copied
/// in). Memory is `O(stored entries)` — at a fixed deployment density and
/// cutoff that is `O(n)`, against the dense matrix's `O(n²)`. See the
/// [module docs](self) for the pruning and conservativeness story.
#[derive(Debug, Clone)]
pub struct SparseGainMatrix {
    n: usize,
    ports: usize,
    variant: Variant,
    /// Whether the bidirectional ports were folded into one row (see
    /// [`SparseConfig::fold_ports`]).
    folded: bool,
    params: SinrParams,
    fast: FastLoss,
    beta: f64,
    strict: bool,
    signals: Vec<f64>,
    powers: Vec<f64>,
    senders: Vec<[f64; 2]>,
    receivers: Vec<[f64; 2]>,
    /// CSR rows in structure-of-arrays form: row `(i, port)` is
    /// `cols[offsets[i * ports + port]..offsets[.. + 1]]` (sorted interferer
    /// indices) with its values in the parallel range of `vals`. The split
    /// packs twice as many indices per cache line as the former interleaved
    /// `Vec<SparseEntry>` and drops the per-entry footprint from 16 to 12
    /// bytes (no padding).
    offsets: Vec<usize>,
    cols: Vec<u32>,
    vals: Vec<f64>,
    /// Per-row upper bound on the total dropped contribution mass.
    dropped_mass: Vec<f64>,
    /// Per-row upper bound on any single dropped contribution.
    dropped_cap: Vec<f64>,
}

/// The per-row output of the builder: stored entries plus the dropped-mass
/// accounting of each port.
struct RowData {
    entries: [Vec<SparseEntry>; MAX_PORTS],
    mass: [f64; MAX_PORTS],
    cap: [f64; MAX_PORTS],
}

impl RowData {
    /// The sanctioned per-entry pad update: folds one already
    /// SAFETY-inflated pruned contribution into the port's dropped-mass pad
    /// and cap. Every pad write outside the tile-aggregate bounds must route
    /// through here (`oblint`'s missing-safety-inflation rule), so the
    /// inflation discipline lives in one place.
    #[inline]
    fn pad_absorb(&mut self, port: usize, inflated: f64) {
        // oblint::allow(missing-safety-inflation): `inflated` is SAFETY-inflated by every caller — this helper IS the sanctioned pad entry point.
        self.mass[port] += inflated;
        // oblint::allow(missing-safety-inflation): same contract as the mass update above.
        self.cap[port] = self.cap[port].max(inflated);
    }
}

impl SparseGainMatrix {
    /// Builds the pruned contribution cache of `view` over a planar metric.
    ///
    /// Runs in `O(n · (supertiles + boundary tiles) + stored entries)` time;
    /// with [`build_threads`](SparseConfig::build_threads) > 1 the rows are
    /// computed in parallel (the result is identical for every thread
    /// count).
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see [`SparseConfig`]).
    pub fn build<M: MetricSpace + PlanarMetric>(
        view: &VariantView<'_, '_, M>,
        config: &SparseConfig,
    ) -> Self {
        config.validate();
        let eval = view.evaluator();
        let instance = eval.instance();
        let metric = instance.metric();
        let n = instance.len();
        let variant = view.variant();
        let folded = config.fold_ports && variant == Variant::Bidirectional;
        let ports = match variant {
            Variant::Directed => 1,
            Variant::Bidirectional if folded => 1,
            Variant::Bidirectional => 2,
        };
        let params = eval.params();
        let beta = params.beta();
        let signals: Vec<f64> = (0..n).map(|i| eval.signal(i)).collect();
        let powers: Vec<f64> = eval.powers().to_vec();
        let senders: Vec<[f64; 2]> = (0..n)
            .map(|i| metric.position(instance.request(i).sender))
            .collect();
        let receivers: Vec<[f64; 2]> = (0..n)
            .map(|i| metric.position(instance.request(i).receiver))
            .collect();

        // Grid over the *interfering* endpoints: the sender in the directed
        // variant (only senders create interference there), both endpoints
        // in the bidirectional one (the worst endpoint transmits).
        let mut grid_points: Vec<GridEntry> = Vec::with_capacity(n * ports);
        for i in 0..n {
            grid_points.push(GridEntry {
                pos: senders[i],
                item: item_id(i),
                power: powers[i],
            });
            if variant == Variant::Bidirectional {
                grid_points.push(GridEntry {
                    pos: receivers[i],
                    item: item_id(i),
                    power: powers[i],
                });
            }
        }
        let grid = SpatialGrid::build(&grid_points, config.tile_occupancy);

        let mut matrix = Self {
            n,
            ports,
            variant,
            folded,
            params,
            fast: FastLoss::for_alpha(params.alpha()),
            beta,
            strict: config.strict,
            signals,
            powers,
            senders,
            receivers,
            offsets: Vec::new(),
            cols: Vec::new(),
            vals: Vec::new(),
            dropped_mass: vec![0.0; n * ports],
            dropped_cap: vec![0.0; n * ports],
        };

        let threads = match config.build_threads {
            0 => std::thread::available_parallelism().map_or(1, |p| p.get()),
            t => t,
        };
        let rows: Vec<RowData> = if threads <= 1 || n < 2 * threads {
            let mut seen = vec![u32::MAX; n];
            (0..n)
                .map(|i| matrix.build_row(&grid, config, i, &mut seen))
                .collect()
        } else {
            // Work-stealing chunked build: workers claim fixed-size chunks
            // off a shared counter (balancing the load when dense regions
            // make some rows much costlier than others), return
            // `(start, rows)` parts, and the parts are reassembled in index
            // order — the output is identical for every thread count.
            let chunk = n.div_ceil(threads * 8).max(16);
            let next = std::sync::atomic::AtomicUsize::new(0);
            let matrix_ref = &matrix;
            let grid_ref = &grid;
            let next_ref = &next;
            let mut parts: Vec<(usize, Vec<RowData>)> = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..threads)
                    .map(|_| {
                        scope.spawn(move || {
                            let mut seen = vec![u32::MAX; matrix_ref.n];
                            let mut mine: Vec<(usize, Vec<RowData>)> = Vec::new();
                            loop {
                                let start =
                                    next_ref.fetch_add(chunk, std::sync::atomic::Ordering::Relaxed);
                                if start >= n {
                                    break;
                                }
                                let end = (start + chunk).min(n);
                                let rows = (start..end)
                                    .map(|i| matrix_ref.build_row(grid_ref, config, i, &mut seen))
                                    .collect();
                                mine.push((start, rows));
                            }
                            mine
                        })
                    })
                    .collect();
                let mut parts = Vec::new();
                for h in handles {
                    match h.join() {
                        Ok(mine) => parts.extend(mine),
                        Err(payload) => std::panic::resume_unwind(payload),
                    }
                }
                parts
            });
            parts.sort_unstable_by_key(|&(start, _)| start);
            parts.into_iter().flat_map(|(_, rows)| rows).collect()
        };

        matrix.offsets.reserve(n * ports + 1);
        matrix.offsets.push(0);
        for (i, row) in rows.iter().enumerate() {
            for port in 0..ports {
                for e in &row.entries[port] {
                    matrix.cols.push(e.j);
                    matrix.vals.push(e.v);
                }
                matrix.offsets.push(matrix.cols.len());
                // oblint::allow(missing-safety-inflation): transfers the builder's already-inflated pads into the CSR arrays verbatim.
                matrix.dropped_mass[i * ports + port] = row.mass[port];
                // oblint::allow(missing-safety-inflation): same transfer as the mass above.
                matrix.dropped_cap[i * ports + port] = row.cap[port];
            }
        }
        matrix
    }

    /// Computes the stored entries and dropped-mass accounting of one item's
    /// rows. `seen` is an epoch-stamped scratch array deduplicating requests
    /// whose two endpoints fall into different visited tiles.
    fn build_row(
        &self,
        grid: &SpatialGrid,
        config: &SparseConfig,
        i: usize,
        seen: &mut [u32],
    ) -> RowData {
        let mut row = RowData {
            entries: [Vec::new(), Vec::new()],
            mass: [0.0; MAX_PORTS],
            cap: [0.0; MAX_PORTS],
        };
        let cutoff = config.cutoff_fraction * self.signals[i] / self.beta;
        // One traversal covers every port of the item: the pruning decision
        // uses the closest anchor (conservative for all ports), and visited
        // entries are evaluated for each port at once. Anchors are where
        // interference arrives — independent of folding, which only changes
        // how many rows the values land in.
        let (anchors, num_anchors) = self.traversal_anchors(i);
        let epoch = item_id(i);
        // Adds a (super)tile's aggregate bound to the per-port dropped
        // accounting; returns false when the tile is too close (or too
        // strong) to prune and must be descended into.
        let prune = |row: &mut RowData, bbox: &BBox, power_sum: f64, power_max: f64| -> bool {
            let mut d_sq = [0.0f64; MAX_PORTS];
            let mut d_min = f64::INFINITY;
            for (a, slot) in d_sq.iter_mut().enumerate().take(num_anchors) {
                *slot = bbox.distance_sq_from(anchors[a]);
                d_min = d_min.min(*slot);
            }
            if d_min <= 0.0 {
                return false;
            }
            let worst = SAFETY * self.fast.strength_sq(power_max, d_min);
            if worst >= cutoff {
                return false;
            }
            // Folded rows bound both true ports at once through the closest
            // anchor; per-port rows use their own anchor's distance.
            for (port, &anchor_d) in d_sq.iter().enumerate().take(self.ports) {
                let d = if self.folded { d_min } else { anchor_d };
                row.mass[port] += SAFETY * self.fast.strength_sq(power_sum, d);
                row.cap[port] = row.cap[port].max(SAFETY * self.fast.strength_sq(power_max, d));
            }
            true
        };
        for sy in 0..grid.super_rows {
            for sx in 0..grid.super_cols {
                let s = sy * grid.super_cols + sx;
                if grid.super_power_sum[s] == 0.0 {
                    continue;
                }
                if prune(
                    &mut row,
                    &grid.super_bbox[s],
                    grid.super_power_sum[s],
                    grid.super_power_max[s],
                ) {
                    continue;
                }
                for ty in (sy * SUPER)..((sy + 1) * SUPER).min(grid.rows) {
                    for tx in (sx * SUPER)..((sx + 1) * SUPER).min(grid.cols) {
                        let t = ty * grid.cols + tx;
                        if grid.tile_power_sum[t] == 0.0 {
                            continue;
                        }
                        if prune(
                            &mut row,
                            &grid.tile_bbox[t],
                            grid.tile_power_sum[t],
                            grid.tile_power_max[t],
                        ) {
                            continue;
                        }
                        for e in &grid.entries[grid.offsets[t]..grid.offsets[t + 1]] {
                            let j = item_index(e.item);
                            if j == i || seen[j] == epoch {
                                continue;
                            }
                            seen[j] = epoch;
                            for port in 0..self.ports {
                                let v = SAFETY * self.raw_contribution(i, port, j);
                                if v >= cutoff {
                                    row.entries[port].push(SparseEntry { j: e.item, v });
                                } else {
                                    row.pad_absorb(port, v);
                                }
                            }
                        }
                    }
                }
            }
        }
        for entries in row.entries.iter_mut().take(self.ports) {
            entries.sort_unstable_by_key(|e| e.j);
        }
        row
    }

    /// The positions where interference arrives at item `i` — the receiver
    /// in the directed variant, both endpoints in the bidirectional one —
    /// used by the grid traversal's pruning decisions. Independent of port
    /// folding.
    fn traversal_anchors(&self, i: usize) -> ([[f64; 2]; MAX_PORTS], usize) {
        match self.variant {
            Variant::Directed => ([self.receivers[i], self.receivers[i]], 1),
            Variant::Bidirectional => ([self.senders[i], self.receivers[i]], 2),
        }
    }

    /// The un-pruned contribution of `j` at `port` of `i`, recomputed from
    /// the copied positions with the same arithmetic as the naive evaluator
    /// (Euclidean distance, loss of the closer endpoint in the
    /// bidirectional variant; the worse port when the rows are folded).
    fn raw_contribution(&self, i: usize, port: usize, j: usize) -> f64 {
        if j == i {
            return 0.0;
        }
        // `d^α` is monotone, so the bidirectional min-of-losses equals the
        // loss of the closer endpoint, and the folded max-of-ports equals
        // the loss at the closest (endpoint, anchor) pair.
        let d_sq = match self.variant {
            Variant::Directed => distance_sq(self.senders[j], self.receivers[i]),
            Variant::Bidirectional => {
                let to = |w: [f64; 2]| {
                    distance_sq(self.senders[j], w).min(distance_sq(self.receivers[j], w))
                };
                if self.folded {
                    to(self.senders[i]).min(to(self.receivers[i]))
                } else if port == 0 {
                    to(self.senders[i])
                } else {
                    to(self.receivers[i])
                }
            }
        };
        self.fast.strength_sq(self.powers[j], d_sq)
    }

    /// The stored row of `(i, port)`, sorted by interferer index, as
    /// parallel column/value slices.
    ///
    /// # Panics
    ///
    /// Panics if `i` or `port` is out of range.
    pub fn row(&self, i: usize, port: usize) -> RowRef<'_> {
        assert!(port < self.ports, "port {port} out of range");
        let r = i * self.ports + port;
        RowRef {
            cols: &self.cols[self.offsets[r]..self.offsets[r + 1]],
            vals: &self.vals[self.offsets[r]..self.offsets[r + 1]],
        }
    }

    /// Number of stored (non-pruned) contributions across all rows.
    pub fn stored_entries(&self) -> usize {
        self.cols.len()
    }

    /// Number of ports per item.
    pub fn ports(&self) -> usize {
        self.ports
    }

    /// The problem variant the matrix was built for.
    pub fn variant(&self) -> Variant {
        self.variant
    }

    /// Approximate heap footprint of the matrix in bytes.
    pub fn bytes(&self) -> usize {
        self.cols.len() * std::mem::size_of::<u32>()
            + self.vals.len() * std::mem::size_of::<f64>()
            + self.offsets.len() * std::mem::size_of::<usize>()
            + (self.dropped_mass.len()
                + self.dropped_cap.len()
                + self.signals.len()
                + self.powers.len())
                * std::mem::size_of::<f64>()
            + (self.senders.len() + self.receivers.len()) * std::mem::size_of::<[f64; 2]>()
    }

    /// Returns a copy with [`strict`](SparseConfig::strict) borderline
    /// re-checking switched on or off.
    pub fn with_strict(mut self, strict: bool) -> Self {
        self.strict = strict;
        self
    }

    /// Whether borderline verdicts are re-checked exactly (the `strict()`
    /// mode).
    pub fn is_strict(&self) -> bool {
        self.strict
    }

    /// The fraction of all `ports · n · (n − 1)` pairs that is stored — the
    /// achieved sparsity, for diagnostics and experiment tables.
    pub fn fill_ratio(&self) -> f64 {
        let total = self.ports * self.n * self.n.saturating_sub(1);
        if total == 0 {
            0.0
        } else {
            approx_f64(self.cols.len()) / approx_f64(total)
        }
    }
}

/// Squared Euclidean distance with the same arithmetic as
/// [`Point::distance_squared`](oblisched_metric::Point::distance_squared).
fn distance_sq(a: [f64; 2], b: [f64; 2]) -> f64 {
    let dx = a[0] - b[0];
    let dy = a[1] - b[1];
    dx * dx + dy * dy
}

impl InterferenceSystem for SparseGainMatrix {
    fn len(&self) -> usize {
        self.n
    }

    /// The *conservative* SINR: stored contributions plus the dropped-mass
    /// pad of the row. Never above the exact SINR, so
    /// [`is_feasible`](InterferenceSystem::is_feasible) never accepts a set
    /// the exact system rejects.
    fn sinr(&self, i: usize, others: &[usize]) -> f64 {
        let mut ports = [0.0f64; MAX_PORTS];
        let mut dropped = [0u32; MAX_PORTS];
        for &j in others {
            if j == i {
                continue;
            }
            for (port, slot) in ports.iter_mut().enumerate().take(self.ports) {
                match self.stored_contribution(i, port, j) {
                    Some(v) => *slot += v,
                    None => dropped[port] += 1,
                }
            }
        }
        for (port, slot) in ports.iter_mut().enumerate().take(self.ports) {
            if dropped[port] > 0 {
                let r = i * self.ports + port;
                *slot += self.dropped_mass[r].min(f64::from(dropped[port]) * self.dropped_cap[r]);
            }
        }
        let worst = ports[..self.ports]
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max);
        let total = worst + self.params.noise();
        if total == 0.0 {
            f64::INFINITY
        } else {
            self.signals[i] / total
        }
    }

    fn beta(&self) -> f64 {
        self.beta
    }
}

impl IncrementalSystem for SparseGainMatrix {
    fn num_ports(&self) -> usize {
        self.ports
    }

    /// The stored contribution, or `0.0` for pruned pairs — the engine adds
    /// the dropped-mass pad separately through the [`GainBackend`] hooks.
    fn contribution(&self, i: usize, port: usize, j: usize) -> f64 {
        self.stored_contribution(i, port, j).unwrap_or(0.0)
    }

    fn signal(&self, i: usize) -> f64 {
        self.signals[i]
    }

    fn noise(&self) -> f64 {
        self.params.noise()
    }
}

impl GainBackend for SparseGainMatrix {
    fn stored_contribution(&self, i: usize, port: usize, j: usize) -> Option<f64> {
        if j == i {
            return Some(0.0);
        }
        self.row(i, port).get(item_id(j))
    }

    fn stored_row(&self, i: usize, port: usize) -> Option<RowRef<'_>> {
        Some(self.row(i, port))
    }

    fn pruned_cap(&self, i: usize, port: usize) -> f64 {
        self.dropped_cap[i * self.ports + port]
    }

    fn pruned_mass(&self, i: usize, port: usize) -> f64 {
        self.dropped_mass[i * self.ports + port]
    }

    fn is_exact(&self) -> bool {
        false
    }

    fn strict_recheck(&self) -> bool {
        self.strict
    }

    fn exact_contribution(&self, i: usize, port: usize, j: usize) -> f64 {
        SAFETY * self.raw_contribution(i, port, j)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ColorAccumulator;
    use crate::power::ObliviousPower;
    use crate::request::{Instance, Request};
    use oblisched_metric::{EuclideanSpace, LineMetric, Point2};

    fn params() -> SinrParams {
        SinrParams::new(3.0, 1.0).unwrap()
    }

    /// A small planar deployment with a mix of near and far pairs.
    fn planar_instance() -> Instance<EuclideanSpace<2>> {
        let mut points = Vec::new();
        let mut requests = Vec::new();
        for k in 0..12usize {
            let x = (k % 4) as f64 * 37.0 + (k as f64 * 0.7).sin() * 5.0;
            let y = (k / 4) as f64 * 41.0 + (k as f64 * 1.3).cos() * 5.0;
            let id = points.len();
            points.push(Point2::xy(x, y));
            points.push(Point2::xy(x + 1.0 + (k % 3) as f64, y + 0.5));
            requests.push(Request::new(id, id + 1));
        }
        Instance::new(EuclideanSpace::from_points(points), requests).unwrap()
    }

    fn all_subsets(n: usize) -> Vec<Vec<usize>> {
        (0..1usize << n)
            .map(|mask| (0..n).filter(|&i| mask >> i & 1 == 1).collect())
            .collect()
    }

    #[test]
    fn zero_cutoff_stores_every_pair() {
        let inst = planar_instance();
        let eval = inst.evaluator(params(), &ObliviousPower::SquareRoot);
        for variant in Variant::all() {
            let view = eval.view(variant);
            // Per-port rows so stored values are comparable one-to-one with
            // the naive contributions.
            let config = SparseConfig {
                cutoff_fraction: 0.0,
                fold_ports: false,
                ..SparseConfig::default()
            };
            let sparse = SparseGainMatrix::build(&view, &config);
            let n = inst.len();
            assert_eq!(sparse.stored_entries(), sparse.ports() * n * (n - 1));
            assert!((sparse.fill_ratio() - 1.0).abs() < 1e-12);
            // Stored values match the naive contributions up to the safety
            // inflation.
            for i in 0..n {
                for port in 0..sparse.ports() {
                    for j in 0..n {
                        let naive = view.contribution(i, port, j);
                        let stored = sparse.stored_contribution(i, port, j).unwrap();
                        if naive.is_finite() {
                            assert!(stored >= naive, "stored must not underestimate");
                            assert!(stored <= naive * (1.0 + 1e-9));
                        } else {
                            assert_eq!(stored, naive);
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn verdicts_are_conservative_for_every_subset() {
        let inst = planar_instance();
        for power in ObliviousPower::standard_assignments() {
            let eval = inst.evaluator(params(), &power);
            for variant in Variant::all() {
                let view = eval.view(variant);
                // A crude cutoff so that real pruning happens on this
                // instance.
                let config = SparseConfig {
                    cutoff_fraction: 0.05,
                    ..SparseConfig::default()
                };
                let sparse = SparseGainMatrix::build(&view, &config);
                assert!(sparse.fill_ratio() < 1.0, "the cutoff must actually prune");
                for set in all_subsets(inst.len().min(10)) {
                    if sparse.is_feasible(&set) {
                        assert!(
                            view.is_feasible(&set),
                            "sparse accepted {set:?} under {variant} but naive rejects"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn accumulator_on_sparse_is_conservative() {
        let inst = planar_instance();
        for power in ObliviousPower::standard_assignments() {
            let eval = inst.evaluator(params(), &power);
            for variant in Variant::all() {
                let view = eval.view(variant);
                let config = SparseConfig {
                    cutoff_fraction: 0.05,
                    ..SparseConfig::default()
                };
                let sparse = SparseGainMatrix::build(&view, &config);
                let mut acc = ColorAccumulator::new(&sparse);
                for i in 0..inst.len() {
                    if acc.try_insert(i) {
                        assert!(
                            view.is_feasible(acc.members()),
                            "sparse-accepted class {:?} must be naive-feasible",
                            acc.members()
                        );
                    }
                }
                assert!(!acc.is_empty());
            }
        }
    }

    /// A hand-built borderline: request 1 contributes 0.85 to request 0
    /// (stored), request 2 only ~1.25e-4 (pruned), but a pruned bystander
    /// (request 3, contribution 0.4) sets request 0's dropped cap, so the
    /// conservative pad pushes the padded interference past the budget when
    /// request 2 joins {0, 1} — a verdict only the strict re-check can
    /// settle.
    fn borderline_setup() -> Instance<EuclideanSpace<2>> {
        let d1 = (1.0f64 / 0.85).cbrt();
        let dc = (1.0f64 / 0.4).cbrt();
        let points = vec![
            Point2::xy(0.0, 0.0),      // r0 sender
            Point2::xy(1.0, 0.0),      // r0 receiver
            Point2::xy(1.0 + d1, 0.0), // r1 sender: 0.85 at r0's receiver
            Point2::xy(2.0 + d1, 0.0), // r1 receiver
            Point2::xy(21.0, 0.0),     // r2 sender: ~1.25e-4 at r0's receiver
            Point2::xy(22.0, 0.0),     // r2 receiver
            Point2::xy(1.0, dc),       // r3 sender: 0.4 at r0's receiver
            Point2::xy(1.0, dc + 1.0), // r3 receiver
        ];
        Instance::new(
            EuclideanSpace::from_points(points),
            vec![
                Request::new(0, 1),
                Request::new(2, 3),
                Request::new(4, 5),
                Request::new(6, 7),
            ],
        )
        .unwrap()
    }

    #[test]
    fn strict_mode_recovers_borderline_rejections() {
        let inst = borderline_setup();
        let eval = inst.evaluator(params(), &ObliviousPower::Uniform);
        let view = eval.view(Variant::Directed);
        // Cutoff 0.5 stores the 0.85 contribution and prunes 0.4 and below.
        let config = SparseConfig {
            cutoff_fraction: 0.5,
            ..SparseConfig::default()
        };
        let lax = SparseGainMatrix::build(&view, &config);
        let strict = lax.clone().with_strict(true);
        assert!(strict.is_strict() && !lax.is_strict());
        // The exact system accepts {0, 1, 2}.
        assert!(view.is_feasible(&[0, 1, 2]));
        // The lax backend rejects request 2: the pad (capped by the pruned
        // bystander's 0.4) pretends the pruned member could be that large.
        let mut lax_acc = ColorAccumulator::new(&lax);
        assert!(lax_acc.try_insert(0));
        assert!(lax_acc.try_insert(1));
        assert!(
            !lax_acc.try_insert(2),
            "the conservative pad must reject the borderline"
        );
        // The strict backend settles the same verdict through un-pruned
        // contributions and accepts.
        let mut strict_acc = ColorAccumulator::new(&strict);
        assert!(strict_acc.try_insert(0));
        assert!(strict_acc.try_insert(1));
        assert!(
            strict_acc.try_insert(2),
            "strict must recover the borderline reject"
        );
        assert_eq!(strict_acc.members(), &[0, 1, 2]);
        assert!(view.is_feasible(strict_acc.members()));
    }

    #[test]
    fn line_metric_instances_are_supported() {
        let metric = LineMetric::new(vec![0.0, 1.0, 40.0, 41.5, 200.0, 202.0, 1000.0, 1001.0]);
        let inst = Instance::new(
            metric,
            vec![
                Request::new(0, 1),
                Request::new(2, 3),
                Request::new(4, 5),
                Request::new(6, 7),
            ],
        )
        .unwrap();
        let eval = inst.evaluator(params(), &ObliviousPower::SquareRoot);
        let view = eval.view(Variant::Bidirectional);
        let sparse = SparseGainMatrix::build(&view, &SparseConfig::default());
        assert_eq!(sparse.len(), 4);
        for set in all_subsets(4) {
            if sparse.is_feasible(&set) {
                assert!(view.is_feasible(&set));
            }
        }
    }

    #[test]
    fn parallel_build_is_identical_to_serial() {
        let inst = planar_instance();
        let eval = inst.evaluator(params(), &ObliviousPower::SquareRoot);
        let view = eval.view(Variant::Bidirectional);
        let serial = SparseGainMatrix::build(
            &view,
            &SparseConfig {
                build_threads: 1,
                ..SparseConfig::default()
            },
        );
        for threads in [2usize, 8] {
            let parallel = SparseGainMatrix::build(
                &view,
                &SparseConfig {
                    build_threads: threads,
                    ..SparseConfig::default()
                },
            );
            assert_eq!(parallel.offsets, serial.offsets);
            assert_eq!(parallel.cols, serial.cols);
            assert_eq!(parallel.vals, serial.vals);
            assert_eq!(parallel.dropped_mass, serial.dropped_mass);
            assert_eq!(parallel.dropped_cap, serial.dropped_cap);
        }
    }

    #[test]
    fn accessors_and_footprint() {
        let inst = planar_instance();
        let eval = inst.evaluator(params(), &ObliviousPower::Uniform);
        let view = eval.view(Variant::Bidirectional);
        // A low cutoff so this spread-out instance still stores entries;
        // per-port rows so both ports are visible.
        let config = SparseConfig {
            cutoff_fraction: 1e-7,
            fold_ports: false,
            ..SparseConfig::default()
        };
        let sparse = SparseGainMatrix::build(&view, &config);
        assert_eq!(sparse.ports(), 2);
        let folded = SparseGainMatrix::build(
            &view,
            &SparseConfig {
                cutoff_fraction: 1e-7,
                ..SparseConfig::default()
            },
        );
        assert_eq!(
            folded.ports(),
            1,
            "folding collapses the bidirectional ports"
        );
        assert!(folded.stored_entries() < sparse.stored_entries());
        assert_eq!(sparse.variant(), Variant::Bidirectional);
        assert!(sparse.bytes() > 0);
        assert!(sparse.stored_entries() > 0);
        let directed = SparseGainMatrix::build(&eval.view(Variant::Directed), &config);
        assert_eq!(directed.ports(), 1);
        // Rows are sorted by interferer, with columns and values parallel.
        for i in 0..sparse.len() {
            for port in 0..sparse.ports() {
                let row = sparse.row(i, port);
                assert_eq!(row.cols.len(), row.vals.len());
                assert!(row.cols.windows(2).all(|w| w[0] < w[1]));
            }
        }
    }

    #[test]
    #[should_panic(expected = "cutoff fraction")]
    fn negative_cutoff_is_rejected() {
        let inst = planar_instance();
        let eval = inst.evaluator(params(), &ObliviousPower::Uniform);
        let view = eval.view(Variant::Directed);
        let config = SparseConfig {
            cutoff_fraction: -0.1,
            ..SparseConfig::default()
        };
        let _ = SparseGainMatrix::build(&view, &config);
    }

    #[test]
    fn grid_stays_bounded_on_huge_extent_line_geometries() {
        // A nested-chain layout: request i spans [-2^(i+1), 2^(i+1)], so 40
        // requests cover 2^41 length units. The grid must scale with the
        // request count, not the extent — an extent-derived grid would try
        // to allocate terabytes of tiles here.
        let mut coords = Vec::new();
        for i in 0..40 {
            let r = 2f64.powi(i + 1);
            coords.push(-r);
            coords.push(r);
        }
        let metric = LineMetric::new(coords);
        let requests: Vec<Request> = (0..40).map(|i| Request::new(2 * i, 2 * i + 1)).collect();
        let inst = Instance::new(metric, requests).unwrap();
        let eval = inst.evaluator(params(), &ObliviousPower::SquareRoot);
        let view = eval.view(Variant::Bidirectional);
        let sparse = SparseGainMatrix::build(&view, &SparseConfig::default());
        assert_eq!(sparse.len(), 40);
        // The footprint stays in the kilobytes, and verdicts stay
        // conservative.
        assert!(
            sparse.bytes() < 1 << 20,
            "grid blew up: {} bytes",
            sparse.bytes()
        );
        for k in 1..=40 {
            let set: Vec<usize> = (0..k).collect();
            if sparse.is_feasible(&set) {
                assert!(view.is_feasible(&set));
            }
        }
    }

    #[test]
    fn grid_stays_bounded_on_long_sparse_lines() {
        // 2000 unit links spread over 340k length units (zero bounding-box
        // area): the 1-D density fallback keeps the tile table proportional
        // to the request count and the build instant.
        let mut coords = Vec::new();
        for i in 0..2000 {
            let base = i as f64 * 170.0;
            coords.push(base);
            coords.push(base + 1.0);
        }
        let metric = LineMetric::new(coords);
        let requests: Vec<Request> = (0..2000).map(|i| Request::new(2 * i, 2 * i + 1)).collect();
        let inst = Instance::new(metric, requests).unwrap();
        let eval = inst.evaluator(params(), &ObliviousPower::Uniform);
        let view = eval.view(Variant::Bidirectional);
        let sparse = SparseGainMatrix::build(&view, &SparseConfig::default());
        assert_eq!(sparse.len(), 2000);
        assert!(
            sparse.bytes() < 8 << 20,
            "grid blew up: {} bytes",
            sparse.bytes()
        );
    }

    #[test]
    fn empty_instance_builds_an_empty_matrix() {
        let metric = LineMetric::new(vec![0.0, 1.0]);
        let inst = Instance::new(metric, vec![]).unwrap();
        let eval = inst.evaluator(params(), &ObliviousPower::Uniform);
        let view = eval.view(Variant::Bidirectional);
        let sparse = SparseGainMatrix::build(&view, &SparseConfig::default());
        assert!(sparse.is_empty());
        assert_eq!(sparse.stored_entries(), 0);
        assert!(sparse.is_feasible(&[]));
    }
}

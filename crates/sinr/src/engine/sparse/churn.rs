//! The churn-capable sparse backend: [`SparseGainMatrix`](super::SparseGainMatrix)'s
//! pruning story under insert/remove mutations.
//!
//! The batch [`SparseGainMatrix`](super::SparseGainMatrix) is built once:
//! its grid aggregates, CSR rows and dropped-mass pads all describe the full
//! universe and never change. A dynamic session needs the opposite shape —
//! at any moment only the *live* subset interferes, rows must follow
//! arrivals and departures, and the conservativeness guarantee ("never
//! accept a set the naive evaluator rejects") must hold at **every**
//! intermediate state, not just after a batch build. [`SparseChurnMatrix`]
//! provides that:
//!
//! * the **spatial grid** (tile membership, positions, powers) is built once
//!   over the whole universe, but every tile and supertile carries *live*
//!   aggregates — power sum, power max and the bounding box of the live
//!   entries — that are updated incrementally on each arrival/departure by
//!   recomputing exactly the touched tiles (a pure function of the live set,
//!   so no drift can accumulate in the aggregates themselves);
//! * rows are **lazily materialised**: only requests that a scheduler
//!   actually probes get a CSR row, built by the same supertile→tile→entry
//!   traversal as the batch builder but pruned against the live aggregates;
//!   a departing request's row is dropped whole, so only live requests ever
//!   hold rows;
//! * materialised rows are **patched** on churn: an arrival inserts a stored
//!   entry (when its inflated contribution reaches the row's cutoff) or adds
//!   to the row's dropped-mass pad; a departure removes the stored entry or
//!   subtracts from the pad with the *deflated* bound described below;
//! * a **staleness guard** counts the patches applied to each row and
//!   triggers a localized rebuild (one row, against the current live
//!   aggregates) after [`refresh_interval`](SparseChurnMatrix::refresh_interval)
//!   mutations, bounding how far a patched pad can drift from the freshly
//!   built one.
//!
//! # The corrected departure bound
//!
//! Subtracting a departed contribution from the dropped-mass pad is the one
//! place where naive arithmetic can *erode* conservativeness: the pad stores
//! the inflated value `SAFETY · v` (or a tile-aggregate bound that is larger
//! still), and subtracting that same inflated value back out spends the
//! term's safety margin — together with ordinary float rounding of the
//! subtraction, the remaining pad can dip below the true remaining dropped
//! mass. The corrected protocol subtracts the **deflated** contribution
//! `v / SAFETY` (never more than the true value, so the remainder keeps
//! every other term's margin intact) and re-inflates the remainder by
//! `SAFETY` (covering the rounding error of the subtraction itself, since
//! one part in `10^12` dwarfs half an ulp). Each out/in cycle of a pruned
//! request therefore leaves a small *non-negative* residue in the pad —
//! staleness, which costs precision and is bounded by the refresh guard,
//! never unsoundness. The regression test
//! `departure_subtraction_never_erodes_the_pad` pins this bound.
//!
//! # Determinism and durable replay
//!
//! Stored entries are deterministic throughout: the pair `(i, j)` is stored
//! exactly when `SAFETY · contribution ≥ cutoff(i)` and both are live — a
//! pure function of the pair and the live set, independent of traversal,
//! patch order and rebuilds (the tile pruning bound dominates every member's
//! contribution, so a pruned tile can never hide a stored-worthy pair). The
//! *pads*, however, depend on when a row was materialised and how it was
//! patched since. With `refresh_interval == 1` every patch becomes a
//! rebuild, which makes the pads — and therefore every verdict — a pure
//! function of the live set as well. That is the configuration durable
//! sessions need: write-ahead-log recovery re-derives placements instead of
//! replaying them, so a crash-recovered scheduler only reproduces the
//! pre-crash coloring bit-for-bit when verdicts cannot depend on the
//! mutation history. Larger intervals (the default is
//! [`DEFAULT_REFRESH_INTERVAL`]) trade that replay purity for `O(1)` pad
//! patches; verdicts stay conservative at any interval.

use std::cell::RefCell;

use super::{distance_sq, BBox, FastLoss, GridEntry, SparseConfig, SpatialGrid, SAFETY, SUPER};
use crate::engine::{item_id, item_index, GainBackend, IncrementalSystem, SparseEntry, MAX_PORTS};
use crate::feasibility::{InterferenceSystem, Variant, VariantView};
use crate::params::SinrParams;
use oblisched_metric::{MetricSpace, PlanarMetric};

/// Default number of patches a materialised row tolerates before the
/// staleness guard rebuilds it against the current live aggregates.
pub const DEFAULT_REFRESH_INTERVAL: usize = 64;

/// Sentinel for "this item has no second grid tile" (directed variant).
const NO_TILE: usize = usize::MAX;

/// The live aggregates of the static grid: which items are live, and the
/// per-tile / per-supertile power sums, maxima and bounding boxes of the
/// live entries only. Every field is recomputed exactly for the touched
/// tiles on each mutation, so the whole struct is a pure function of the
/// live set.
#[derive(Debug, Clone)]
struct LiveState {
    live: Vec<bool>,
    live_count: usize,
    tile_bbox: Vec<BBox>,
    tile_power_sum: Vec<f64>,
    tile_power_max: Vec<f64>,
    super_bbox: Vec<BBox>,
    super_power_sum: Vec<f64>,
    super_power_max: Vec<f64>,
}

/// One lazily-materialised row: the stored entries of every port (live
/// interferers at or above the row's cutoff, sorted by index, in
/// structure-of-arrays form — parallel column/value vectors per port), the
/// dropped-mass pad, and the staleness-guard patch counter.
#[derive(Debug, Clone)]
struct ChurnRow {
    cols: [Vec<u32>; MAX_PORTS],
    vals: [Vec<f64>; MAX_PORTS],
    mass: [f64; MAX_PORTS],
    cap: [f64; MAX_PORTS],
    mutations: usize,
}

impl ChurnRow {
    /// The stored value of interferer `j` at `port`, or `None` when the live
    /// pair is pruned (binary search over the sorted columns).
    #[inline]
    fn get(&self, port: usize, j: u32) -> Option<f64> {
        self.cols[port]
            .binary_search(&j)
            .ok()
            .map(|k| self.vals[port][k])
    }

    /// Inserts `(j, v)` at `port`, keeping the columns sorted. Overwrites an
    /// already-stored pair (patch idempotence).
    fn insert_sorted(&mut self, port: usize, j: u32, v: f64) {
        match self.cols[port].binary_search(&j) {
            Ok(p) => self.vals[port][p] = v,
            Err(p) => {
                self.cols[port].insert(p, j);
                self.vals[port].insert(p, v);
            }
        }
    }

    /// Removes the stored pair of interferer `j` at `port`, if present.
    /// Returns `true` when an entry was removed.
    fn remove_entry(&mut self, port: usize, j: u32) -> bool {
        match self.cols[port].binary_search(&j) {
            Ok(p) => {
                self.cols[port].remove(p);
                self.vals[port].remove(p);
                true
            }
            Err(_) => false,
        }
    }
    /// The sanctioned pad addition: folds one already SAFETY-inflated
    /// pruned contribution into the port's dropped-mass pad and cap. Every
    /// pad write must route through here, [`pad_shed`](ChurnRow::pad_shed)
    /// or an in-statement `SAFETY` bound (`oblint`'s
    /// missing-safety-inflation rule).
    #[inline]
    fn pad_absorb(&mut self, port: usize, inflated: f64) {
        // oblint::allow(missing-safety-inflation): `inflated` is SAFETY-inflated by every caller — this helper IS the sanctioned pad entry point.
        self.mass[port] += inflated;
        // oblint::allow(missing-safety-inflation): same contract as the mass update above.
        self.cap[port] = self.cap[port].max(inflated);
    }

    /// The sanctioned pad subtraction — the corrected departure bound of the
    /// [module docs](self): subtract the *deflated* contribution (never more
    /// than the true value, so every surviving term keeps its safety
    /// margin), clamp at zero, and re-inflate the remainder to cover the
    /// subtraction's own rounding. Returns the new pad so callers can poison
    /// the row when the arithmetic degenerates to a non-finite value.
    #[inline]
    fn pad_shed(&mut self, port: usize, inflated: f64) -> f64 {
        self.mass[port] = (self.mass[port] - inflated / (SAFETY * SAFETY)).max(0.0) * SAFETY;
        self.mass[port]
    }
}

/// The materialised rows plus the list of items currently holding one (so
/// patches iterate live rows, never the whole universe).
#[derive(Debug, Clone, Default)]
struct RowStore {
    rows: Vec<Option<ChurnRow>>,
    materialized: Vec<u32>,
}

/// Epoch-stamped scratch for deduplicating the two grid endpoints of a
/// request during a row build (mirrors the batch builder's `seen` array).
#[derive(Debug, Clone)]
struct Scratch {
    seen: Vec<u32>,
    epoch: u32,
}

/// A churn-capable spatially-pruned [`GainBackend`]: the sparse tier for
/// dynamic sessions.
///
/// Built once over the full universe of a [`VariantView`] (positions,
/// powers, signals and the static grid are copied in), it starts with every
/// request *dead* and is driven by the
/// [`note_arrival`](GainBackend::note_arrival) /
/// [`note_departure`](GainBackend::note_departure) hooks — the dynamic
/// schedulers in the core crate invoke them around each insert/remove. All
/// queries
/// (`stored_contribution`, `pruned_mass`, [`sinr`](InterferenceSystem::sinr))
/// are only meaningful for **live** items; rows materialise on first query
/// behind a `RefCell`, so the type is deliberately not `Sync`.
///
/// See the [module docs](self) for the incremental-maintenance and
/// conservativeness story.
#[derive(Debug)]
pub struct SparseChurnMatrix {
    n: usize,
    ports: usize,
    variant: Variant,
    folded: bool,
    params: SinrParams,
    fast: FastLoss,
    beta: f64,
    strict: bool,
    refresh_interval: usize,
    signals: Vec<f64>,
    powers: Vec<f64>,
    senders: Vec<[f64; 2]>,
    receivers: Vec<[f64; 2]>,
    /// Per-item row cutoff `cutoff_fraction · signal / β` (a stored entry is
    /// exactly an inflated contribution at or above it).
    cutoffs: Vec<f64>,
    /// The static universe grid: tile membership never changes, only the
    /// live aggregates in [`LiveState`] do.
    grid: SpatialGrid,
    /// The (one or two) grid tiles holding each item's interfering
    /// endpoints, for exact localized aggregate refreshes.
    item_tiles: Vec<[usize; 2]>,
    state: RefCell<LiveState>,
    store: RefCell<RowStore>,
    scratch: RefCell<Scratch>,
}

impl SparseChurnMatrix {
    /// Builds the churn backend over `view`'s full universe with every
    /// request initially dead. Costs one grid build (`O(n)` at fixed
    /// occupancy) and copies the per-item geometry; no rows are materialised.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see [`SparseConfig`];
    /// [`build_threads`](SparseConfig::build_threads) is ignored — rows are
    /// built lazily, one at a time).
    pub fn new<M: MetricSpace + PlanarMetric>(
        view: &VariantView<'_, '_, M>,
        config: &SparseConfig,
    ) -> Self {
        config.validate();
        let eval = view.evaluator();
        let instance = eval.instance();
        let metric = instance.metric();
        let n = instance.len();
        let variant = view.variant();
        let folded = config.fold_ports && variant == Variant::Bidirectional;
        let ports = match variant {
            Variant::Directed => 1,
            Variant::Bidirectional if folded => 1,
            Variant::Bidirectional => 2,
        };
        let params = eval.params();
        let beta = params.beta();
        let signals: Vec<f64> = (0..n).map(|i| eval.signal(i)).collect();
        let powers: Vec<f64> = eval.powers().to_vec();
        let senders: Vec<[f64; 2]> = (0..n)
            .map(|i| metric.position(instance.request(i).sender))
            .collect();
        let receivers: Vec<[f64; 2]> = (0..n)
            .map(|i| metric.position(instance.request(i).receiver))
            .collect();
        let cutoffs: Vec<f64> = (0..n)
            .map(|i| config.cutoff_fraction * signals[i] / beta)
            .collect();

        // Same interfering-endpoint convention as the batch builder: senders
        // always, receivers too in the bidirectional variant.
        let mut grid_points: Vec<GridEntry> = Vec::with_capacity(n * ports.max(1));
        for i in 0..n {
            grid_points.push(GridEntry {
                pos: senders[i],
                item: item_id(i),
                power: powers[i],
            });
            if variant == Variant::Bidirectional {
                grid_points.push(GridEntry {
                    pos: receivers[i],
                    item: item_id(i),
                    power: powers[i],
                });
            }
        }
        let grid = SpatialGrid::build(&grid_points, config.tile_occupancy);

        let mut item_tiles = vec![[NO_TILE; 2]; n];
        for t in 0..grid.offsets.len() - 1 {
            for e in &grid.entries[grid.offsets[t]..grid.offsets[t + 1]] {
                let slots = &mut item_tiles[item_index(e.item)];
                if slots[0] == NO_TILE {
                    slots[0] = t;
                } else {
                    slots[1] = t;
                }
            }
        }

        let num_tiles = grid.tile_power_sum.len();
        let num_super = grid.super_power_sum.len();
        Self {
            n,
            ports,
            variant,
            folded,
            params,
            fast: FastLoss::for_alpha(params.alpha()),
            beta,
            strict: config.strict,
            refresh_interval: DEFAULT_REFRESH_INTERVAL,
            signals,
            powers,
            senders,
            receivers,
            cutoffs,
            grid,
            item_tiles,
            state: RefCell::new(LiveState {
                live: vec![false; n],
                live_count: 0,
                tile_bbox: vec![BBox::EMPTY; num_tiles],
                tile_power_sum: vec![0.0; num_tiles],
                tile_power_max: vec![0.0; num_tiles],
                super_bbox: vec![BBox::EMPTY; num_super],
                super_power_sum: vec![0.0; num_super],
                super_power_max: vec![0.0; num_super],
            }),
            store: RefCell::new(RowStore {
                rows: (0..n).map(|_| None).collect(),
                materialized: Vec::new(),
            }),
            scratch: RefCell::new(Scratch {
                seen: vec![0; n],
                epoch: 0,
            }),
        }
    }

    /// Returns a copy-by-move with the staleness-guard interval replaced:
    /// a materialised row is rebuilt against the current live aggregates
    /// after this many patches. `1` makes every verdict a pure function of
    /// the live set (required for bit-exact durable replay, see the
    /// [module docs](self)); larger values make patches `O(1)`.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero.
    #[must_use]
    pub fn with_refresh_interval(mut self, interval: usize) -> Self {
        assert!(interval >= 1, "refresh interval must be at least 1");
        self.refresh_interval = interval;
        self
    }

    /// The staleness-guard interval (see
    /// [`with_refresh_interval`](SparseChurnMatrix::with_refresh_interval)).
    pub fn refresh_interval(&self) -> usize {
        self.refresh_interval
    }

    /// Returns a copy-by-move with [`strict`](SparseConfig::strict)
    /// borderline re-checking switched on or off.
    #[must_use]
    pub fn with_strict(mut self, strict: bool) -> Self {
        self.strict = strict;
        self
    }

    /// Whether borderline verdicts are re-checked exactly.
    pub fn is_strict(&self) -> bool {
        self.strict
    }

    /// Number of ports per item (`1` when folded or directed).
    pub fn ports(&self) -> usize {
        self.ports
    }

    /// The problem variant the backend was built for.
    pub fn variant(&self) -> Variant {
        self.variant
    }

    /// Number of currently live requests.
    pub fn live_count(&self) -> usize {
        self.state.borrow().live_count
    }

    /// Whether `item` is currently live.
    pub fn is_live(&self, item: usize) -> bool {
        self.state.borrow().live[item]
    }

    /// Number of live requests currently holding a materialised CSR row.
    pub fn materialized_rows(&self) -> usize {
        self.store.borrow().materialized.len()
    }

    /// Number of stored (non-pruned) contributions across all materialised
    /// rows.
    pub fn stored_entries(&self) -> usize {
        self.store
            .borrow()
            .rows
            .iter()
            .flatten()
            .map(|row| row.cols[..self.ports].iter().map(Vec::len).sum::<usize>())
            .sum()
    }

    /// Approximate heap footprint in bytes: the static per-item geometry,
    /// the grid with both aggregate levels, and every materialised row.
    pub fn bytes(&self) -> usize {
        let f = std::mem::size_of::<f64>();
        let fixed = (self.signals.len() + self.powers.len() + self.cutoffs.len()) * f
            + (self.senders.len() + self.receivers.len()) * std::mem::size_of::<[f64; 2]>()
            + self.item_tiles.len() * std::mem::size_of::<[usize; 2]>()
            + self.grid.entries.len() * std::mem::size_of::<GridEntry>()
            + self.grid.offsets.len() * std::mem::size_of::<usize>()
            + self.n * (std::mem::size_of::<bool>() + std::mem::size_of::<u32>());
        let tiles = self.grid.tile_power_sum.len();
        let supers = self.grid.super_power_sum.len();
        // Static and live aggregates: bbox + sum + max per tile/supertile.
        let aggregates = 2 * (tiles + supers) * (std::mem::size_of::<BBox>() + 2 * f);
        let store = self.store.borrow();
        let rows = store.rows.len() * std::mem::size_of::<Option<ChurnRow>>()
            + store
                .rows
                .iter()
                .flatten()
                .map(|row| {
                    row.cols
                        .iter()
                        .map(|c| c.capacity() * std::mem::size_of::<u32>())
                        .sum::<usize>()
                        + row
                            .vals
                            .iter()
                            .map(|v| v.capacity() * std::mem::size_of::<f64>())
                            .sum::<usize>()
                })
                .sum::<usize>();
        fixed + aggregates + rows
    }

    /// Recomputes, exactly, the live aggregates of every tile holding one of
    /// `item`'s interfering endpoints, then the supertiles above them. The
    /// recompute iterates the tile's static entries in storage order and
    /// filters by liveness, so the result depends only on the live set.
    fn refresh_tiles(&self, st: &mut LiveState, item: usize) {
        let tiles = self.item_tiles[item];
        for (k, &t) in tiles.iter().enumerate() {
            if t == NO_TILE || tiles[..k].contains(&t) {
                continue;
            }
            let mut bbox = BBox::EMPTY;
            let mut sum = 0.0f64;
            let mut max = 0.0f64;
            for e in &self.grid.entries[self.grid.offsets[t]..self.grid.offsets[t + 1]] {
                if st.live[item_index(e.item)] {
                    bbox.grow(e.pos);
                    sum += e.power;
                    max = max.max(e.power);
                }
            }
            st.tile_bbox[t] = bbox;
            st.tile_power_sum[t] = sum;
            st.tile_power_max[t] = max;

            let tx = t % self.grid.cols;
            let ty = t / self.grid.cols;
            let (sx, sy) = (tx / SUPER, ty / SUPER);
            let s = sy * self.grid.super_cols + sx;
            let mut sbbox = BBox::EMPTY;
            let mut ssum = 0.0f64;
            let mut smax = 0.0f64;
            for ty2 in (sy * SUPER)..((sy + 1) * SUPER).min(self.grid.rows) {
                for tx2 in (sx * SUPER)..((sx + 1) * SUPER).min(self.grid.cols) {
                    let t2 = ty2 * self.grid.cols + tx2;
                    if st.tile_power_sum[t2] == 0.0 {
                        continue;
                    }
                    sbbox.merge(&st.tile_bbox[t2]);
                    ssum += st.tile_power_sum[t2];
                    smax = smax.max(st.tile_power_max[t2]);
                }
            }
            st.super_bbox[s] = sbbox;
            st.super_power_sum[s] = ssum;
            st.super_power_max[s] = smax;
        }
    }

    /// Mirror of the batch builder's anchors: where interference arrives at
    /// item `i` — the receiver in the directed variant, both endpoints in
    /// the bidirectional one.
    fn traversal_anchors(&self, i: usize) -> ([[f64; 2]; MAX_PORTS], usize) {
        match self.variant {
            Variant::Directed => ([self.receivers[i], self.receivers[i]], 1),
            Variant::Bidirectional => ([self.senders[i], self.receivers[i]], 2),
        }
    }

    /// Mirror of the batch builder's un-pruned contribution of `j` at `port`
    /// of `i` (Euclidean positions, loss of the closer endpoint, worse port
    /// when folded).
    fn raw_contribution(&self, i: usize, port: usize, j: usize) -> f64 {
        if j == i {
            return 0.0;
        }
        let d_sq = match self.variant {
            Variant::Directed => distance_sq(self.senders[j], self.receivers[i]),
            Variant::Bidirectional => {
                let to = |w: [f64; 2]| {
                    distance_sq(self.senders[j], w).min(distance_sq(self.receivers[j], w))
                };
                if self.folded {
                    to(self.senders[i]).min(to(self.receivers[i]))
                } else if port == 0 {
                    to(self.senders[i])
                } else {
                    to(self.receivers[i])
                }
            }
        };
        self.fast.strength_sq(self.powers[j], d_sq)
    }

    /// Builds row `i` from scratch against the **live** aggregates: the same
    /// supertile→tile→entry traversal as the batch builder, except that the
    /// pruning bounds come from the live power sums/maxima/bounding boxes
    /// and only live entries become stored entries or per-entry mass. A
    /// pruned (super)tile bounds every live member's contribution, so no
    /// stored-worthy live pair can hide in one — storedness stays the pure
    /// pair predicate `SAFETY · contribution ≥ cutoff`.
    fn build_live_row(&self, st: &LiveState, i: usize) -> ChurnRow {
        let mut scratch = self.scratch.borrow_mut();
        let scratch = &mut *scratch;
        if scratch.epoch == u32::MAX {
            scratch.seen.fill(0);
            scratch.epoch = 1;
        } else {
            scratch.epoch += 1;
        }
        let epoch = scratch.epoch;
        let seen = &mut scratch.seen;

        let mut row = ChurnRow {
            cols: [Vec::new(), Vec::new()],
            vals: [Vec::new(), Vec::new()],
            mass: [0.0; MAX_PORTS],
            cap: [0.0; MAX_PORTS],
            mutations: 0,
        };
        // Entries are collected interleaved so one sort keeps columns and
        // values paired, then split into the row's parallel arrays below.
        let mut collected: [Vec<SparseEntry>; MAX_PORTS] = [Vec::new(), Vec::new()];
        let cutoff = self.cutoffs[i];
        let (anchors, num_anchors) = self.traversal_anchors(i);
        let grid = &self.grid;
        let prune = |row: &mut ChurnRow, bbox: &BBox, power_sum: f64, power_max: f64| -> bool {
            let mut d_sq = [0.0f64; MAX_PORTS];
            let mut d_min = f64::INFINITY;
            for (a, slot) in d_sq.iter_mut().enumerate().take(num_anchors) {
                *slot = bbox.distance_sq_from(anchors[a]);
                d_min = d_min.min(*slot);
            }
            if d_min <= 0.0 {
                return false;
            }
            let worst = SAFETY * self.fast.strength_sq(power_max, d_min);
            if worst >= cutoff {
                return false;
            }
            for (port, &anchor_d) in d_sq.iter().enumerate().take(self.ports) {
                let d = if self.folded { d_min } else { anchor_d };
                row.mass[port] += SAFETY * self.fast.strength_sq(power_sum, d);
                row.cap[port] = row.cap[port].max(SAFETY * self.fast.strength_sq(power_max, d));
            }
            true
        };
        for sy in 0..grid.super_rows {
            for sx in 0..grid.super_cols {
                let s = sy * grid.super_cols + sx;
                if st.super_power_sum[s] == 0.0 {
                    continue;
                }
                if prune(
                    &mut row,
                    &st.super_bbox[s],
                    st.super_power_sum[s],
                    st.super_power_max[s],
                ) {
                    continue;
                }
                for ty in (sy * SUPER)..((sy + 1) * SUPER).min(grid.rows) {
                    for tx in (sx * SUPER)..((sx + 1) * SUPER).min(grid.cols) {
                        let t = ty * grid.cols + tx;
                        if st.tile_power_sum[t] == 0.0 {
                            continue;
                        }
                        if prune(
                            &mut row,
                            &st.tile_bbox[t],
                            st.tile_power_sum[t],
                            st.tile_power_max[t],
                        ) {
                            continue;
                        }
                        for e in &grid.entries[grid.offsets[t]..grid.offsets[t + 1]] {
                            let j = item_index(e.item);
                            if j == i || !st.live[j] || seen[j] == epoch {
                                continue;
                            }
                            seen[j] = epoch;
                            for (port, entries) in collected.iter_mut().enumerate().take(self.ports)
                            {
                                let v = SAFETY * self.raw_contribution(i, port, j);
                                if v >= cutoff {
                                    entries.push(SparseEntry { j: e.item, v });
                                } else {
                                    row.pad_absorb(port, v);
                                }
                            }
                        }
                    }
                }
            }
        }
        for (port, entries) in collected.iter_mut().enumerate().take(self.ports) {
            entries.sort_unstable_by_key(|e| e.j);
            row.cols[port] = entries.iter().map(|e| e.j).collect();
            row.vals[port] = entries.iter().map(|e| e.v).collect();
        }
        row
    }

    /// Materialises row `i` if it does not exist yet.
    ///
    /// # Panics
    ///
    /// Panics if `i` is dead — only live requests ever get CSR rows, and
    /// every query path is specified for live items only.
    fn ensure_row(&self, i: usize) {
        if self.store.borrow().rows[i].is_some() {
            return;
        }
        let st = self.state.borrow();
        assert!(
            st.live[i],
            "sparse churn row requested for dead item {i}: queries are only \
             meaningful for live requests"
        );
        let row = self.build_live_row(&st, i);
        drop(st);
        let mut store = self.store.borrow_mut();
        if store.rows[i].is_none() {
            store.rows[i] = Some(row);
            store.materialized.push(item_id(i));
        }
    }

    /// Materialises row `i` if needed and returns a shared borrow of it —
    /// the one lookup point every query path goes through.
    ///
    /// # Panics
    ///
    /// Panics if `i` is dead (the liveness contract of
    /// [`ensure_row`](SparseChurnMatrix::ensure_row)).
    fn row_ref(&self, i: usize) -> std::cell::Ref<'_, ChurnRow> {
        self.ensure_row(i);
        match std::cell::Ref::filter_map(self.store.borrow(), |s| s.rows[i].as_ref()) {
            Ok(row) => row,
            Err(_) => unreachable!("ensure_row materialises row {i}"),
        }
    }

    /// The arrival patch: marks `item` live, refreshes the touched tile and
    /// supertile aggregates, and patches every materialised row — inserting
    /// a stored entry when the inflated contribution reaches the row's
    /// cutoff, otherwise folding it into the dropped-mass pad. Idempotent
    /// for an already-live item.
    fn arrive(&self, item: usize) {
        assert!(item < self.n, "item {item} out of range");
        {
            let mut st = self.state.borrow_mut();
            if st.live[item] {
                return;
            }
            st.live[item] = true;
            st.live_count += 1;
            self.refresh_tiles(&mut st, item);
        }
        let st = self.state.borrow();
        let mut store = self.store.borrow_mut();
        let RowStore { rows, materialized } = &mut *store;
        for &slot in materialized.iter() {
            let i = item_index(slot);
            if i == item {
                continue;
            }
            let Some(row) = rows[i].as_mut() else {
                debug_assert!(false, "materialized list tracks every row");
                continue;
            };
            row.mutations += 1;
            if row.mutations >= self.refresh_interval {
                *row = self.build_live_row(&st, i);
                continue;
            }
            for port in 0..self.ports {
                let v = SAFETY * self.raw_contribution(i, port, item);
                if v >= self.cutoffs[i] {
                    debug_assert!(
                        row.get(port, item_id(item)).is_none(),
                        "arriving item {item} was already stored"
                    );
                    row.insert_sorted(port, item_id(item), v);
                } else {
                    row.pad_absorb(port, v);
                }
            }
        }
    }

    /// The departure patch: marks `item` dead, refreshes the touched
    /// aggregates, drops `item`'s own row whole, and patches every surviving
    /// materialised row — removing the stored entry, or applying the
    /// corrected deflated subtraction to the dropped-mass pad (see the
    /// [module docs](self)). Idempotent for an already-dead item.
    fn depart(&self, item: usize) {
        assert!(item < self.n, "item {item} out of range");
        {
            let mut st = self.state.borrow_mut();
            if !st.live[item] {
                return;
            }
            st.live[item] = false;
            st.live_count -= 1;
            self.refresh_tiles(&mut st, item);
        }
        let st = self.state.borrow();
        let mut store = self.store.borrow_mut();
        let RowStore { rows, materialized } = &mut *store;
        if rows[item].take().is_some() {
            // Dropping the departed row un-materialises it; `retain` keeps
            // the survivors in their original order.
            materialized.retain(|&x| item_index(x) != item);
        }
        for &slot in materialized.iter() {
            let i = item_index(slot);
            let Some(row) = rows[i].as_mut() else {
                debug_assert!(false, "materialized list tracks every row");
                continue;
            };
            row.mutations += 1;
            if row.mutations >= self.refresh_interval {
                *row = self.build_live_row(&st, i);
                continue;
            }
            let mut poisoned = false;
            for port in 0..self.ports {
                let v = SAFETY * self.raw_contribution(i, port, item);
                if v >= self.cutoffs[i] {
                    let removed = row.remove_entry(port, item_id(item));
                    debug_assert!(removed, "stored pair ({i}, {item}) must exist");
                } else {
                    // The corrected bound (see `pad_shed` and the module
                    // docs): the pad can only gain a non-negative residue
                    // per cycle — tightened back by the guard rebuild.
                    if !row.pad_shed(port, v).is_finite() {
                        poisoned = true;
                    }
                }
            }
            if poisoned {
                *row = self.build_live_row(&st, i);
            }
        }
    }
}

impl InterferenceSystem for SparseChurnMatrix {
    fn len(&self) -> usize {
        self.n
    }

    /// The conservative SINR of live item `i` against live `others`: stored
    /// contributions plus the row's dropped-mass pad. Never above the exact
    /// SINR of the live pairs.
    ///
    /// # Panics
    ///
    /// Panics if `i` is dead (see [`SparseChurnMatrix`]'s liveness
    /// contract).
    fn sinr(&self, i: usize, others: &[usize]) -> f64 {
        let row = self.row_ref(i);
        let mut ports = [0.0f64; MAX_PORTS];
        let mut dropped = [0u32; MAX_PORTS];
        for &j in others {
            if j == i {
                continue;
            }
            for (port, slot) in ports.iter_mut().enumerate().take(self.ports) {
                match row.get(port, item_id(j)) {
                    Some(v) => *slot += v,
                    None => dropped[port] += 1,
                }
            }
        }
        for (port, slot) in ports.iter_mut().enumerate().take(self.ports) {
            if dropped[port] > 0 {
                *slot += row.mass[port].min(f64::from(dropped[port]) * row.cap[port]);
            }
        }
        let worst = ports[..self.ports]
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max);
        let total = worst + self.params.noise();
        if total == 0.0 {
            f64::INFINITY
        } else {
            self.signals[i] / total
        }
    }

    fn beta(&self) -> f64 {
        self.beta
    }
}

impl IncrementalSystem for SparseChurnMatrix {
    fn num_ports(&self) -> usize {
        self.ports
    }

    /// The stored contribution, or `0.0` for pruned pairs — the engine adds
    /// the dropped-mass pad separately through the [`GainBackend`] hooks.
    fn contribution(&self, i: usize, port: usize, j: usize) -> f64 {
        self.stored_contribution(i, port, j).unwrap_or(0.0)
    }

    fn signal(&self, i: usize) -> f64 {
        self.signals[i]
    }

    fn noise(&self) -> f64 {
        self.params.noise()
    }
}

impl GainBackend for SparseChurnMatrix {
    /// The stored live contribution of `j` at `(i, port)` — `None` both for
    /// pruned live pairs (covered by the dropped-mass pad) and for dead
    /// interferers (which contribute nothing and are never stored).
    fn stored_contribution(&self, i: usize, port: usize, j: usize) -> Option<f64> {
        if j == i {
            return Some(0.0);
        }
        self.row_ref(i).get(port, item_id(j))
    }

    /// Candidate folds hold one row borrow for the whole member walk instead
    /// of re-entering `stored_contribution` (ensure + `RefCell` borrow +
    /// lookup) once per member and port. Same members, same interleaved
    /// order, same stored values — the sums and verdicts are bit-for-bit
    /// those of the default hook.
    fn fold_candidate(
        &self,
        i: usize,
        ports: usize,
        members: &[usize],
        limit_hi: f64,
        acc: &mut [f64; MAX_PORTS],
        dropped: &mut [u32; MAX_PORTS],
    ) -> bool {
        let row = self.row_ref(i);
        for &j in members {
            for (port, slot) in acc.iter_mut().enumerate().take(ports) {
                let stored = if j == i {
                    Some(0.0)
                } else {
                    row.get(port, item_id(j))
                };
                match stored {
                    Some(v) => *slot += v,
                    None => dropped[port] += 1,
                }
                if *slot > limit_hi {
                    return false;
                }
            }
        }
        true
    }

    fn pruned_cap(&self, i: usize, port: usize) -> f64 {
        self.row_ref(i).cap[port]
    }

    fn pruned_mass(&self, i: usize, port: usize) -> f64 {
        self.row_ref(i).mass[port]
    }

    fn is_exact(&self) -> bool {
        false
    }

    fn strict_recheck(&self) -> bool {
        self.strict
    }

    fn exact_contribution(&self, i: usize, port: usize, j: usize) -> f64 {
        SAFETY * self.raw_contribution(i, port, j)
    }

    fn note_arrival(&self, item: usize) {
        self.arrive(item);
    }

    fn note_departure(&self, item: usize) {
        self.depart(item);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ColorAccumulator;
    use crate::power::ObliviousPower;
    use crate::request::{Instance, Request};
    use oblisched_metric::{EuclideanSpace, Point2};

    fn params() -> SinrParams {
        SinrParams::new(3.0, 1.0).unwrap()
    }

    /// The parent module's mixed near/far planar deployment.
    fn planar_instance() -> Instance<EuclideanSpace<2>> {
        let mut points = Vec::new();
        let mut requests = Vec::new();
        for k in 0..12usize {
            let x = (k % 4) as f64 * 37.0 + (k as f64 * 0.7).sin() * 5.0;
            let y = (k / 4) as f64 * 41.0 + (k as f64 * 1.3).cos() * 5.0;
            let id = points.len();
            points.push(Point2::xy(x, y));
            points.push(Point2::xy(x + 1.0 + (k % 3) as f64, y + 0.5));
            requests.push(Request::new(id, id + 1));
        }
        Instance::new(EuclideanSpace::from_points(points), requests).unwrap()
    }

    /// Brute-force true dropped mass of row `(i, port)` over the live set:
    /// the sum of every *un-inflated* live contribution below the cutoff.
    fn true_pruned_mass(m: &SparseChurnMatrix, live: &[usize], i: usize, port: usize) -> f64 {
        live.iter()
            .filter(|&&j| j != i)
            .map(|&j| m.raw_contribution(i, port, j))
            .filter(|&raw| SAFETY * raw < m.cutoffs[i])
            .sum()
    }

    #[test]
    fn entries_match_the_pure_pair_predicate_under_churn() {
        let inst = planar_instance();
        let eval = inst.evaluator(params(), &ObliviousPower::SquareRoot);
        for variant in Variant::all() {
            let view = eval.view(variant);
            let config = SparseConfig {
                cutoff_fraction: 0.05,
                ..SparseConfig::default()
            };
            let m = SparseChurnMatrix::new(&view, &config);
            let n = inst.len();
            // Interleaved arrivals and departures with every row forced
            // materialised in between.
            let events: Vec<(bool, usize)> = vec![
                (true, 0),
                (true, 3),
                (true, 7),
                (true, 1),
                (false, 3),
                (true, 11),
                (true, 4),
                (false, 0),
                (true, 2),
                (true, 3),
                (false, 7),
                (true, 8),
            ];
            let mut live: Vec<usize> = Vec::new();
            for &(arrive, item) in &events {
                if arrive {
                    m.note_arrival(item);
                    live.push(item);
                } else {
                    m.note_departure(item);
                    live.retain(|&x| x != item);
                }
                // Materialise every live row, then check storedness.
                for &i in &live {
                    for port in 0..m.ports() {
                        for j in 0..n {
                            let stored = m.stored_contribution(i, port, j);
                            if j == i {
                                assert_eq!(stored, Some(0.0));
                            } else if live.contains(&j) {
                                let v = SAFETY * m.raw_contribution(i, port, j);
                                assert_eq!(
                                    stored.is_some(),
                                    v >= m.cutoffs[i],
                                    "storedness of ({i},{j}) must be the pure pair predicate"
                                );
                                if let Some(s) = stored {
                                    assert_eq!(
                                        s, v,
                                        "stored value must be the inflated pair value"
                                    );
                                }
                            } else {
                                assert_eq!(stored, None, "dead items are never stored");
                            }
                        }
                    }
                }
            }
            assert_eq!(m.live_count(), live.len());
        }
    }

    #[test]
    fn pads_stay_conservative_at_every_intermediate_state() {
        let inst = planar_instance();
        let eval = inst.evaluator(params(), &ObliviousPower::SquareRoot);
        for variant in Variant::all() {
            for fold in [false, true] {
                let view = eval.view(variant);
                let config = SparseConfig {
                    cutoff_fraction: 0.05,
                    fold_ports: fold,
                    ..SparseConfig::default()
                };
                let m = SparseChurnMatrix::new(&view, &config);
                let n = inst.len();
                let mut live: Vec<usize> = Vec::new();
                let events: Vec<(bool, usize)> = (0..40)
                    .map(|k| {
                        let item = (k * 7 + 3) % n;
                        (k % 3 != 2, item)
                    })
                    .collect();
                for (arrive, item) in events {
                    if arrive && !live.contains(&item) {
                        m.note_arrival(item);
                        live.push(item);
                    } else if !arrive && live.contains(&item) {
                        m.note_departure(item);
                        live.retain(|&x| x != item);
                    }
                    for &i in &live {
                        for port in 0..m.ports() {
                            let tracked = m.pruned_mass(i, port);
                            let truth = true_pruned_mass(&m, &live, i, port);
                            assert!(
                                tracked >= truth,
                                "pad of ({i},{port}) eroded: tracked {tracked} < true {truth} \
                                 under {variant} fold={fold}"
                            );
                        }
                    }
                }
            }
        }
    }

    /// The satellite-3 regression: with the guard held off, a pruned request
    /// cycling out and in many times must never push the tracked pad below
    /// the true live dropped mass — the deflate-then-reinflate subtraction
    /// leaves a non-negative residue per cycle where subtracting the stored
    /// inflated value would spend the margin.
    #[test]
    fn departure_subtraction_never_erodes_the_pad() {
        let inst = planar_instance();
        let eval = inst.evaluator(params(), &ObliviousPower::SquareRoot);
        let view = eval.view(Variant::Bidirectional);
        let config = SparseConfig {
            cutoff_fraction: 0.05,
            ..SparseConfig::default()
        };
        // Hold the staleness guard far out of reach so every cycle is pure
        // patch arithmetic.
        let m = SparseChurnMatrix::new(&view, &config).with_refresh_interval(usize::MAX);
        // A far pair: row 0 watches, item 11 (other corner) cycles.
        m.note_arrival(0);
        m.note_arrival(11);
        let port = 0;
        assert!(
            m.stored_contribution(0, port, 11).is_none(),
            "the far pair must actually be pruned for this test to bite"
        );
        let mut last = f64::INFINITY;
        for cycle in 0..200 {
            m.note_departure(11);
            let alone = m.pruned_mass(0, port);
            assert!(
                alone >= 0.0,
                "pad went negative after {cycle} cycles: {alone}"
            );
            m.note_arrival(11);
            let tracked = m.pruned_mass(0, port);
            let truth = true_pruned_mass(&m, &[0, 11], 0, port);
            assert!(
                tracked >= truth,
                "cycle {cycle}: tracked pad {tracked} dipped below true mass {truth}"
            );
            // The residue is non-negative: the pad never shrinks across a
            // full out/in cycle (staleness, not erosion).
            if last.is_finite() {
                assert!(
                    tracked >= last * (1.0 - 1e-15),
                    "cycle {cycle}: pad shrank from {last} to {tracked}"
                );
            }
            last = tracked;
        }
    }

    #[test]
    fn refresh_interval_one_rebuilds_to_the_pure_live_set_function() {
        let inst = planar_instance();
        let eval = inst.evaluator(params(), &ObliviousPower::SquareRoot);
        for variant in Variant::all() {
            let view = eval.view(variant);
            let config = SparseConfig {
                cutoff_fraction: 0.05,
                ..SparseConfig::default()
            };
            let n = inst.len();
            let patched = SparseChurnMatrix::new(&view, &config).with_refresh_interval(1);
            let mut live: Vec<usize> = Vec::new();
            for k in 0..30usize {
                let item = (k * 5 + 1) % n;
                if k % 3 == 2 && live.contains(&item) {
                    patched.note_departure(item);
                    live.retain(|&x| x != item);
                } else if !live.contains(&item) {
                    patched.note_arrival(item);
                    live.push(item);
                }
                // Touch every live row so patches (here: rebuilds) apply.
                for &i in &live {
                    let _ = patched.pruned_mass(i, 0);
                }
                // A fresh backend replaying only the *final* live set must
                // agree bit-for-bit on every row: pads at interval 1 are a
                // pure function of the live set.
                let fresh = SparseChurnMatrix::new(&view, &config).with_refresh_interval(1);
                for &i in &live {
                    fresh.note_arrival(i);
                }
                for &i in &live {
                    for port in 0..patched.ports() {
                        assert_eq!(
                            patched.pruned_mass(i, port).to_bits(),
                            fresh.pruned_mass(i, port).to_bits(),
                            "row {i} pad diverged from the pure rebuild under {variant}"
                        );
                        assert_eq!(
                            patched.pruned_cap(i, port).to_bits(),
                            fresh.pruned_cap(i, port).to_bits()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn rows_exist_only_for_live_requests() {
        let inst = planar_instance();
        let eval = inst.evaluator(params(), &ObliviousPower::SquareRoot);
        let view = eval.view(Variant::Bidirectional);
        let m = SparseChurnMatrix::new(&view, &SparseConfig::default());
        assert_eq!(m.materialized_rows(), 0);
        m.note_arrival(0);
        m.note_arrival(1);
        m.note_arrival(2);
        // Rows are lazy: nothing materialised until queried.
        assert_eq!(m.materialized_rows(), 0);
        let _ = m.pruned_mass(0, 0);
        let _ = m.pruned_mass(1, 0);
        assert_eq!(m.materialized_rows(), 2);
        m.note_departure(0);
        assert_eq!(m.materialized_rows(), 1);
        assert!(!m.is_live(0));
        assert_eq!(m.live_count(), 2);
        // Re-arrival starts with a fresh, unmaterialised row.
        m.note_arrival(0);
        assert_eq!(m.materialized_rows(), 1);
    }

    #[test]
    fn accumulator_over_churn_backend_is_conservative() {
        let inst = planar_instance();
        for power in ObliviousPower::standard_assignments() {
            let eval = inst.evaluator(params(), &power);
            for variant in Variant::all() {
                for fold in [false, true] {
                    let view = eval.view(variant);
                    let config = SparseConfig {
                        cutoff_fraction: 0.05,
                        fold_ports: fold,
                        ..SparseConfig::default()
                    };
                    let m = SparseChurnMatrix::new(&view, &config);
                    for i in 0..inst.len() {
                        m.note_arrival(i);
                    }
                    let mut acc = ColorAccumulator::new(&m);
                    for i in 0..inst.len() {
                        if acc.try_insert(i) {
                            assert!(
                                view.is_feasible(acc.members()),
                                "churn-backend-accepted class {:?} must be naive-feasible \
                                 under {variant} fold={fold}",
                                acc.members()
                            );
                        }
                    }
                    assert!(!acc.is_empty());
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "dead item")]
    fn querying_a_dead_item_panics() {
        let inst = planar_instance();
        let eval = inst.evaluator(params(), &ObliviousPower::SquareRoot);
        let view = eval.view(Variant::Bidirectional);
        let m = SparseChurnMatrix::new(&view, &SparseConfig::default());
        let _ = m.pruned_mass(0, 0);
    }
}

//! Power assignments, in particular the oblivious ones studied by the paper.
//!
//! A power assignment is **oblivious** when the power of a request depends
//! only on the path loss (equivalently the distance) between its own
//! endpoints: `p_i = f(ℓ_i)`. The paper's central objects are
//!
//! * the **uniform** assignment `f(ℓ) = 1`,
//! * the **linear** assignment `f(ℓ) = ℓ`,
//! * the **square-root** assignment `f(ℓ) = √ℓ`, which Theorem 2 shows to be
//!   universally good for bidirectional requests,
//! * general **exponent** assignments `f(ℓ) = ℓ^τ`, which interpolate
//!   between these (τ = 0, 1, ½).
//!
//! Non-oblivious assignments (arbitrary per-request powers) are represented
//! by [`PowerVec`] and are used for optimal baselines and adversarial
//! constructions.

use crate::error::SinrError;
use crate::params::SinrParams;
use crate::request::Instance;
use oblisched_metric::MetricSpace;
use serde::{Deserialize, Serialize};

/// A rule assigning a transmission power to every request of an instance.
///
/// Implementations receive the request index and its path loss; oblivious
/// assignments ignore the index, per-request assignments ignore the loss.
pub trait PowerScheme {
    /// The power for request `index` whose own link has path loss `loss`.
    fn power_for(&self, index: usize, loss: f64) -> f64;

    /// A short human-readable name used in experiment tables.
    fn name(&self) -> String {
        "custom".to_string()
    }

    /// Evaluates the scheme on every request of an instance.
    fn powers<M: MetricSpace>(&self, instance: &Instance<M>, params: &SinrParams) -> Vec<f64>
    where
        Self: Sized,
    {
        (0..instance.len())
            .map(|i| self.power_for(i, instance.link_loss(i, params)))
            .collect()
    }
}

/// The oblivious power assignments studied by the paper.
///
/// # Example
///
/// ```
/// use oblisched_sinr::{ObliviousPower, PowerScheme};
///
/// assert_eq!(ObliviousPower::Uniform.power_for(0, 16.0), 1.0);
/// assert_eq!(ObliviousPower::Linear.power_for(0, 16.0), 16.0);
/// assert_eq!(ObliviousPower::SquareRoot.power_for(0, 16.0), 4.0);
/// assert_eq!(ObliviousPower::Exponent(0.25).power_for(0, 16.0), 2.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ObliviousPower {
    /// All requests transmit with the same power `1`.
    Uniform,
    /// Power proportional to the path loss: `p = ℓ`.
    Linear,
    /// The square-root assignment `p = √ℓ` (the paper's universally good
    /// assignment for bidirectional requests).
    SquareRoot,
    /// The general exponent assignment `p = ℓ^τ`.
    Exponent(f64),
}

impl ObliviousPower {
    /// The exponent `τ` such that this assignment is `ℓ ↦ ℓ^τ`.
    pub fn exponent(&self) -> f64 {
        match self {
            ObliviousPower::Uniform => 0.0,
            ObliviousPower::Linear => 1.0,
            ObliviousPower::SquareRoot => 0.5,
            ObliviousPower::Exponent(tau) => *tau,
        }
    }

    /// Evaluates the assignment on a path loss.
    pub fn power(&self, loss: f64) -> f64 {
        loss.powf(self.exponent())
    }

    /// The three named assignments compared throughout the experiments.
    pub fn standard_assignments() -> [ObliviousPower; 3] {
        [
            ObliviousPower::Uniform,
            ObliviousPower::Linear,
            ObliviousPower::SquareRoot,
        ]
    }
}

impl PowerScheme for ObliviousPower {
    fn power_for(&self, _index: usize, loss: f64) -> f64 {
        self.power(loss)
    }

    fn name(&self) -> String {
        match self {
            ObliviousPower::Uniform => "uniform".to_string(),
            ObliviousPower::Linear => "linear".to_string(),
            ObliviousPower::SquareRoot => "sqrt".to_string(),
            ObliviousPower::Exponent(tau) => format!("loss^{tau}"),
        }
    }
}

/// An arbitrary oblivious assignment given by a closure `f(ℓ)`.
///
/// Used by Theorem 1's adversarial construction, which works against *any*
/// oblivious function.
pub struct CustomOblivious<F> {
    f: F,
    label: String,
}

impl<F: Fn(f64) -> f64> CustomOblivious<F> {
    /// Wraps a power function with a label for experiment tables.
    pub fn new(label: impl Into<String>, f: F) -> Self {
        Self {
            f,
            label: label.into(),
        }
    }
}

impl<F: Fn(f64) -> f64> PowerScheme for CustomOblivious<F> {
    fn power_for(&self, _index: usize, loss: f64) -> f64 {
        (self.f)(loss)
    }

    fn name(&self) -> String {
        self.label.clone()
    }
}

/// An explicit, possibly non-oblivious, per-request power vector.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerVec {
    powers: Vec<f64>,
}

impl PowerVec {
    /// Creates a power vector, validating that every power is positive and
    /// finite.
    ///
    /// # Errors
    ///
    /// Returns [`SinrError::InvalidPower`] for the first offending entry.
    pub fn new(powers: Vec<f64>) -> Result<Self, SinrError> {
        for (index, &value) in powers.iter().enumerate() {
            if !value.is_finite() || value <= 0.0 {
                return Err(SinrError::InvalidPower { index, value });
            }
        }
        Ok(Self { powers })
    }

    /// The number of entries.
    pub fn len(&self) -> usize {
        self.powers.len()
    }

    /// Returns `true` if the vector is empty.
    pub fn is_empty(&self) -> bool {
        self.powers.is_empty()
    }

    /// The underlying powers.
    pub fn as_slice(&self) -> &[f64] {
        &self.powers
    }

    /// Total energy `Σ p_i` of the assignment — the quantity traded against
    /// schedule length in the paper's discussion of energy efficiency (§6).
    pub fn total_energy(&self) -> f64 {
        self.powers.iter().sum()
    }
}

impl PowerScheme for PowerVec {
    fn power_for(&self, index: usize, _loss: f64) -> f64 {
        self.powers[index]
    }

    fn name(&self) -> String {
        "explicit".to_string()
    }
}

impl From<PowerVec> for Vec<f64> {
    fn from(v: PowerVec) -> Vec<f64> {
        v.powers
    }
}

/// Total energy `Σ p_i` of an arbitrary power vector.
pub fn total_energy(powers: &[f64]) -> f64 {
    powers.iter().sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::Request;
    use oblisched_metric::LineMetric;

    #[test]
    fn oblivious_assignments_evaluate_correctly() {
        assert_eq!(ObliviousPower::Uniform.power(100.0), 1.0);
        assert_eq!(ObliviousPower::Linear.power(100.0), 100.0);
        assert_eq!(ObliviousPower::SquareRoot.power(100.0), 10.0);
        assert_eq!(ObliviousPower::Exponent(2.0).power(3.0), 9.0);
    }

    #[test]
    fn exponents_match_assignments() {
        assert_eq!(ObliviousPower::Uniform.exponent(), 0.0);
        assert_eq!(ObliviousPower::Linear.exponent(), 1.0);
        assert_eq!(ObliviousPower::SquareRoot.exponent(), 0.5);
        assert_eq!(ObliviousPower::Exponent(0.75).exponent(), 0.75);
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(ObliviousPower::Uniform.name(), "uniform");
        assert_eq!(ObliviousPower::Linear.name(), "linear");
        assert_eq!(ObliviousPower::SquareRoot.name(), "sqrt");
        assert_eq!(ObliviousPower::Exponent(0.25).name(), "loss^0.25");
        assert_eq!(PowerVec::new(vec![1.0]).unwrap().name(), "explicit");
    }

    #[test]
    fn standard_assignments_cover_the_three_classics() {
        let names: Vec<String> = ObliviousPower::standard_assignments()
            .iter()
            .map(|p| p.name())
            .collect();
        assert_eq!(names, vec!["uniform", "linear", "sqrt"]);
    }

    #[test]
    fn custom_oblivious_uses_closure() {
        let scheme = CustomOblivious::new("cube", |loss: f64| loss.powf(3.0));
        assert_eq!(scheme.power_for(0, 2.0), 8.0);
        assert_eq!(scheme.name(), "cube");
    }

    #[test]
    fn power_vec_validation() {
        assert!(PowerVec::new(vec![1.0, 2.0]).is_ok());
        assert!(matches!(
            PowerVec::new(vec![1.0, 0.0]),
            Err(SinrError::InvalidPower { index: 1, .. })
        ));
        assert!(PowerVec::new(vec![f64::NAN]).is_err());
        assert!(PowerVec::new(vec![-3.0]).is_err());
    }

    #[test]
    fn power_vec_accessors_and_energy() {
        let v = PowerVec::new(vec![1.0, 2.0, 3.0]).unwrap();
        assert_eq!(v.len(), 3);
        assert!(!v.is_empty());
        assert_eq!(v.as_slice(), &[1.0, 2.0, 3.0]);
        assert_eq!(v.total_energy(), 6.0);
        assert_eq!(v.power_for(1, 999.0), 2.0);
        let raw: Vec<f64> = v.into();
        assert_eq!(raw, vec![1.0, 2.0, 3.0]);
        assert_eq!(total_energy(&raw), 6.0);
    }

    #[test]
    fn powers_evaluates_whole_instance() {
        let metric = LineMetric::new(vec![0.0, 2.0, 10.0, 14.0]);
        let instance = Instance::new(metric, vec![Request::new(0, 1), Request::new(2, 3)]).unwrap();
        let params = SinrParams::new(2.0, 1.0).unwrap();
        // Losses are 4 and 16; the square-root assignment yields 2 and 4.
        let powers = ObliviousPower::SquareRoot.powers(&instance, &params);
        assert_eq!(powers, vec![2.0, 4.0]);
    }
}

//! Parameters of the physical (SINR) interference model.

use crate::error::SinrError;
use serde::{Deserialize, Serialize};

/// Parameters of the SINR model: path-loss exponent `α`, gain `β` and
/// ambient noise `ν`.
///
/// The loss between two points at distance `d` is `ℓ = d^α`. A signal sent
/// with power `p` is received at strength `p / ℓ`, and decoding succeeds when
/// that strength is at least `β` times the total interference plus noise.
///
/// The paper assumes `α ≥ 1` and `β > 0`; depending on the environment `α`
/// usually lies between 2 and 5. The analysis neglects noise (`ν = 0`), which
/// is also the default here, but the checker supports `ν > 0`.
///
/// # Example
///
/// ```
/// use oblisched_sinr::SinrParams;
///
/// let params = SinrParams::new(3.0, 1.5)?;
/// assert_eq!(params.loss(2.0), 8.0);
/// # Ok::<(), oblisched_sinr::SinrError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SinrParams {
    alpha: f64,
    beta: f64,
    noise: f64,
}

impl SinrParams {
    /// Creates parameters with zero ambient noise.
    ///
    /// # Errors
    ///
    /// Returns [`SinrError::InvalidParams`] if `alpha < 1` or `beta <= 0`, or
    /// if either value is not finite.
    pub fn new(alpha: f64, beta: f64) -> Result<Self, SinrError> {
        Self::with_noise(alpha, beta, 0.0)
    }

    /// Creates parameters with explicit ambient noise `ν ≥ 0`.
    ///
    /// # Errors
    ///
    /// Returns [`SinrError::InvalidParams`] if any value is outside its legal
    /// range (`alpha ≥ 1`, `beta > 0`, `noise ≥ 0`) or not finite.
    pub fn with_noise(alpha: f64, beta: f64, noise: f64) -> Result<Self, SinrError> {
        if !alpha.is_finite() || alpha < 1.0 {
            return Err(SinrError::InvalidParams {
                reason: format!("path-loss exponent alpha must be finite and >= 1, got {alpha}"),
            });
        }
        if !beta.is_finite() || beta <= 0.0 {
            return Err(SinrError::InvalidParams {
                reason: format!("gain beta must be finite and > 0, got {beta}"),
            });
        }
        if !noise.is_finite() || noise < 0.0 {
            return Err(SinrError::InvalidParams {
                reason: format!("noise must be finite and >= 0, got {noise}"),
            });
        }
        Ok(Self { alpha, beta, noise })
    }

    /// The path-loss exponent `α`.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The gain (SINR threshold) `β`.
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// The ambient noise `ν`.
    pub fn noise(&self) -> f64 {
        self.noise
    }

    /// Returns a copy with the gain replaced by `beta`.
    ///
    /// # Errors
    ///
    /// Returns [`SinrError::InvalidParams`] if `beta` is not positive and
    /// finite.
    pub fn with_beta(&self, beta: f64) -> Result<Self, SinrError> {
        Self::with_noise(self.alpha, beta, self.noise)
    }

    /// Path loss `ℓ(d) = d^α` of a link of length `d`.
    ///
    /// Degenerate links (`d == 0`) have zero loss; callers reject such links
    /// when building instances.
    pub fn loss(&self, distance: f64) -> f64 {
        distance.powf(self.alpha)
    }

    /// Inverse of [`SinrParams::loss`]: the distance whose loss is `loss`.
    pub fn distance_for_loss(&self, loss: f64) -> f64 {
        loss.powf(1.0 / self.alpha)
    }

    /// Received signal strength of a transmission with power `power` over a
    /// link with path loss `loss`.
    ///
    /// Returns `f64::INFINITY` when `loss == 0`.
    pub fn received_strength(&self, power: f64, loss: f64) -> f64 {
        if loss == 0.0 {
            f64::INFINITY
        } else {
            power / loss
        }
    }
}

impl Default for SinrParams {
    /// `α = 3`, `β = 1`, `ν = 0` — the mid-range values used by the
    /// experiment harness.
    fn default() -> Self {
        Self {
            alpha: 3.0,
            beta: 1.0,
            noise: 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_params_are_accepted() {
        let p = SinrParams::new(2.0, 0.5).unwrap();
        assert_eq!(p.alpha(), 2.0);
        assert_eq!(p.beta(), 0.5);
        assert_eq!(p.noise(), 0.0);
        let p = SinrParams::with_noise(4.0, 2.0, 0.1).unwrap();
        assert_eq!(p.noise(), 0.1);
    }

    #[test]
    fn invalid_params_are_rejected() {
        assert!(SinrParams::new(0.5, 1.0).is_err());
        assert!(SinrParams::new(f64::NAN, 1.0).is_err());
        assert!(SinrParams::new(3.0, 0.0).is_err());
        assert!(SinrParams::new(3.0, -1.0).is_err());
        assert!(SinrParams::new(3.0, f64::INFINITY).is_err());
        assert!(SinrParams::with_noise(3.0, 1.0, -0.1).is_err());
        assert!(SinrParams::with_noise(3.0, 1.0, f64::NAN).is_err());
    }

    #[test]
    fn loss_is_a_power_of_distance() {
        let p = SinrParams::new(3.0, 1.0).unwrap();
        assert_eq!(p.loss(2.0), 8.0);
        assert_eq!(p.loss(1.0), 1.0);
        assert_eq!(p.loss(0.0), 0.0);
        assert!((p.distance_for_loss(8.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn received_strength_divides_by_loss() {
        let p = SinrParams::new(2.0, 1.0).unwrap();
        assert_eq!(p.received_strength(10.0, 4.0), 2.5);
        assert_eq!(p.received_strength(10.0, 0.0), f64::INFINITY);
    }

    #[test]
    fn with_beta_replaces_only_the_gain() {
        let p = SinrParams::with_noise(2.5, 1.0, 0.2).unwrap();
        let q = p.with_beta(3.0).unwrap();
        assert_eq!(q.alpha(), 2.5);
        assert_eq!(q.beta(), 3.0);
        assert_eq!(q.noise(), 0.2);
        assert!(p.with_beta(-1.0).is_err());
    }

    #[test]
    fn default_is_mid_range() {
        let p = SinrParams::default();
        assert_eq!(p.alpha(), 3.0);
        assert_eq!(p.beta(), 1.0);
        assert_eq!(p.noise(), 0.0);
    }

    #[test]
    fn alpha_one_is_allowed() {
        // The paper's analysis holds for any constant alpha >= 1.
        let p = SinrParams::new(1.0, 1.0).unwrap();
        assert_eq!(p.loss(5.0), 5.0);
    }
}

//! The node-loss scheduling problem (§3.2: "splitting pairs").
//!
//! The analysis of the square-root assignment does not argue about pairs
//! directly. Instead each pair `(u_i, v_i)` is split into its two endpoint
//! nodes, and every node inherits the pair's loss `ℓ_i` as its *loss
//! parameter*. A set `U` of nodes is `γ`-feasible for a power assignment `p`
//! when `p_i / ℓ_i > γ · Σ_{j ∈ U \ {i}} p_j / ℓ(i, j)` for every `i ∈ U`.
//!
//! The module provides the node-loss instance type, its evaluator (which
//! implements [`InterferenceSystem`] so the generic gain machinery applies),
//! and the conversions between pair feasibility and node feasibility used in
//! §3.2:
//!
//! * a feasible pair set gives a node set that is `γ/(2+γ)`-feasible
//!   ([`split_pairs`] + [`pair_gain_to_node_gain`]),
//! * a feasible node set containing both endpoints of a pair lets those pairs
//!   be scheduled together ([`PairNodeMap::requests_fully_covered`]).

use crate::error::SinrError;
use crate::feasibility::{InterferenceSystem, Variant, REL_TOL};
use crate::params::SinrParams;
use crate::request::Instance;
use oblisched_metric::{MetricSpace, SubMetric};
use serde::{Deserialize, Serialize};

/// An instance of the node-loss scheduling problem: a metric over nodes and a
/// positive loss parameter per node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeLossInstance<M> {
    metric: M,
    losses: Vec<f64>,
}

impl<M: MetricSpace> NodeLossInstance<M> {
    /// Creates a node-loss instance.
    ///
    /// # Errors
    ///
    /// * [`SinrError::LossLengthMismatch`] if the number of losses differs
    ///   from the number of metric nodes.
    /// * [`SinrError::InvalidLoss`] if a loss parameter is not positive and
    ///   finite.
    pub fn new(metric: M, losses: Vec<f64>) -> Result<Self, SinrError> {
        if losses.len() != metric.len() {
            return Err(SinrError::LossLengthMismatch {
                expected: metric.len(),
                actual: losses.len(),
            });
        }
        for (index, &value) in losses.iter().enumerate() {
            if !value.is_finite() || value <= 0.0 {
                return Err(SinrError::InvalidLoss { index, value });
            }
        }
        Ok(Self { metric, losses })
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.losses.len()
    }

    /// Returns `true` if the instance has no nodes.
    pub fn is_empty(&self) -> bool {
        self.losses.is_empty()
    }

    /// The underlying metric.
    pub fn metric(&self) -> &M {
        &self.metric
    }

    /// The loss parameters.
    pub fn losses(&self) -> &[f64] {
        &self.losses
    }

    /// The loss parameter of node `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn loss(&self, i: usize) -> f64 {
        self.losses[i]
    }

    /// The square-root power assignment `p̄_i = √ℓ_i`.
    pub fn sqrt_powers(&self) -> Vec<f64> {
        self.losses.iter().map(|l| l.sqrt()).collect()
    }

    /// Builds an evaluator with explicit powers.
    ///
    /// # Errors
    ///
    /// * [`SinrError::PowerLengthMismatch`] if the power vector length
    ///   differs from the number of nodes.
    /// * [`SinrError::InvalidPower`] if a power is not positive and finite.
    pub fn evaluator(
        &self,
        params: SinrParams,
        powers: Vec<f64>,
    ) -> Result<NodeLossEvaluator<'_, M>, SinrError> {
        NodeLossEvaluator::new(self, params, powers)
    }

    /// Builds an evaluator using the square-root power assignment.
    pub fn sqrt_evaluator(&self, params: SinrParams) -> NodeLossEvaluator<'_, M> {
        NodeLossEvaluator::new(self, params, self.sqrt_powers())
            .expect("square roots of valid losses are valid powers")
    }

    /// Restricts the instance to a subset of its nodes. Node `i` of the
    /// result corresponds to `selection[i]` of this instance.
    ///
    /// # Errors
    ///
    /// Returns [`SinrError::SelectionOutOfRange`] if a selected node does
    /// not exist in the metric.
    pub fn restrict(
        &self,
        selection: &[usize],
    ) -> Result<NodeLossInstance<SubMetric<&M>>, SinrError> {
        if let Some((index, &node)) = selection
            .iter()
            .enumerate()
            .find(|&(_, &v)| v >= self.losses.len())
        {
            return Err(SinrError::SelectionOutOfRange {
                index,
                node,
                len: self.losses.len(),
            });
        }
        let losses = selection.iter().map(|&v| self.losses[v]).collect();
        let metric = SubMetric::new(&self.metric, selection.to_vec())
            .expect("every selected node was just bounds-checked against the metric");
        Ok(NodeLossInstance { metric, losses })
    }
}

/// Maps between pair indices of an [`Instance`] and node indices of the
/// node-loss instance produced by [`split_pairs`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PairNodeMap {
    num_requests: usize,
}

impl PairNodeMap {
    /// The node indices of the two endpoints of request `i` (sender first).
    pub fn nodes_of_request(&self, i: usize) -> (usize, usize) {
        (2 * i, 2 * i + 1)
    }

    /// The request a node-loss node belongs to.
    pub fn request_of_node(&self, v: usize) -> usize {
        v / 2
    }

    /// Number of requests in the original instance.
    pub fn num_requests(&self) -> usize {
        self.num_requests
    }

    /// The requests whose *both* endpoints appear in `nodes`.
    ///
    /// This is the direction "node-loss schedule → pair schedule" of §3.2: a
    /// feasible node set that contains more than half of all nodes yields a
    /// feasible pair set containing a constant fraction of all pairs.
    pub fn requests_fully_covered(&self, nodes: &[usize]) -> Vec<usize> {
        let mut seen = vec![[false, false]; self.num_requests];
        for &v in nodes {
            let r = self.request_of_node(v);
            if r < self.num_requests {
                seen[r][v % 2] = true;
            }
        }
        (0..self.num_requests)
            .filter(|&r| seen[r][0] && seen[r][1])
            .collect()
    }
}

/// Splits every request of `instance` into its two endpoints, producing the
/// node-loss instance of §3.2 over the 2n endpoint nodes.
///
/// Both endpoints of request `i` receive the pair's loss `ℓ_i` as their loss
/// parameter. The metric over the endpoints is the restriction of the
/// original metric.
pub fn split_pairs<'a, M: MetricSpace>(
    instance: &'a Instance<M>,
    params: &SinrParams,
) -> (NodeLossInstance<SubMetric<&'a M>>, PairNodeMap) {
    let mut selection = Vec::with_capacity(2 * instance.len());
    let mut losses = Vec::with_capacity(2 * instance.len());
    for i in 0..instance.len() {
        let r = instance.request(i);
        let loss = instance.link_loss(i, params);
        selection.push(r.sender);
        losses.push(loss);
        selection.push(r.receiver);
        losses.push(loss);
    }
    let metric = SubMetric::new(instance.metric(), selection)
        .expect("instance nodes are in range by construction");
    let node_loss = NodeLossInstance { metric, losses };
    (
        node_loss,
        PairNodeMap {
            num_requests: instance.len(),
        },
    )
}

/// The node-loss gain guaranteed by a pair-level gain (§3.2): a set of pairs
/// that is feasible with gain `γ` yields a node set that is `γ / (2 + γ)`
/// feasible.
pub fn pair_gain_to_node_gain(gamma: f64) -> f64 {
    gamma / (2.0 + gamma)
}

/// Evaluates SINR quantities of a node-loss instance under explicit powers.
#[derive(Debug, Clone)]
pub struct NodeLossEvaluator<'a, M> {
    instance: &'a NodeLossInstance<M>,
    params: SinrParams,
    powers: Vec<f64>,
}

impl<'a, M: MetricSpace> NodeLossEvaluator<'a, M> {
    /// Creates an evaluator, validating the power vector.
    ///
    /// # Errors
    ///
    /// See [`NodeLossInstance::evaluator`].
    pub fn new(
        instance: &'a NodeLossInstance<M>,
        params: SinrParams,
        powers: Vec<f64>,
    ) -> Result<Self, SinrError> {
        if powers.len() != instance.len() {
            return Err(SinrError::PowerLengthMismatch {
                expected: instance.len(),
                actual: powers.len(),
            });
        }
        for (index, &value) in powers.iter().enumerate() {
            if !value.is_finite() || value <= 0.0 {
                return Err(SinrError::InvalidPower { index, value });
            }
        }
        Ok(Self {
            instance,
            params,
            powers,
        })
    }

    /// The underlying instance.
    pub fn instance(&self) -> &'a NodeLossInstance<M> {
        self.instance
    }

    /// The model parameters.
    pub fn params(&self) -> SinrParams {
        self.params
    }

    /// The power of node `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn power(&self, i: usize) -> f64 {
        self.powers[i]
    }

    /// All powers.
    pub fn powers(&self) -> &[f64] {
        &self.powers
    }

    /// Received signal strength `p_i / ℓ_i` of node `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn signal(&self, i: usize) -> f64 {
        self.params
            .received_strength(self.powers[i], self.instance.loss(i))
    }

    /// Interference at node `i` from the nodes in `others` (minus `i`), the
    /// quantity `I_p(i | U)` of the paper.
    pub fn interference(&self, i: usize, others: &[usize]) -> f64 {
        let metric = self.instance.metric();
        others
            .iter()
            .filter(|&&j| j != i)
            .map(|&j| {
                let loss = self.params.loss(metric.distance(i, j));
                self.params.received_strength(self.powers[j], loss)
            })
            .sum()
    }
}

impl<'a, M: MetricSpace> InterferenceSystem for NodeLossEvaluator<'a, M> {
    fn len(&self) -> usize {
        self.powers.len()
    }

    fn sinr(&self, i: usize, others: &[usize]) -> f64 {
        let interference = self.interference(i, others) + self.params.noise();
        if interference == 0.0 {
            f64::INFINITY
        } else {
            self.signal(i) / interference
        }
    }

    fn beta(&self) -> f64 {
        self.params.beta()
    }
}

/// Converts a feasible pair set into a node set and checks the §3.2 claim:
/// the endpoints of a `γ`-feasible pair set form a `γ/(2+γ)`-feasible node
/// set for the same powers (each endpoint inheriting its pair's power).
///
/// Returns the node indices (in the node-loss instance produced by
/// [`split_pairs`]) and whether the claimed feasibility holds.
pub fn pair_set_to_node_set<M: MetricSpace>(
    instance: &Instance<M>,
    params: &SinrParams,
    pair_powers: &[f64],
    pairs: &[usize],
) -> Result<(Vec<usize>, bool), SinrError> {
    if pair_powers.len() != instance.len() {
        return Err(SinrError::PowerLengthMismatch {
            expected: instance.len(),
            actual: pair_powers.len(),
        });
    }
    let (node_loss, map) = split_pairs(instance, params);
    let node_powers: Vec<f64> = (0..node_loss.len())
        .map(|v| pair_powers[map.request_of_node(v)])
        .collect();
    let eval = node_loss.evaluator(*params, node_powers)?;
    let nodes: Vec<usize> = pairs
        .iter()
        .flat_map(|&i| {
            let (a, b) = map.nodes_of_request(i);
            [a, b]
        })
        .collect();
    let gain = pair_gain_to_node_gain(params.beta());
    let feasible = eval.is_feasible_with_gain(&nodes, gain * (1.0 - REL_TOL));
    Ok((nodes, feasible))
}

/// Checks the pair-level SINR feasibility of `pairs` (bidirectional variant)
/// and, if feasible, returns the corresponding `γ/(2+γ)`-feasible node set.
///
/// Convenience wrapper combining [`Instance::evaluator`] and
/// [`pair_set_to_node_set`]; used by the decomposition pipeline.
pub fn feasible_pairs_to_nodes<M: MetricSpace>(
    instance: &Instance<M>,
    params: &SinrParams,
    pair_powers: &[f64],
    pairs: &[usize],
) -> Result<Option<Vec<usize>>, SinrError> {
    let eval = crate::feasibility::Evaluator::with_powers(instance, *params, pair_powers.to_vec())?;
    if !eval.is_feasible(Variant::Bidirectional, pairs) {
        return Ok(None);
    }
    let (nodes, _) = pair_set_to_node_set(instance, params, pair_powers, pairs)?;
    Ok(Some(nodes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::power::{ObliviousPower, PowerScheme};
    use crate::request::Request;
    use oblisched_metric::{LineMetric, StarMetric};

    fn simple_nodeloss() -> NodeLossInstance<LineMetric> {
        let metric = LineMetric::new(vec![0.0, 10.0, 25.0]);
        NodeLossInstance::new(metric, vec![1.0, 4.0, 9.0]).unwrap()
    }

    #[test]
    fn construction_validates_inputs() {
        let metric = LineMetric::new(vec![0.0, 1.0]);
        assert!(matches!(
            NodeLossInstance::new(metric.clone(), vec![1.0]),
            Err(SinrError::LossLengthMismatch { .. })
        ));
        assert!(matches!(
            NodeLossInstance::new(metric.clone(), vec![1.0, 0.0]),
            Err(SinrError::InvalidLoss { index: 1, .. })
        ));
        assert!(NodeLossInstance::new(metric, vec![1.0, 2.0]).is_ok());
    }

    #[test]
    fn accessors_and_sqrt_powers() {
        let inst = simple_nodeloss();
        assert_eq!(inst.len(), 3);
        assert!(!inst.is_empty());
        assert_eq!(inst.loss(1), 4.0);
        assert_eq!(inst.losses(), &[1.0, 4.0, 9.0]);
        assert_eq!(inst.sqrt_powers(), vec![1.0, 2.0, 3.0]);
        assert_eq!(inst.metric().len(), 3);
    }

    #[test]
    fn evaluator_interference_matches_hand_computation() {
        let inst = simple_nodeloss();
        let params = SinrParams::new(2.0, 1.0).unwrap();
        let eval = inst.sqrt_evaluator(params);
        // Interference at node 0 from node 1: p_1 / d(0,1)^2 = 2 / 100.
        let i = eval.interference(0, &[1]);
        assert!((i - 0.02).abs() < 1e-12);
        // From both nodes: 2/100 + 3/625.
        let i = eval.interference(0, &[0, 1, 2]);
        assert!((i - (0.02 + 3.0 / 625.0)).abs() < 1e-12);
        // Signal of node 0: 1 / 1.
        assert_eq!(eval.signal(0), 1.0);
    }

    #[test]
    fn evaluator_validates_powers() {
        let inst = simple_nodeloss();
        let params = SinrParams::default();
        assert!(matches!(
            inst.evaluator(params, vec![1.0]),
            Err(SinrError::PowerLengthMismatch { .. })
        ));
        assert!(matches!(
            inst.evaluator(params, vec![1.0, -1.0, 1.0]),
            Err(SinrError::InvalidPower { index: 1, .. })
        ));
        let eval = inst.evaluator(params, vec![1.0, 1.0, 1.0]).unwrap();
        assert_eq!(eval.power(2), 1.0);
        assert_eq!(eval.powers().len(), 3);
        assert_eq!(eval.params().alpha(), 3.0);
        assert_eq!(eval.instance().len(), 3);
    }

    #[test]
    fn interference_system_impl_is_consistent() {
        let inst = simple_nodeloss();
        let params = SinrParams::new(2.0, 1.0).unwrap();
        let eval = inst.sqrt_evaluator(params);
        assert_eq!(eval.len(), 3);
        assert_eq!(eval.beta(), 1.0);
        let set = [0, 1, 2];
        let g = eval.max_feasible_gain(&set);
        assert!(g.is_finite());
        assert_eq!(eval.is_feasible(&set), g >= 1.0 * (1.0 - REL_TOL));
        // Singleton sets are always feasible (no interference, no noise).
        assert!(eval.is_feasible(&[2]));
        assert_eq!(eval.sinr(2, &[2]), f64::INFINITY);
    }

    #[test]
    fn restrict_keeps_losses_and_distances() {
        let inst = simple_nodeloss();
        let sub = inst.restrict(&[0, 2]).unwrap();
        assert!(matches!(
            inst.restrict(&[0, 9]),
            Err(SinrError::SelectionOutOfRange {
                index: 1,
                node: 9,
                ..
            })
        ));
        assert_eq!(sub.len(), 2);
        assert_eq!(sub.losses(), &[1.0, 9.0]);
        assert_eq!(sub.metric().distance(0, 1), 25.0);
    }

    #[test]
    fn star_metric_nodeloss_instances_work() {
        let star = StarMetric::new(vec![1.0, 2.0, 8.0]);
        let inst = NodeLossInstance::new(star, vec![1.0, 1.0, 1.0]).unwrap();
        let eval = inst.sqrt_evaluator(SinrParams::new(2.0, 0.5).unwrap());
        // Distances between leaves go through the centre, e.g. d(0,1) = 3.
        let i = eval.interference(0, &[1]);
        assert!((i - 1.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn split_pairs_produces_two_nodes_per_request() {
        let metric = LineMetric::new(vec![0.0, 1.0, 10.0, 12.0]);
        let instance = Instance::new(metric, vec![Request::new(0, 1), Request::new(2, 3)]).unwrap();
        let params = SinrParams::new(2.0, 1.0).unwrap();
        let (node_loss, map) = split_pairs(&instance, &params);
        assert_eq!(node_loss.len(), 4);
        assert_eq!(map.num_requests(), 2);
        assert_eq!(map.nodes_of_request(1), (2, 3));
        assert_eq!(map.request_of_node(3), 1);
        // Both endpoints of a pair carry the pair's loss.
        assert_eq!(node_loss.loss(0), 1.0);
        assert_eq!(node_loss.loss(1), 1.0);
        assert_eq!(node_loss.loss(2), 4.0);
        assert_eq!(node_loss.loss(3), 4.0);
        // Distances are inherited from the original metric.
        assert_eq!(node_loss.metric().distance(1, 2), 9.0);
    }

    #[test]
    fn requests_fully_covered_requires_both_endpoints() {
        let map = PairNodeMap { num_requests: 3 };
        assert_eq!(map.requests_fully_covered(&[0, 1, 2, 4, 5]), vec![0, 2]);
        assert_eq!(map.requests_fully_covered(&[0, 2, 4]), Vec::<usize>::new());
        assert_eq!(map.requests_fully_covered(&[]), Vec::<usize>::new());
    }

    #[test]
    fn pair_gain_to_node_gain_matches_formula() {
        assert!((pair_gain_to_node_gain(1.0) - 1.0 / 3.0).abs() < 1e-12);
        assert!((pair_gain_to_node_gain(2.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn feasible_pair_set_yields_feasible_node_set() {
        // Two well-separated unit links: feasible as pairs, and the §3.2
        // conversion must certify the node set at the reduced gain.
        let metric = LineMetric::new(vec![0.0, 1.0, 200.0, 201.0]);
        let instance = Instance::new(metric, vec![Request::new(0, 1), Request::new(2, 3)]).unwrap();
        let params = SinrParams::new(3.0, 1.0).unwrap();
        let powers = ObliviousPower::SquareRoot.powers(&instance, &params);
        let (nodes, feasible) = pair_set_to_node_set(&instance, &params, &powers, &[0, 1]).unwrap();
        assert_eq!(nodes, vec![0, 1, 2, 3]);
        assert!(
            feasible,
            "endpoints of a feasible pair set must be node-feasible at gain γ/(2+γ)"
        );

        let maybe_nodes = feasible_pairs_to_nodes(&instance, &params, &powers, &[0, 1]).unwrap();
        assert_eq!(maybe_nodes, Some(vec![0, 1, 2, 3]));
    }

    #[test]
    fn infeasible_pair_set_is_reported() {
        // Two overlapping links with uniform powers are not simultaneously
        // feasible, so the conversion reports None.
        let metric = LineMetric::new(vec![0.0, 10.0, 1.0, 11.0]);
        let instance = Instance::new(metric, vec![Request::new(0, 1), Request::new(2, 3)]).unwrap();
        let params = SinrParams::new(3.0, 1.0).unwrap();
        let powers = vec![1.0, 1.0];
        let maybe_nodes = feasible_pairs_to_nodes(&instance, &params, &powers, &[0, 1]).unwrap();
        assert_eq!(maybe_nodes, None);
    }

    #[test]
    fn pair_set_to_node_set_validates_power_length() {
        let metric = LineMetric::new(vec![0.0, 1.0]);
        let instance = Instance::new(metric, vec![Request::new(0, 1)]).unwrap();
        let params = SinrParams::default();
        assert!(matches!(
            pair_set_to_node_set(&instance, &params, &[], &[0]),
            Err(SinrError::PowerLengthMismatch { .. })
        ));
    }
}

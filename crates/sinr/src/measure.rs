//! Static interference measures and schedule-length lower bounds.
//!
//! These statistics are the baselines discussed in the related-work section:
//! Moscibroda, Wattenhofer and Zollinger schedule any directed request set
//! with `O(I_in · log² n)` colors, where `I_in` is a static measure of the
//! incoming interference; and every schedule needs at least
//! `⌈n / s_max⌉` colors where `s_max` is the largest simultaneously feasible
//! set. The experiment harness reports these quantities next to the measured
//! schedule lengths.

use crate::feasibility::{InterferenceSystem, Variant};
use crate::params::SinrParams;
use crate::request::Instance;
use oblisched_metric::MetricSpace;

/// The static in-interference of request `i`: the sum over other requests `j`
/// of `min(1, ℓ_i / ℓ(u_j, v_i))` — how strongly the other senders are heard
/// at `i`'s receiver relative to `i`'s own signal, assuming equal powers.
///
/// This is the per-request quantity underlying the measure `I_in` from the
/// related work ("Topology control meets SINR").
pub fn in_interference_of<M: MetricSpace>(
    instance: &Instance<M>,
    params: &SinrParams,
    i: usize,
) -> f64 {
    let metric = instance.metric();
    let ri = instance.request(i);
    let own_loss = instance.link_loss(i, params);
    (0..instance.len())
        .filter(|&j| j != i)
        .map(|j| {
            let rj = instance.request(j);
            let cross = params.loss(metric.distance(rj.sender, ri.receiver));
            if cross == 0.0 {
                1.0
            } else {
                (own_loss / cross).min(1.0)
            }
        })
        .sum()
}

/// The static interference measure `I_in = max_i` of
/// [`in_interference_of`]. Schedule lengths of `O(I_in · log² n)` are
/// achievable for directed instances (related work); the paper points out
/// that `I_in` can be a factor `Ω(n)` away from the optimum.
pub fn in_interference<M: MetricSpace>(instance: &Instance<M>, params: &SinrParams) -> f64 {
    (0..instance.len())
        .map(|i| in_interference_of(instance, params, i))
        .fold(0.0, f64::max)
}

/// Sentinel returned by [`pigeonhole_lower_bound`] when no finite schedule
/// exists (`usize::MAX`).
pub const UNSCHEDULABLE: usize = usize::MAX;

/// A lower bound on the number of colors of any schedule: `⌈n / s⌉` where `s`
/// is an upper bound on the size of a simultaneously feasible set.
///
/// # Contract
///
/// * `n == 0`: an empty request set needs `0` colors.
/// * `max_simultaneous == 0` with `n > 0`: not even singletons are feasible
///   (e.g. overwhelming ambient noise), so **no finite schedule exists** —
///   the function returns the sentinel [`UNSCHEDULABLE`] rather than
///   silently claiming a bound of `n` (which would wrongly suggest the
///   sequential schedule is valid). Callers comparing the bound against a
///   real schedule length must handle the sentinel explicitly.
pub fn pigeonhole_lower_bound(n: usize, max_simultaneous: usize) -> usize {
    if n == 0 {
        0
    } else if max_simultaneous == 0 {
        UNSCHEDULABLE
    } else {
        n.div_ceil(max_simultaneous)
    }
}

/// Counts how many requests of `set` can share a color with request `i` under
/// the pairwise test only (ignoring accumulation): `j` is compatible with `i`
/// when `{i, j}` is feasible. The count is an optimistic upper bound used by
/// the harness to sanity-check greedy results.
pub fn pairwise_compatible<S: InterferenceSystem>(system: &S, i: usize, set: &[usize]) -> usize {
    set.iter()
        .filter(|&&j| j != i && system.is_feasible(&[i, j]))
        .count()
}

/// Summary statistics of an instance reported by the experiment harness.
#[derive(Debug, Clone, PartialEq)]
pub struct InstanceStats {
    /// Number of requests.
    pub num_requests: usize,
    /// Minimum link length.
    pub min_link: f64,
    /// Maximum link length.
    pub max_link: f64,
    /// Aspect ratio of the link lengths (max / min).
    pub link_aspect_ratio: f64,
    /// The static in-interference measure `I_in`.
    pub in_interference: f64,
}

/// Computes [`InstanceStats`] for an instance.
pub fn instance_stats<M: MetricSpace>(
    instance: &Instance<M>,
    params: &SinrParams,
) -> InstanceStats {
    let lengths: Vec<f64> = (0..instance.len())
        .map(|i| instance.link_distance(i))
        .collect();
    let min_link = lengths.iter().copied().fold(f64::INFINITY, f64::min);
    let max_link = lengths.iter().copied().fold(0.0, f64::max);
    InstanceStats {
        num_requests: instance.len(),
        min_link: if instance.is_empty() { 0.0 } else { min_link },
        max_link,
        link_aspect_ratio: if instance.is_empty() || min_link == 0.0 {
            1.0
        } else {
            max_link / min_link
        },
        in_interference: in_interference(instance, params),
    }
}

/// Convenience: the largest color-class size achievable by *some* power
/// assignment is upper-bounded by the number of requests; this helper reports
/// the trivial bounds used when exact optimisation is too expensive.
pub fn trivial_bounds<M: MetricSpace>(
    instance: &Instance<M>,
    params: &SinrParams,
    variant: Variant,
) -> (usize, usize) {
    // Lower bound: 0 or 1 colors; upper bound: one color per request.
    let lower = usize::from(!instance.is_empty());
    let upper = instance.len();
    let _ = (params, variant);
    (lower, upper)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::power::ObliviousPower;
    use crate::request::Request;
    use oblisched_metric::LineMetric;

    fn instance() -> Instance<LineMetric> {
        let metric = LineMetric::new(vec![0.0, 1.0, 3.0, 4.0, 100.0, 102.0]);
        Instance::new(
            metric,
            vec![Request::new(0, 1), Request::new(2, 3), Request::new(4, 5)],
        )
        .unwrap()
    }

    #[test]
    fn in_interference_of_matches_hand_computation() {
        let inst = instance();
        let params = SinrParams::new(2.0, 1.0).unwrap();
        // Request 0: receiver at 1.0, own loss 1.
        // From request 1 (sender at 3.0): cross loss 4 -> min(1, 1/4) = 0.25.
        // From request 2 (sender at 100.0): cross loss 99^2 -> tiny.
        let v = in_interference_of(&inst, &params, 0);
        assert!((v - (0.25 + 1.0 / 9801.0)).abs() < 1e-9);
    }

    #[test]
    fn in_interference_is_max_over_requests() {
        let inst = instance();
        let params = SinrParams::new(2.0, 1.0).unwrap();
        let per: Vec<f64> = (0..3)
            .map(|i| in_interference_of(&inst, &params, i))
            .collect();
        let max = per.iter().copied().fold(0.0, f64::max);
        assert_eq!(in_interference(&inst, &params), max);
    }

    #[test]
    fn zero_cross_distance_counts_as_one() {
        // Sender of request 1 coincides with receiver of request 0.
        let metric = LineMetric::new(vec![0.0, 1.0, 1.0, 5.0]);
        let inst = Instance::new(metric, vec![Request::new(0, 1), Request::new(2, 3)]).unwrap();
        let params = SinrParams::new(3.0, 1.0).unwrap();
        let v = in_interference_of(&inst, &params, 0);
        assert!((v - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pigeonhole_bound() {
        assert_eq!(pigeonhole_lower_bound(10, 3), 4);
        assert_eq!(pigeonhole_lower_bound(9, 3), 3);
        assert_eq!(pigeonhole_lower_bound(0, 3), 0);
        // Not even singletons feasible: the sentinel, not a bogus bound of n.
        assert_eq!(pigeonhole_lower_bound(5, 0), UNSCHEDULABLE);
        // The degenerate empty case wins over the sentinel.
        assert_eq!(pigeonhole_lower_bound(0, 0), 0);
    }

    #[test]
    fn pairwise_compatible_counts_feasible_partners() {
        let inst = instance();
        let params = SinrParams::new(3.0, 1.0).unwrap();
        let eval = inst.evaluator(params, &ObliviousPower::SquareRoot);
        let view = eval.view(Variant::Bidirectional);
        let all = [0, 1, 2];
        // The far-away request 2 is compatible with both others.
        assert_eq!(pairwise_compatible(&view, 2, &all), 2);
    }

    #[test]
    fn stats_summarise_the_instance() {
        let inst = instance();
        let params = SinrParams::new(2.0, 1.0).unwrap();
        let stats = instance_stats(&inst, &params);
        assert_eq!(stats.num_requests, 3);
        assert_eq!(stats.min_link, 1.0);
        assert_eq!(stats.max_link, 2.0);
        assert_eq!(stats.link_aspect_ratio, 2.0);
        assert!(stats.in_interference > 0.0);
    }

    #[test]
    fn stats_of_empty_instance() {
        let metric = LineMetric::new(vec![0.0, 1.0]);
        let inst = Instance::new(metric, vec![]).unwrap();
        let params = SinrParams::default();
        let stats = instance_stats(&inst, &params);
        assert_eq!(stats.num_requests, 0);
        assert_eq!(stats.min_link, 0.0);
        assert_eq!(stats.link_aspect_ratio, 1.0);
        let (lower, upper) = trivial_bounds(&inst, &params, Variant::Directed);
        assert_eq!((lower, upper), (0, 0));
    }

    #[test]
    fn trivial_bounds_bracket_the_instance() {
        let inst = instance();
        let params = SinrParams::default();
        let (lower, upper) = trivial_bounds(&inst, &params, Variant::Bidirectional);
        assert_eq!(lower, 1);
        assert_eq!(upper, 3);
    }
}

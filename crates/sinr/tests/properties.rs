//! Property-based tests for the SINR substrate.

use oblisched_metric::{EuclideanSpace, MetricSpace, Point2};
use oblisched_sinr::nodeloss::split_pairs;
use oblisched_sinr::power::PowerScheme;
use oblisched_sinr::{
    extract_feasible_subset, partition_by_gain, rescale_coloring, ColorAccumulator, GainMatrix,
    Instance, InterferenceSystem, ObliviousPower, Request, Schedule, SinrParams, SparseConfig,
    SparseGainMatrix, Variant,
};
use proptest::prelude::*;

/// Generates a random instance: `n` requests with endpoints in a square of
/// side `side`, each link of length between 0.5 and `max_len`.
fn arb_instance(
    max_requests: usize,
    side: f64,
    max_len: f64,
) -> impl Strategy<Value = Instance<EuclideanSpace<2>>> {
    prop::collection::vec(
        (
            0.0..side,
            0.0..side,
            0.5..max_len,
            0.0..std::f64::consts::TAU,
        ),
        1..max_requests,
    )
    .prop_map(|links| {
        let mut points = Vec::new();
        let mut requests = Vec::new();
        for (x, y, len, angle) in links {
            let a = Point2::xy(x, y);
            let b = Point2::xy(x + len * angle.cos(), y + len * angle.sin());
            let ia = points.len();
            points.push(a);
            points.push(b);
            requests.push(Request::new(ia, ia + 1));
        }
        Instance::new(EuclideanSpace::from_points(points), requests).unwrap()
    })
}

fn arb_params() -> impl Strategy<Value = SinrParams> {
    (1.5f64..5.0, 0.25f64..2.0).prop_map(|(alpha, beta)| SinrParams::new(alpha, beta).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn singleton_sets_are_always_feasible_without_noise(
        instance in arb_instance(8, 100.0, 5.0),
        params in arb_params(),
    ) {
        let eval = instance.evaluator(params, &ObliviousPower::SquareRoot);
        for i in 0..instance.len() {
            prop_assert!(eval.is_feasible(Variant::Directed, &[i]));
            prop_assert!(eval.is_feasible(Variant::Bidirectional, &[i]));
        }
    }

    #[test]
    fn bidirectional_interference_dominates_directed(
        instance in arb_instance(8, 100.0, 5.0),
        params in arb_params(),
    ) {
        let eval = instance.evaluator(params, &ObliviousPower::Uniform);
        let all: Vec<usize> = (0..instance.len()).collect();
        for i in 0..instance.len() {
            let directed = eval.interference(Variant::Directed, i, &all);
            let bidirectional = eval.interference(Variant::Bidirectional, i, &all);
            prop_assert!(bidirectional >= directed - 1e-12);
        }
    }

    #[test]
    fn sinr_decreases_when_adding_interferers(
        instance in arb_instance(8, 100.0, 5.0),
        params in arb_params(),
    ) {
        let eval = instance.evaluator(params, &ObliviousPower::Linear);
        let n = instance.len();
        if n >= 3 {
            let small: Vec<usize> = (0..n - 1).collect();
            let all: Vec<usize> = (0..n).collect();
            for i in 0..n - 1 {
                prop_assert!(
                    eval.sinr(Variant::Directed, i, &all)
                        <= eval.sinr(Variant::Directed, i, &small) + 1e-9
                );
            }
        }
    }

    #[test]
    fn scaling_all_powers_preserves_feasibility_without_noise(
        instance in arb_instance(7, 80.0, 4.0),
        params in arb_params(),
        factor in 0.1f64..10.0,
    ) {
        // §1.1: with ν = 0, multiplying all power levels by the same positive
        // factor leaves every SINR unchanged.
        let base = ObliviousPower::SquareRoot.powers(&instance, &params);
        let scaled: Vec<f64> = base.iter().map(|p| p * factor).collect();
        let eval_base =
            oblisched_sinr::Evaluator::with_powers(&instance, params, base).unwrap();
        let eval_scaled =
            oblisched_sinr::Evaluator::with_powers(&instance, params, scaled).unwrap();
        let all: Vec<usize> = (0..instance.len()).collect();
        for i in 0..instance.len() {
            let a = eval_base.sinr(Variant::Bidirectional, i, &all);
            let b = eval_scaled.sinr(Variant::Bidirectional, i, &all);
            if a.is_finite() {
                prop_assert!((a - b).abs() <= 1e-6 * a.abs().max(1.0));
            } else {
                prop_assert!(b.is_infinite());
            }
        }
    }

    #[test]
    fn sequential_schedule_always_validates(
        instance in arb_instance(8, 50.0, 5.0),
        params in arb_params(),
    ) {
        let eval = instance.evaluator(params, &ObliviousPower::Uniform);
        let schedule = Schedule::sequential(instance.len());
        prop_assert!(schedule.validate(&eval, Variant::Directed).is_ok());
        prop_assert!(schedule.validate(&eval, Variant::Bidirectional).is_ok());
    }

    #[test]
    fn extracted_subsets_are_feasible_at_the_stricter_gain(
        instance in arb_instance(8, 60.0, 5.0),
        params in arb_params(),
        gamma_prime in 1.0f64..8.0,
    ) {
        let eval = instance.evaluator(params, &ObliviousPower::SquareRoot);
        let view = eval.view(Variant::Bidirectional);
        let all: Vec<usize> = (0..instance.len()).collect();
        let subset = extract_feasible_subset(&view, &all, gamma_prime);
        prop_assert!(view.is_feasible_with_gain(&subset, gamma_prime));
        prop_assert!(subset.len() <= all.len());
    }

    #[test]
    fn partition_groups_cover_everything_exactly_once(
        instance in arb_instance(8, 60.0, 5.0),
        params in arb_params(),
        gamma_prime in 1.0f64..8.0,
    ) {
        let eval = instance.evaluator(params, &ObliviousPower::SquareRoot);
        let view = eval.view(Variant::Bidirectional);
        let all: Vec<usize> = (0..instance.len()).collect();
        let groups = partition_by_gain(&view, &all, gamma_prime);
        let mut covered: Vec<usize> = groups.iter().flatten().copied().collect();
        covered.sort_unstable();
        prop_assert_eq!(covered, all);
    }

    #[test]
    fn rescaled_colorings_validate_at_the_stricter_gain(
        instance in arb_instance(6, 60.0, 4.0),
        params in arb_params(),
    ) {
        let eval = instance.evaluator(params, &ObliviousPower::SquareRoot);
        let view = eval.view(Variant::Bidirectional);
        let base = Schedule::new(vec![0; instance.len()]);
        let gamma_prime = params.beta() * 2.0;
        let rescaled = rescale_coloring(&view, &base, gamma_prime);
        for class in rescaled.classes() {
            prop_assert!(view.is_feasible_with_gain(&class, gamma_prime));
        }
    }

    #[test]
    fn split_pairs_preserves_losses_and_positions(
        instance in arb_instance(8, 60.0, 5.0),
        params in arb_params(),
    ) {
        let (node_loss, map) = split_pairs(&instance, &params);
        prop_assert_eq!(node_loss.len(), 2 * instance.len());
        for i in 0..instance.len() {
            let (a, b) = map.nodes_of_request(i);
            let loss = instance.link_loss(i, &params);
            prop_assert!((node_loss.loss(a) - loss).abs() < 1e-9 * loss.max(1.0));
            prop_assert!((node_loss.loss(b) - loss).abs() < 1e-9 * loss.max(1.0));
            // The two endpoints of a pair are at the pair's link distance.
            let d = node_loss.metric().distance(a, b);
            prop_assert!((d - instance.link_distance(i)).abs() < 1e-9 * d.max(1.0));
        }
    }

    #[test]
    fn schedule_color_classes_partition_requests(colors in prop::collection::vec(0usize..6, 0..32)) {
        let schedule = Schedule::new(colors.clone());
        let classes = schedule.classes();
        let total: usize = classes.iter().map(|c| c.len()).sum();
        prop_assert_eq!(total, colors.len());
        prop_assert!(schedule.num_colors() <= 6);
        for (c, class) in classes.iter().enumerate() {
            for &i in class {
                prop_assert_eq!(schedule.color_of(i), c);
            }
        }
    }

    #[test]
    fn gain_matrix_agrees_with_naive_evaluator_on_all_assignments(
        instance in arb_instance(10, 80.0, 6.0),
        params in arb_params(),
        subset_mask in 0usize..1024,
    ) {
        // Tentpole guarantee: the cached engine returns *identical*
        // `sinr`/`is_feasible` verdicts to the naive evaluator, for every
        // oblivious assignment and both problem variants.
        let n = instance.len();
        let set: Vec<usize> = (0..n).filter(|&i| subset_mask >> i & 1 == 1).collect();
        for power in ObliviousPower::standard_assignments() {
            let eval = instance.evaluator(params, &power);
            for variant in Variant::all() {
                let view = eval.view(variant);
                let matrix = GainMatrix::build(&view);
                for &i in &set {
                    let naive = view.sinr(i, &set);
                    let cached = matrix.sinr(i, &set);
                    prop_assert!(
                        naive == cached || (naive.is_infinite() && cached.is_infinite()),
                        "sinr({i}) diverged under {} / {variant}: naive {naive}, cached {cached}",
                        power.name()
                    );
                }
                prop_assert_eq!(matrix.is_feasible(&set), view.is_feasible(&set));
                prop_assert_eq!(
                    matrix.max_feasible_gain(&set),
                    view.max_feasible_gain(&set)
                );
            }
        }
    }

    #[test]
    fn color_accumulator_matches_naive_greedy_verdicts(
        instance in arb_instance(10, 80.0, 6.0),
        params in arb_params(),
        gain in 0.25f64..4.0,
    ) {
        // The accumulator's try-insert answers must equal the naive
        // push / is_feasible / pop protocol, item for item, for every
        // assignment and variant — this is what makes the migrated greedy
        // algorithms drift-free.
        for power in ObliviousPower::standard_assignments() {
            let eval = instance.evaluator(params, &power);
            for variant in Variant::all() {
                let view = eval.view(variant);
                let mut acc = ColorAccumulator::new(&view);
                let mut naive: Vec<usize> = Vec::new();
                for i in 0..instance.len() {
                    naive.push(i);
                    let ok = view.is_feasible_with_gain(&naive, gain);
                    if !ok {
                        naive.pop();
                    }
                    let engine_ok = acc.try_insert_with_gain(i, gain);
                    prop_assert!(
                        engine_ok == ok,
                        "verdict for item {} under {} / {} diverged",
                        i,
                        power.name(),
                        variant
                    );
                }
                prop_assert_eq!(acc.members(), naive.as_slice());
                for (pos, &i) in acc.members().iter().enumerate() {
                    let fresh = view.sinr(i, &naive);
                    let held = acc.sinr_of(pos);
                    prop_assert!(
                        fresh == held || (fresh.is_infinite() && held.is_infinite()),
                        "accumulated sinr of {i} drifted: {held} vs {fresh}"
                    );
                }
            }
        }
    }

    #[test]
    fn accumulator_over_cached_matrix_matches_naive_too(
        instance in arb_instance(9, 70.0, 5.0),
        params in arb_params(),
    ) {
        // Compose the two engine layers (matrix + accumulator) and compare
        // against the naive path at the model gain.
        for power in ObliviousPower::standard_assignments() {
            let eval = instance.evaluator(params, &power);
            for variant in Variant::all() {
                let view = eval.view(variant);
                let matrix = GainMatrix::build(&view);
                let mut acc = ColorAccumulator::new(&matrix);
                let mut naive: Vec<usize> = Vec::new();
                for i in 0..instance.len() {
                    naive.push(i);
                    let ok = view.is_feasible(&naive);
                    if !ok {
                        naive.pop();
                    }
                    prop_assert_eq!(acc.try_insert(i), ok);
                }
                prop_assert_eq!(acc.members(), naive.as_slice());
            }
        }
    }

    #[test]
    fn accumulator_removal_matches_scratch_rebuild(
        instance in arb_instance(10, 80.0, 6.0),
        params in arb_params(),
        ops in prop::collection::vec((any::<bool>(), any::<usize>()), 1..40),
    ) {
        // After ANY interleaving of inserts and removes the accumulator's
        // interference sums must stay within tolerance of an accumulator
        // rebuilt from scratch on the surviving members, and feasibility
        // verdicts must agree — for all three oblivious assignments and both
        // variants. Two drift-guard extremes are exercised side by side: an
        // interval-1 accumulator (rebuilds after every removal, bit-for-bit
        // fresh) and a never-rebuilding one (worst-case accumulated drift).
        let n = instance.len();
        for power in ObliviousPower::standard_assignments() {
            let eval = instance.evaluator(params, &power);
            for variant in Variant::all() {
                let view = eval.view(variant);
                let mut drifted =
                    ColorAccumulator::new(&view).with_rebuild_interval(usize::MAX);
                let mut exact = ColorAccumulator::new(&view).with_rebuild_interval(1);
                let mut shadow: Vec<usize> = Vec::new();
                for &(is_insert, sel) in &ops {
                    if is_insert {
                        let i = sel % n;
                        if !shadow.contains(&i) {
                            // Unchecked insertion also covers infeasible sets.
                            drifted.insert_unchecked(i);
                            exact.insert_unchecked(i);
                            shadow.push(i);
                        }
                    } else if !shadow.is_empty() {
                        let i = shadow.remove(sel % shadow.len());
                        prop_assert!(drifted.remove(i));
                        prop_assert!(exact.remove(i));
                    }
                    prop_assert_eq!(drifted.members(), shadow.as_slice());
                    prop_assert_eq!(exact.members(), shadow.as_slice());
                    let fresh = ColorAccumulator::with_members(&view, &shadow);
                    for pos in 0..shadow.len() {
                        // Interval 1: every removal rebuilds, so the sums are
                        // bit-for-bit the fresh left-to-right fold.
                        prop_assert_eq!(
                            exact.interference_of(pos).to_bits(),
                            fresh.interference_of(pos).to_bits()
                        );
                        // Never rebuilding: within tolerance of fresh.
                        let d = drifted.interference_of(pos);
                        let f = fresh.interference_of(pos);
                        if d.is_finite() && f.is_finite() {
                            let scale = d.abs().max(f.abs()).max(1.0);
                            prop_assert!(
                                (d - f).abs() <= 1e-6 * scale,
                                "sums drifted beyond tolerance: {} vs fresh {}", d, f
                            );
                        } else {
                            prop_assert!(
                                d.to_bits() == f.to_bits(),
                                "non-finite sums diverged: {} vs fresh {}", d, f
                            );
                        }
                    }
                }
                // Feasibility verdicts on further arrivals agree with an
                // accumulator rebuilt from scratch on the survivors.
                for i in 0..n {
                    if shadow.contains(&i) {
                        continue;
                    }
                    let mut fresh = ColorAccumulator::with_members(&view, &shadow);
                    let mut replay = drifted.clone();
                    prop_assert!(
                        replay.try_insert(i) == fresh.try_insert(i),
                        "post-churn verdict for {} diverged under {} / {}",
                        i, power.name(), variant
                    );
                }
            }
        }
    }

    #[test]
    fn oblivious_power_is_monotone_in_loss(
        tau in 0.0f64..2.0,
        l1 in 0.001f64..1.0e6,
        l2 in 0.001f64..1.0e6,
    ) {
        let scheme = ObliviousPower::Exponent(tau);
        let (lo, hi) = if l1 <= l2 { (l1, l2) } else { (l2, l1) };
        prop_assert!(scheme.power(lo) <= scheme.power(hi) + 1e-12);
    }

    /// The sparse tier's load-bearing guarantee: whatever the pruned
    /// backend accepts — one-shot feasibility verdicts as well as whole
    /// first-fit color classes built through the accumulator — the naive
    /// evaluator accepts too, for every standard assignment, both variants,
    /// folded and per-port rows, across random cutoffs.
    #[test]
    fn sparse_verdicts_are_conservative_wrt_naive(
        instance in arb_instance(10, 60.0, 5.0),
        params in arb_params(),
        cutoff in 0.0f64..0.3,
        fold in any::<bool>(),
    ) {
        for power in ObliviousPower::standard_assignments() {
            let eval = instance.evaluator(params, &power);
            for variant in Variant::all() {
                let view = eval.view(variant);
                let config = SparseConfig {
                    cutoff_fraction: cutoff,
                    fold_ports: fold,
                    ..SparseConfig::default()
                };
                let sparse = SparseGainMatrix::build(&view, &config);
                // First-fit through the accumulator: every emitted
                // multi-member class must be feasible for the naive path.
                let mut classes: Vec<ColorAccumulator<'_, SparseGainMatrix>> = Vec::new();
                for i in 0..instance.len() {
                    let placed = classes.iter_mut().any(|class| class.try_insert(i));
                    if !placed {
                        let mut class = ColorAccumulator::new(&sparse);
                        class.insert_unchecked(i);
                        classes.push(class);
                    }
                }
                for class in &classes {
                    if class.len() >= 2 {
                        prop_assert!(
                            view.is_feasible(class.members()),
                            "sparse-accepted class {:?} rejected by naive ({} / {variant}, \
                             cutoff {cutoff}, fold {fold})",
                            class.members(), power.name()
                        );
                    }
                }
                // One-shot verdicts on prefix sets.
                let all: Vec<usize> = (0..instance.len()).collect();
                for k in 1..=all.len() {
                    if sparse.is_feasible(&all[..k]) {
                        prop_assert!(
                            view.is_feasible(&all[..k]),
                            "sparse accepted {:?} but naive rejects ({} / {variant})",
                            &all[..k], power.name()
                        );
                    }
                }
            }
        }
    }

    /// Strict mode settles borderline verdicts through un-pruned
    /// contributions; the result must remain conservative.
    #[test]
    fn strict_sparse_remains_conservative(
        instance in arb_instance(8, 40.0, 4.0),
        params in arb_params(),
        cutoff in 0.05f64..0.5,
    ) {
        for power in ObliviousPower::standard_assignments() {
            let eval = instance.evaluator(params, &power);
            for variant in Variant::all() {
                let view = eval.view(variant);
                let config = SparseConfig {
                    cutoff_fraction: cutoff,
                    strict: true,
                    ..SparseConfig::default()
                };
                let sparse = SparseGainMatrix::build(&view, &config);
                let mut class = ColorAccumulator::new(&sparse);
                for i in 0..instance.len() {
                    if class.try_insert(i) && class.len() >= 2 {
                        prop_assert!(
                            view.is_feasible(class.members()),
                            "strict-accepted class {:?} rejected by naive ({} / {variant})",
                            class.members(), power.name()
                        );
                    }
                }
            }
        }
    }
}

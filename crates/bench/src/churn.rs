//! Shared replay loops of the churn workloads — the single definition of
//! "run a trace incrementally" and "run a trace with full reschedules" used
//! by experiment E10, the `churn` criterion bench, and the harness tests, so
//! they all measure exactly the same event loop.

use oblisched::dynamic::DynamicScheduler;
use oblisched::first_fit_subset;
use oblisched_instances::{ChurnEvent, ChurnTrace};
use oblisched_sinr::GainBackend;

/// Replays a trace through the dynamic scheduler (one `insert`/`remove` per
/// event), returning the final scheduler so callers can validate it and read
/// off colors / live count.
///
/// # Panics
///
/// Panics if the trace is inconsistent with the system (arrivals of live
/// requests, departures of dead ones, items out of range) — impossible for
/// generator-produced traces over their own universe.
pub fn replay_incremental<'s, S: GainBackend + ?Sized>(
    system: &'s S,
    trace: &ChurnTrace,
) -> DynamicScheduler<'s, S> {
    replay_incremental_with(system, trace, |_, _| {})
}

/// [`replay_incremental`] with a hook called after every applied event
/// (receiving the scheduler state and the 0-based event index) — the loop
/// the per-event-validating acceptance test runs is thereby exactly the loop
/// E10 and the `churn` bench time.
///
/// # Panics
///
/// Same trace-consistency contract as [`replay_incremental`].
pub fn replay_incremental_with<'s, S, F>(
    system: &'s S,
    trace: &ChurnTrace,
    mut on_event: F,
) -> DynamicScheduler<'s, S>
where
    S: GainBackend + ?Sized,
    F: FnMut(&DynamicScheduler<'s, S>, usize),
{
    let mut sched = DynamicScheduler::new(system);
    let mut ids = vec![None; trace.universe];
    for (index, event) in trace.events.iter().enumerate() {
        match *event {
            ChurnEvent::Arrive(i) => {
                ids[i] = Some(sched.insert(i).expect("arrivals target dead requests"));
            }
            ChurnEvent::Depart(i) => {
                let id = ids[i].take().expect("departures target live requests");
                sched.remove(id).expect("the id is live");
            }
        }
        on_event(&sched, index);
    }
    sched
}

/// Replays a trace with a full first-fit reschedule of the live set after
/// every event — the baseline the dynamic scheduler is measured against.
/// Returns the color count after the final event.
///
/// # Panics
///
/// Panics if the trace is inconsistent (departure of a dead request).
pub fn replay_full_reschedule<S: GainBackend + ?Sized>(system: &S, trace: &ChurnTrace) -> usize {
    let mut live: Vec<usize> = Vec::new();
    let mut colors = 0usize;
    for event in &trace.events {
        match *event {
            ChurnEvent::Arrive(i) => live.push(i),
            ChurnEvent::Depart(i) => {
                let pos = live
                    .iter()
                    .position(|&x| x == i)
                    .expect("departures target live");
                live.remove(pos);
            }
        }
        colors = first_fit_subset(system, &live).len();
    }
    colors
}

#[cfg(test)]
mod tests {
    use super::*;
    use oblisched_instances::churn_uniform;
    use oblisched_sinr::{ObliviousPower, SinrParams, Variant};

    #[test]
    fn both_replays_cover_the_same_final_live_set() {
        let (instance, trace) = churn_uniform(40, 24, 100, 5);
        let params = SinrParams::new(3.0, 1.0).unwrap();
        let eval = instance.evaluator(params, &ObliviousPower::SquareRoot);
        let view = eval.view(Variant::Bidirectional);
        let sched = replay_incremental(&view, &trace);
        let mut live = sched.live_items();
        live.sort_unstable();
        assert_eq!(live, trace.final_live());
        sched.validate().unwrap();
        let colors = replay_full_reschedule(&view, &trace);
        assert!(colors >= 1);
    }
}

//! Shared replay loops of the churn workloads — the single definition of
//! "run a trace incrementally" and "run a trace with full reschedules" used
//! by experiment E10, the `churn` criterion bench, and the harness tests, so
//! they all measure exactly the same event loop.

use oblisched::durability::{DurabilityError, DurableScheduler, SessionStore};
use oblisched::dynamic::{DynamicConfig, DynamicScheduler};
use oblisched::first_fit_subset;
use oblisched::scheduler::{
    EngineBackend, EngineStats, Scheduler, SessionBackend, DEFAULT_MATRIX_BUDGET,
};
use oblisched::solve::BackendPolicy;
use oblisched_instances::{ChurnEvent, ChurnTrace};
use oblisched_metric::EuclideanSpace;
use oblisched_sinr::{GainBackend, Instance, ObliviousPower, SinrParams, Variant};

/// Replays a trace through the dynamic scheduler (one `insert`/`remove` per
/// event), returning the final scheduler so callers can validate it and read
/// off colors / live count.
///
/// # Panics
///
/// Panics if the trace is inconsistent with the system (arrivals of live
/// requests, departures of dead ones, items out of range) — impossible for
/// generator-produced traces over their own universe.
pub fn replay_incremental<'s, S: GainBackend + ?Sized>(
    system: &'s S,
    trace: &ChurnTrace,
) -> DynamicScheduler<'s, S> {
    replay_incremental_with(system, trace, |_, _| {})
}

/// [`replay_incremental`] with a hook called after every applied event
/// (receiving the scheduler state and the 0-based event index) — the loop
/// the per-event-validating acceptance test runs is thereby exactly the loop
/// E10 and the `churn` bench time.
///
/// # Panics
///
/// Same trace-consistency contract as [`replay_incremental`].
pub fn replay_incremental_with<'s, S, F>(
    system: &'s S,
    trace: &ChurnTrace,
    mut on_event: F,
) -> DynamicScheduler<'s, S>
where
    S: GainBackend + ?Sized,
    F: FnMut(&DynamicScheduler<'s, S>, usize),
{
    let mut sched = DynamicScheduler::new(system);
    let mut ids = vec![None; trace.universe];
    for (index, event) in trace.events.iter().enumerate() {
        match *event {
            ChurnEvent::Arrive(i) => {
                ids[i] = Some(sched.insert(i).expect("arrivals target dead requests"));
            }
            ChurnEvent::Depart(i) => {
                let id = ids[i].take().expect("departures target live requests");
                sched.remove(id).expect("the id is live");
            }
        }
        on_event(&sched, index);
    }
    sched
}

/// Replays a trace through a [`DurableScheduler`] over a fresh session in
/// `store` — the durable counterpart of [`replay_incremental`], so E10-style
/// traces can run with every event logged and checkpointed. The session is
/// created with `config` and the `checkpoint_every` cadence; the final
/// scheduler is returned still holding its store (use
/// [`into_store`](DurableScheduler::into_store) to recover from it).
///
/// # Errors
///
/// [`DurabilityError::SessionExists`] when `store` already holds a session,
/// plus any logging/checkpointing error.
///
/// # Panics
///
/// Same trace-consistency contract as [`replay_incremental`], and
/// `checkpoint_every` must be at least 1.
pub fn replay_durable<'s, S, St>(
    system: &'s S,
    trace: &ChurnTrace,
    config: DynamicConfig,
    checkpoint_every: usize,
    store: St,
) -> Result<DurableScheduler<'s, S, St>, DurabilityError>
where
    S: GainBackend + ?Sized,
    St: SessionStore,
{
    replay_durable_with(system, trace, config, checkpoint_every, store, |_, _| {})
}

/// [`replay_durable`] with a hook called after every applied event, mirroring
/// [`replay_incremental_with`].
///
/// # Errors
///
/// Same contract as [`replay_durable`].
///
/// # Panics
///
/// Same contract as [`replay_durable`].
pub fn replay_durable_with<'s, S, St, F>(
    system: &'s S,
    trace: &ChurnTrace,
    config: DynamicConfig,
    checkpoint_every: usize,
    store: St,
    mut on_event: F,
) -> Result<DurableScheduler<'s, S, St>, DurabilityError>
where
    S: GainBackend + ?Sized,
    St: SessionStore,
    F: FnMut(&DurableScheduler<'s, S, St>, usize),
{
    let mut session = DurableScheduler::create(system, config, checkpoint_every, store)?;
    let mut ids = vec![None; trace.universe];
    for (index, event) in trace.events.iter().enumerate() {
        match *event {
            ChurnEvent::Arrive(i) => {
                ids[i] = Some(session.insert(i)?);
            }
            ChurnEvent::Depart(i) => {
                let id = ids[i].take().expect("departures target live requests");
                session.remove(id)?;
            }
        }
        on_event(&session, index);
    }
    Ok(session)
}

/// Replays a trace with a full first-fit reschedule of the live set after
/// every event — the baseline the dynamic scheduler is measured against.
/// Returns the color count after the final event.
///
/// # Panics
///
/// Panics if the trace is inconsistent (departure of a dead request).
pub fn replay_full_reschedule<S: GainBackend + ?Sized>(system: &S, trace: &ChurnTrace) -> usize {
    let mut live: Vec<usize> = Vec::new();
    let mut colors = 0usize;
    for event in &trace.events {
        match *event {
            ChurnEvent::Arrive(i) => live.push(i),
            ChurnEvent::Depart(i) => {
                let pos = live
                    .iter()
                    .position(|&x| x == i)
                    .expect("departures target live");
                live.remove(pos);
            }
        }
        colors = first_fit_subset(system, &live).len();
    }
    colors
}

/// The outcome of one large-tier sparse churn replay: the deterministic
/// fields (`universe`, `events`, `final_live`, `colors`) feed the golden
/// snapshot, the timing and footprint fields the E10 table.
#[derive(Debug, Clone)]
pub struct SparseChurnOutcome {
    /// Universe size of the workload.
    pub universe: usize,
    /// Number of replayed events.
    pub events: usize,
    /// Live requests after the final event.
    pub final_live: usize,
    /// Colors of the final schedule.
    pub colors: usize,
    /// Backend footprint in bytes *after* the replay (static grid and
    /// aggregates plus every row the session materialised).
    pub backend_bytes: usize,
    /// Wall time of the replay loop in milliseconds.
    pub dyn_ms: f64,
    /// FNV-1a fingerprint of the final live coloring ((item, color) pairs in
    /// color-then-insertion order) — what the perf gate pins bit-for-bit.
    pub schedule_fingerprint: u64,
    /// The facade's backend decision at session-selection time (asserted
    /// sparse for these workloads); E10 records it in the table's structured
    /// engine list.
    pub stats: EngineStats,
}

/// Runs one large-tier churn workload end to end on the facade-selected
/// session backend (square-root assignment, bidirectional): asserts that
/// [`Scheduler::session_backend`] under [`BackendPolicy::Auto`] routes the
/// over-budget universe to the churn-capable sparse tier, replays the trace
/// incrementally, certifies the final state against the naive evaluator,
/// and enforces the engine-budget acceptance bound on the *grown* backend
/// (after every row the session materialised). Shared by experiment E10,
/// the golden snapshot and the release acceptance test so they all measure
/// the same loop.
///
/// # Panics
///
/// Panics if the facade picks a non-sparse tier (the workload is small
/// enough for the dense matrix), if the final state fails naive
/// certification or drift validation, or if the grown backend exceeds the
/// 64 MiB engine budget.
pub fn sparse_churn_outcome(
    instance: &Instance<EuclideanSpace<2>>,
    trace: &ChurnTrace,
    params: SinrParams,
) -> SparseChurnOutcome {
    let eval = instance.evaluator(params, &ObliviousPower::SquareRoot);
    let view = eval.view(Variant::Bidirectional);
    let scheduler = Scheduler::new(params);
    let (backend, stats) = scheduler.session_backend(&view, BackendPolicy::Auto);
    assert_eq!(
        stats.backend,
        EngineBackend::Sparse,
        "large-tier churn workloads must route to the sparse session backend"
    );
    let start = std::time::Instant::now();
    let sched = replay_incremental(&backend, trace);
    let dyn_ms = start.elapsed().as_secs_f64() * 1e3;
    sched
        .validate_against(&view)
        .expect("the final sparse churn state must certify against the naive evaluator");
    sched
        .validate()
        .expect("accumulated sums must stay within drift tolerance");
    let backend_bytes = match &backend {
        SessionBackend::Sparse(s) => s.bytes(),
        _ => unreachable!("the facade tier was asserted sparse above"),
    };
    assert!(
        backend_bytes <= DEFAULT_MATRIX_BUDGET,
        "sparse session backend grew past the engine budget: {backend_bytes} bytes"
    );
    let schedule_fingerprint =
        crate::perf::fingerprint64(sched.color_classes().into_iter().enumerate().flat_map(
            |(color, class)| {
                class
                    .into_iter()
                    .flat_map(move |item| [item as u64, color as u64])
            },
        ));
    SparseChurnOutcome {
        universe: trace.universe,
        events: trace.len(),
        final_live: sched.len(),
        colors: sched.num_colors(),
        backend_bytes,
        dyn_ms,
        schedule_fingerprint,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oblisched_instances::churn_uniform;
    use oblisched_sinr::{ObliviousPower, SinrParams, Variant};

    #[test]
    fn durable_replay_matches_the_plain_replay_and_recovers() {
        use oblisched::durability::{DurableScheduler, MemoryStore};
        use oblisched::dynamic::DynamicConfig;
        let (instance, trace) = churn_uniform(40, 24, 100, 5);
        let params = SinrParams::new(3.0, 1.0).unwrap();
        let eval = instance.evaluator(params, &ObliviousPower::SquareRoot);
        let view = eval.view(Variant::Bidirectional);
        let config = DynamicConfig::default();
        let mut checked = 0usize;
        let session = replay_durable_with(
            &view,
            &trace,
            config,
            7,
            MemoryStore::new(),
            |session, index| {
                assert!(session.next_seq() > index as u64);
                checked += 1;
            },
        )
        .unwrap();
        assert_eq!(checked, trace.len());
        let expected = replay_incremental(&view, &trace).export_state();
        assert_eq!(session.scheduler().export_state(), expected);
        assert!(session.snapshots_written() > (trace.len() / 7) as u64);
        let recovered = DurableScheduler::recover(&view, session.into_store()).unwrap();
        assert_eq!(recovered.scheduler().export_state(), expected);
        recovered.validate().unwrap();
    }

    #[test]
    fn both_replays_cover_the_same_final_live_set() {
        let (instance, trace) = churn_uniform(40, 24, 100, 5);
        let params = SinrParams::new(3.0, 1.0).unwrap();
        let eval = instance.evaluator(params, &ObliviousPower::SquareRoot);
        let view = eval.view(Variant::Bidirectional);
        let sched = replay_incremental(&view, &trace);
        let mut live = sched.live_items();
        live.sort_unstable();
        assert_eq!(live, trace.final_live());
        sched.validate().unwrap();
        let colors = replay_full_reschedule(&view, &trace);
        assert!(colors >= 1);
    }
}

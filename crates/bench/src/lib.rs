//! Experiment harness for the `oblisched` workspace.
//!
//! The paper *Oblivious Interference Scheduling* is a theory paper without an
//! experimental section; its "evaluation" is the set of quantitative claims
//! made by its theorems. This crate regenerates each of those claims as a
//! table (experiments E1–E8, see `DESIGN.md` and `EXPERIMENTS.md`), plus the
//! E9 scaling measurement of the incremental interference engine and
//! criterion micro-benchmarks of the computational kernels (including the
//! `scaling` bench comparing the engine against the naive evaluator).
//!
//! Run all experiments with
//! `cargo run -p oblisched_bench --bin experiments --release`, or a single one
//! with `--exp e3`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod churn;
pub mod experiments;
pub mod jobs;
pub mod perf;
pub mod table;
pub mod tiers;

pub use churn::{
    replay_durable, replay_durable_with, replay_full_reschedule, replay_incremental,
    replay_incremental_with,
};
pub use experiments::{all_experiments, run_experiment, Experiment};
pub use jobs::{
    run_job, run_jobs_document, run_session, JobError, JobReport, JobSpec, SessionJob,
    SessionReport, SessionSpec,
};
pub use perf::{run_suite, PerfCase, PerfReport};
pub use table::Table;
pub use tiers::{
    non_conservative_classes, parallel_tier_config, parallel_tier_sparse_config, TIER_SEED,
};

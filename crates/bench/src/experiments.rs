//! The experiments E1–E11: one per quantitative claim of the paper, plus the
//! E9 scaling measurement of the incremental interference engine, the E10
//! churn comparison of the dynamic scheduler, and the E11 backend-tier
//! comparison (dense vs sparse vs parallel-sparse).

use crate::table::Table;
use oblisched::scheduler::{ScheduleResult, Scheduler};
use oblisched::solve::{BackendPolicy, SolveRequest};
use oblisched::{
    decay_classes, exact_chromatic_number, first_fit_coloring, sqrt_coloring, star_sqrt_subset,
    SqrtColoringConfig,
};
use oblisched_instances::{
    adversarial_for, clustered_deployment, max_supported_n, nested_chain, uniform_deployment,
    DeploymentConfig,
};
use oblisched_metric::{
    DominatingTreeFamily, EmbeddingConfig, EuclideanSpace, MetricSpace, PlanarMetric, Point2,
    StarMetric,
};
use oblisched_sinr::{
    extract_feasible_subset, rescale_coloring, Instance, NodeLossInstance, ObliviousPower,
    PowerScheme, Schedule, SinrParams, Variant,
};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Identifier of an experiment in the harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Experiment {
    /// Theorem 1: oblivious assignments need Ω(n) colors on adversarial
    /// directed instances; power control needs O(1).
    E1,
    /// §1.2: the nested chain separates uniform/linear from the square root.
    E2,
    /// Theorem 15: quality of the LP coloring vs greedy and the exact optimum.
    E3,
    /// Theorem 2: colors of the square-root assignment on instances with
    /// known O(1) optimum, as n grows.
    E4,
    /// Propositions 3/4: gain rescaling — kept fraction and color blow-up.
    E5,
    /// Lemma 5: fraction of star nodes kept by the square-root assignment.
    E6,
    /// Lemma 6: dominating tree families — stretch and core statistics.
    E7,
    /// §6: directed simulation of bidirectional schedules and the
    /// energy/colors trade-off of oblivious assignments.
    E8,
    /// Scaling: first-fit wall time and colors, incremental engine vs the
    /// naive evaluator, across growing n (identical colorings asserted).
    E9,
    /// Churn: the dynamic scheduler's incremental maintenance vs a full
    /// reschedule per event, across power assignments (colors, per-event
    /// latency, total wall time).
    E10,
    /// Backend tiers: dense `GainMatrix` at its budget ceiling (n=2000) vs
    /// the spatially-pruned sparse backend and tile-sharded parallel
    /// scheduling at n=10000, with conservativeness validated against the
    /// naive evaluator.
    E11,
}

impl Experiment {
    /// Parses an experiment id such as `"e3"` or `"E3"`.
    pub fn parse(s: &str) -> Option<Experiment> {
        match s.to_ascii_lowercase().as_str() {
            "e1" => Some(Experiment::E1),
            "e2" => Some(Experiment::E2),
            "e3" => Some(Experiment::E3),
            "e4" => Some(Experiment::E4),
            "e5" => Some(Experiment::E5),
            "e6" => Some(Experiment::E6),
            "e7" => Some(Experiment::E7),
            "e8" => Some(Experiment::E8),
            "e9" => Some(Experiment::E9),
            "e10" => Some(Experiment::E10),
            "e11" => Some(Experiment::E11),
            _ => None,
        }
    }
}

/// All experiments in order.
pub fn all_experiments() -> Vec<Experiment> {
    vec![
        Experiment::E1,
        Experiment::E2,
        Experiment::E3,
        Experiment::E4,
        Experiment::E5,
        Experiment::E6,
        Experiment::E7,
        Experiment::E8,
        Experiment::E9,
        Experiment::E10,
        Experiment::E11,
    ]
}

/// Runs one experiment and returns its table.
pub fn run_experiment(exp: Experiment) -> Table {
    match exp {
        Experiment::E1 => e1_adversarial_directed(),
        Experiment::E2 => e2_nested_chain(),
        Experiment::E3 => e3_lp_coloring_quality(),
        Experiment::E4 => e4_sqrt_vs_known_optimum(),
        Experiment::E5 => e5_gain_rescaling(),
        Experiment::E6 => e6_star_fraction(),
        Experiment::E7 => e7_tree_embeddings(),
        Experiment::E8 => e8_directed_simulation_and_energy(),
        Experiment::E9 => e9_scaling_engine(),
        Experiment::E10 => e10_dynamic_churn(),
        Experiment::E11 => e11_backend_tiers(),
    }
}

fn params() -> SinrParams {
    SinrParams::new(3.0, 1.0).expect("valid parameters")
}

/// Runs one typed request through the facade — the experiments treat every
/// job as well-formed, so the typed error becomes a panic with context.
fn solve<M: MetricSpace + PlanarMetric + Sync>(
    scheduler: &Scheduler,
    instance: &Instance<M>,
    request: &SolveRequest,
) -> ScheduleResult {
    scheduler
        .solve(instance, request)
        .unwrap_or_else(|e| panic!("experiment solve failed: {e}"))
}

fn random_instance(seed: u64, n: usize) -> Instance<EuclideanSpace<2>> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    uniform_deployment(
        DeploymentConfig {
            num_requests: n,
            side: 40.0 * (n as f64).sqrt(),
            min_link: 1.0,
            max_link: 15.0,
        },
        &mut rng,
    )
}

/// E1 — Theorem 1: Ω(n) vs O(1) on adversarial directed instances.
pub fn e1_adversarial_directed() -> Table {
    let p = params();
    let mut table = Table::new(
        "E1",
        "Theorem 1: oblivious assignments vs power control on adversarial directed instances",
        vec![
            "target assignment",
            "n",
            "colors (target oblivious)",
            "colors (power control)",
        ],
    );
    let scheduler = Scheduler::new(p);
    for power in ObliviousPower::standard_assignments() {
        let cap = max_supported_n(&power, &p);
        for &n in &[4usize, 8, 16, 32, 64] {
            if n > cap {
                continue;
            }
            let adv = adversarial_for(&power, &p, n);
            let oblivious = solve(
                &scheduler,
                adv.instance(),
                &SolveRequest::first_fit(power.into())
                    .with_backend(BackendPolicy::Exact)
                    .with_variant(Variant::Directed),
            );
            let optimal = solve(
                &scheduler,
                adv.instance(),
                &SolveRequest::power_control().with_variant(Variant::Directed),
            );
            table.push_row(vec![
                power.name(),
                n.to_string(),
                oblivious.num_colors().to_string(),
                optimal.num_colors().to_string(),
            ]);
        }
    }
    table.push_note("alpha = 3, beta = 1; the square-root construction is doubly exponential, so only small n fit in f64");
    table.push_note("paper prediction: the oblivious column grows linearly in n, the power-control column stays O(1)");
    table
}

/// E2 — §1.2: the nested chain.
pub fn e2_nested_chain() -> Table {
    let p = params();
    let mut table = Table::new(
        "E2",
        "§1.2: colors needed on the nested chain u_i = -2^i, v_i = 2^i (bidirectional, first-fit)",
        vec!["n", "uniform", "linear", "sqrt", "one-shot capacity (sqrt)"],
    );
    for &n in &[4usize, 8, 16, 24, 32] {
        let instance = nested_chain(n, 2.0);
        let mut row = vec![n.to_string()];
        for power in ObliviousPower::standard_assignments() {
            let eval = instance.evaluator(p, &power);
            let schedule = first_fit_coloring(&eval.view(Variant::Bidirectional));
            row.push(schedule.num_colors().to_string());
        }
        let eval = instance.evaluator(p, &ObliviousPower::SquareRoot);
        let view = eval.view(Variant::Bidirectional);
        let all: Vec<usize> = (0..n).collect();
        row.push(oblisched::greedy_one_shot(&view, &all).len().to_string());
        table.push_row(row);
    }
    table.push_note("paper prediction: uniform and linear grow ~n, sqrt stays O(1); the sqrt one-shot capacity grows ~n/4");
    table
}

/// E3 — Theorem 15: LP coloring vs greedy vs exact optimum.
pub fn e3_lp_coloring_quality() -> Table {
    let p = params();
    let mut table = Table::new(
        "E3",
        "Theorem 15: LP-rounding coloring for the sqrt assignment vs greedy and the exact optimum",
        vec![
            "n",
            "seeds",
            "greedy (avg)",
            "lp (avg)",
            "exact (avg, n<=10)",
            "lp / exact",
        ],
    );
    for &n in &[8usize, 10, 16, 32, 64] {
        let seeds: Vec<u64> = (0..3).map(|s| 1000 + s * 97 + n as u64).collect();
        let mut greedy_sum = 0.0;
        let mut lp_sum = 0.0;
        let mut exact_sum = 0.0;
        let mut exact_count = 0usize;
        for &seed in &seeds {
            let instance = random_instance(seed, n);
            let eval = instance.evaluator(p, &ObliviousPower::SquareRoot);
            let view = eval.view(Variant::Bidirectional);
            let greedy = first_fit_coloring(&view);
            let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xdead);
            let lp = sqrt_coloring(&instance, &p, &SqrtColoringConfig::default(), &mut rng);
            greedy_sum += greedy.num_colors() as f64;
            lp_sum += lp.num_colors() as f64;
            if n <= 10 {
                let (optimum, _) = exact_chromatic_number(&view);
                exact_sum += optimum as f64;
                exact_count += 1;
            }
        }
        let k = seeds.len() as f64;
        let exact_avg = if exact_count > 0 {
            exact_sum / exact_count as f64
        } else {
            f64::NAN
        };
        let ratio = if exact_count > 0 {
            lp_sum / k / exact_avg
        } else {
            f64::NAN
        };
        table.push_row(vec![
            n.to_string(),
            seeds.len().to_string(),
            format!("{:.2}", greedy_sum / k),
            format!("{:.2}", lp_sum / k),
            if exact_count > 0 {
                format!("{exact_avg:.2}")
            } else {
                "-".to_string()
            },
            if exact_count > 0 {
                format!("{ratio:.2}")
            } else {
                "-".to_string()
            },
        ]);
    }
    table.push_note("random uniform deployments, alpha = 3, beta = 1");
    table.push_note("paper prediction: lp / exact stays O(log n) — in practice a small constant");
    table
}

/// E4 — Theorem 2: sqrt colors on instances whose optimum is O(1) by
/// construction.
pub fn e4_sqrt_vs_known_optimum() -> Table {
    let p = params();
    let mut table = Table::new(
        "E4",
        "Theorem 2: sqrt-assignment schedule length on instances with O(1)-color optima",
        vec![
            "family",
            "n",
            "sqrt colors (greedy)",
            "sqrt colors (lp)",
            "power-control colors",
        ],
    );
    let scheduler = Scheduler::new(p);
    let first_fit_sqrt = SolveRequest::first_fit(ObliviousPower::SquareRoot.into())
        .with_backend(BackendPolicy::Exact);
    for &n in &[8usize, 16, 32, 64] {
        let chain = nested_chain(n, 2.0);
        let greedy = solve(&scheduler, &chain, &first_fit_sqrt);
        let lp = solve(&scheduler, &chain, &SolveRequest::sqrt_coloring(n as u64));
        let pc = solve(&scheduler, &chain, &SolveRequest::power_control());
        table.push_row(vec![
            "nested chain".to_string(),
            n.to_string(),
            greedy.num_colors().to_string(),
            lp.num_colors().to_string(),
            pc.num_colors().to_string(),
        ]);
    }
    let cap = max_supported_n(&ObliviousPower::Uniform, &p);
    for &n in &[8usize, 16, 32] {
        if n > cap {
            continue;
        }
        let adv = adversarial_for(&ObliviousPower::Uniform, &p, n);
        let instance = adv.instance();
        let greedy = solve(&scheduler, instance, &first_fit_sqrt);
        let lp = solve(
            &scheduler,
            instance,
            &SolveRequest::sqrt_coloring(n as u64 ^ 0xff),
        );
        let pc = solve(&scheduler, instance, &SolveRequest::power_control());
        table.push_row(vec![
            "uniform-adversarial".to_string(),
            n.to_string(),
            greedy.num_colors().to_string(),
            lp.num_colors().to_string(),
            pc.num_colors().to_string(),
        ]);
    }
    table.push_note("both families have O(1)-color schedules under non-oblivious powers (last column approximates them)");
    table.push_note("paper prediction: the sqrt columns stay polylog(n) — empirically flat in n");
    table
}

/// E5 — Propositions 3/4: gain rescaling.
pub fn e5_gain_rescaling() -> Table {
    let p = params();
    let mut table = Table::new(
        "E5",
        "Propositions 3/4: extracting stricter-gain subsets and rescaled colorings",
        vec![
            "n",
            "gamma'/gamma",
            "kept fraction",
            "bound gamma/(8 gamma')",
            "rescaled colors",
            "bound O(g'/g log n)",
        ],
    );
    for &n in &[16usize, 32, 64] {
        for &factor in &[2.0f64, 4.0, 8.0] {
            let instance = random_instance(7 + n as u64, n);
            let eval = instance.evaluator(p, &ObliviousPower::SquareRoot);
            let view = eval.view(Variant::Bidirectional);
            // Start from the greedy coloring at the base gain.
            let base = first_fit_coloring(&view);
            let gamma = p.beta();
            let gamma_prime = gamma * factor;
            // Kept fraction of the largest base class.
            let largest = base
                .classes()
                .into_iter()
                .max_by_key(|c| c.len())
                .unwrap_or_default();
            let kept = extract_feasible_subset(&view, &largest, gamma_prime);
            let fraction = if largest.is_empty() {
                1.0
            } else {
                kept.len() as f64 / largest.len() as f64
            };
            let rescaled = rescale_coloring(&view, &base, gamma_prime);
            let bound_colors = (factor * (n as f64).log2()).ceil() * base.num_colors() as f64;
            table.push_row(vec![
                n.to_string(),
                format!("{factor:.0}"),
                format!("{fraction:.2}"),
                format!("{:.3}", gamma / (8.0 * gamma_prime)),
                rescaled.num_colors().to_string(),
                format!("{bound_colors:.0}"),
            ]);
        }
    }
    table.push_note(
        "kept fraction is measured on the largest color class of the greedy base coloring",
    );
    table.push_note("paper prediction: kept fraction >= gamma/(8 gamma'); rescaled colors <= O(gamma'/gamma log n) x base colors");
    table
}

/// E6 — Lemma 5: stars.
pub fn e6_star_fraction() -> Table {
    let p = params();
    let mut table = Table::new(
        "E6",
        "Lemma 5: fraction of star nodes kept by the square-root assignment",
        vec!["n", "star type", "gamma", "kept fraction", "decay classes"],
    );
    let mut rng = ChaCha8Rng::seed_from_u64(2024);
    for &n in &[32usize, 128, 512] {
        // Balanced stars (loss parameter = decay) and skewed stars (random
        // loss parameters).
        let radii: Vec<f64> = (0..n).map(|i| 1.5f64.powi((i % 40) as i32)).collect();
        let balanced_losses: Vec<f64> = radii.iter().map(|r| r.powi(3)).collect();
        let skewed_losses: Vec<f64> = (0..n)
            .map(|_| 10f64.powf(rng.gen_range(0.0..6.0)))
            .collect();
        for (kind, losses) in [("balanced", balanced_losses), ("skewed", skewed_losses)] {
            let star = StarMetric::new(radii.clone());
            let classes = decay_classes(&star, p.alpha()).len();
            let instance = NodeLossInstance::new(star, losses).expect("positive losses");
            for &gamma in &[0.25f64, 1.0] {
                let kept = star_sqrt_subset(&instance, &p, gamma);
                table.push_row(vec![
                    n.to_string(),
                    kind.to_string(),
                    format!("{gamma:.2}"),
                    format!("{:.2}", kept.len() as f64 / n as f64),
                    classes.to_string(),
                ]);
            }
        }
    }
    table.push_note("paper prediction: the kept fraction approaches 1 as gamma shrinks relative to the gain at which the star is feasible");
    table
}

/// E7 — Lemma 6: dominating tree families.
pub fn e7_tree_embeddings() -> Table {
    let mut table = Table::new(
        "E7",
        "Lemma 6: dominating tree families — stretch and core statistics (FRT embeddings)",
        vec![
            "n",
            "trees",
            "avg stretch",
            "max stretch",
            "stretch threshold",
            "min core fraction",
        ],
    );
    for &n in &[16usize, 64, 256] {
        let mut rng = ChaCha8Rng::seed_from_u64(5 + n as u64);
        let points: Vec<Point2> = (0..n)
            .map(|_| Point2::xy(rng.gen_range(0.0..1000.0), rng.gen_range(0.0..1000.0)))
            .collect();
        let space = EuclideanSpace::from_points(points);
        let family = DominatingTreeFamily::build(&space, EmbeddingConfig::default(), &mut rng);
        let mut stretches = Vec::new();
        for tree in family.trees() {
            for v in 0..n {
                stretches.push(tree.max_stretch_at(&space, v));
            }
        }
        let avg = stretches.iter().sum::<f64>() / stretches.len() as f64;
        let max = stretches.iter().copied().fold(0.0, f64::max);
        let min_core = (0..n)
            .map(|v| family.core_fraction_of(v))
            .fold(f64::INFINITY, f64::min);
        table.push_row(vec![
            n.to_string(),
            family.num_trees().to_string(),
            format!("{avg:.1}"),
            format!("{max:.1}"),
            format!("{:.1}", family.stretch_threshold()),
            format!("{min_core:.2}"),
        ]);
    }
    table.push_note("every tree dominates the metric by construction; the table reports the per-node worst-case stretch");
    table.push_note("paper prediction: O(log n) trees suffice for every node to be in 9/10 of the cores with O(log n) stretch");
    table
}

/// E8 — §6: directed simulation and the energy/colors trade-off.
pub fn e8_directed_simulation_and_energy() -> Table {
    let p = params();
    let mut table = Table::new(
        "E8",
        "§6: directed simulation of bidirectional schedules and energy/colors trade-off",
        vec![
            "n",
            "bidi colors (sqrt)",
            "directed simulation colors",
            "energy sqrt / energy linear",
            "colors linear / colors sqrt",
        ],
    );
    for &n in &[16usize, 32, 64] {
        let mut rng = ChaCha8Rng::seed_from_u64(n as u64 * 31);
        let instance = clustered_deployment(
            DeploymentConfig {
                num_requests: n,
                side: 50.0 * (n as f64).sqrt(),
                min_link: 1.0,
                max_link: 20.0,
            },
            4,
            30.0,
            &mut rng,
        );
        let scheduler = Scheduler::new(p);
        let exact = |power: ObliviousPower| {
            solve(
                &scheduler,
                &instance,
                &SolveRequest::first_fit(power.into()).with_backend(BackendPolicy::Exact),
            )
        };
        let sqrt = exact(ObliviousPower::SquareRoot);
        let linear = exact(ObliviousPower::Linear);
        let doubled = oblisched::convert::verify_directed_simulation(
            &instance,
            &p,
            &sqrt.powers,
            &sqrt.schedule,
        )
        .expect("simulation of a valid schedule is valid");
        table.push_row(vec![
            n.to_string(),
            sqrt.num_colors().to_string(),
            doubled.to_string(),
            format!("{:.2}", sqrt.total_energy() / linear.total_energy()),
            format!(
                "{:.2}",
                linear.num_colors() as f64 / sqrt.num_colors() as f64
            ),
        ]);
    }
    table.push_note(
        "paper prediction: the directed simulation uses exactly twice the bidirectional colors",
    );
    table.push_note("the energy column quantifies the §6 remark that sqrt trades energy (vs the energy-optimal linear assignment) for schedule length");
    table
}

/// E9 — scaling: the incremental interference engine vs the naive evaluator.
///
/// Runs first-fit on the seed-pinned scaling families across growing `n`,
/// recording colors and wall time for both paths (the naive path is skipped
/// beyond `n = 1000`, where it takes minutes). Where both run, the colorings
/// are asserted identical — the engine's exact-equivalence guarantee,
/// measured rather than assumed. The full `n = 5000` acceptance measurement
/// lives in the `scaling` criterion bench.
pub fn e9_scaling_engine() -> Table {
    use oblisched::scheduler::{EngineBackend, EngineStats, DEFAULT_MATRIX_BUDGET};
    use oblisched_sinr::GainMatrix;

    /// Naive first-fit is cubic-ish in practice; skip it above this size.
    const NAIVE_LIMIT: usize = 1000;
    let p = params();
    let mut table = Table::new(
        "E9",
        "Scaling: first-fit colors and wall time, incremental engine vs naive evaluator (sqrt, bidirectional)",
        vec!["family", "n", "colors", "engine ms", "naive ms", "speedup"],
    );
    let mut run_row =
        |family: &str, instance_colors: (usize, Schedule, f64, Option<(Schedule, f64)>)| {
            let (n, engine, engine_ms, naive) = instance_colors;
            let (naive_ms, speedup) = match &naive {
                Some((schedule, ms)) => {
                    assert_eq!(
                        schedule, &engine,
                        "incremental and naive colorings diverged on {family} n={n}"
                    );
                    (
                        format!("{ms:.1}"),
                        format!("{:.1}x", ms / engine_ms.max(1e-9)),
                    )
                }
                None => ("-".to_string(), "-".to_string()),
            };
            table.push_row(vec![
                family.to_string(),
                n.to_string(),
                engine.num_colors().to_string(),
                format!("{engine_ms:.1}"),
                naive_ms,
                speedup,
            ]);
            // Both paths of this row run on the uncached on-the-fly view
            // (`EngineStats::bytes` is 0 by definition for that tier).
            table.push_engine(
                format!("{family} n={n}"),
                EngineStats {
                    backend: EngineBackend::OnTheFly,
                    n,
                    ports: 2,
                    bytes: 0,
                    dense_bytes: GainMatrix::bytes_for(n, 2),
                    budget: DEFAULT_MATRIX_BUDGET,
                },
            );
        };

    let time_first_fit = |view: &dyn Fn() -> Schedule| -> (Schedule, f64) {
        let start = std::time::Instant::now();
        let schedule = view();
        (schedule, start.elapsed().as_secs_f64() * 1e3)
    };

    for &n in &[200usize, 500, 1000, 2000, 5000] {
        let instance = oblisched_instances::scaling_uniform(n, 42);
        let eval = instance.evaluator(p, &ObliviousPower::SquareRoot);
        let view = eval.view(Variant::Bidirectional);
        let (engine, engine_ms) = time_first_fit(&|| first_fit_coloring(&view));
        let naive = (n <= NAIVE_LIMIT)
            .then(|| time_first_fit(&|| oblisched::first_fit_coloring_naive(&view)));
        run_row("uniform", (n, engine, engine_ms, naive));
    }
    for &n in &[200usize, 500, 2000] {
        let instance = oblisched_instances::scaling_line(n);
        let eval = instance.evaluator(p, &ObliviousPower::SquareRoot);
        let view = eval.view(Variant::Bidirectional);
        let (engine, engine_ms) = time_first_fit(&|| first_fit_coloring(&view));
        let naive =
            (n <= 500).then(|| time_first_fit(&|| oblisched::first_fit_coloring_naive(&view)));
        run_row("line", (n, engine, engine_ms, naive));
    }
    table.push_note(
        "seed-pinned instances (seed 42); '-' marks sizes where the naive baseline is skipped",
    );
    table.push_note(
        "where both paths run the colorings are asserted identical (exact-equivalence guarantee)",
    );
    table.push_note(
        "the n=5000 >=10x acceptance measurement is the `scaling` criterion bench's speedup-check",
    );
    table
}

/// E10 — churn: incremental maintenance vs full reschedules.
///
/// Replays the seed-pinned churn traces of `oblisched_instances::churn`
/// through the `DynamicScheduler` (per-event incremental work on the cached
/// gain matrix) and through a full first-fit reschedule of the live set
/// after every event, for each oblivious power assignment. The final dynamic
/// state is certified against the naive evaluator (`validate_against`), so
/// the speedup column compares two *valid* maintenance strategies.
///
/// The large-tier rows (`10k`/`50k` universes) are beyond the dense matrix
/// budget: they replay on the facade-selected churn-capable sparse backend
/// (square-root assignment) and double as the acceptance measurement that a
/// full churn session at `n = 5·10⁴` completes under the 64 MiB engine
/// budget.
pub fn e10_dynamic_churn() -> Table {
    use crate::churn::{replay_full_reschedule, replay_incremental, sparse_churn_outcome};
    use oblisched::scheduler::{EngineBackend, EngineStats, DEFAULT_MATRIX_BUDGET};
    use oblisched_instances::{
        churn_clustered, churn_clustered_10k, churn_uniform, churn_uniform_10k, churn_uniform_50k,
    };
    use oblisched_sinr::GainMatrix;

    let p = params();
    let mut table = Table::new(
        "E10",
        "Churn: dynamic scheduler (incremental) vs full reschedule per event (bidirectional)",
        vec![
            "family",
            "assignment",
            "events",
            "final live",
            "colors (dyn)",
            "colors (full)",
            "dyn ms",
            "dyn µs/event",
            "full ms",
            "speedup",
        ],
    );
    let workloads = [
        ("uniform", churn_uniform(400, 260, 800, 42)),
        ("clustered", churn_clustered(400, 260, 800, 42)),
    ];
    for (family, (instance, trace)) in &workloads {
        for power in ObliviousPower::standard_assignments() {
            let eval = instance.evaluator(p, &power);
            let view = eval.view(Variant::Bidirectional);
            let matrix = view.cached();

            // Incremental maintenance: one insert/remove per event.
            let start = std::time::Instant::now();
            let sched = replay_incremental(&matrix, trace);
            let dyn_time = start.elapsed();
            sched
                .validate_against(&view)
                .expect("the final churn state must certify against the naive evaluator");
            sched
                .validate()
                .expect("accumulated sums must stay within drift tolerance");

            // Baseline: full first-fit reschedule of the live set per event.
            let start = std::time::Instant::now();
            let full_colors = replay_full_reschedule(&matrix, trace);
            let full_time = start.elapsed();

            let dyn_ms = dyn_time.as_secs_f64() * 1e3;
            let full_ms = full_time.as_secs_f64() * 1e3;
            table.push_row(vec![
                family.to_string(),
                power.name(),
                trace.len().to_string(),
                sched.len().to_string(),
                sched.num_colors().to_string(),
                full_colors.to_string(),
                format!("{dyn_ms:.1}"),
                format!("{:.1}", dyn_ms * 1e3 / trace.len() as f64),
                format!("{full_ms:.1}"),
                format!("{:.1}x", full_ms / dyn_ms.max(1e-9)),
            ]);
            // Both strategies of this row replay on the cached dense matrix.
            table.push_engine(
                format!("{family}/{}", power.name()),
                EngineStats {
                    backend: EngineBackend::Dense,
                    n: instance.len(),
                    ports: 2,
                    bytes: GainMatrix::bytes_for(instance.len(), 2),
                    dense_bytes: GainMatrix::bytes_for(instance.len(), 2),
                    budget: DEFAULT_MATRIX_BUDGET,
                },
            );
        }
    }
    // Large-tier rows: the dense matrix would need 1.6 GB (n = 10⁴) /
    // 40 GB (n = 5·10⁴), so `Scheduler::session_backend` routes these to
    // the churn-capable sparse backend; `sparse_churn_outcome` certifies
    // the final state against the naive evaluator and asserts the grown
    // backend stays under the 64 MiB engine budget. The per-event full
    // reschedule baseline is hopeless at this scale and is skipped ('-').
    let large = [
        ("uniform-10k", churn_uniform_10k(42)),
        ("clustered-10k", churn_clustered_10k(42)),
        ("uniform-50k", churn_uniform_50k(42)),
    ];
    for (family, (instance, trace)) in &large {
        let out = sparse_churn_outcome(instance, trace, p);
        // The facade's actual session-backend decision for this universe.
        table.push_engine(format!("{family}/sqrt"), out.stats);
        table.push_row(vec![
            family.to_string(),
            "sqrt".to_string(),
            out.events.to_string(),
            out.final_live.to_string(),
            out.colors.to_string(),
            "-".to_string(),
            format!("{:.1}", out.dyn_ms),
            format!("{:.1}", out.dyn_ms * 1e3 / out.events.max(1) as f64),
            "-".to_string(),
            "-".to_string(),
        ]);
    }
    table.push_note("seed-pinned workloads (seed 42): universe 400, target 260 live, 800 events, cached gain matrix for both strategies");
    table.push_note("the final dynamic state is validated against the naive evaluator before timing is reported");
    table.push_note("expectation: incremental maintenance beats the full-reschedule baseline on total wall time at similar color counts");
    table.push_note("large-tier rows (10k/50k universes, live target n/4 capped at 8000) replay on the facade-selected sparse churn backend; '-' marks the skipped full-reschedule baseline, and the grown backend is asserted under the 64 MiB budget");
    table
}

/// E11 — backend tiers: dense vs sparse vs parallel-sparse.
///
/// The dense `GainMatrix` tops out at its 64 MiB budget around `n ≈ 2000`
/// (bidirectional: `8·2·n²` bytes); the spatially-pruned sparse backend
/// holds `n = 10⁴` in ~33 MiB. This experiment times the facade end to end
/// (backend build + scheduling) on the seed-pinned uniform scaling family:
///
/// * `dense` at `n = 2000` — the dense tier at its ceiling,
/// * `sparse` (serial first-fit) and `parallel-sparse` (tile-sharded, 1 and
///   8 threads) at `n = 10⁴`.
///
/// Every sparse-tier schedule is then validated class-by-class against the
/// naive evaluator: the "non-conservative" column counts multi-member
/// classes the exact checker rejects, and the experiment *asserts* it is
/// zero — the sparse tier's conservativeness guarantee, measured rather
/// than assumed. The two parallel runs are asserted identical (thread-count
/// determinism). Engine decisions (backend, bytes, budget) are recorded in
/// the table's structured `engines` list, one per row.
pub fn e11_backend_tiers() -> Table {
    use oblisched::scheduler::{EngineBackend, EngineStats, DEFAULT_MATRIX_BUDGET};
    use oblisched::{parallel_first_fit, tile_shards};
    use oblisched_instances::scaling_uniform_10k;
    use oblisched_sinr::{GainMatrix, Schedule, SparseConfig, SparseGainMatrix};

    let p = params();
    let mut table = Table::new(
        "E11",
        "Backend tiers: dense (n=2000, budget ceiling) vs sparse and parallel-sparse (n=10000), sqrt assignment, bidirectional",
        vec!["backend", "n", "colors", "wall ms", "backend MiB", "non-conservative"],
    );
    let mib = |bytes: usize| format!("{:.1}", bytes as f64 / (1024.0 * 1024.0));

    // Dense tier at its ceiling: build the full matrix and color on it —
    // n = 2000 is the largest size whose bidirectional matrix (61 MiB) still
    // fits the facade's 64 MiB budget.
    let inst2k = oblisched_instances::scaling_uniform(2000, 42);
    let eval2k = inst2k.evaluator(p, &ObliviousPower::SquareRoot);
    let start = std::time::Instant::now();
    let matrix = eval2k.view(Variant::Bidirectional).cached();
    let dense_schedule = first_fit_coloring(&matrix);
    let dense_ms = start.elapsed().as_secs_f64() * 1e3;
    table.push_row(vec![
        "dense".into(),
        "2000".into(),
        dense_schedule.num_colors().to_string(),
        format!("{dense_ms:.0}"),
        mib(GainMatrix::bytes_for(2000, 2)),
        "-".into(),
    ]);
    table.push_engine(
        "dense n=2000",
        EngineStats {
            backend: EngineBackend::Dense,
            n: 2000,
            ports: 2,
            bytes: GainMatrix::bytes_for(2000, 2),
            dense_bytes: GainMatrix::bytes_for(2000, 2),
            budget: DEFAULT_MATRIX_BUDGET,
        },
    );

    // Sparse tier at 5x the size: serial first-fit on the pruned backend,
    // and the tile-sharded parallel scheduler (which prefers a slightly
    // coarser cutoff and a larger shard slack).
    let inst10k = scaling_uniform_10k(42);
    let eval = inst10k.evaluator(p, &ObliviousPower::SquareRoot);
    let view = eval.view(Variant::Bidirectional);

    let start = std::time::Instant::now();
    let sparse = SparseGainMatrix::build(&view, &SparseConfig::default());
    let serial_schedule = first_fit_coloring(&sparse);
    let serial_ms = start.elapsed().as_secs_f64() * 1e3;
    let serial_bytes = sparse.bytes();

    // The parallel scheduler prefers a coarser cutoff (the shared tier
    // profile also used by the `sparse` bench); time serial first-fit on
    // that same backend too, so the parallel speedup in this table is an
    // apples-to-apples comparison.
    let par_config = crate::tiers::parallel_tier_sparse_config();
    let start = std::time::Instant::now();
    let same_backend = SparseGainMatrix::build(&view, &par_config);
    let serial_same_schedule = first_fit_coloring(&same_backend);
    let serial_same_ms = start.elapsed().as_secs_f64() * 1e3;
    let serial_same_bytes = same_backend.bytes();

    let mut par_runs: Vec<(usize, Schedule, f64, usize)> = Vec::new();
    for threads in [1usize, 8] {
        let start = std::time::Instant::now();
        let backend = SparseGainMatrix::build(
            &view,
            &SparseConfig {
                build_threads: threads,
                ..par_config
            },
        );
        let shards = tile_shards(&inst10k, oblisched::DEFAULT_TARGET_SHARDS);
        let schedule = parallel_first_fit(
            &backend,
            &shards,
            &crate::tiers::parallel_tier_config(threads),
        );
        let ms = start.elapsed().as_secs_f64() * 1e3;
        par_runs.push((threads, schedule, ms, backend.bytes()));
    }
    assert_eq!(
        par_runs[0].1, par_runs[1].1,
        "parallel schedules must not depend on the thread count"
    );

    // Conservativeness, measured: every multi-member class of every
    // sparse-tier schedule must pass the naive evaluator.
    let non_conservative = |schedule: &Schedule| -> usize {
        crate::tiers::non_conservative_classes(&eval, Variant::Bidirectional, schedule)
    };
    let sparse_stats = |bytes: usize, ports: usize| EngineStats {
        backend: EngineBackend::Sparse,
        n: 10_000,
        ports,
        bytes,
        dense_bytes: GainMatrix::bytes_for(10_000, 2),
        budget: DEFAULT_MATRIX_BUDGET,
    };
    let serial_bad = non_conservative(&serial_schedule);
    assert_eq!(serial_bad, 0, "sparse verdicts must be conservative");
    table.push_row(vec![
        "sparse".into(),
        "10000".into(),
        serial_schedule.num_colors().to_string(),
        format!("{serial_ms:.0}"),
        mib(serial_bytes),
        serial_bad.to_string(),
    ]);
    table.push_engine(
        "sparse n=10000 (default cutoff)",
        sparse_stats(serial_bytes, sparse.ports()),
    );
    let serial_same_bad = non_conservative(&serial_same_schedule);
    assert_eq!(serial_same_bad, 0, "sparse verdicts must be conservative");
    table.push_row(vec![
        "sparse (2e-3 cutoff)".into(),
        "10000".into(),
        serial_same_schedule.num_colors().to_string(),
        format!("{serial_same_ms:.0}"),
        mib(serial_same_bytes),
        serial_same_bad.to_string(),
    ]);
    table.push_engine(
        "sparse n=10000 (2e-3 cutoff)",
        sparse_stats(serial_same_bytes, same_backend.ports()),
    );
    for (threads, schedule, ms, bytes) in &par_runs {
        let bad = non_conservative(schedule);
        assert_eq!(bad, 0, "parallel-sparse verdicts must be conservative");
        table.push_row(vec![
            format!("parallel-sparse ({threads}t)"),
            "10000".into(),
            schedule.num_colors().to_string(),
            format!("{ms:.0}"),
            mib(*bytes),
            bad.to_string(),
        ]);
        table.push_engine(
            format!("parallel-sparse n=10000 ({threads}t)"),
            sparse_stats(*bytes, same_backend.ports()),
        );
    }

    // The facade makes the same tier choice automatically; record its real
    // decision (not a synthesized one) without timing it.
    let scheduler = Scheduler::new(p);
    let auto2k = solve(
        &scheduler,
        &inst2k,
        &SolveRequest::first_fit(ObliviousPower::SquareRoot.into()),
    );
    table.push_engine("facade auto n=2000", auto2k.engine);
    table.push_note(format!(
        "facade auto n=10000 would pick sparse: dense needs {} vs budget {} bytes",
        GainMatrix::bytes_for(10_000, 2),
        DEFAULT_MATRIX_BUDGET
    ));
    table.push_note("seed-pinned uniform scaling family (seed 42); wall time is backend build + scheduling (validation excluded, reported in the last column)");
    table.push_note("non-conservative = multi-member classes the naive evaluator rejects (asserted zero: sparse verdicts are conservative)");
    table.push_note("parallel rows: tile-sharded scheduling (64 shards, shard gain slack 3.0, sparse cutoff 2e-3, folded ports); 1t vs 8t schedules asserted identical");
    table.push_note("the parallel speedup reads against the same-backend serial row (sparse 2e-3); on a single-core host the gain is the sharded probe-work reduction, extra threads pay off on multi-core hardware");
    table
}

/// Validates a schedule against an instance/power pair — used by the harness
/// to double-check each experiment's artefacts before reporting.
pub fn check_schedule<M: MetricSpace>(
    instance: &Instance<M>,
    schedule: &Schedule,
    power: ObliviousPower,
    variant: Variant,
) -> bool {
    let eval = instance.evaluator(params(), &power);
    schedule.validate(&eval, variant).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn experiment_ids_parse() {
        assert_eq!(Experiment::parse("e1"), Some(Experiment::E1));
        assert_eq!(Experiment::parse("E8"), Some(Experiment::E8));
        assert_eq!(Experiment::parse("e9"), Some(Experiment::E9));
        assert_eq!(Experiment::parse("e10"), Some(Experiment::E10));
        assert_eq!(Experiment::parse("e11"), Some(Experiment::E11));
        assert_eq!(Experiment::parse("e12"), None);
        assert_eq!(all_experiments().len(), 11);
    }

    #[test]
    fn nested_chain_experiment_has_expected_shape() {
        let table = e2_nested_chain();
        assert_eq!(table.id, "E2");
        assert_eq!(table.rows.len(), 5);
        // Uniform needs n colors, sqrt stays small: check the last row.
        let last = table.rows.last().unwrap();
        let n: usize = last[0].parse().unwrap();
        let uniform: usize = last[1].parse().unwrap();
        let sqrt: usize = last[3].parse().unwrap();
        assert_eq!(uniform, n);
        assert!(sqrt <= 8);
    }

    #[test]
    fn gain_rescaling_experiment_respects_bounds() {
        let table = e5_gain_rescaling();
        for row in &table.rows {
            let fraction: f64 = row[2].parse().unwrap();
            let bound: f64 = row[3].parse().unwrap();
            assert!(
                fraction + 1e-9 >= bound,
                "kept fraction {fraction} below bound {bound}"
            );
        }
    }

    #[test]
    fn star_experiment_reports_fractions_in_range() {
        let table = e6_star_fraction();
        for row in &table.rows {
            let fraction: f64 = row[3].parse().unwrap();
            assert!((0.0..=1.0).contains(&fraction));
        }
    }

    #[test]
    fn scaling_experiment_reports_identical_colors_and_speedups() {
        // Keep this test cheap: run the real experiment shape on a small
        // instance rather than the full E9 sizes.
        let p = params();
        let instance = oblisched_instances::scaling_uniform(120, 42);
        let eval = instance.evaluator(p, &ObliviousPower::SquareRoot);
        let view = eval.view(Variant::Bidirectional);
        let engine = first_fit_coloring(&view);
        let naive = oblisched::first_fit_coloring_naive(&view);
        assert_eq!(engine, naive);
    }

    #[test]
    fn churn_experiment_shape_on_a_small_workload() {
        // Keep this test cheap: run the real E10 event loop on a small
        // seed-pinned workload rather than the full experiment sizes.
        use crate::churn::{replay_full_reschedule, replay_incremental};
        use oblisched_instances::churn_uniform;
        let p = params();
        let (instance, trace) = churn_uniform(60, 36, 150, 42);
        let eval = instance.evaluator(p, &ObliviousPower::SquareRoot);
        let view = eval.view(Variant::Bidirectional);
        let matrix = view.cached();
        let sched = replay_incremental(&matrix, &trace);
        sched.validate_against(&view).unwrap();
        sched.validate().unwrap();
        assert_eq!(sched.len(), trace.final_live().len());
        // Both strategies schedule the same live set; their color counts are
        // in the same ballpark (both are first-fit variants).
        let full_colors = replay_full_reschedule(&matrix, &trace);
        assert!(full_colors >= 1);
    }

    #[test]
    fn check_schedule_helper_detects_feasibility() {
        let instance = nested_chain(6, 2.0);
        let eval = instance.evaluator(params(), &ObliviousPower::SquareRoot);
        let good = first_fit_coloring(&eval.view(Variant::Bidirectional));
        assert!(check_schedule(
            &instance,
            &good,
            ObliviousPower::SquareRoot,
            Variant::Bidirectional
        ));
        let bad = Schedule::new(vec![0; 6]);
        assert!(!check_schedule(
            &instance,
            &bad,
            ObliviousPower::Uniform,
            Variant::Bidirectional
        ));
    }
}

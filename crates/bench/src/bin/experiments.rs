//! Experiment runner: regenerates the quantitative claims of the paper.
//!
//! Usage:
//!
//! ```text
//! cargo run -p oblisched_bench --bin experiments --release             # all experiments
//! cargo run -p oblisched_bench --bin experiments --release -- --exp e3 # one experiment
//! cargo run -p oblisched_bench --bin experiments --release -- --json out.json
//! ```

#![forbid(unsafe_code)]

use oblisched_bench::{all_experiments, run_experiment, Experiment, Table};
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut selected: Vec<Experiment> = Vec::new();
    let mut json_path: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--exp" => {
                i += 1;
                let id = args.get(i).map(String::as_str).unwrap_or("");
                match Experiment::parse(id) {
                    Some(e) => selected.push(e),
                    None => {
                        eprintln!("unknown experiment id '{id}' (expected e1..e11)");
                        std::process::exit(2);
                    }
                }
            }
            "--json" => {
                i += 1;
                json_path = args.get(i).cloned();
            }
            "--help" | "-h" => {
                println!("usage: experiments [--exp e1..e11]... [--json FILE]");
                return;
            }
            other => {
                eprintln!("unknown argument '{other}'");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    if selected.is_empty() {
        selected = all_experiments();
    }

    let mut tables: Vec<Table> = Vec::new();
    for exp in selected {
        let start = Instant::now();
        let mut table = run_experiment(exp);
        table.wall_ms = start.elapsed().as_secs_f64() * 1e3;
        println!("{table}");
        println!("(completed in {:.1}ms)\n", table.wall_ms);
        tables.push(table);
    }

    if let Some(path) = json_path {
        match serde_json::to_string_pretty(&tables) {
            Ok(json) => {
                if let Err(e) = std::fs::write(&path, json) {
                    eprintln!("failed to write {path}: {e}");
                    std::process::exit(1);
                }
                println!("wrote machine-readable results to {path}");
            }
            Err(e) => {
                eprintln!("failed to serialise results: {e}");
                std::process::exit(1);
            }
        }
    }
}

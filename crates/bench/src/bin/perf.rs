//! Perf-trajectory runner: times the pinned hot-path suite and gates
//! regressions against a committed `BENCH_<date>.json` baseline.
//!
//! Usage:
//!
//! ```text
//! # Regenerate the committed baseline (full suite):
//! cargo run -p oblisched_bench --bin perf --release -- \
//!     --date 2026-08-08 --out BENCH_2026-08-08.json
//!
//! # Gate a change against the committed baseline (smoke suite in CI):
//! PERF_SMOKE=1 cargo run -p oblisched_bench --bin perf --release -- \
//!     --check BENCH_2026-08-08.json
//! ```
//!
//! Environment:
//!
//! * `PERF_SMOKE=1` — run the scaled-down smoke suite (tier-1 CI time).
//! * `PERF_REPEATS=N` — override the per-case repeat counts.
//! * `PERF_FINGERPRINT_SALT=N` — XOR the salt into every fingerprint; only
//!   used by CI's negative control to prove the gate trips on a
//!   slowdown-free fingerprint change.

#![forbid(unsafe_code)]

use oblisched_bench::perf::{compare, run_suite, PerfReport};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_path: Option<String> = None;
    let mut check_path: Option<String> = None;
    let mut date = "unpinned".to_string();
    let mut notes: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                i += 1;
                out_path = args.get(i).cloned();
            }
            "--check" => {
                i += 1;
                check_path = args.get(i).cloned();
            }
            "--date" => {
                i += 1;
                if let Some(d) = args.get(i) {
                    date = d.clone();
                }
            }
            "--note" => {
                i += 1;
                if let Some(n) = args.get(i) {
                    notes.push(n.clone());
                }
            }
            "--help" | "-h" => {
                println!(
                    "usage: perf [--out FILE] [--check BASELINE] [--date ISO] [--note TEXT]..."
                );
                return;
            }
            other => {
                eprintln!("unknown argument '{other}'");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let smoke = std::env::var("PERF_SMOKE").is_ok_and(|v| v == "1");
    // A committed baseline must cover both suite shapes: CI's smoke gate
    // compares against the same file the full regeneration writes, so
    // `--out` always runs full + smoke regardless of `PERF_SMOKE`.
    let cases = if out_path.is_some() {
        eprintln!("running full + smoke perf suites (baseline regeneration)...");
        let mut cases = run_suite(false);
        cases.extend(run_suite(true));
        cases
    } else {
        eprintln!(
            "running {} perf suite...",
            if smoke { "smoke" } else { "full" }
        );
        run_suite(smoke)
    };
    for case in &cases {
        println!(
            "{:<28} median {:>10.1} ms   min {:>10.1} ms   colors {:>4}   fp {}",
            case.id, case.median_ms, case.min_ms, case.colors, case.fingerprint
        );
    }

    if let Some(path) = &check_path {
        let raw = match std::fs::read_to_string(path) {
            Ok(raw) => raw,
            Err(e) => {
                eprintln!("failed to read baseline {path}: {e}");
                std::process::exit(1);
            }
        };
        let baseline: PerfReport = match serde_json::from_str(&raw) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("failed to parse baseline {path}: {e}");
                std::process::exit(1);
            }
        };
        let (failures, skipped) = compare(&cases, &baseline);
        for s in &skipped {
            eprintln!("note: {s}");
        }
        if failures.is_empty() {
            println!(
                "perf gate green against {path} ({} cases compared)",
                cases.len() - skipped.len()
            );
        } else {
            for f in &failures {
                eprintln!("PERF REGRESSION: {f}");
            }
            std::process::exit(1);
        }
    }

    if let Some(path) = &out_path {
        let mut report = PerfReport::new(&date, cases);
        report.notes = notes;
        match serde_json::to_string_pretty(&report) {
            Ok(json) => {
                if let Err(e) = std::fs::write(path, json + "\n") {
                    eprintln!("failed to write {path}: {e}");
                    std::process::exit(1);
                }
                println!("wrote perf report to {path}");
            }
            Err(e) => {
                eprintln!("failed to serialise report: {e}");
                std::process::exit(1);
            }
        }
    }
}

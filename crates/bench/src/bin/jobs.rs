//! JSONL job runner: every scenario as data.
//!
//! Reads job specs (one JSON object per line, `#` comments and blank lines
//! skipped) from a file or stdin, runs each through `Scheduler::solve`, and
//! writes one JSON report per line to stdout or `--out`. A line with a
//! top-level `session` key instead runs a durable-session scenario: open an
//! on-disk WAL-backed dynamic session, replay a seed-pinned churn trace,
//! crash at the spec's crash point, recover, and report whether recovery
//! was bit-for-bit exact.
//!
//! Usage:
//!
//! ```text
//! cargo run -p oblisched_bench --bin jobs --release -- examples/jobs/smoke.jsonl
//! cargo run -p oblisched_bench --bin jobs --release -- --no-timing smoke.jsonl
//! cat specs.jsonl | cargo run -p oblisched_bench --bin jobs --release
//! ```
//!
//! `--no-timing` zeroes the `wall_ms` field, making the output byte-for-byte
//! deterministic — what the golden diff in `ci.sh` relies on.

#![forbid(unsafe_code)]

use oblisched_bench::jobs::run_jobs_document;
use std::io::Read;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut redact_timing = false;
    let mut input_path: Option<String> = None;
    let mut out_path: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--no-timing" => redact_timing = true,
            "--out" => {
                i += 1;
                out_path = args.get(i).cloned();
                if out_path.is_none() {
                    eprintln!("--out needs a file argument");
                    std::process::exit(2);
                }
            }
            "--help" | "-h" => {
                println!("usage: jobs [--no-timing] [--out FILE] [JOBFILE|-]");
                println!("reads JSONL job specs, writes JSONL reports");
                println!(
                    "lines with a top-level \"session\" key run durable crash/recover sessions"
                );
                return;
            }
            other if input_path.is_none() => input_path = Some(other.to_string()),
            other => {
                eprintln!("unknown argument '{other}'");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let input = match input_path.as_deref() {
        None | Some("-") => {
            let mut buf = String::new();
            if let Err(e) = std::io::stdin().read_to_string(&mut buf) {
                eprintln!("failed to read stdin: {e}");
                std::process::exit(1);
            }
            buf
        }
        Some(path) => match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("failed to read {path}: {e}");
                std::process::exit(1);
            }
        },
    };

    let reports = match run_jobs_document(&input, redact_timing) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("job run failed: {e}");
            std::process::exit(1);
        }
    };

    match out_path {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, &reports) {
                eprintln!("failed to write {path}: {e}");
                std::process::exit(1);
            }
        }
        None => print!("{reports}"),
    }
}

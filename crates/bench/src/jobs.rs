//! The serializable job runner: a [`JobSpec`] names a generator family and a
//! [`SolveRequest`], [`run_job`] executes it through the one
//! [`Scheduler::solve`] entry point, and the result comes back as a
//! [`JobReport`] — colors, energy, wall time and the backend decision.
//!
//! The `jobs` binary (`cargo run -p oblisched_bench --bin jobs`) streams
//! JSONL: one spec per input line, one report per output line. This turns
//! every scenario in the repository into data — a committed job file plus a
//! golden report diff in `ci.sh` replaces a hand-written harness per
//! scenario.
//!
//! # Example
//!
//! ```
//! use oblisched::solve::{PowerAssignment, SolveRequest};
//! use oblisched_bench::jobs::{run_job, JobSpec};
//! use oblisched_instances::Family;
//!
//! let spec = JobSpec {
//!     family: Family::Nested,
//!     n: 8,
//!     seed: 0,
//!     request: SolveRequest::first_fit(PowerAssignment::SquareRoot),
//!     params: None,
//! };
//! let report = run_job(&spec)?;
//! assert_eq!(report.n, 8);
//! assert!(report.colors >= 1);
//!
//! // Specs and reports are JSONL-ready.
//! let line = serde_json::to_string(&spec).unwrap();
//! let back: JobSpec = serde_json::from_str(&line).unwrap();
//! assert_eq!(back, spec);
//! # Ok::<(), oblisched_bench::jobs::JobError>(())
//! ```

use oblisched::dynamic::DynamicError;
use oblisched::scheduler::{EngineStats, Scheduler};
use oblisched::solve::{Algorithm, Assignment, ScheduleError, SolveRequest};
use oblisched_instances::{build_family, Family, FamilyError, FamilyInstance};
use oblisched_sinr::{SinrParams, Variant};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::time::Instant;

/// One line of a JSONL job file: which family instance to build and which
/// [`SolveRequest`] to run on it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JobSpec {
    /// The generator family.
    pub family: Family,
    /// Number of requests to generate.
    pub n: usize,
    /// Seed of the family's RNG (ignored by the deterministic families).
    pub seed: u64,
    /// The scheduling run to execute.
    pub request: SolveRequest,
    /// SINR model parameters; `None` (or an absent JSON field) uses the
    /// harness defaults `α = 3`, `β = 1`, `ν = 0`.
    pub params: Option<SinrParams>,
}

/// One line of a JSONL report file: the outcome of a [`JobSpec`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobReport {
    /// The family the job ran on (echoed from the spec).
    pub family: Family,
    /// Number of requests (echoed from the spec).
    pub n: usize,
    /// Family seed (echoed from the spec).
    pub seed: u64,
    /// The algorithm that produced the schedule.
    pub algorithm: Algorithm,
    /// The power assignment the schedule was validated under.
    pub assignment: Assignment,
    /// The problem variant that was solved.
    pub variant: Variant,
    /// Number of colors of the schedule.
    pub colors: usize,
    /// Total transmission energy `Σ p_i`.
    pub energy: f64,
    /// Wall time of the solve call in milliseconds (`0` when the runner is
    /// asked for timing-free deterministic output, e.g. for golden diffs).
    pub wall_ms: f64,
    /// The backend decision of the run.
    pub engine: EngineStats,
}

/// Everything that can go wrong between reading a job line and writing its
/// report — one error type so runner code composes with `?` uniformly.
#[derive(Debug)]
pub enum JobError {
    /// The family triple cannot be built.
    Family(FamilyError),
    /// The solve call failed.
    Schedule(ScheduleError),
    /// A dynamic-scheduling step failed (churn-replaying runners).
    Dynamic(DynamicError),
    /// A JSONL line failed to parse or serialize.
    Json(serde_json::Error),
    /// Reading the job file or writing the report failed.
    Io(std::io::Error),
}

impl fmt::Display for JobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobError::Family(e) => write!(f, "cannot build instance: {e}"),
            JobError::Schedule(e) => write!(f, "solve failed: {e}"),
            JobError::Dynamic(e) => write!(f, "dynamic scheduling failed: {e}"),
            JobError::Json(e) => write!(f, "bad JSONL: {e}"),
            JobError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for JobError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            JobError::Family(e) => Some(e),
            JobError::Schedule(e) => Some(e),
            JobError::Dynamic(e) => Some(e),
            JobError::Json(e) => Some(e),
            JobError::Io(e) => Some(e),
        }
    }
}

impl From<FamilyError> for JobError {
    fn from(e: FamilyError) -> JobError {
        JobError::Family(e)
    }
}

impl From<ScheduleError> for JobError {
    fn from(e: ScheduleError) -> JobError {
        JobError::Schedule(e)
    }
}

impl From<DynamicError> for JobError {
    fn from(e: DynamicError) -> JobError {
        JobError::Dynamic(e)
    }
}

impl From<serde_json::Error> for JobError {
    fn from(e: serde_json::Error) -> JobError {
        JobError::Json(e)
    }
}

impl From<std::io::Error> for JobError {
    fn from(e: std::io::Error) -> JobError {
        JobError::Io(e)
    }
}

/// Builds the spec's instance and solves its request, timing the solve call.
///
/// # Errors
///
/// [`JobError::Family`] when the instance cannot be built and
/// [`JobError::Schedule`] when the solve call fails.
pub fn run_job(spec: &JobSpec) -> Result<JobReport, JobError> {
    let params = spec.params.unwrap_or_default();
    let scheduler = Scheduler::new(params);
    let instance = build_family(spec.family, spec.n, spec.seed)?;
    let start = Instant::now();
    let result = match &instance {
        FamilyInstance::Planar(inst) => scheduler.solve(inst, &spec.request)?,
        FamilyInstance::Line(inst) => scheduler.solve(inst, &spec.request)?,
    };
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    Ok(JobReport {
        family: spec.family,
        n: spec.n,
        seed: spec.seed,
        algorithm: result.label.algorithm,
        assignment: result.label.assignment.clone(),
        variant: spec.request.variant,
        colors: result.num_colors(),
        energy: result.total_energy(),
        wall_ms,
        engine: result.engine,
    })
}

/// Runs every spec in a JSONL document (one spec per line; blank lines and
/// `#` comments are skipped) and renders one report per line. With
/// `redact_timing` the reports' `wall_ms` is zeroed, making the output
/// deterministic for golden diffs.
///
/// # Errors
///
/// The first failing line aborts the run, with the 1-based line number in
/// the error message.
pub fn run_jobs_document(input: &str, redact_timing: bool) -> Result<String, JobError> {
    let mut out = String::new();
    for (index, line) in input.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let spec: JobSpec = serde_json::from_str(line).map_err(|e| {
            JobError::Json(<serde_json::Error as serde::de::Error>::custom(format!(
                "line {}: {e}",
                index + 1
            )))
        })?;
        let mut report = run_job(&spec)?;
        if redact_timing {
            report.wall_ms = 0.0;
        }
        out.push_str(&serde_json::to_string(&report)?);
        out.push('\n');
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use oblisched::solve::{BackendPolicy, PowerAssignment, SolveStrategy};

    fn spec(family: Family, n: usize, request: SolveRequest) -> JobSpec {
        JobSpec {
            family,
            n,
            seed: 42,
            request,
            params: None,
        }
    }

    #[test]
    fn run_job_reports_consistent_numbers() {
        let report = run_job(&spec(
            Family::Scaling,
            30,
            SolveRequest::first_fit(PowerAssignment::SquareRoot),
        ))
        .unwrap();
        assert_eq!(report.family, Family::Scaling);
        assert_eq!(report.n, 30);
        assert!(report.colors >= 1 && report.colors <= 30);
        assert!(report.energy > 0.0);
        assert_eq!(report.algorithm, Algorithm::FirstFitAuto);
        assert_eq!(report.assignment, Assignment::SquareRoot);
    }

    #[test]
    fn every_strategy_runs_through_the_job_api() {
        let requests = [
            SolveRequest::first_fit(PowerAssignment::Uniform).with_backend(BackendPolicy::Exact),
            SolveRequest::parallel(PowerAssignment::SquareRoot, 2),
            SolveRequest::power_control(),
            SolveRequest::sqrt_coloring(7),
            SolveRequest::sqrt_decomposition(7),
        ];
        for request in requests {
            let report = run_job(&spec(Family::Uniform, 14, request)).unwrap();
            assert!(report.colors >= 1, "{:?}", request.strategy);
        }
    }

    #[test]
    fn job_errors_carry_their_causes() {
        let err = run_job(&spec(
            Family::Adversarial,
            4096,
            SolveRequest::first_fit(PowerAssignment::Uniform),
        ))
        .unwrap_err();
        assert!(matches!(err, JobError::Family(_)));
        assert!(std::error::Error::source(&err).is_some());

        let err = run_job(&spec(
            Family::Nested,
            6,
            SolveRequest::sqrt_coloring(1).with_variant(Variant::Directed),
        ))
        .unwrap_err();
        assert!(matches!(
            err,
            JobError::Schedule(ScheduleError::UnsupportedVariant {
                strategy: SolveStrategy::SqrtColoring,
                ..
            })
        ));
    }

    #[test]
    fn documents_skip_comments_and_report_line_numbers() {
        let doc = "# smoke\n\n{\"family\":\"nested\",\"n\":6,\"seed\":0,\"request\":{\"strategy\":\"FirstFit\",\"assignment\":\"SquareRoot\",\"variant\":\"Bidirectional\",\"seed\":0,\"backend\":\"Auto\",\"matrix_budget\":null,\"sparse\":null}}\n";
        let out = run_jobs_document(doc, true).unwrap();
        let report: JobReport = serde_json::from_str(out.trim()).unwrap();
        assert_eq!(report.family, Family::Nested);
        assert_eq!(report.wall_ms, 0.0);

        let err = run_jobs_document("{broken", true).unwrap_err();
        assert!(err.to_string().contains("line 1"));
    }

    #[test]
    fn optional_spec_fields_may_be_absent_from_the_json() {
        // `matrix_budget`, `sparse` and `params` are optional: a hand-written
        // job line only needs the request core.
        let line = "{\"family\":\"line\",\"n\":10,\"seed\":0,\"request\":{\"strategy\":{\"Parallel\":{\"num_threads\":2}},\"assignment\":\"SquareRoot\",\"variant\":\"Bidirectional\",\"seed\":0,\"backend\":\"Auto\"}}";
        let spec: JobSpec = serde_json::from_str(line).unwrap();
        assert_eq!(spec.params, None);
        assert_eq!(spec.request.matrix_budget, None);
        assert_eq!(
            spec.request.strategy,
            SolveStrategy::Parallel { num_threads: 2 }
        );
        let report = run_job(&spec).unwrap();
        assert_eq!(report.algorithm, Algorithm::ParallelFirstFit);
    }
}
